"""Prewarming the shared schedule store for large-universe sweeps.

At ``n = 128`` a single DRDS period table spans ``45 n^2 + 8n = 738304``
slots (5.6 MiB) and costs real time to materialize.  Without a store,
every process that sweeps against it — each `SweepRunner` pool worker,
every later run — rebuilds it from scratch.  This example shows the
store lifecycle end to end:

1. prewarm: materialize each distinct table exactly once;
2. sweep: the runner (and all of its workers) attach read-only memmaps;
3. resweep: a fresh runner starts warm — zero builds anywhere;
4. tune: the same sweep through the streaming engine with explicit
   intra-pair worker lanes and tile budget — bit-identical results
   (the runner budgets `workers` across pairs vs within a pair; see
   docs/TUNING.md);
5. inspect and evict.

The CLI equivalents:

    python -m repro store prewarm --agents ... --universe 128 \\
        --algorithm drds --store-dir .schedules
    python -m repro sweep --agents ... --universe 128 \\
        --algorithm drds --store-dir .schedules --workers 0
    python -m repro sweep --agents ... --universe 128 \\
        --algorithm drds --store-dir .schedules --engine stream \\
        --stream-workers 2 --tile-bytes auto
    python -m repro store inspect --store-dir .schedules
    python -m repro store evict --store-dir .schedules --all

Run:  python examples/store_prewarm.py
"""

from __future__ import annotations

import tempfile
import time

from repro.analysis import format_table
from repro.core.store import ScheduleStore
from repro.sim import SweepRunner, adversarial_single_common

N = 128
K = 4
ALGORITHM = "drds"
HORIZON = 2 * (45 * N * N + 8 * N)


def main() -> None:
    instance = adversarial_single_common(N, K, 6, seed=2)
    print(
        f"universe n={N}, {instance.num_agents} agents, "
        f"{len(instance.overlapping_pairs())} overlapping pairs, "
        f"algorithm {ALGORITHM}\n"
    )

    with tempfile.TemporaryDirectory() as store_dir:
        store = ScheduleStore(store_dir)

        # --- 1. prewarm: each distinct table is built exactly once ----
        start = time.perf_counter()
        runner = SweepRunner(workers=1, store=store)
        distinct = runner.prewarm(instance, ALGORITHM)
        print(
            f"prewarmed {distinct} distinct tables in "
            f"{time.perf_counter() - start:.2f}s "
            f"(store: {store.builds} builds, "
            f"{store.total_bytes() / (1 << 20):.1f} MiB)"
        )

        # --- 2. sweep: every lookup attaches, nothing is rebuilt ------
        start = time.perf_counter()
        measured = runner.measure_instance(
            instance, ALGORITHM, HORIZON, dense=8, probes=8
        )
        print(
            f"swept {len(measured)} pairs in "
            f"{time.perf_counter() - start:.2f}s "
            f"(store builds still {store.builds})"
        )

        # --- 3. a fresh runner — same store — starts warm -------------
        start = time.perf_counter()
        again = SweepRunner(workers=1, store=ScheduleStore(store_dir))
        remeasured = again.measure_instance(
            instance, ALGORITHM, HORIZON, dense=8, probes=8
        )
        assert remeasured == measured, "store on/off must be bit-identical"
        print(
            f"fresh runner resweep in {time.perf_counter() - start:.2f}s "
            f"({again.store.builds} builds, {again.store.attaches} attaches)\n"
        )

        # --- 4. the engine/tile knobs ride the same store -------------
        # Forcing the streaming engine (tiles gathered straight off the
        # attached memmaps) with 2 intra-pair lanes and an auto-tuned
        # tile plan must reproduce the measurements bit-identically —
        # knobs move wall-clock, never results.  worker_budget shows
        # how a runner splits its budget across vs within pairs.
        tuned = SweepRunner(
            workers=1, store=ScheduleStore(store_dir),
            engine="stream", stream_workers=2, tile_bytes=None,
        )
        retuned = tuned.measure_instance(
            instance, ALGORITHM, HORIZON, dense=8, probes=8
        )
        assert retuned == measured, "engine/tile knobs must not change results"
        budgeted = SweepRunner(workers=8)
        pairs = len(instance.overlapping_pairs())
        print(
            f"streamed resweep with 2 lanes per pair: identical measurements\n"
            f"worker budget at {pairs} pairs for SweepRunner(workers=8): "
            f"{budgeted.worker_budget(pairs)} (processes, lanes) — "
            f"{budgeted.worker_budget(1)} for a single-pair job\n"
        )

        # --- 5. inspect and evict -------------------------------------
        rows = [
            [m["digest"], m["algorithm"], m["n"], m["period"],
             f"{m['nbytes'] / (1 << 20):.1f}"]
            for m in store.entries()
        ]
        print(format_table(["digest", "algorithm", "n", "period", "MiB"], rows))
        print(f"\nworst TTR over all pairs: {max(m.worst_ttr for m in measured)}")
        print(f"evicted {store.clear()} entries; store empty again")


if __name__ == "__main__":
    main()
