"""One-round rendezvous maximization (paper Appendix).

When there is only a single slot, guaranteed pairwise rendezvous is
impossible — instead we maximize how many agent pairs meet.  For size-two
channel sets, agents are edges of a graph and the problem becomes an
orientation problem: point each edge at a channel, count pairs of edges
pointing at their shared vertex.

This example compares, on random graphs: the exact optimum (brute force),
the 0.25-expectation random orientation, and the GW-style SDP rounding
with its 0.439 guarantee.

Run:  python examples/oneround_maximization.py
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.oneround import (
    OneRoundInstance,
    best_of_random,
    brute_force_optimum,
    count_in_pairs,
    random_orientation,
    sdp_orient,
)


def random_graph(num_vertices: int, num_edges: int, seed: int) -> OneRoundInstance:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.sample(range(num_vertices), 2)
        edges.add((min(a, b), max(a, b)))
    return OneRoundInstance(sorted(edges))


def main() -> None:
    rows = []
    for seed in range(5):
        inst = random_graph(10, 16, seed)
        optimum, _ = brute_force_optimum(inst)
        single_random = count_in_pairs(inst, random_orientation(inst, seed=seed))
        best_random, _ = best_of_random(inst, trials=32, seed=seed)
        sdp_value, _ = sdp_orient(inst, trials=32, seed=seed)
        rows.append(
            [
                f"G{seed} (10v/16e)",
                inst.incident_pair_count(),
                optimum,
                single_random,
                best_random,
                sdp_value,
                f"{sdp_value / optimum:.2f}" if optimum else "-",
            ]
        )
    print(
        format_table(
            [
                "instance",
                "incident pairs",
                "optimum",
                "1 random",
                "best-of-32 random",
                "SDP",
                "SDP/opt",
            ],
            rows,
        )
    )
    print(
        "\nGuarantees: random achieves 1/4 of incident pairs in expectation;"
        "\nthe SDP guarantees 0.439 x optimum (and in practice sits near 1.0)."
    )


if __name__ == "__main__":
    main()
