"""Rendezvous-as-a-service: cached queries and resumable sweeps.

A measured worst-TTR profile is a pure function of its query — the
channel sets, universe, algorithm, horizon, and sweep shape.  The
service layer exploits that twice over:

1. query: a cold worst-TTR pair query runs the full shift sweep and
   writes the ``MeasuredPair`` through to a persistent result cache;
2. re-query: a *fresh* runner (think: the next process, tomorrow's
   run) answers the same query from a cache shard in microseconds —
   bit-identical, no schedule built, no shift scanned;
3. interrupt: a long checkpointed sweep dies mid-scan — the snapshot
   written at the last tile-block boundary survives on disk;
4. resume: a new runner picks the sweep up from the snapshot, rescans
   only the unresolved shifts, and lands the identical measurement
   (the checkpoint file is deleted on success, the result cached);
5. re-query again: now even the interrupted pair is a cache hit.

The CLI equivalents:

    python -m repro serve --a 3,17,40 --b 17,58 --universe 64 \\
        --algorithm jump-stay --results-dir .results
    python -m repro sweep --agents 3,17,40/17,58 --universe 64 \\
        --algorithm jump-stay --results-dir .results \\
        --checkpoint-dir .ckpt
    python -m repro sweep ... --checkpoint-dir .ckpt --resume

Run:  python examples/rendezvous_service.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro.sim.runner as runner_module
from repro.core.stream import SweepCheckpoint
from repro.sim import SweepRunner
from repro.sim.workloads import single_overlap

N = 64
ALGORITHM = "jump-stay"
HORIZON = 4_000_000
SWEEP = dict(dense=32, probes=32)


class DyingCheckpoint(SweepCheckpoint):
    """A checkpoint sink that simulates a crash after its 3rd snapshot."""

    def save(self, state: dict) -> None:
        """Persist the snapshot, then die once three are on disk."""
        super().save(state)
        if self.saves >= 3:
            raise RuntimeError("simulated crash (power loss, preemption...)")


def cache_line(runner: SweepRunner) -> str:
    """One-line cache summary, in the CLI's format."""
    s = runner.results.stats()
    return (
        f"    cache: {s['hits']} hits, {s['misses']} misses, "
        f"{s['writes']} writes, {s['entries']} entries"
    )


def main() -> None:
    instance = single_overlap(N, 5, 5, seed=2)
    print(
        f"universe n={N}, pair {sorted(instance.sets[0])} / "
        f"{sorted(instance.sets[1])}, algorithm {ALGORITHM}\n"
    )

    with tempfile.TemporaryDirectory() as tmp:
        results_dir = Path(tmp) / "results"
        ckpt_dir = Path(tmp) / "checkpoints"

        # --- 1. cold query: sweep + write-through ---------------------
        server = SweepRunner(workers=1, results=results_dir)
        start = time.perf_counter()
        cold = server.measure_pair(instance, ALGORITHM, (0, 1), HORIZON, **SWEEP)
        cold_seconds = time.perf_counter() - start
        print(f"cold query: worst TTR {cold.worst_ttr} in {cold_seconds:.3f}s")
        print(cache_line(server))

        # --- 2. re-query from a fresh runner: one shard read ----------
        fresh = SweepRunner(workers=1, results=results_dir)
        start = time.perf_counter()
        warm = fresh.measure_pair(instance, ALGORITHM, (0, 1), HORIZON, **SWEEP)
        warm_seconds = time.perf_counter() - start
        assert warm == cold, "a cache hit must be bit-identical to the sweep"
        print(
            f"re-query:   worst TTR {warm.worst_ttr} in {warm_seconds:.6f}s "
            f"({cold_seconds / warm_seconds:.0f}x, bit-identical)"
        )
        print(cache_line(fresh))

        # --- 3. interrupt a checkpointed sweep mid-scan ---------------
        # A second, uncached pair; tiny tiles force many block
        # boundaries so snapshots land early.  Injecting the dying sink
        # through the runner module stands in for a real crash.
        other = single_overlap(N, 6, 4, seed=7)
        doomed = SweepRunner(
            workers=1, results=results_dir, checkpoint_dir=ckpt_dir,
            engine="stream", tile_bytes=64,
        )
        runner_module.SweepCheckpoint = DyingCheckpoint
        try:
            doomed.measure_pair(other, ALGORITHM, (0, 1), HORIZON, **SWEEP)
            raise AssertionError("the injected crash should have fired")
        except RuntimeError as exc:
            print(f"\ninterrupted sweep: {exc}")
        finally:
            runner_module.SweepCheckpoint = SweepCheckpoint
        snapshots = list(ckpt_dir.glob("*.ckpt.json"))
        assert len(snapshots) == 1, "the partial sweep must leave its snapshot"
        print(f"    snapshot on disk: {snapshots[0].name}")

        # --- 4. resume from the snapshot ------------------------------
        resumer = SweepRunner(
            workers=1, results=results_dir, checkpoint_dir=ckpt_dir,
            engine="stream", tile_bytes=64,
        )
        resumed = resumer.measure_pair(other, ALGORITHM, (0, 1), HORIZON, **SWEEP)
        reference = SweepRunner(workers=1).measure_pair(
            other, ALGORITHM, (0, 1), HORIZON, **SWEEP
        )
        assert resumed == reference, "resume must be bit-identical to one pass"
        assert not list(ckpt_dir.glob("*.ckpt.json")), (
            "the snapshot is deleted once the sweep completes"
        )
        print(
            f"resumed:    worst TTR {resumed.worst_ttr} "
            "(bit-identical to an uninterrupted sweep; snapshot cleared)"
        )

        # --- 5. the resumed result is served from cache too -----------
        final = SweepRunner(workers=1, results=results_dir)
        again = final.measure_pair(other, ALGORITHM, (0, 1), HORIZON, **SWEEP)
        assert again == resumed
        print("re-query of the resumed pair: cache hit")
        print(cache_line(final))


if __name__ == "__main__":
    main()
