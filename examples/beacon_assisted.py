"""Beacon-assisted rendezvous (paper Section 5).

With an ambient one-bit random beacon (e.g. GPS-derived), rendezvous
drops from Omega(|S_i||S_j|) to O(|S_i| + |S_j| + log n) — additive, not
multiplicative.  This example runs both beacon protocols against the
deterministic Theorem 3 schedule on the same instance and compares.

Run:  python examples/beacon_assisted.py
"""

from __future__ import annotations

import statistics

import repro
from repro.analysis import format_table
from repro.beacon import (
    AmplifiedBeaconProtocol,
    BeaconSource,
    SimpleBeaconProtocol,
    beacon_first_meeting,
)
from repro.core.batch import ttr_sweep
from repro.sim import single_overlap


def main() -> None:
    n = 64
    k = l = 8
    instance = single_overlap(n, k, l, seed=5)
    a_set, b_set = instance.sets
    print(f"n={n}, |S_a|={k}, |S_b|={l}, single common channel\n")

    rows = []

    # Deterministic paper schedule: worst over sampled wake offsets.
    a = repro.build_schedule(a_set, n)
    b = repro.build_schedule(b_set, n)
    det_ttrs = list(ttr_sweep(a, b, range(0, 4000, 131), 10**6).values())
    rows.append(
        ["paper (no beacon)", "0 bits",
         f"{statistics.mean(det_ttrs):.0f}", max(det_ttrs)]
    )

    # Beacon protocols: average over beacon seeds (the randomness is the
    # beacon stream, shared by both agents).
    for name, cls in (
        ("simple beacon", SimpleBeaconProtocol),
        ("amplified beacon", AmplifiedBeaconProtocol),
    ):
        ttrs = []
        bits = None
        for seed in range(25):
            beacon = BeaconSource(seed)
            pa = cls(a_set, n, beacon)
            pb = cls(b_set, n, beacon)
            ttr = beacon_first_meeting(pa, pb, 0, seed * 17 % 101, 200_000)
            assert ttr is not None
            ttrs.append(ttr)
            if bits is None:
                bits = (
                    f"{pa.window} bits/permutation"
                    if isinstance(pa, SimpleBeaconProtocol)
                    else f"{pa.burn_in} bits + 3/step"
                )
        rows.append([name, bits, f"{statistics.mean(ttrs):.0f}", max(ttrs)])

    print(format_table(["protocol", "beacon bits", "mean TTR", "max TTR"], rows))
    print(
        "\nShape check: the deterministic schedule pays ~|S_a||S_b| loglog n;"
        "\nthe amplified beacon protocol needs only ~|S_a|+|S_b|+log n slots."
    )


if __name__ == "__main__":
    main()
