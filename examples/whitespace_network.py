"""TV-whitespace network: asymmetric sensed availability.

Incumbent transmitters occupy part of the spectrum; every secondary user
senses the free channels with local noise, so no two radios agree exactly
on what is available — the *asymmetric* model the paper is built for.
We run full-network discovery with the paper's schedules, then show the
symmetric O(1) wrapper (Section 3.2) on a cluster of radios that happen
to sense identical sets.

Run:  python examples/whitespace_network.py
"""

from __future__ import annotations

import repro
from repro.analysis import format_table
from repro.sim import Agent, Network, summarize_ttrs, whitespace


def main() -> None:
    n = 64
    instance = whitespace(
        n, num_agents=8, incumbent_load=0.5, sensing_noise=0.15, seed=21
    )
    print(f"universe n={n}: {instance.metadata['free_channels']} channels "
          f"clear of incumbents")
    rows = [
        [f"radio{i}", len(s), " ".join(str(c) for c in sorted(s)[:8]) + " ..."]
        for i, s in enumerate(instance.sets)
    ]
    print(format_table(["agent", "|S|", "sensed-free channels"], rows))

    agents = [
        Agent(f"radio{i}", repro.build_schedule(s, n), wake_time=11 * i)
        for i, s in enumerate(instance.sets)
    ]
    result = Network(agents).run(horizon=300_000)
    stats = summarize_ttrs(result.ttrs().values())
    print(f"\nasymmetric discovery: all pairs met = {result.all_discovered()}")
    print(f"TTR mean {stats.mean:.0f}, median {stats.median:.0f}, "
          f"p95 {stats.p95:.0f}, max {stats.maximum}")

    # --- the symmetric special case --------------------------------------
    # A cluster with identical sensed sets uses the Section 3.2 wrapper:
    # constant-time mutual discovery regardless of wake offsets.
    shared = instance.sets[0]
    cluster = [
        Agent(
            f"sym{i}",
            repro.build_schedule(shared, n, algorithm="paper-symmetric"),
            wake_time=5 * i + 3,
        )
        for i in range(4)
    ]
    sym_result = Network(cluster).run(horizon=2_000)
    sym_stats = summarize_ttrs(sym_result.ttrs().values())
    print(f"\nsymmetric cluster (|S|={len(shared)}, 4 radios, staggered "
          f"wake-ups): max TTR = {sym_stats.maximum} slots "
          "(paper: <= 12, independent of n and |S|)")


if __name__ == "__main__":
    main()
