"""Quickstart: two radios, overlapping spectrum, guaranteed rendezvous.

Builds the paper's Theorem 3 schedules for two agents with different
channel sets and wake-up times, simulates them, and prints when and where
they meet — plus the worst case over every small relative shift, compared
against the analytic bound, and a first look at the sweep-engine tuning
knobs (engine selection, tile budget, intra-pair worker lanes) that
docs/TUNING.md teaches in full.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import walk_plot
from repro.core.batch import ttr_sweep
from repro.core.epoch import rendezvous_bound
from repro.core.pairwise import async_pair_string
from repro.core.ramsey import color_bits, edge_color
from repro.core.stream import plan_tiles
from repro.sim import Agent, Network


def main() -> None:
    n = 64  # channel universe
    alice_channels = {3, 17, 40}
    bob_channels = {17, 58}

    alice = repro.build_schedule(alice_channels, n)
    bob = repro.build_schedule(bob_channels, n)
    print(f"universe n={n}")
    print(f"alice {sorted(alice_channels)}: primes {alice.prime_pair}, "
          f"period {alice.period}")
    print(f"bob   {sorted(bob_channels)}: primes {bob.prime_pair}, "
          f"period {bob.period}")

    # --- one asynchronous run -------------------------------------------
    network = Network(
        [
            Agent("alice", alice, wake_time=0),
            Agent("bob", bob, wake_time=137),  # bob sleeps in
        ]
    )
    result = network.run(horizon=100_000)
    event = result.events[("alice", "bob")]
    print(f"\nfirst rendezvous: slot {event.time} on channel {event.channel} "
          f"(TTR {event.ttr} slots after both awake)")

    # --- worst case over shifts vs the analytic bound -------------------
    # max_ttr sweeps every shift in one batched pass (repro.core.batch);
    # ttr_sweep exposes the full profile when the distribution matters.
    bound = rendezvous_bound(alice, bob)
    worst = repro.max_ttr(alice, bob, range(0, 2000, 7), horizon=bound + 1)
    print(f"worst TTR over sampled shifts: {worst}  (analytic bound {bound})")

    # --- the tuning knobs, in one breath (full guide: docs/TUNING.md) --
    # engine="auto" dispatches on period size (scalar / batched table /
    # streaming tiles); every engine and knob setting is bit-identical,
    # so forcing the streaming engine with explicit lanes and a pinned
    # tile budget must reproduce the default profile exactly.
    shifts = list(range(0, 2000, 7))
    default_profile = ttr_sweep(alice, bob, shifts, bound + 1)
    streamed = ttr_sweep(
        alice, bob, shifts, bound + 1,
        engine="stream", stream_workers=2, tile_bytes=65536,
    )
    assert streamed == default_profile, "knobs must never change results"
    plan = plan_tiles(len(shifts), bound + 1, workers=2)
    print(
        f"streamed the same profile through 2 worker lanes "
        f"(auto plan would be: tile {plan.tile_bytes >> 10} KiB, "
        f"{plan.block_rows} shifts per block)"
    )

    # --- peek inside Theorem 1 ------------------------------------------
    color = edge_color(17, 58, n)
    string = async_pair_string(color_bits(color, n))
    print("\nthe size-two schedule string R(x) for {17, 58} "
          f"(color {color}) and its walk:")
    print(walk_plot(string))


if __name__ == "__main__":
    main()
