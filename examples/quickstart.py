"""Quickstart: two radios, overlapping spectrum, guaranteed rendezvous.

Builds the paper's Theorem 3 schedules for two agents with different
channel sets and wake-up times, simulates them, and prints when and where
they meet — plus the worst case over every small relative shift, compared
against the analytic bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import walk_plot
from repro.core.epoch import rendezvous_bound
from repro.core.pairwise import async_pair_string
from repro.core.ramsey import color_bits, edge_color
from repro.sim import Agent, Network


def main() -> None:
    n = 64  # channel universe
    alice_channels = {3, 17, 40}
    bob_channels = {17, 58}

    alice = repro.build_schedule(alice_channels, n)
    bob = repro.build_schedule(bob_channels, n)
    print(f"universe n={n}")
    print(f"alice {sorted(alice_channels)}: primes {alice.prime_pair}, "
          f"period {alice.period}")
    print(f"bob   {sorted(bob_channels)}: primes {bob.prime_pair}, "
          f"period {bob.period}")

    # --- one asynchronous run -------------------------------------------
    network = Network(
        [
            Agent("alice", alice, wake_time=0),
            Agent("bob", bob, wake_time=137),  # bob sleeps in
        ]
    )
    result = network.run(horizon=100_000)
    event = result.events[("alice", "bob")]
    print(f"\nfirst rendezvous: slot {event.time} on channel {event.channel} "
          f"(TTR {event.ttr} slots after both awake)")

    # --- worst case over shifts vs the analytic bound -------------------
    # max_ttr sweeps every shift in one batched pass (repro.core.batch);
    # ttr_sweep exposes the full profile when the distribution matters.
    bound = rendezvous_bound(alice, bob)
    worst = repro.max_ttr(alice, bob, range(0, 2000, 7), horizon=bound + 1)
    print(f"worst TTR over sampled shifts: {worst}  (analytic bound {bound})")

    # --- peek inside Theorem 1 ------------------------------------------
    color = edge_color(17, 58, n)
    string = async_pair_string(color_bits(color, n))
    print("\nthe size-two schedule string R(x) for {17, 58} "
          f"(color {color}) and its walk:")
    print(walk_plot(string))


if __name__ == "__main__":
    main()
