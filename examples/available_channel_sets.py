"""Available-channel-set workloads: ZOS vs the global-sequence baselines.

The ZOS baseline (after Lin et al., arXiv:1506.00744) builds each
agent's hopping sequence from its *own* available channel set, so its
rendezvous guarantee scales with the set size ``m`` instead of the
universe size ``n`` — the same ``|S| << n`` regime the paper's
construction targets.  This example sweeps the overlap fraction ``rho``
of the new ``available_overlap`` workload and pits every registered
deterministic algorithm against the adversarial single-common-channel
family, using one batched sweep per pair.

Run:  python examples/available_channel_sets.py
"""

from __future__ import annotations

import math

import repro
from repro.analysis import format_table
from repro.baselines import DETERMINISTIC_BASELINES
from repro.core.verification import max_ttr, strided_shift_range
from repro.sim import adversarial_single_common, available_overlap

N = 64
K = 4
MAX_SHIFTS = 20_000  # stride cap, matching benchmarks/test_zos_comparison.py


def worst_ttr(algorithm: str, instance) -> int:
    worst = 0
    schedules = [
        repro.build_schedule(s, instance.n, algorithm=algorithm)
        for s in instance.sets
    ]
    for i, j in instance.overlapping_pairs():
        a, b = schedules[i], schedules[j]
        shifts = strided_shift_range(a, b, MAX_SHIFTS)
        worst = max(
            worst, max_ttr(a, b, shifts, 2 * math.lcm(a.period, b.period))
        )
    return worst


def main() -> None:
    print(f"universe n={N}, set size k={K}\n")

    print("overlap-fraction sweep (ZOS, 3 agents): worst TTR per rho")
    rows = []
    for rho in (0.0, 0.25, 0.5, 0.75, 1.0):
        instance = available_overlap(N, K, 3, rho=rho, seed=1)
        rows.append([rho, instance.metadata["core_size"], worst_ttr("zos", instance)])
    print(format_table(["rho", "shared core", "worst TTR"], rows))

    print("\nadversarial single-common-channel pair, every registered")
    print("deterministic algorithm (new baselines appear automatically):")
    instance = adversarial_single_common(N, K, 2, seed=2)
    rows = []
    for algorithm in ("paper",) + DETERMINISTIC_BASELINES:
        sched = repro.build_schedule(instance.sets[0], N, algorithm=algorithm)
        rows.append([algorithm, worst_ttr(algorithm, instance), f"{sched.period:,}"])
    print(format_table(["algorithm", "worst TTR", "guarantee envelope"], rows))
    print("\nZOS and the paper's schedule answer in set-size time; the")
    print("whole-universe sequences pay their n-scaled periods.")


if __name__ == "__main__":
    main()
