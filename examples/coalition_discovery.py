"""Coalition scenario: small subsets of a large spectrum pool.

The paper's motivating deployment (Section 1.3): a large hyperspace of
channels where each coalition member operates in a small band that
overlaps its allies' bands.  With |S| << n the paper's
O(|S_i||S_j| log log n) schedule beats the O(n^2)/O(n^3) global-sequence
baselines by orders of magnitude.

This example builds a multi-band coalition, runs full-network discovery
under the paper's algorithm and under every deterministic baseline in
the registry (``repro.baselines.DETERMINISTIC_BASELINES`` — new
baselines such as ``zos`` show up here automatically), and reports how
long each needs for every overlapping pair to meet.

Run:  python examples/coalition_discovery.py
"""

from __future__ import annotations

import repro
from repro.analysis import format_table
from repro.baselines import DETERMINISTIC_BASELINES
from repro.sim import Agent, Network, coalition_bands, summarize_ttrs

# Horizons scale with each construction's guarantee envelope (its
# period), capped so the global-sequence baselines stay runnable.
HORIZON_CAP = 4_000_000


def discovery_horizon(instance, algorithm: str) -> int:
    worst_period = max(
        repro.build_schedule(channels, instance.n, algorithm=algorithm).period
        for channels in set(instance.sets)
    )
    return min(4 * worst_period, HORIZON_CAP)


def discover(instance, algorithm: str, horizon: int):
    agents = [
        Agent(
            f"{algorithm}-{i}",
            repro.build_schedule(channels, instance.n, algorithm=algorithm),
            wake_time=(37 * i) % 400,
        )
        for i, channels in enumerate(instance.sets)
    ]
    return Network(agents).run(horizon)


def main() -> None:
    n = 256  # a large pooled hyperspace
    instance = coalition_bands(
        n, band_width=10, agents_per_band=3, num_bands=5, overlap=3, seed=7
    )
    sizes = sorted(len(s) for s in instance.sets)
    print(f"universe n={n}, {instance.num_agents} agents, "
          f"set sizes {sizes[0]}..{sizes[-1]}, "
          f"{len(instance.overlapping_pairs())} overlapping pairs\n")

    rows = []
    for algorithm in ("paper",) + DETERMINISTIC_BASELINES:
        horizon = discovery_horizon(instance, algorithm)
        result = discover(instance, algorithm, horizon)
        ttrs = list(result.ttrs().values())
        stats = summarize_ttrs(ttrs) if ttrs else None
        rows.append(
            [
                algorithm,
                "yes" if result.all_discovered() else
                f"no ({len(result.unmet_pairs())} pairs missing)",
                result.discovery_time() or "-",
                stats.mean if stats else "-",
                stats.maximum if stats else "-",
            ]
        )
    print(
        format_table(
            ["algorithm", "all pairs met", "network discovery slot",
             "mean TTR", "max TTR"],
            rows,
        )
    )

    # Averages hide the story: the paper's contribution is the worst-case
    # guarantee.  Probe one cross-band pair over many relative wake-up
    # shifts (one batched sweep per algorithm) and report the worst TTR.
    from repro.core.batch import ttr_sweep
    from repro.sim import summarize_profile

    i, j = next(
        (i, j) for i, j in instance.overlapping_pairs() if i // 3 != j // 3
    )
    print(f"\nworst-case probe: agents {i} and {j} "
          f"({sorted(instance.sets[i])} vs {sorted(instance.sets[j])})")
    rows = []
    horizon = 200_000
    for algorithm in ("paper",) + DETERMINISTIC_BASELINES:
        a = repro.build_schedule(instance.sets[i], n, algorithm=algorithm)
        b = repro.build_schedule(instance.sets[j], n, algorithm=algorithm)
        profile = ttr_sweep(a, b, range(0, 30_000, 997), horizon)
        stats, misses = summarize_profile(profile)
        # The global-sequence guarantees only kick in within their full
        # periods (Jump-Stay's cubic ~50M slots at n=256) — a miss here
        # IS the story.
        worst: object = f">= {horizon}" if misses else stats.maximum
        rows.append([algorithm, worst, f"{a.period:,}"])
    print(format_table(
        ["algorithm", "worst TTR over sampled shifts", "guarantee envelope"],
        rows,
    ))
    print("\nWith |S| ~ 5 and n = 256 the paper's schedule guarantees"
          " ~|S_i||S_j| loglog n slots, while Jump-Stay's guarantee degrades"
          " with the O(n^3) global period — the coalition-setting gap.")


if __name__ == "__main__":
    main()
