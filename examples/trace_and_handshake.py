"""Trace visualization and chirp-and-listen identification.

Renders the slot-by-slot channel-time diagram of three radios running
the paper's schedules — rendezvous slots show as ``*`` — then runs the
chirp-and-listen layer (the paper's Section 1.3 remark) to show how
co-presence turns into *mutual identification*, including the collision
penalty when several radios pile onto one channel.

Run:  python examples/trace_and_handshake.py
"""

from __future__ import annotations

import repro
from repro.analysis import format_table
from repro.sim import Agent, ChirpAndListen, Network, render_trace


def main() -> None:
    n = 16
    sets = [{3, 7}, {7, 12}, {3, 12}]
    agents = [
        Agent(name, repro.build_schedule(channels, n), wake_time=wake)
        for name, channels, wake in zip(
            ("alice", "bob", "carol"), sets, (0, 2, 5)
        )
    ]

    print("channel-time trace (first 72 slots):\n")
    print(render_trace(agents, 0, 72))

    result = Network(agents).run(50_000)
    print("\nfirst co-presence per pair:")
    rows = [
        [f"{p[0]}-{p[1]}", e.time, e.channel]
        for p, e in sorted(result.events.items())
    ]
    print(format_table(["pair", "slot", "channel"], rows))

    handshake = ChirpAndListen(agents, seed=7).run(100_000)
    print("\nchirp-and-listen mutual identification:")
    rows = []
    for pair, event in sorted(result.events.items()):
        mutual = handshake.mutual_identification_time(*pair)
        rows.append(
            [f"{pair[0]}-{pair[1]}", event.time, mutual,
             mutual - event.time if mutual is not None else "-"]
        )
    print(format_table(
        ["pair", "co-presence", "mutual id", "identification overhead"], rows
    ))

    # The collision effect: a crowd on one channel identifies slower.
    crowd = [
        Agent(f"node{i}", repro.build_schedule({5}, n)) for i in range(6)
    ]
    crowd_result = ChirpAndListen(crowd, seed=7).run(20_000)
    times = [
        crowd_result.mutual_identification_time(f"node{i}", f"node{j}")
        for i in range(6)
        for j in range(i + 1, 6)
    ]
    print(f"\n6 radios parked on one channel: mutual identification took "
          f"{min(times)}..{max(times)} slots (chirp collisions); a lone "
          "pair needs only a handful.")


if __name__ == "__main__":
    main()
