"""Command-line interface.

A small operational surface over the library, for a user who wants
numbers without writing Python:

    python -m repro schedule --channels 3,17,40 --universe 64 --slots 20
    python -m repro rendezvous --a 3,17,40 --b 17,58 --universe 64
    python -m repro bound --k 3 --l 4 --universe 64
    python -m repro simulate --agents 3,17,40/17,58/3,58 --universe 64
    python -m repro netsim --workload random_subsets --universe 12 --k 3 --agents 5000
    python -m repro netsim --workload random_subsets --universe 12 --agents 600 --certify 50
    python -m repro netsim --workload whitespace --universe 24 --agents 2000 --churn 0.2 --json
    python -m repro sweep --agents 3,17,40/17,58/3,58 --universe 64
    python -m repro sweep --agents ... --universe 64 --engine stream --tile-bytes 65536
    python -m repro sweep --agents ... --universe 64 --engine stream --stream-workers 4 --tile-bytes auto
    python -m repro sweep --agents ... --universe 64 --store-dir .schedules --store-cap 1000000
    python -m repro sweep --agents ... --universe 64 --checkpoint-dir .ckpt --resume
    python -m repro sweep --agents ... --universe 64 --environment pu-churn:rate=0.1,seed=7
    python -m repro sweep --agents ... --universe 64 --environment fading:p=0.05 --degradation 4000
    python -m repro sweep --agents ... --universe 64 --engine stream --telemetry text
    python -m repro serve --a 3,17,40 --b 17,58 --universe 64 --results-dir .results
    python -m repro serve --a ... --b ... --universe 64 --results-dir .results --json
    python -m repro store prewarm --agents ... --universe 64 --store-dir .schedules
    python -m repro store inspect --store-dir .schedules
    python -m repro store evict --store-dir .schedules --all
    python -m repro walk --bits 110100

Each subcommand prints plain text; exit code 0 on success, 2 on usage
errors (argparse convention).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from collections.abc import Sequence
from pathlib import Path

import repro
from repro.analysis import format_table, walk_plot
from repro.core import bounds, telemetry
from repro.core.environment import (
    FadingMisses,
    PrimaryUserChurn,
    environment_digest,
    parse_environment,
)
from repro.core.results import ResultStore, result_digest
from repro.core.store import ScheduleStore
from repro.core.verification import degradation_report, ttr_for_shift
from repro.sim import (
    Agent,
    Instance,
    Network,
    Population,
    SweepRunner,
    channel_contention,
    simulate_population,
    summarize_discovery,
)
from repro.sim import workloads as _workloads
from repro.sim.netcore import DEFAULT_CHUNK
from repro.sim.network import ENGINES as _SIM_ENGINES

__all__ = ["main", "build_parser"]

from repro.baselines import BASELINE_NAMES

_ALGORITHMS = ("paper", "paper-sync", "paper-symmetric") + BASELINE_NAMES


def _parse_channels(text: str) -> list[int]:
    try:
        channels = [int(part) for part in text.split(",") if part != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad channel list {text!r}") from exc
    if not channels:
        raise argparse.ArgumentTypeError("channel list is empty")
    return channels


def _parse_agents(text: str) -> list[list[int]]:
    return [_parse_channels(part) for part in text.split("/")]


def _parse_stream_workers(text: str) -> int:
    """A nonnegative lane count (0 means the automatic budget)."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a worker count, got {text!r}"
        ) from exc
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"stream workers must be nonnegative, got {value}"
        )
    return value


def _parse_tile_bytes(text: str) -> int | None:
    """``auto`` (the tuned default) or a positive byte count."""
    if text == "auto":
        return None
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a byte count, got {text!r}"
        ) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"tile bytes must be positive, got {value}"
        )
    return value


def _parse_environment_arg(text: str):
    """A fault-environment spec (``family:key=value,...`` joined by '+')."""
    try:
        return parse_environment(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


#: Workload generators the ``netsim`` subcommand can instantiate.
_NETSIM_WORKLOADS = (
    "random_subsets",
    "symmetric",
    "available_overlap",
    "adversarial_single_common",
    "whitespace",
)


def _parse_fraction(text: str) -> float:
    """A probability in ``[0, 1]``."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a fraction, got {text!r}"
        ) from exc
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"fraction must be in [0, 1], got {value}"
        )
    return value


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--telemetry`` flag to one subcommand parser.

    ``text`` prints the hierarchical phase tree
    (:func:`repro.core.telemetry.format_tree`) after the command's
    normal output; ``json`` prints one sorted-keys JSON object —
    ``{"telemetry": <snapshot>, "wall_seconds": ...}`` — as the *last*
    stdout line, so scripts can ``tail -n 1`` it (the BENCH-json-style
    shape ``docs/OBSERVABILITY.md`` documents).  Results are
    bit-identical with and without the flag.
    """
    parser.add_argument(
        "--telemetry",
        choices=("text", "json"),
        default=None,
        help="print a phase-timing tree after the run: 'text' renders "
        "it human-readable, 'json' emits one JSON object as the last "
        "output line; results are identical either way",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic blind rendezvous (Chen et al., ICDCS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    schedule = sub.add_parser("schedule", help="print an agent's hopping schedule")
    schedule.add_argument("--channels", type=_parse_channels, required=True)
    schedule.add_argument("--universe", type=int, required=True)
    schedule.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    schedule.add_argument("--slots", type=int, default=32)

    rendezvous = sub.add_parser(
        "rendezvous", help="when do two agents meet, and what is the bound"
    )
    rendezvous.add_argument("--a", type=_parse_channels, required=True)
    rendezvous.add_argument("--b", type=_parse_channels, required=True)
    rendezvous.add_argument("--universe", type=int, required=True)
    rendezvous.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    rendezvous.add_argument("--shift", type=int, default=0)
    rendezvous.add_argument("--horizon", type=int, default=1_000_000)

    bound = sub.add_parser("bound", help="print the analytic guarantees")
    bound.add_argument("--k", type=int, required=True)
    bound.add_argument("--l", type=int, required=True)
    bound.add_argument("--universe", type=int, required=True)

    simulate = sub.add_parser("simulate", help="multi-agent discovery simulation")
    simulate.add_argument(
        "--agents",
        type=_parse_agents,
        required=True,
        help="channel sets separated by '/', e.g. 1,2/2,3/3,4",
    )
    simulate.add_argument("--universe", type=int, required=True)
    simulate.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    simulate.add_argument("--horizon", type=int, default=200_000)
    simulate.add_argument("--wake-stagger", type=int, default=13)

    netsim = sub.add_parser(
        "netsim",
        help="network-scale discovery simulation over a generated workload",
    )
    netsim.add_argument(
        "--workload",
        choices=_NETSIM_WORKLOADS,
        default="random_subsets",
        help="channel-set generator for the population",
    )
    netsim.add_argument("--universe", type=int, required=True)
    netsim.add_argument(
        "--agents",
        type=int,
        required=True,
        metavar="N",
        help="population size (number of radios)",
    )
    netsim.add_argument(
        "--k",
        type=int,
        default=3,
        help="channel-set size for the subset workloads",
    )
    netsim.add_argument(
        "--rho",
        type=_parse_fraction,
        default=0.5,
        help="overlap fraction for the available_overlap workload",
    )
    netsim.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    netsim.add_argument("--horizon", type=int, default=500_000)
    netsim.add_argument(
        "--wake-spread",
        type=int,
        default=16,
        help="wake slots drawn uniformly from [0, spread); 0 wakes "
        "everyone at slot 0",
    )
    netsim.add_argument(
        "--churn",
        type=_parse_fraction,
        default=0.0,
        help="fraction of agents that leave mid-simulation (seeded)",
    )
    netsim.add_argument(
        "--churn-window",
        type=int,
        default=10_000,
        help="a leaving agent departs within this many slots of waking",
    )
    netsim.add_argument("--seed", type=int, default=0)
    netsim.add_argument(
        "--engine",
        choices=_SIM_ENGINES,
        default="vectorized",
        help="simulation engine: the vectorized cohort-columnar core "
        "(default), the pairwise reference loop, or auto dispatch on "
        "population size",
    )
    netsim.add_argument(
        "--chunk",
        type=int,
        default=DEFAULT_CHUNK,
        help="slots materialized per time chunk",
    )
    netsim.add_argument(
        "--certify",
        type=int,
        default=0,
        metavar="K",
        help="also run both engines over the first K agents — clean AND "
        "under seeded fading/churn masks — and require bit-identical "
        "events (parity spot-check)",
    )
    netsim.add_argument(
        "--environment",
        type=_parse_environment_arg,
        default=None,
        metavar="SPEC",
        help="fault environment for the whole simulation, e.g. "
        "'pu-churn:rate=0.1,seed=7' or 'fading:p=0.05+sensing:p=0.1'",
    )
    netsim.add_argument(
        "--store-dir",
        default=None,
        help="optional schedule store: distinct period tables "
        "materialize once and attach as read-only memmaps",
    )
    netsim.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the summary as one JSON object instead of plain text",
    )
    _add_telemetry_arg(netsim)

    sweep = sub.add_parser(
        "sweep",
        help="batched pairwise TTR sweep over relative wake-up shifts",
    )
    sweep.add_argument(
        "--agents",
        type=_parse_agents,
        required=True,
        help="channel sets separated by '/', e.g. 1,2/2,3/3,4",
    )
    sweep.add_argument("--universe", type=int, required=True)
    sweep.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    sweep.add_argument("--horizon", type=int, default=1_000_000)
    sweep.add_argument("--dense", type=int, default=64)
    sweep.add_argument("--probes", type=int, default=64)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the pair fan-out; 0 means one per core",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        help="shared schedule store: period tables are materialized here "
        "once and attached (read-only memmaps) by every process",
    )
    sweep.add_argument(
        "--store-cap",
        type=int,
        default=None,
        help="byte cap on the schedule store's on-disk footprint "
        "(least-recently-attached tables are evicted first); "
        "requires --store-dir",
    )
    sweep.add_argument(
        "--read-root",
        action="append",
        default=None,
        dest="read_roots",
        metavar="DIR",
        help="extra schedule-store root(s) consulted read-only before "
        "building a table (repeatable); requires --store-dir",
    )
    sweep.add_argument(
        "--results-dir",
        default=None,
        help="persistent result cache: repeat sweeps answer pair "
        "measurements from disk instead of recomputing",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        default=None,
        help="snapshot streaming-sweep progress here so an interrupted "
        "sweep can resume; completed sweeps clean up after themselves",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume from checkpoints left in --checkpoint-dir by an "
        "interrupted run (without this flag stale checkpoints are "
        "discarded and the sweep starts fresh)",
    )
    sweep.add_argument(
        "--engine",
        choices=("auto", "batched", "stream"),
        default="auto",
        help="sweep engine: 'auto' dispatches on period size, 'stream' "
        "forces the tiled streaming engine (works at any period), "
        "'batched' forces the table engine (periods up to its limit)",
    )
    sweep.add_argument(
        "--tile-bytes",
        type=_parse_tile_bytes,
        default=None,
        metavar="auto|BYTES",
        help="byte budget per streaming (shift, time) tile: 'auto' "
        "(default) sizes tiles from the machine's L2/L3 caches, an "
        "explicit byte count pins it; results are invariant under "
        "the choice",
    )
    sweep.add_argument(
        "--stream-workers",
        type=_parse_stream_workers,
        default=0,
        help="thread lanes for the intra-pair streaming scan; 0 "
        "(default) budgets automatically — all cores when the pair "
        "fan-out is serial, one lane per pair when --workers already "
        "saturates the cores",
    )
    sweep.add_argument(
        "--backend",
        default="auto",
        metavar="SPEC",
        help="array backend executing the streaming tile ops: 'auto' "
        "(default; honours REPRO_BACKEND), 'numpy', a registered name, "
        "or a 'module.path:attr' entry point; every conforming backend "
        "is bit-identical",
    )
    sweep.add_argument(
        "--pair-major",
        choices=("auto", "on", "off"),
        default="auto",
        help="pair-major stacking: batch every uncached pair of a "
        "serial sweep into one streaming tile pass ('auto' stacks "
        "whenever the streaming engine is reachable and no checkpoint "
        "directory is set; 'on' requires that configuration; 'off' "
        "keeps the per-pair loop); results are bit-identical",
    )
    sweep.add_argument(
        "--environment",
        type=_parse_environment_arg,
        default=None,
        metavar="SPEC",
        help="fault environment applied to every sweep, e.g. "
        "'pu-churn:rate=0.1,seed=7' or 'fading:p=0.05+sensing:p=0.1'; "
        "misses stop failing the sweep and are reported per pair",
    )
    sweep.add_argument(
        "--degradation",
        type=int,
        default=None,
        metavar="BOUND",
        help="degradation-report mode: instead of the TTR table, emit "
        "one JSON report per pair of which exhaustive shift classes "
        "keep the BOUND-slot guarantee under --environment, with the "
        "TTR inflation distribution",
    )
    _add_telemetry_arg(sweep)

    serve = sub.add_parser(
        "serve",
        help="answer one pair's worst-TTR query from the result cache, "
        "computing and storing on a miss",
    )
    serve.add_argument("--a", type=_parse_channels, required=True)
    serve.add_argument("--b", type=_parse_channels, required=True)
    serve.add_argument("--universe", type=int, required=True)
    serve.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    serve.add_argument("--horizon", type=int, default=1_000_000)
    serve.add_argument("--dense", type=int, default=64)
    serve.add_argument("--probes", type=int, default=64)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--results-dir",
        required=True,
        help="result-cache directory (created if missing); repeat "
        "queries under the same directory are served from disk",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        help="optional schedule store backing cold computes",
    )
    serve.add_argument(
        "--read-root",
        action="append",
        default=None,
        dest="read_roots",
        metavar="DIR",
        help="extra schedule-store root(s) consulted read-only "
        "(repeatable); requires --store-dir",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the answer as one JSON object instead of plain text",
    )
    _add_telemetry_arg(serve)

    store = sub.add_parser(
        "store",
        help="manage a shared schedule store (prewarm / inspect / evict)",
    )
    store_sub = store.add_subparsers(dest="action", required=True)

    prewarm = store_sub.add_parser(
        "prewarm", help="materialize period tables ahead of a sweep"
    )
    prewarm.add_argument(
        "--agents",
        type=_parse_agents,
        required=True,
        help="channel sets separated by '/', e.g. 1,2/2,3/3,4",
    )
    prewarm.add_argument("--universe", type=int, required=True)
    prewarm.add_argument("--algorithm", choices=_ALGORITHMS, default="paper")
    prewarm.add_argument("--store-dir", required=True)

    inspect = store_sub.add_parser("inspect", help="list stored period tables")
    inspect.add_argument("--store-dir", required=True)

    evict = store_sub.add_parser("evict", help="drop stored period tables")
    evict.add_argument("--store-dir", required=True)
    group = evict.add_mutually_exclusive_group(required=True)
    group.add_argument("--digest", action="append", help="digest(s) to drop")
    group.add_argument("--all", action="store_true", help="drop every entry")

    walk = sub.add_parser("walk", help="ASCII walk plot of a bit string")
    walk.add_argument("--bits", required=True)

    return parser


def _cmd_schedule(args: argparse.Namespace) -> int:
    sched = repro.build_schedule(args.channels, args.universe, args.algorithm)
    slots = [sched.channel_at(t) for t in range(args.slots)]
    print(f"algorithm: {args.algorithm}")
    print(f"channels:  {sorted(set(args.channels))}")
    print(f"period:    {sched.period}")
    print("slots:     " + " ".join(str(c) for c in slots))
    return 0


def _cmd_rendezvous(args: argparse.Namespace) -> int:
    a = repro.build_schedule(args.a, args.universe, args.algorithm)
    b = repro.build_schedule(args.b, args.universe, args.algorithm)
    common = sorted(a.channels & b.channels)
    print(f"common channels: {common or 'none'}")
    ttr = ttr_for_shift(a, b, args.shift, args.horizon)
    if ttr is None:
        print(f"no rendezvous within {args.horizon} slots")
        return 1
    print(f"TTR at shift {args.shift}: {ttr} slots")
    if args.algorithm == "paper":
        analytic = bounds.theorem3_async_bound(
            len(a.channels), len(b.channels), args.universe
        )
        print(f"analytic bound: {analytic} slots")
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    k, l, n = args.k, args.l, args.universe
    rows = [
        ["paper (Thm 3, async)", bounds.theorem3_async_bound(k, l, n)],
        ["paper (Thm 3, sync)", bounds.theorem3_sync_bound(k, l, n)],
        ["paper symmetric (3.2)", bounds.symmetric_wrapper_bound()],
        ["crseq envelope", bounds.crseq_bound(n)],
        ["jump-stay envelope", bounds.jump_stay_bound(n)],
        ["drds envelope", bounds.drds_bound(n)],
        ["random, expected", f"{bounds.randomized_expected_ttr(k, l):.0f}"],
    ]
    print(format_table(["guarantee", "slots"], rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    agents = [
        Agent(
            f"agent{i}",
            repro.build_schedule(channels, args.universe, args.algorithm),
            wake_time=args.wake_stagger * i,
        )
        for i, channels in enumerate(args.agents)
    ]
    result = Network(agents).run(args.horizon)
    rows = [
        [f"{pair[0]}-{pair[1]}", event.time, event.channel, event.ttr]
        for pair, event in sorted(result.events.items())
    ]
    print(format_table(["pair", "slot", "channel", "TTR"], rows))
    unmet = result.unmet_pairs()
    if unmet:
        print(f"\nunmet overlapping pairs: {unmet}")
        return 1
    print(f"\nall overlapping pairs met by slot {result.discovery_time()}")
    return 0


def _netsim_population(args: argparse.Namespace) -> list[Agent]:
    """Build the seeded agent population for one ``netsim`` invocation.

    One schedule is built per *distinct* channel set and shared across
    the agents drawing it (through the store when ``--store-dir`` is
    given), so the vectorized core's cohort grouping pays for each
    period table exactly once.  Wake and departure slots come from one
    seeded RNG, making the whole population a pure function of the
    arguments.
    """
    if args.agents < 1:
        raise ValueError(f"need at least one agent, got {args.agents}")
    if args.churn_window < 1:
        raise ValueError(
            f"churn window must be positive, got {args.churn_window}"
        )
    if args.workload == "random_subsets":
        instance = _workloads.random_subsets(
            args.universe, args.k, args.agents, seed=args.seed
        )
    elif args.workload == "symmetric":
        instance = _workloads.symmetric(
            args.universe, args.k, args.agents, seed=args.seed
        )
    elif args.workload == "available_overlap":
        instance = _workloads.available_overlap(
            args.universe, args.k, args.agents, args.rho, seed=args.seed
        )
    elif args.workload == "adversarial_single_common":
        instance = _workloads.adversarial_single_common(
            args.universe, args.k, args.agents, seed=args.seed
        )
    else:
        instance = _workloads.whitespace(
            args.universe, args.agents, seed=args.seed
        )
    store = None if args.store_dir is None else ScheduleStore(args.store_dir)
    schedules: dict[frozenset[int], object] = {}
    rng = random.Random(args.seed)
    agents = []
    for i, channels in enumerate(instance.sets):
        schedule = schedules.get(channels)
        if schedule is None:
            schedule = repro.build_schedule(
                channels, args.universe, args.algorithm, store=store
            )
            schedules[channels] = schedule
        wake = rng.randrange(args.wake_spread) if args.wake_spread > 0 else 0
        leave = None
        if args.churn > 0 and rng.random() < args.churn:
            leave = wake + 1 + rng.randrange(args.churn_window)
        agents.append(Agent(f"agent{i}", schedule, wake, leave))
    return agents


def _cmd_netsim(args: argparse.Namespace) -> int:
    try:
        agents = _netsim_population(args)
        network = Network(agents)
        engine = network.resolve_engine(args.engine)
        contention: list[dict[str, int]] = []
        start = time.perf_counter()
        if engine == "vectorized":
            population = Population.from_agents(agents)
            net = simulate_population(
                population,
                args.horizon,
                chunk=args.chunk,
                environment=args.environment,
            )
            profile = net.discovery_profile()
            cohorts = population.num_cohorts
            distinct = len(population.schedules)
            slots = net.slots_simulated
            contention = channel_contention(net, top=3)
        else:
            result = network.run(
                args.horizon,
                chunk=args.chunk,
                engine=engine,
                environment=args.environment,
            )
            profile = result.discovery_profile()
            cohorts = distinct = None
            slots = args.horizon
        seconds = time.perf_counter() - start
        stats = summarize_discovery(profile)
        parity = None
        if args.certify > 0:
            # Certification must cover the masked paths too: a fault
            # mask rides a different branch of both engines, so clean
            # parity alone would leave it uncertified.
            sample = Network(agents[: args.certify])
            probes = [
                ("clean", None),
                ("fading", FadingMisses(0.2, seed=args.seed)),
                ("pu-churn", PrimaryUserChurn(0.3, seed=args.seed, dwell=64)),
            ]
            if args.environment is not None:
                probes.append(("requested", args.environment))
            checks: dict[str, bool] = {}
            events = 0
            for label, probe_env in probes:
                reference = sample.run(
                    args.horizon,
                    chunk=args.chunk,
                    engine="pairwise",
                    environment=probe_env,
                )
                candidate = sample.run(
                    args.horizon,
                    chunk=args.chunk,
                    engine="vectorized",
                    environment=probe_env,
                )
                checks[label] = candidate.events == reference.events
                if label == "clean":
                    events = len(reference.events)
            parity = {
                "agents": len(sample.agents),
                "events": events,
                "identical": all(checks.values()),
                "checks": checks,
            }
    except ValueError as exc:
        print(f"netsim failed: {exc}")
        return 1
    coverage = (
        100.0 * stats.met_pairs / stats.overlapping_pairs
        if stats.overlapping_pairs
        else 100.0
    )
    if args.as_json:
        print(
            json.dumps(
                {
                    "workload": args.workload,
                    "universe": args.universe,
                    "algorithm": args.algorithm,
                    "seed": args.seed,
                    "engine": engine,
                    "environment": environment_digest(args.environment) or None,
                    "agents": len(agents),
                    "cohorts": cohorts,
                    "distinct_schedules": distinct,
                    "overlapping_pairs": stats.overlapping_pairs,
                    "met_pairs": stats.met_pairs,
                    "discovery_time": stats.discovery_time,
                    "milestones": {
                        f"{q:g}": slot for q, slot in stats.milestones.items()
                    },
                    "slots_simulated": slots,
                    "horizon": args.horizon,
                    "contention": contention,
                    "parity": parity,
                    "seconds": round(seconds, 4),
                },
                sort_keys=True,
            )
        )
    else:
        print(f"workload:  {args.workload} (universe {args.universe}, seed {args.seed})")
        line = f"agents:    {len(agents)}"
        if cohorts is not None:
            line += f" ({cohorts} cohorts, {distinct} distinct schedules)"
        print(line)
        print(f"algorithm: {args.algorithm}")
        print(f"engine:    {engine}")
        if args.environment is not None:
            print(f"environment: {environment_digest(args.environment)}")
        print(
            f"overlapping pairs: {stats.overlapping_pairs} "
            f"({stats.met_pairs} met, {coverage:.1f}%)"
        )
        if stats.discovery_time is not None:
            print(f"full discovery: slot {stats.discovery_time}")
        else:
            print(f"full discovery: not reached within {args.horizon} slots")
        milestones = " | ".join(
            f"{q:.0%} @ {'-' if slot is None else slot}"
            for q, slot in stats.milestones.items()
            if q < 1.0
        )
        print(f"milestones: {milestones}")
        print(f"slots simulated: {slots} / {args.horizon}")
        for row in contention:
            print(
                f"channel {row['channel']}: {row['contended_slots']} "
                f"contended slots, {row['colocated_pairs']} co-located pairs"
            )
        if parity is not None:
            verdict = "bit-identical" if parity["identical"] else "MISMATCH"
            masked = ", ".join(
                label for label in parity["checks"] if label != "clean"
            )
            print(
                f"parity: {parity['agents']}-agent subsample {verdict} "
                f"across engines ({parity['events']} events; "
                f"clean + masked: {masked})"
            )
        print(f"wall time: {seconds:.2f} s")
    if parity is not None and not parity["identical"]:
        return 1
    return 0 if stats.discovery_time is not None else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.store_cap is not None and args.store_dir is None:
        print("sweep failed: --store-cap requires --store-dir")
        return 2
    if args.read_roots and args.store_dir is None:
        print("sweep failed: --read-root requires --store-dir")
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("sweep failed: --resume requires --checkpoint-dir")
        return 2
    if args.degradation is not None and args.environment is None:
        print("sweep failed: --degradation requires --environment")
        return 2
    if args.checkpoint_dir is not None and args.engine == "batched":
        print("sweep failed: --checkpoint-dir needs the streaming engine")
        return 2
    if args.pair_major == "on" and args.checkpoint_dir is not None:
        print("sweep failed: --pair-major on does not support --checkpoint-dir")
        return 2
    if args.pair_major == "on" and args.engine == "batched":
        print("sweep failed: --pair-major on needs the streaming engine")
        return 2
    store = None
    if args.store_dir is not None:
        store_kwargs = {"read_roots": args.read_roots or ()}
        if args.store_cap is not None:
            store_kwargs["memory_cap"] = args.store_cap
        store = ScheduleStore(args.store_dir, **store_kwargs)
    if args.checkpoint_dir is not None and not args.resume:
        # A fresh (non---resume) run must not silently adopt another
        # run's partial progress: discard whatever snapshots remain.
        for stale in Path(args.checkpoint_dir).glob("*.ckpt.json"):
            stale.unlink()
    pair_major = {"auto": "auto", "on": True, "off": False}[args.pair_major]
    try:
        runner = SweepRunner(
            workers=args.workers or None,
            store=store,
            engine=args.engine,
            tile_bytes=args.tile_bytes,
            stream_workers=args.stream_workers or None,
            results=args.results_dir,
            checkpoint_dir=args.checkpoint_dir,
            environment=args.environment,
            backend=args.backend,
            pair_major=pair_major,
        )
    except ValueError as exc:
        print(f"sweep failed: {exc}")
        return 2
    try:
        instance = Instance(
            args.universe, [frozenset(s) for s in args.agents], "cli"
        )
        if args.degradation is not None:
            return _sweep_degradation(args, runner, instance)
        measured = runner.measure_instance(
            instance,
            args.algorithm,
            args.horizon,
            dense=args.dense,
            probes=args.probes,
        )
    except (AssertionError, ValueError) as exc:
        print(f"sweep failed: {exc}")
        return 1
    faulted = args.environment is not None
    rows = [
        [
            f"{m.pair[0]}-{m.pair[1]}",
            m.worst_ttr,
            round(m.stats.mean, 2),
            round(m.stats.p95, 2),
            m.stats.count,
        ]
        + ([m.missed] if faulted else [])
        for m in measured
    ]
    print(f"algorithm: {args.algorithm}")
    if args.engine != "auto":
        print(f"engine:    {args.engine}")
    if faulted:
        print(f"environment: {environment_digest(args.environment)}")
    if args.stream_workers:
        print(f"stream workers: {args.stream_workers} per pair")
    if args.tile_bytes is not None:
        print(f"tile bytes: {args.tile_bytes}")
    if args.backend != "auto":
        print(f"backend:   {args.backend}")
    if args.pair_major != "auto":
        print(f"pair-major: {args.pair_major}")
    header = ["pair", "worst TTR", "mean", "p95", "shifts"]
    if faulted:
        header.append("missed")
    print(format_table(header, rows))
    missed = runner.cache_misses
    reused = runner.cache_hits
    # Pool workers keep their own caches, so parent-side stats only
    # describe serial runs (with a store, misses are attaches or
    # builds — the store line below splits them).
    cache_note = (
        f"{missed} cache misses, {reused} cache hits, "
        if missed + reused
        else ""
    )
    used = runner.effective_workers(len(measured))
    print(
        f"\n{len(measured)} overlapping pairs swept "
        f"({cache_note}"
        f"{used} worker{'s' if used != 1 else ''})"
    )
    if runner.store is not None:
        s = runner.store.stats()
        print(
            f"store {runner.store.store_dir}: {s['builds']} built, "
            f"{s['attaches']} attached, {s['entries']} entries "
            f"({s['total_bytes'] / 1024:.0f} KiB)"
        )
    if runner.results is not None:
        print(_result_cache_line(runner.results))
    return 0


def _sweep_degradation(
    args: argparse.Namespace, runner: SweepRunner, instance: Instance
) -> int:
    """Emit one JSON degradation report per overlapping pair.

    Shift classes are exhaustive (the sweep engines' full guarantee
    range per pair), so the survival fraction is exact, not sampled;
    the report is bit-identical whichever engine computes it.
    """
    reports = []
    for i, j in instance.overlapping_pairs():
        a = runner.schedule_for(instance.sets[i], instance.n, args.algorithm, i)
        b = runner.schedule_for(instance.sets[j], instance.n, args.algorithm, j)
        report = degradation_report(
            a,
            b,
            args.degradation,
            args.environment,
            engine=args.engine,
            tile_bytes=args.tile_bytes,
            stream_workers=args.stream_workers or None,
        )
        row = report.to_dict()
        row["pair"] = [i, j]
        reports.append(row)
    print(
        json.dumps(
            {
                "mode": "degradation",
                "algorithm": args.algorithm,
                "bound": args.degradation,
                "environment": args.environment.spec(),
                "environment_digest": environment_digest(args.environment),
                "pairs": reports,
            },
            sort_keys=True,
        )
    )
    return 0 if all(row["ok"] for row in reports) else 1


def _result_cache_line(results: ResultStore) -> str:
    """One-line counter summary of a result cache, shared by handlers."""
    r = results.stats()
    return (
        f"result cache {results.store_dir}: {r['hits']} hits, "
        f"{r['misses']} misses, {r['writes']} writes, "
        f"{r['entries']} entries ({r['total_bytes'] / 1024:.1f} KiB)"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.read_roots and args.store_dir is None:
        print("serve failed: --read-root requires --store-dir")
        return 2
    results = ResultStore(args.results_dir)
    store = None
    if args.store_dir is not None:
        store = ScheduleStore(args.store_dir, read_roots=args.read_roots or ())
    runner = SweepRunner(workers=1, store=store, results=results)
    instance = Instance(
        args.universe, [frozenset(args.a), frozenset(args.b)], "serve"
    )
    hits_before = results.hits
    request_start = time.perf_counter()
    try:
        measured = runner.measure_pair(
            instance,
            args.algorithm,
            (0, 1),
            args.horizon,
            dense=args.dense,
            probes=args.probes,
            seed=args.seed,
        )
    except (AssertionError, ValueError) as exc:
        print(f"serve failed: {exc}")
        return 1
    latency = time.perf_counter() - request_start
    source = "cache hit" if results.hits > hits_before else "computed"
    query = runner.pair_query_for(
        instance, args.algorithm, (0, 1), args.horizon,
        dense=args.dense, probes=args.probes, seed=args.seed,
    )
    if args.as_json:
        print(
            json.dumps(
                {
                    "digest": result_digest(query),
                    "query": query,
                    "worst_ttr": measured.worst_ttr,
                    "stats": {
                        "count": measured.stats.count,
                        "mean": measured.stats.mean,
                        "median": measured.stats.median,
                        "p95": measured.stats.p95,
                        "maximum": measured.stats.maximum,
                        "minimum": measured.stats.minimum,
                    },
                    "source": source,
                    "latency_seconds": round(latency, 6),
                    "cache": results.stats(),
                },
                sort_keys=True,
            )
        )
        return 0
    common = sorted(frozenset(args.a) & frozenset(args.b))
    print(f"algorithm: {args.algorithm}")
    print(f"common channels: {common}")
    print(f"worst TTR: {measured.worst_ttr} slots (source: {source})")
    print(f"latency: {latency * 1000:.1f} ms")
    print(
        f"mean {measured.stats.mean:.2f}, p95 {measured.stats.p95:.2f} "
        f"over {measured.stats.count} shifts"
    )
    print(_result_cache_line(results))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ScheduleStore(args.store_dir)
    if args.action == "prewarm":
        # Reuse the runner's prewarm so the per-agent seeding is the
        # same one `sweep` uses — a prewarmed store is hit, never
        # rebuilt, by the sweep that follows.  Every agent is warmed,
        # overlapping or not.
        runner = SweepRunner(workers=1, store=store)
        try:
            instance = Instance(
                args.universe, [frozenset(s) for s in args.agents], "cli"
            )
            runner.prewarm(
                instance,
                args.algorithm,
                agents=list(range(instance.num_agents)),
            )
        except (AssertionError, ValueError) as exc:
            print(f"prewarm failed: {exc}")
            return 1
        for i, channels in enumerate(args.agents):
            schedule = runner.schedule_for(
                frozenset(channels), args.universe, args.algorithm, i
            )
            print(
                f"agent{i} {sorted(set(channels))}: period {schedule.period}"
            )
        s = store.stats()
        print(
            f"\nstore {store.store_dir}: {s['builds']} built, "
            f"{s['attaches']} already present, {s['bypasses']} bypassed "
            f"(too large), {s['entries']} entries "
            f"({s['total_bytes'] / 1024:.0f} KiB)"
        )
        return 0
    if args.action == "inspect":
        entries = store.entries()
        rows = [
            [
                m["digest"],
                m["algorithm"],
                m["n"],
                len(m["channels"]),
                m["period"],
                f"{m['nbytes'] / 1024:.0f}",
            ]
            for m in entries
        ]
        print(format_table(
            ["digest", "algorithm", "n", "|S|", "period", "KiB"], rows
        ))
        print(
            f"\n{len(entries)} entries, "
            f"{store.total_bytes() / 1024:.0f} KiB total"
        )
        return 0
    if args.all:
        print(f"evicted {store.clear()} entries")
        return 0
    missing = [d for d in args.digest if not store.evict(d)]
    for digest in missing:
        print(f"no such entry: {digest}")
    print(f"evicted {len(args.digest) - len(missing)} entries")
    return 1 if missing else 0


def _cmd_walk(args: argparse.Namespace) -> int:
    print(walk_plot(args.bits))
    return 0


_HANDLERS = {
    "schedule": _cmd_schedule,
    "rendezvous": _cmd_rendezvous,
    "bound": _cmd_bound,
    "simulate": _cmd_simulate,
    "netsim": _cmd_netsim,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "walk": _cmd_walk,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and dispatch to the subcommand handler.

    When the subcommand accepts ``--telemetry`` and it was given, the
    process telemetry registry is enabled around the handler and the
    phase tree is printed after the command's own output — as
    human-readable text or as one JSON object on the final stdout line
    (see :func:`repro.core.telemetry.format_tree`).  The registry is
    reset first and disabled after, so back-to-back ``main`` calls in
    one process never bleed telemetry into each other.
    """
    args = build_parser().parse_args(argv)
    mode = getattr(args, "telemetry", None)
    if mode is None:
        return _HANDLERS[args.command](args)
    telemetry.reset()
    telemetry.enable()
    wall_start = time.perf_counter()
    try:
        code = _HANDLERS[args.command](args)
    finally:
        wall = time.perf_counter() - wall_start
        snapshot = telemetry.snapshot()
        telemetry.disable()
        telemetry.reset()
        if mode == "json":
            print(
                json.dumps(
                    {"telemetry": snapshot, "wall_seconds": round(wall, 4)},
                    sort_keys=True,
                )
            )
        else:
            print(telemetry.format_tree(snapshot, wall_seconds=wall))
    return code


if __name__ == "__main__":
    raise SystemExit(main())
