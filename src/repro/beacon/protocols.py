"""The two beacon rendezvous protocols of Section 5.

Both protocols derive, from the common beacon stream, a min-wise
permutation ``pi_t`` for each slot and hop on
``argmin_{a in S_i} pi_t(a)``.  Two agents meet in any slot where the
global argmin of ``pi_t`` over ``S_i ∪ S_j`` lies in the intersection —
probability ``>= 1 / (2(|S_i| + |S_j|))`` per fresh permutation for an
ε=1/2 min-wise family (paper equation (8)).

* :class:`SimpleBeaconProtocol` — a fresh permutation every
  ``d log n`` slots (each from ``d log n`` fresh beacon bits), giving
  w.h.p. rendezvous in ``O((|S_i| + |S_j|) log^2 n)`` slots when bits
  arrive one per slot (the paper counts *bits*:
  ``O((|S_i|+|S_j|) log n)`` bits).
* :class:`AmplifiedBeaconProtocol` — deterministic amplification: the
  first ``d log n`` bits choose a start vertex of an MGG expander whose
  vertices seed permutations; every subsequent 3 bits take one walk step
  and yield a *new* permutation.  Bit cost drops to
  ``O(|S_i| + |S_j| + log n)``.

Important model point: the beacon is *ambient global* randomness, so the
protocols are functions of global time — asynchronous wake-ups do not
shift them relative to each other.  Rendezvous is therefore measured from
the later wake-up with both agents following the same ``pi_t`` sequence
(:func:`beacon_first_meeting`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.beacon.expander import MGGExpander
from repro.beacon.minwise import (
    DEFAULT_DEGREE,
    MinwisePermutation,
    field_prime,
    permutation_from_word,
    seed_bits_needed,
)
from repro.beacon.source import BeaconSource

__all__ = [
    "SimpleBeaconProtocol",
    "AmplifiedBeaconProtocol",
    "beacon_first_meeting",
]


def _normalize_channels(channels: Iterable[int], n: int) -> tuple[int, ...]:
    ordered = sorted(set(int(c) for c in channels))
    if not ordered:
        raise ValueError("channel set must be nonempty")
    if ordered[0] < 0 or ordered[-1] >= n:
        raise ValueError(f"channels {ordered} outside universe [0, {n})")
    return tuple(ordered)


class SimpleBeaconProtocol:
    """Fresh permutation per window of ``seed_bits_needed(n)`` slots."""

    def __init__(
        self,
        channels: Iterable[int],
        n: int,
        beacon: BeaconSource,
        degree: int = DEFAULT_DEGREE,
    ):
        self.sorted_channels = _normalize_channels(channels, n)
        self.channels = frozenset(self.sorted_channels)
        self.n = n
        self.beacon = beacon
        self.degree = degree
        self.window = seed_bits_needed(n, degree)
        self._cache: dict[int, MinwisePermutation] = {}

    def _permutation(self, window_index: int) -> MinwisePermutation:
        cached = self._cache.get(window_index)
        if cached is None:
            word = self.beacon.word(window_index * self.window, self.window)
            cached = permutation_from_word(word, self.n, self.degree)
            self._cache[window_index] = cached
        return cached

    def channel_at_global(self, t: int) -> int:
        """Hop at global slot ``t``: argmin under the window's permutation.

        Window 0 (no full window of bits observed yet) falls back to the
        smallest channel — a deterministic warm-up of ``window`` slots.
        """
        if t < 0:
            raise ValueError(f"slot must be nonnegative, got {t}")
        window_index = t // self.window
        if window_index == 0:
            return self.sorted_channels[0]
        # Use the *previous* complete window of bits: causal.
        return self._permutation(window_index - 1).argmin(self.sorted_channels)


class AmplifiedBeaconProtocol:
    """Expander-walk amplification: a new permutation every 3 bits."""

    BITS_PER_STEP = 3

    def __init__(
        self,
        channels: Iterable[int],
        n: int,
        beacon: BeaconSource,
        degree: int = DEFAULT_DEGREE,
    ):
        self.sorted_channels = _normalize_channels(channels, n)
        self.channels = frozenset(self.sorted_channels)
        self.n = n
        self.beacon = beacon
        self.degree = degree
        self.burn_in = seed_bits_needed(n, degree)
        # Vertex space ~ squares of the permutation field: each vertex
        # coordinate pair seeds a permutation via mixing.
        side = max(2, field_prime(n))
        self.graph = MGGExpander(side)
        self._vertex_cache: dict[int, int] = {}
        self._perm_cache: dict[int, MinwisePermutation] = {}

    def _start_vertex(self) -> int:
        word = self.beacon.word(0, self.burn_in)
        return word % self.graph.num_vertices

    def _vertex(self, step: int) -> int:
        """Walk position after ``step`` expander steps (cached prefix)."""
        if step == 0:
            return self._start_vertex()
        cached = self._vertex_cache.get(step)
        if cached is None:
            previous = self._vertex(step - 1)
            offset = self.burn_in + (step - 1) * self.BITS_PER_STEP
            direction = self.beacon.word(offset, self.BITS_PER_STEP)
            cached = self.graph.neighbor(previous, direction)
            self._vertex_cache[step] = cached
        return cached

    def _permutation(self, step: int) -> MinwisePermutation:
        cached = self._perm_cache.get(step)
        if cached is None:
            x, y = self.graph.coordinates(self._vertex(step))
            # Mix the vertex coordinates into polynomial coefficients.
            word = 0
            width = max(field_prime(self.n).bit_length(), 1)
            state = (x * self.graph.m + y) or 1
            for i in range(self.degree):
                state = (state * 6364136223846793005 + 1442695040888963407) % (
                    1 << 64
                )
                word |= (state >> 32 & ((1 << width) - 1)) << (i * width)
            cached = permutation_from_word(word, self.n, self.degree)
            self._perm_cache[step] = cached
        return cached

    def channel_at_global(self, t: int) -> int:
        """Hop at global slot ``t``; warm-up of ``burn_in`` slots."""
        if t < 0:
            raise ValueError(f"slot must be nonnegative, got {t}")
        if t < self.burn_in:
            return self.sorted_channels[0]
        step = (t - self.burn_in) // self.BITS_PER_STEP
        return self._permutation(step).argmin(self.sorted_channels)


def beacon_first_meeting(
    a: SimpleBeaconProtocol | AmplifiedBeaconProtocol,
    b: SimpleBeaconProtocol | AmplifiedBeaconProtocol,
    wake_a: int,
    wake_b: int,
    horizon: int,
) -> int | None:
    """Slots from the later wake-up until the first common hop.

    Both protocols are keyed to global time (ambient beacon), so the
    relative wake-up offset only changes *when* they are both listening.
    """
    start = max(wake_a, wake_b)
    for t in range(start, start + horizon):
        if a.channel_at_global(t) == b.channel_at_global(t):
            return t - start
    return None
