"""Approximately min-wise independent permutations (paper Definition 1).

The beacon protocol needs a family ``R ⊂ S_n`` such that for every subset
``A`` and every ``a in A``,

    Pr[pi(a) = min pi(A)] >= (1 - eps) / |A|.

The paper cites Indyk's construction; Indyk's own route is that k-wise
independent hash families with ``k = O(log 1/eps)`` are ε-min-wise.  We
implement that route directly (see docs/ARCHITECTURE.md, deviations): a
degree-``k-1`` polynomial over a prime field ``Z_p`` with ``p >= n``,
with ties broken by channel id to obtain a total order.  ``eps = 1/2``
per the paper, for which a small constant degree suffices; the test-suite
estimates the min-wise property statistically.

Seeds come from beacon bits: ``seed_bits_needed`` bits make one
permutation, matching the paper's "d log n bits" accounting.
"""

from __future__ import annotations

from repro.core.primes import smallest_prime_at_least

__all__ = [
    "MinwisePermutation",
    "field_prime",
    "seed_bits_needed",
    "permutation_from_word",
    "DEFAULT_DEGREE",
]

#: Polynomial degree = number of coefficients; k-wise independence with
#: k = 8 comfortably exceeds the O(log 1/eps) needed for eps = 1/2.
DEFAULT_DEGREE = 8


def field_prime(n: int) -> int:
    """Field size: the smallest prime ``p >= max(n, 2)``."""
    return smallest_prime_at_least(max(n, 2))


def seed_bits_needed(n: int, degree: int = DEFAULT_DEGREE) -> int:
    """Beacon bits consumed per permutation (``degree`` field elements)."""
    return degree * max(field_prime(n).bit_length(), 1)


class MinwisePermutation:
    """One member of the family: rank channels by a polynomial hash.

    The *rank* of channel ``x`` is ``(poly(x) mod p, x)`` — the second
    component is a deterministic tie-break making ranks distinct, so the
    family is a set of genuine permutations of ``[0, n)``.
    """

    def __init__(self, coefficients: tuple[int, ...], n: int):
        if not coefficients:
            raise ValueError("need at least one coefficient")
        self.n = n
        self.p = field_prime(n)
        self.coefficients = tuple(c % self.p for c in coefficients)

    def rank(self, x: int) -> tuple[int, int]:
        """Total-order rank of channel ``x`` (lower = earlier)."""
        if not 0 <= x < self.n:
            raise ValueError(f"channel {x} outside universe [0, {self.n})")
        value = 0
        for c in reversed(self.coefficients):
            value = (value * x + c) % self.p
        return (value, x)

    def argmin(self, channels) -> int:
        """The channel of ``channels`` ranked first — the slot's hop."""
        return min(channels, key=self.rank)


def permutation_from_word(word: int, n: int, degree: int = DEFAULT_DEGREE) -> MinwisePermutation:
    """Build a permutation from ``seed_bits_needed`` packed beacon bits."""
    width = max(field_prime(n).bit_length(), 1)
    coefficients = []
    for i in range(degree):
        chunk = (word >> (i * width)) & ((1 << width) - 1)
        coefficients.append(chunk)
    return MinwisePermutation(tuple(coefficients), n)
