"""Rendezvous with a one-bit beacon (paper Section 5).

Substrates: a deterministic beacon-bit source, an ε-min-wise permutation
family via k-wise polynomial hashing, and the Gabber-Galil expander for
deterministic amplification; protocols: the simple
``O((s_i + s_j) log n)``-bit scheme and the amplified
``O(s_i + s_j + log n)``-bit scheme.
"""

from repro.beacon.expander import MGGExpander
from repro.beacon.minwise import (
    DEFAULT_DEGREE,
    MinwisePermutation,
    field_prime,
    permutation_from_word,
    seed_bits_needed,
)
from repro.beacon.protocols import (
    AmplifiedBeaconProtocol,
    SimpleBeaconProtocol,
    beacon_first_meeting,
)
from repro.beacon.source import BeaconSource

__all__ = [
    "BeaconSource",
    "MinwisePermutation",
    "permutation_from_word",
    "field_prime",
    "seed_bits_needed",
    "DEFAULT_DEGREE",
    "MGGExpander",
    "SimpleBeaconProtocol",
    "AmplifiedBeaconProtocol",
    "beacon_first_meeting",
]
