"""Empirical analysis of the Section 5 amplification argument.

The amplified protocol's correctness rests on the expander Chernoff
bound: the fraction of walk steps landing in any fixed "good" vertex set
concentrates around the set's density, almost as if the steps were
independent.  This module measures exactly that — hit fractions of walk
sequences versus i.i.d. sampling — so the substitution "walking on an
expander ~ fresh randomness" is *checked*, not assumed.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.beacon.expander import MGGExpander

__all__ = ["HitStatistics", "walk_hit_fraction", "iid_hit_fraction", "compare_hitting"]


@dataclass(frozen=True)
class HitStatistics:
    """Hit fractions of walk vs i.i.d. vertex sampling."""

    set_density: float
    walk_fraction: float
    iid_fraction: float

    @property
    def walk_error(self) -> float:
        return abs(self.walk_fraction - self.set_density)

    @property
    def iid_error(self) -> float:
        return abs(self.iid_fraction - self.set_density)


def walk_hit_fraction(
    graph: MGGExpander,
    good: Callable[[int], bool],
    steps: int,
    seed: int = 0,
) -> float:
    """Fraction of walk positions in the good set over ``steps`` steps."""
    if steps < 1:
        raise ValueError("need at least one step")
    rng = random.Random(seed)
    v = rng.randrange(graph.num_vertices)
    hits = 0
    for _ in range(steps):
        v = graph.neighbor(v, rng.randrange(graph.DEGREE))
        if good(v):
            hits += 1
    return hits / steps


def iid_hit_fraction(
    graph: MGGExpander,
    good: Callable[[int], bool],
    samples: int,
    seed: int = 0,
) -> float:
    """Fraction of independent uniform vertices in the good set."""
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = random.Random(seed)
    hits = sum(
        1 for _ in range(samples) if good(rng.randrange(graph.num_vertices))
    )
    return hits / samples


def compare_hitting(
    side: int,
    density: float,
    steps: int,
    seed: int = 0,
) -> HitStatistics:
    """Walk-vs-iid hit fractions for a pseudo-random set of given density.

    The good set is chosen by hashing vertex ids (so it is "generic"
    rather than structured along the torus axes).
    """
    if not 0 < density < 1:
        raise ValueError("density must be in (0, 1)")
    graph = MGGExpander(side)
    threshold = int(density * (1 << 30))

    def good(v: int) -> bool:
        x = (v * 0x9E3779B1 + 0x7F4A7C15) & 0xFFFFFFFF
        x ^= x >> 16
        return (x * 0x85EBCA6B & 0xFFFFFFFF) >> 2 < threshold

    actual_density = sum(1 for v in range(graph.num_vertices) if good(v)) / (
        graph.num_vertices
    )
    return HitStatistics(
        set_density=actual_density,
        walk_fraction=walk_hit_fraction(graph, good, steps, seed=seed),
        iid_fraction=iid_hit_fraction(graph, good, steps, seed=seed + 1),
    )
