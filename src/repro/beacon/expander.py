"""Margulis-Gabber-Galil expander and walks (paper Section 5).

The amplified beacon protocol "walks on an expander" to stretch
``O(log n)`` seed bits into a long sequence of permutation seeds whose
hitting behaviour matches independent draws up to constants (the expander
Chernoff bound).  The paper leaves the graph unspecified; we use the
explicit degree-8 Gabber-Galil graph on ``Z_m x Z_m``:

    (x, y) ->  (x ± 2y, y), (x ± (2y+1), y), (x, y ± 2x), (x, y ± (2x+1))

which has a proven constant spectral gap for every ``m``.  Each walk step
consumes 3 beacon bits (choice of one of 8 moves).  The tests estimate
the gap numerically for small ``m``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MGGExpander"]


class MGGExpander:
    """Degree-8 Gabber-Galil expander on the torus ``Z_m x Z_m``."""

    DEGREE = 8

    def __init__(self, m: int):
        if m < 2:
            raise ValueError(f"side length must be >= 2, got {m}")
        self.m = m
        self.num_vertices = m * m

    def vertex(self, x: int, y: int) -> int:
        return (x % self.m) * self.m + (y % self.m)

    def coordinates(self, v: int) -> tuple[int, int]:
        if not 0 <= v < self.num_vertices:
            raise ValueError(f"vertex {v} out of range")
        return divmod(v, self.m)

    def neighbor(self, v: int, direction: int) -> int:
        """The ``direction``-th neighbor (``0 <= direction < 8``)."""
        if not 0 <= direction < self.DEGREE:
            raise ValueError(f"direction {direction} out of range [0, 8)")
        x, y = self.coordinates(v)
        if direction == 0:
            x += 2 * y
        elif direction == 1:
            x -= 2 * y
        elif direction == 2:
            x += 2 * y + 1
        elif direction == 3:
            x -= 2 * y + 1
        elif direction == 4:
            y += 2 * x
        elif direction == 5:
            y -= 2 * x
        elif direction == 6:
            y += 2 * x + 1
        else:
            y -= 2 * x + 1
        return self.vertex(x, y)

    def walk(self, start: int, directions: list[int]) -> int:
        """Follow a sequence of directions from ``start``."""
        v = start
        for d in directions:
            v = self.neighbor(v, d)
        return v

    def adjacency_matrix(self) -> np.ndarray:
        """Dense (multi-)adjacency matrix — for spectral tests only."""
        a = np.zeros((self.num_vertices, self.num_vertices))
        for v in range(self.num_vertices):
            for d in range(self.DEGREE):
                a[v, self.neighbor(v, d)] += 1
        return a

    def second_eigenvalue(self) -> float:
        """``lambda_2 / d`` of the walk matrix (normalized); < 1 iff
        the graph is connected and expanding.  O(V^3) — small ``m`` only."""
        a = self.adjacency_matrix()
        walk = (a + a.T) / (2 * self.DEGREE)
        eigenvalues = np.linalg.eigvalsh(walk)
        return float(np.sort(np.abs(eigenvalues))[-2])
