"""The common one-bit random beacon (paper Section 5).

The model supplies every agent with the *same* uniformly random bit
``c_t`` in every slot ``t`` (think GPS-derived randomness).  We simulate
it with a stateless 64-bit mixer (splitmix64 finalizer): random access to
``bit(t)`` without storing a tape, deterministic per seed, and identical
for all agents — exactly the shared-beacon abstraction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BeaconSource"]

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Finalizer of splitmix64: a high-quality 64-bit mixing function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class BeaconSource:
    """Deterministic random-access stream of common beacon bits."""

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK

    def bit(self, t: int) -> int:
        """The beacon bit broadcast in slot ``t``."""
        if t < 0:
            raise ValueError(f"slot must be nonnegative, got {t}")
        return _splitmix64(self.seed ^ (t * 0xD1342543DE82EF95 & _MASK)) & 1

    def bits(self, start: int, count: int) -> list[int]:
        """Beacon bits for slots ``start .. start+count-1``."""
        return [self.bit(t) for t in range(start, start + count)]

    def word(self, start: int, count: int) -> int:
        """The ``count`` bits starting at ``start`` packed big-endian."""
        value = 0
        for t in range(start, start + count):
            value = (value << 1) | self.bit(t)
        return value

    def array(self, start: int, count: int) -> np.ndarray:
        """Bits as a numpy uint8 array (for bulk consumers)."""
        return np.fromiter(
            (self.bit(t) for t in range(start, start + count)),
            dtype=np.uint8,
            count=count,
        )
