"""Empirical side of Theorem 7: the ``Omega(|A||B|)`` asynchronous bound.

Theorem 7 argues via occurrence densities: ``Delta(h, sigma; T)`` is the
fraction of the first ``T`` slots in which schedule ``sigma`` plays
channel ``h``; averaging over random single-overlap instances makes
``k * Delta_A + l * Delta_B`` concentrate near 2, so some instance has
``Delta_A * Delta_B <= 1/(k l)`` and needs ``~k l`` slots.

This module provides the density statistic and an adversarial search
that *finds* hard instances for any concrete schedule builder — giving
the measured points the benches compare against ``k * l``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.core.verification import ttr_for_shift

__all__ = ["occurrence_density", "mean_density", "AdversarialWitness", "search_hard_instance"]


def occurrence_density(schedule: Schedule, channel: int, horizon: int) -> float:
    """``Delta(channel, schedule; horizon)`` — occurrence fraction."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    window = schedule.materialize(0, horizon)
    return float((window == channel).sum()) / horizon


def mean_density(
    builder: Callable[[frozenset[int], int], Schedule],
    n: int,
    k: int,
    horizon: int,
    samples: int,
    seed: int = 0,
) -> float:
    """Average of ``Delta(h, sigma_A)`` over random ``(A, h in A)``.

    Theorem 7's first expectation: this equals ``1/k`` exactly in
    expectation for any schedule family (each agent plays *some* channel
    every slot).
    """
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        channels = frozenset(rng.sample(range(n), k))
        h = rng.choice(sorted(channels))
        total += occurrence_density(builder(channels, n), h, horizon)
    return total / samples


@dataclass(frozen=True)
class AdversarialWitness:
    """A hard instance found by search: sets, shift, and measured TTR."""

    a_set: frozenset[int]
    b_set: frozenset[int]
    shift: int
    ttr: int

    @property
    def kl_product(self) -> int:
        return len(self.a_set) * len(self.b_set)


def search_hard_instance(
    builder: Callable[[frozenset[int], int], Schedule],
    n: int,
    k: int,
    l: int,
    instances: int,
    shifts_per_instance: int,
    horizon: int,
    seed: int = 0,
    extra_shifts: Iterable[int] = (),
) -> AdversarialWitness:
    """Adversarial search for the worst (A, B, shift) single-overlap case.

    Samples single-overlap instances and relative shifts, returning the
    witness with the largest time-to-rendezvous.  A miss within
    ``horizon`` raises (deterministic builders must not miss when the
    horizon exceeds their guarantee).
    """
    rng = random.Random(seed)
    best: AdversarialWitness | None = None
    for _ in range(instances):
        pool = rng.sample(range(n), k + l - 1)
        a_set = frozenset(pool[:k])
        b_set = frozenset([pool[0]] + pool[k:])
        a = builder(a_set, n)
        b = builder(b_set, n)
        shift_pool = list(extra_shifts)
        shift_pool += [rng.randrange(max(a.period, b.period)) for _ in range(shifts_per_instance)]
        for shift in shift_pool:
            ttr = ttr_for_shift(a, b, shift, horizon)
            if ttr is None:
                raise AssertionError(
                    f"builder missed rendezvous within {horizon} slots "
                    f"({sorted(a_set)} vs {sorted(b_set)}, shift {shift})"
                )
            if best is None or ttr > best.ttr:
                best = AdversarialWitness(a_set, b_set, shift, ttr)
    assert best is not None
    return best
