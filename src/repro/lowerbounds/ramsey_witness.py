"""Ramsey witnesses: monochromatic paths kill size-two schedules (Thm 4).

Theorem 4's engine: treat length-``T`` schedule strings as colors of the
edges of ``K_n``; by Ramsey's theorem, once ``n >= e * (2^T)!`` some
directed path ``a < b < c`` gets identical strings on ``(a,b)`` and
``(b,c)`` — and identical strings can never realize the ``(1, 0)``
coincidence that a path needs, so rendezvous fails.

This module finds such witnesses in concrete schedule families, and
computes the Ramsey threshold the theorem uses.
"""

from __future__ import annotations

import math
from collections.abc import Callable

__all__ = [
    "ramsey_universe_threshold",
    "find_monochromatic_path",
    "truncation_witness",
]


def ramsey_universe_threshold(T: int) -> int:
    """``ceil(e * (2^T)!)`` — a universe size at which *any* length-``T``
    synchronous (n,2)-schedule must fail (Theorem 4)."""
    if T < 0:
        raise ValueError("T must be nonnegative")
    colors = 2**T
    return math.ceil(math.e * math.factorial(colors))


def find_monochromatic_path(
    string_of_edge: Callable[[int, int], str],
    n: int,
) -> tuple[int, int, int] | None:
    """First path ``a < b < c`` whose two edges carry identical strings.

    ``string_of_edge(a, b)`` must return the schedule string of the edge
    ``{a < b}``.  Returns ``None`` when no witness exists (e.g. for the
    paper's Ramsey-colored construction).
    """
    # Group edges by string per middle vertex for an O(n^2) scan.
    for b in range(1, n - 1):
        incoming: dict[str, int] = {}
        for a in range(b):
            incoming.setdefault(string_of_edge(a, b), a)
        for c in range(b + 1, n):
            s = string_of_edge(b, c)
            if s in incoming:
                return (incoming[s], b, c)
    return None


def truncation_witness(
    string_of_edge: Callable[[int, int], str],
    n: int,
    T: int,
) -> tuple[int, int, int] | None:
    """Witness for the *truncated* family: strings cut to ``T`` slots.

    Truncating a correct schedule family far enough always produces a
    monochromatic path once ``n`` is large relative to ``2^T`` — the
    mechanism behind the Omega(log log n) bound.
    """
    return find_monochromatic_path(lambda a, b: string_of_edge(a, b)[:T], n)
