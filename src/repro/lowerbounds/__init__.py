"""Executable evidence for the paper's lower bounds (Section 4).

* Exact small-case ``Rs(n, 2)`` by exhaustive search (beneath Theorem 4).
* Ramsey witnesses: monochromatic paths in truncated schedule families.
* Theorem 7 density statistics and adversarial instance search.
"""

from repro.lowerbounds.density import (
    AdversarialWitness,
    mean_density,
    occurrence_density,
    search_hard_instance,
)
from repro.lowerbounds.exhaustive import (
    assignment_feasible,
    async_feasible,
    cyclic_pair_ok,
    exact_ra2,
    exact_rs2,
    required_tuples,
    sync_feasible,
)
from repro.lowerbounds.ramsey_witness import (
    find_monochromatic_path,
    ramsey_universe_threshold,
    truncation_witness,
)
from repro.lowerbounds.theorem6 import (
    Theorem6Witness,
    find_violation,
    verify_violation,
)

__all__ = [
    "Theorem6Witness",
    "find_violation",
    "verify_violation",
    "required_tuples",
    "assignment_feasible",
    "sync_feasible",
    "exact_rs2",
    "cyclic_pair_ok",
    "async_feasible",
    "exact_ra2",
    "ramsey_universe_threshold",
    "find_monochromatic_path",
    "truncation_witness",
    "occurrence_density",
    "mean_density",
    "AdversarialWitness",
    "search_hard_instance",
]
