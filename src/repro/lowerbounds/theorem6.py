"""Theorem 6 as an executable adversary: the synchronous ``k alpha`` bound.

Theorem 6 proves ``Rs(n, k) >= k * alpha`` for ``k <= n^(1/(2 alpha))``
by a pigeonhole construction.  This module *runs* that construction
against any concrete (n,k)-schedule family:

1. partition the universe into ``n/k`` disjoint k-sets ``S_1..S_{n/k}``;
2. in each, find a channel ``a_i`` appearing fewer than ``alpha`` times
   in the first ``alpha k - 1`` slots, and pad its occurrence-slot set to
   a fixed-size set ``A_i`` of ``alpha - 1`` slots;
3. pigeonhole: with enough sets, ``k`` of them share the same ``A``-set;
4. the probe set ``S-hat = {a_{i_1}, ..., a_{i_k}}`` then cannot meet all
   of ``S_{i_1}..S_{i_k}`` within ``alpha k - 1`` slots: rendezvous with
   ``S_{i_j}`` must happen where ``S-hat`` plays ``a_{i_j}``, which must
   intersect ``A`` — but the k disjoint requirement sets cannot all fit
   in ``|A| = alpha - 1 < k`` slots.

Given any family builder, :func:`find_violation` executes steps 1-3 and
returns the probe instance; :func:`verify_violation` checks step 4's
conclusion empirically — some pair genuinely fails to meet within
``alpha k - 1`` slots.  Together they turn the proof into a test that any
claimed-fast schedule family must fail.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.schedule import Schedule

__all__ = ["Theorem6Witness", "find_violation", "verify_violation"]

Builder = Callable[[frozenset[int], int], Schedule]


@dataclass(frozen=True)
class Theorem6Witness:
    """Output of the pigeonhole construction."""

    probe_set: frozenset[int]
    requirement_sets: tuple[frozenset[int], ...]
    shared_slots: frozenset[int]
    horizon: int


def _rare_channel_slots(
    schedule: Schedule, channels: frozenset[int], horizon: int, alpha: int
) -> tuple[int, frozenset[int]] | None:
    """A channel of the set appearing fewer than ``alpha`` times, with its
    occurrence slots; None if every channel is frequent (cannot happen
    when ``alpha * k > horizon``... defensively handled anyway)."""
    window = [schedule.channel_at(t) for t in range(horizon)]
    for channel in sorted(channels):
        slots = frozenset(t for t, c in enumerate(window) if c == channel)
        if len(slots) < alpha:
            return channel, slots
    return None


def find_violation(
    builder: Builder,
    n: int,
    k: int,
    alpha: int,
) -> Theorem6Witness | None:
    """Run the pigeonhole steps against ``builder``'s schedule family.

    Returns a witness when ``k`` partition sets share an ``A``-set (the
    paper guarantees this for ``n >= k^(2 alpha)``); ``None`` when the
    universe is too small for the pigeonhole to fire.
    """
    if alpha < 1 or k < 1:
        raise ValueError("alpha and k must be positive")
    horizon = alpha * k - 1
    groups: dict[frozenset[int], list[tuple[int, frozenset[int]]]] = {}
    num_sets = n // k
    for i in range(num_sets):
        channels = frozenset(range(i * k, (i + 1) * k))
        schedule = builder(channels, n)
        rare = _rare_channel_slots(schedule, channels, horizon, alpha)
        if rare is None:
            continue
        channel, slots = rare
        # Pad deterministically to exactly alpha - 1 slots.
        padded = set(slots)
        for t in range(horizon):
            if len(padded) >= alpha - 1:
                break
            padded.add(t)
        key = frozenset(padded)
        groups.setdefault(key, []).append((channel, channels))
    for shared, members in groups.items():
        if len(members) >= k:
            chosen = members[:k]
            return Theorem6Witness(
                probe_set=frozenset(channel for channel, _ in chosen),
                requirement_sets=tuple(channels for _, channels in chosen),
                shared_slots=shared,
                horizon=horizon,
            )
    return None


def verify_violation(
    builder: Builder,
    witness: Theorem6Witness,
    n: int,
) -> bool:
    """Check the conclusion: the probe set cannot synchronously meet all
    its requirement sets within the horizon.

    Returns True when at least one requirement set fails to meet the
    probe within ``witness.horizon`` slots (rendezvous counted only at
    aligned slots, the synchronous model).
    """
    probe = builder(witness.probe_set, n)
    probe_window = [probe.channel_at(t) for t in range(witness.horizon)]
    for channels in witness.requirement_sets:
        other = builder(channels, n)
        met = any(
            probe_window[t] == other.channel_at(t) for t in range(witness.horizon)
        )
        if not met:
            return True
    return False


def partition_requirements_infeasible(witness: Theorem6Witness) -> bool:
    """The combinatorial core, checked directly: k pairwise-disjoint
    nonempty requirement slot-sets cannot fit inside the shared A-set of
    size alpha - 1 < k (the contradiction in the paper's proof)."""
    # Each requirement set needs at least one dedicated slot within the
    # shared A-set; disjointness makes that |A| >= k, which fails.
    return len(witness.shared_slots) < len(witness.requirement_sets)
