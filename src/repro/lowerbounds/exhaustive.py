"""Exact optimal synchronous rendezvous times for size-two sets (§4).

Theorem 4 proves ``Rs(n, 2) = Omega(log log n)`` via Ramsey theory.  This
module *computes* ``Rs(n, 2)`` exactly for small universes by exhaustive
backtracking over all (n,2)-schedule assignments, giving concrete data
points beneath the asymptotic bound.

Model: a synchronous (n,2)-schedule assigns each edge ``{a < b}`` a
binary string of length ``T`` (0 = hop on ``a``, 1 = hop on ``b``); two
overlapping sets rendezvous iff the required coincidence tuple appears at
some aligned slot:

* shared smaller element  -> ``(0, 0)``
* shared larger element   -> ``(1, 1)``
* path (one's max = other's min) -> ``(1, 0)`` / ``(0, 1)`` respectively
* identical sets: anonymity forces identical strings; they coincide in
  every slot, so no constraint.
"""

from __future__ import annotations

import itertools

__all__ = [
    "required_tuples",
    "assignment_feasible",
    "sync_feasible",
    "exact_rs2",
    "cyclic_pair_ok",
    "async_feasible",
    "exact_ra2",
]


def required_tuples(e1: tuple[int, int], e2: tuple[int, int]) -> list[tuple[int, int]]:
    """Coincidence tuples (bit of e1, bit of e2) that force rendezvous.

    Returns the list of tuples of which *at least one occurrence each*
    is required; empty when the edges do not overlap (or are identical).
    """
    a, b = e1
    c, d = e2
    if not (a < b and c < d):
        raise ValueError("edges must be ordered pairs")
    if e1 == e2 or not ({a, b} & {c, d}):
        return []
    needed = []
    if a == c:
        needed.append((0, 0))
    if b == d:
        needed.append((1, 1))
    if b == c:  # e1's larger element is e2's smaller
        needed.append((1, 0))
    if a == d:
        needed.append((0, 1))
    return needed


def assignment_feasible(
    edges: list[tuple[int, int]],
    strings: dict[tuple[int, int], tuple[int, ...]],
) -> bool:
    """Check every overlapping pair of *assigned* edges."""
    assigned = [e for e in edges if e in strings]
    for e1, e2 in itertools.combinations(assigned, 2):
        for tup in required_tuples(e1, e2):
            r, s = strings[e1], strings[e2]
            if not any((x, y) == tup for x, y in zip(r, s)):
                return False
    return True


def _compatible(
    edge: tuple[int, int],
    candidate: tuple[int, ...],
    strings: dict[tuple[int, int], tuple[int, ...]],
) -> bool:
    for other, assigned in strings.items():
        for tup in required_tuples(edge, other):
            if not any((x, y) == tup for x, y in zip(candidate, assigned)):
                return False
    return True


def sync_feasible(n: int, T: int, node_budget: int = 2_000_000) -> bool | None:
    """Does an (n,2)-schedule with synchronous rendezvous time ``T`` exist?

    Exhaustive backtracking; returns True/False, or ``None`` if the
    search exceeds ``node_budget`` expansions (undecided).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if T < 1:
        return n == 2  # no slots: only the single-edge universe is fine
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    candidates = list(itertools.product((0, 1), repeat=T))
    budget = node_budget

    def backtrack(index: int, strings: dict) -> bool | None:
        nonlocal budget
        if index == len(edges):
            return True
        edge = edges[index]
        for candidate in candidates:
            budget -= 1
            if budget <= 0:
                return None
            if _compatible(edge, candidate, strings):
                strings[edge] = candidate
                result = backtrack(index + 1, strings)
                if result:
                    return True
                if result is None:
                    return None
                del strings[edge]
        return False

    return backtrack(0, {})


def exact_rs2(n: int, T_max: int = 8, node_budget: int = 2_000_000) -> int | None:
    """Smallest ``T`` such that ``sync_feasible(n, T)``, or None if the
    budget runs out before a feasible ``T <= T_max`` is certified."""
    for T in range(1, T_max + 1):
        result = sync_feasible(n, T, node_budget=node_budget)
        if result:
            return T
        if result is None:
            return None
    return None


# ---------------------------------------------------------------------------
# Asynchronous variant: schedules are cyclic, tuples must be realized at
# EVERY relative rotation (the model of Theorem 1 / Theorem 7).
# ---------------------------------------------------------------------------


def cyclic_pair_ok(
    r: tuple[int, ...],
    s: tuple[int, ...],
    needed: list[tuple[int, int]],
) -> bool:
    """Do cyclic strings ``r``, ``s`` realize every needed tuple at every
    relative rotation?"""
    T = len(r)
    for shift in range(T):
        rotated = s[shift:] + s[:shift]
        realized = {(x, y) for x, y in zip(r, rotated)}
        if not all(tup in realized for tup in needed):
            return False
    return True


def _self_compatible(r: tuple[int, ...]) -> bool:
    """Identical sets run identical cyclic strings at arbitrary shifts:
    the string must realize (0,0) and (1,1) against every rotation of
    itself (the paper's ``r diamond-0 r`` at all shifts)."""
    return cyclic_pair_ok(r, r, [(0, 0), (1, 1)])


def async_feasible(n: int, T: int, node_budget: int = 2_000_000) -> bool | None:
    """Does an (n,2)-schedule family of cyclic period ``T`` guarantee
    *asynchronous* rendezvous within ``T`` slots?

    Exhaustive backtracking over self-compatible strings; ``None`` when
    the node budget is exhausted (undecided).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if T < 1:
        return False
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    candidates = [
        c for c in itertools.product((0, 1), repeat=T) if _self_compatible(c)
    ]
    if not candidates:
        return False
    budget = node_budget

    def compatible(edge, candidate, strings) -> bool:
        for other, assigned in strings.items():
            needed = required_tuples(edge, other)
            if needed and not cyclic_pair_ok(candidate, assigned, needed):
                return False
            reverse = required_tuples(other, edge)
            if reverse and not cyclic_pair_ok(assigned, candidate, reverse):
                return False
        return True

    def backtrack(index: int, strings: dict) -> bool | None:
        nonlocal budget
        if index == len(edges):
            return True
        edge = edges[index]
        for candidate in candidates:
            budget -= 1
            if budget <= 0:
                return None
            if compatible(edge, candidate, strings):
                strings[edge] = candidate
                result = backtrack(index + 1, strings)
                if result:
                    return True
                if result is None:
                    return None
                del strings[edge]
        return False

    return backtrack(0, {})


def exact_ra2(n: int, T_max: int = 10, node_budget: int = 2_000_000) -> int | None:
    """Smallest cyclic period guaranteeing asynchronous rendezvous for
    all overlapping 2-sets of ``[n]`` — the exact small-case ``Ra(n, 2)``."""
    for T in range(1, T_max + 1):
        result = async_feasible(n, T, node_budget=node_budget)
        if result:
            return T
        if result is None:
            return None
    return None
