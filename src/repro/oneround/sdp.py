"""GW-style SDP for one-round rendezvous: the 0.439-approximation.

The appendix SDP associates a unit vector with each *edge* (not vertex,
as in Goemans-Williamson MAX-CUT) and maximizes

    sum over incident pairs (e, f):  (1 + sgn(e,f) * v_e . v_f) / 2

where ``sgn(e,f) = +1`` when, under a fixed reference orientation, the
pair is an in-pair or out-pair, and ``-1`` for a cross-pair.  Solved over
``{-1, +1}`` this counts in-pairs plus out-pairs; the SDP relaxation plus
hyperplane rounding recovers a 0.878 fraction of that (GW analysis), and
playing the better of the normal and fully-flipped rounds yields at least
``0.878 / 2 = 0.439`` of the maximum in-pairs.

Solver substitution (see docs/ARCHITECTURE.md, deviations): instead of an interior-point SDP
solver we use the standard Burer-Monteiro low-rank factorization — unit
vectors in ``R^dim`` optimized by block-coordinate ascent
(``v_e <- normalize(sum_f sgn(e,f) v_f)``), which monotonically increases
the objective and, for ``dim >= sqrt(2 |E|)``, has no spurious local
optima in practice.  Rounding uses seeded random hyperplanes,
best-of-``trials`` (the paper derandomizes; best-of-k exceeds the
expectation guarantee w.h.p.).
"""

from __future__ import annotations

import numpy as np

from repro.oneround.orientation import (
    OneRoundInstance,
    count_in_pairs,
    count_out_pairs,
)

__all__ = ["OneRoundSDP", "sdp_orient"]


class OneRoundSDP:
    """Burer-Monteiro solver for the appendix SDP."""

    def __init__(self, instance: OneRoundInstance, dim: int | None = None):
        self.instance = instance
        e = instance.num_edges
        self.dim = dim if dim is not None else max(8, int(np.ceil(np.sqrt(2 * e))) + 1)
        self._signs = self._sign_matrix()

    def _sign_matrix(self) -> np.ndarray:
        """Signed incidence-pair matrix ``W[e, f] = sgn(e, f)`` (0 if not
        incident).  Reference orientation: each edge points at its larger
        endpoint."""
        edges = self.instance.edges
        e = len(edges)
        w = np.zeros((e, e))
        by_vertex: dict[int, list[int]] = {}
        for idx, (a, b) in enumerate(edges):
            by_vertex.setdefault(a, []).append(idx)
            by_vertex.setdefault(b, []).append(idx)
        for vertex, incident in by_vertex.items():
            for i in range(len(incident)):
                for j in range(i + 1, len(incident)):
                    e1, e2 = incident[i], incident[j]
                    # Reference: edge points to max endpoint.  Pair is
                    # in/out-aligned at `vertex` iff both point to it or
                    # both away.
                    to1 = edges[e1][1] == vertex
                    to2 = edges[e2][1] == vertex
                    sign = 1.0 if to1 == to2 else -1.0
                    w[e1, e2] += sign
                    w[e2, e1] += sign
        return w

    def objective(self, vectors: np.ndarray) -> float:
        """The SDP objective at the current (unit-row) vectors."""
        gram = vectors @ vectors.T
        aligned = self._signs * gram
        pairs = np.abs(self._signs).sum() / 2
        return float(pairs / 2 + aligned.sum() / 4)

    def solve(self, iterations: int = 200, seed: int = 0) -> np.ndarray:
        """Block-coordinate ascent to a stationary point; returns unit
        row-vectors, one per edge."""
        rng = np.random.default_rng(seed)
        e = self.instance.num_edges
        vectors = rng.normal(size=(e, self.dim))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        for _ in range(iterations):
            moved = 0.0
            for i in range(e):
                pull = self._signs[i] @ vectors
                norm = np.linalg.norm(pull)
                if norm < 1e-12:
                    continue
                updated = pull / norm
                moved += float(np.abs(updated - vectors[i]).max())
                vectors[i] = updated
            if moved < 1e-9:
                break
        return vectors

    def round(
        self, vectors: np.ndarray, trials: int = 32, seed: int = 0
    ) -> tuple[int, tuple[int, ...]]:
        """Random-hyperplane rounding, best of ``trials`` x two rounds.

        Each hyperplane gives keep/flip signs; the better of the signed
        orientation and its full flip (in-pairs vs out-pairs) is taken.
        """
        rng = np.random.default_rng(seed)
        edges = self.instance.edges
        best = -1
        best_choices: tuple[int, ...] = ()
        for _ in range(max(trials, 1)):
            hyperplane = rng.normal(size=self.dim)
            keep = (vectors @ hyperplane) >= 0
            # Reference orientation points at the larger endpoint; "keep"
            # preserves it, flip points at the smaller one.
            choices = tuple(
                edge[1] if k else edge[0] for edge, k in zip(edges, keep)
            )
            in_count = count_in_pairs(self.instance, choices)
            flipped = tuple(
                edge[0] if k else edge[1] for edge, k in zip(edges, keep)
            )
            flipped_count = count_in_pairs(self.instance, flipped)
            for value, cand in ((in_count, choices), (flipped_count, flipped)):
                if value > best:
                    best, best_choices = value, cand
        return best, best_choices


def sdp_orient(
    instance: OneRoundInstance,
    iterations: int = 200,
    trials: int = 32,
    seed: int = 0,
) -> tuple[int, tuple[int, ...]]:
    """End-to-end: solve the SDP and round; returns (in_pairs, choices)."""
    solver = OneRoundSDP(instance)
    vectors = solver.solve(iterations=iterations, seed=seed)
    return solver.round(vectors, trials=trials, seed=seed)
