"""One-round graphical rendezvous model (paper Appendix).

In the graphical case every agent has exactly two channels, so agents are
*edges* of a graph on channels.  In a single round each agent picks one
of its two channels — an *orientation* of its edge (pointing toward the
chosen channel).  Two incident agents rendezvous iff both edges point to
their shared vertex (an *in-pair*).  The appendix problem: orient all
edges to maximize the number of in-pairs.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

__all__ = [
    "OneRoundInstance",
    "count_in_pairs",
    "count_out_pairs",
    "brute_force_optimum",
]


class OneRoundInstance:
    """A one-round rendezvous instance: a simple graph of size-2 agents."""

    def __init__(self, edges: Iterable[tuple[int, int]]):
        normalized = []
        seen = set()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop {a} is not a valid agent")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise ValueError(f"duplicate agent {key}")
            seen.add(key)
            normalized.append(key)
        if not normalized:
            raise ValueError("instance needs at least one edge")
        self.edges: tuple[tuple[int, int], ...] = tuple(normalized)
        self.vertices = sorted({v for e in self.edges for v in e})

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def incident_pair_count(self) -> int:
        """Number of unordered incident edge pairs (potential in-pairs)."""
        degree: dict[int, int] = {}
        for a, b in self.edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        return sum(d * (d - 1) // 2 for d in degree.values())

    def validate_orientation(self, choices: Sequence[int]) -> None:
        if len(choices) != len(self.edges):
            raise ValueError(
                f"need {len(self.edges)} choices, got {len(choices)}"
            )
        for choice, edge in zip(choices, self.edges):
            if choice not in edge:
                raise ValueError(f"choice {choice} not an endpoint of {edge}")


def count_in_pairs(instance: OneRoundInstance, choices: Sequence[int]) -> int:
    """Pairs of agents that rendezvous: both chose their shared channel.

    ``choices[i]`` is the channel edge ``i`` points to.  Counting is per
    vertex: ``C(c_v, 2)`` where ``c_v`` is the number of edges choosing
    ``v``.
    """
    instance.validate_orientation(choices)
    chosen: dict[int, int] = {}
    for choice in choices:
        chosen[choice] = chosen.get(choice, 0) + 1
    return sum(c * (c - 1) // 2 for c in chosen.values())


def count_out_pairs(instance: OneRoundInstance, choices: Sequence[int]) -> int:
    """Pairs of incident agents that both point *away* from the shared
    vertex (the appendix's out-pairs)."""
    instance.validate_orientation(choices)
    away: dict[int, int] = {}
    for choice, (a, b) in zip(choices, instance.edges):
        other = b if choice == a else a
        away[other] = away.get(other, 0) + 1
    return sum(c * (c - 1) // 2 for c in away.values())


def brute_force_optimum(instance: OneRoundInstance) -> tuple[int, tuple[int, ...]]:
    """Exact maximum in-pairs by enumeration — small instances only."""
    if instance.num_edges > 20:
        raise ValueError("brute force limited to 20 edges")
    best = -1
    best_choices: tuple[int, ...] = ()
    for mask in itertools.product((0, 1), repeat=instance.num_edges):
        choices = tuple(
            edge[bit] for edge, bit in zip(instance.edges, mask)
        )
        value = count_in_pairs(instance, choices)
        if value > best:
            best = value
            best_choices = choices
    return best, best_choices
