"""The 0.25-approximation baseline: orient every edge uniformly at random.

A pair of incident edges both point at the shared vertex with probability
1/4, so the expected number of in-pairs is a quarter of all incident
pairs — hence at least a quarter of the optimum (paper Appendix).
"""

from __future__ import annotations

import random

from repro.oneround.orientation import OneRoundInstance, count_in_pairs

__all__ = ["random_orientation", "best_of_random"]


def random_orientation(
    instance: OneRoundInstance, seed: int = 0
) -> tuple[int, ...]:
    """One uniformly random orientation (choices per edge)."""
    rng = random.Random(seed)
    return tuple(edge[rng.randrange(2)] for edge in instance.edges)


def best_of_random(
    instance: OneRoundInstance, trials: int, seed: int = 0
) -> tuple[int, tuple[int, ...]]:
    """Best in-pair count over ``trials`` random orientations."""
    if trials < 1:
        raise ValueError("need at least one trial")
    best = -1
    best_choices: tuple[int, ...] = ()
    for trial in range(trials):
        choices = random_orientation(instance, seed=seed * 10_007 + trial)
        value = count_in_pairs(instance, choices)
        if value > best:
            best, best_choices = value, choices
    return best, best_choices
