"""One-round rendezvous maximization (paper Appendix).

The graphical case: agents are edges, one slot, each agent picks one of
its two channels; maximize rendezvousing pairs.  Includes the exact
brute-force optimum (small instances), the 0.25 random baseline, and the
0.439-approximation via a GW-style SDP over edge vectors.
"""

from repro.oneround.orientation import (
    OneRoundInstance,
    brute_force_optimum,
    count_in_pairs,
    count_out_pairs,
)
from repro.oneround.random_rounding import best_of_random, random_orientation
from repro.oneround.sdp import OneRoundSDP, sdp_orient

__all__ = [
    "OneRoundInstance",
    "count_in_pairs",
    "count_out_pairs",
    "brute_force_optimum",
    "random_orientation",
    "best_of_random",
    "OneRoundSDP",
    "sdp_orient",
]
