"""Analysis utilities: ASCII figures and Table-1 formatting."""

from repro.analysis.ascii_plots import format_table, series_plot, walk_plot
from repro.analysis.tables import (
    PAPER_CLAIMS,
    scaling_exponent,
    table1,
    zos_vs_drds,
)

__all__ = [
    "walk_plot",
    "series_plot",
    "format_table",
    "PAPER_CLAIMS",
    "table1",
    "zos_vs_drds",
    "scaling_exponent",
]
