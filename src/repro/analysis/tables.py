"""Table 1 regeneration helpers.

Combines the paper's *claimed* asymptotic bounds with this
reproduction's *measured* worst-case rendezvous times into the same
comparison the paper presents.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.analysis.ascii_plots import format_table

__all__ = ["PAPER_CLAIMS", "table1", "zos_vs_drds", "scaling_exponent"]

#: Asymptotic bounds as printed in the paper's Table 1 (plus the
#: randomized reference from Section 1.2, and ``zos`` — this repo's
#: added available-channel-set baseline, which postdates the paper and
#: is labeled with the reimplemented skeleton's certified ``O~(m^3)``
#: envelope rather than Lin et al.'s ``O(m1 m2)`` claim for their exact
#: construction; both are independent of the universe size ``n``).
PAPER_CLAIMS: dict[str, dict[str, str]] = {
    "crseq": {"asymmetric": "O(n^2)", "symmetric": "O(n^2)", "source": "Shin-Yang-Kim"},
    "jump-stay": {"asymmetric": "O(n^3)", "symmetric": "O(n)", "source": "Lin-Liu-Chu-Leung"},
    "drds": {"asymmetric": "O(n^2)", "symmetric": "O(n)", "source": "Gu-Hua-Wang-Lau"},
    "zos": {
        "asymmetric": "O~(m^3), n-free",
        "symmetric": "measured, n-free",
        "source": "after Lin-Yu-Liu-Leung-Chu",
    },
    "async-etch": {
        "asymmetric": "O(n^3) anonymized",
        "symmetric": "measured",
        "source": "after Zhang-Li-Yu-Wang (ETCH)",
    },
    "paper": {
        "asymmetric": "O(|Si||Sj| loglog n)",
        "symmetric": "O(1) (via 3.2)",
        "source": "Chen-Russell-Samanta-Sundaram",
    },
    "random": {
        "asymmetric": "O(|Si||Sj| log n) whp",
        "symmetric": "O(k^2 log n) whp",
        "source": "folklore",
    },
}


def table1(
    measured: Mapping[str, Mapping[int, int]],
    column: str,
    ns: Sequence[int],
) -> str:
    """Render a Table-1-shaped comparison.

    ``measured[algorithm][n]`` is the measured worst TTR; ``column`` is
    ``"asymmetric"`` or ``"symmetric"`` and selects the claimed bound.
    """
    headers = ["algorithm", "paper bound"] + [f"n={n}" for n in ns]
    rows = []
    for algorithm, by_n in measured.items():
        claim = PAPER_CLAIMS.get(algorithm, {}).get(column, "?")
        rows.append(
            [algorithm, claim] + [by_n.get(n, "-") for n in ns]
        )
    return format_table(headers, rows)


def zos_vs_drds(
    measured: Mapping[str, Mapping[str, Mapping[int, int]]],
    ns: Sequence[int],
) -> str:
    """Render the available-set-vs-global-sequence comparison.

    ``measured[regime][algorithm][n]`` is the measured worst TTR, with
    ``regime`` one of ``"asymmetric"`` / ``"symmetric"``.  The point of
    the table: DRDS (a whole-universe global sequence) degrades with
    ``n`` while ZOS (available-channel-set construction) stays flat at
    fixed set size — the same contrast the paper draws for its own
    ``O(|S_i||S_j| log log n)`` schedule in the ``|S| << n`` regime.
    """
    headers = ["algorithm", "regime", "claimed bound"] + [f"n={n}" for n in ns]
    rows = []
    for regime in ("asymmetric", "symmetric"):
        for algorithm, by_n in measured.get(regime, {}).items():
            claim = PAPER_CLAIMS.get(algorithm, {}).get(regime, "?")
            rows.append(
                [algorithm, regime, claim]
                + [by_n.get(n, "-") for n in ns]
            )
    return format_table(headers, rows)


def scaling_exponent(ns: Sequence[int], values: Sequence[float]) -> float:
    """Least-squares slope of log(value) against log(n).

    The shape check behind Table 1: measured exponents should sit near 2
    for the O(n^2) baselines, near 3 for Jump-Stay, and near 0 for the
    paper's construction at fixed set sizes.
    """
    import math

    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two (n, value) points")
    xs = [math.log(n) for n in ns]
    ys = [math.log(max(v, 1e-9)) for v in values]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den
