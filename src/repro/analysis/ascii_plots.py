"""ASCII rendering of walks and series (regenerates Figures 1-3).

The paper's figures are diagrams of string walks ``G_z`` (northeast step
per 1, southeast per 0).  :func:`walk_plot` reproduces them as text
mountain plots; :func:`series_plot` renders scaling curves for the
benchmark output; :func:`format_table` aligns result tables.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.bitstrings import walk_heights

__all__ = ["walk_plot", "series_plot", "format_table"]


def walk_plot(z: str, title: str | None = None) -> str:
    """Mountain plot of the walk of ``z`` (cf. paper Figures 1-3).

    A ``1`` renders as ``/`` climbing one level, a ``0`` as ``\\``
    descending; the zero axis is marked with ``-`` on empty cells.
    """
    if not z:
        return (title + "\n" if title else "") + "(empty string)"
    heights = walk_heights(z)
    top = max(heights)
    bottom = min(heights)
    # Row r displays the height band [level, level + 1) for level from
    # top-1 down to bottom.
    rows = []
    for level in range(top - 1, bottom - 1, -1):
        cells = []
        for i, bit in enumerate(z):
            lo = min(heights[i], heights[i + 1])
            if lo == level:
                cells.append("/" if bit == "1" else "\\")
            elif level == 0 and lo != 0:
                cells.append("-")
            else:
                cells.append(" ")
        rows.append("".join(cells).rstrip() or "-" * len(z))
    body = "\n".join(rows)
    header = f"{title}\n" if title else ""
    return f"{header}{z}\n{body}"


def series_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    label: str = "",
) -> str:
    """Scatter an (x, y) series into a text grid (linear axes)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be nonempty and equally long")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row).rstrip() for row in grid]
    header = f"{label}  [y: {y_lo:g}..{y_hi:g}]  [x: {x_lo:g}..{x_hi:g}]"
    return header + "\n" + "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    def render(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
    rule = "  ".join("-" * width for width in widths)
    return "\n".join([render(cells[0]), rule] + [render(row) for row in cells[1:]])
