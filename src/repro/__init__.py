"""Deterministic blind rendezvous in cognitive radio networks.

Reproduction of Chen, Russell, Samanta, Sundaram (ICDCS 2014,
arXiv:1401.7313): deterministic channel-hopping schedules guaranteeing
that any two agents with overlapping channel sets meet in
``O(|S_i||S_j| log log n)`` slots, asynchronously and anonymously.

Quickstart
----------
>>> import repro
>>> alice = repro.build_schedule([3, 7, 11], n=16)
>>> bob = repro.build_schedule([7, 9], n=16)
>>> ttr = repro.first_rendezvous(alice, bob, wake_a=0, wake_b=5, horizon=10_000)
>>> ttr is not None
True

See ``examples/`` for full scenarios, ``docs/ARCHITECTURE.md`` for the
layer map and data flow, and ``docs/API.md`` for the public-surface
reference.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core import (
    ConstantSchedule,
    CyclicSchedule,
    EpochSchedule,
    FunctionSchedule,
    Schedule,
    ScheduleStore,
    StoredSchedule,
    SymmetricWrappedSchedule,
    async_period,
    pair_schedule_async,
    pair_schedule_sync,
    rendezvous_bound,
    sync_period,
)
from repro.core.batch import ttr_sweep
from repro.core.verification import (
    first_rendezvous,
    max_ttr,
    ttr_for_shift,
    ttr_profile,
    verify_guarantee,
)

__version__ = "1.0.0"

__all__ = [
    "build_schedule",
    "EpochSchedule",
    "SymmetricWrappedSchedule",
    "Schedule",
    "CyclicSchedule",
    "ConstantSchedule",
    "FunctionSchedule",
    "ScheduleStore",
    "StoredSchedule",
    "pair_schedule_async",
    "pair_schedule_sync",
    "async_period",
    "sync_period",
    "rendezvous_bound",
    "first_rendezvous",
    "ttr_for_shift",
    "ttr_profile",
    "ttr_sweep",
    "max_ttr",
    "verify_guarantee",
    "__version__",
]


def build_schedule(
    channels: Iterable[int],
    n: int,
    algorithm: str = "paper",
    store: ScheduleStore | None = None,
) -> Schedule:
    """Build a channel-hopping schedule for one agent.

    Parameters
    ----------
    channels:
        The agent's available channels, a subset of ``range(n)``.
    n:
        Universe size (shared by all agents in a deployment).
    algorithm:
        ``"paper"`` — Theorem 3 asynchronous schedule (default);
        ``"paper-sync"`` — Theorem 3 synchronous variant;
        ``"paper-symmetric"`` — Theorem 3 wrapped per Section 3.2 for
        O(1) symmetric rendezvous;
        ``"crseq"`` / ``"jump-stay"`` / ``"drds"`` / ``"zos"`` /
        ``"random"`` — baselines from :mod:`repro.baselines`
        (see :data:`repro.baselines.BASELINE_NAMES`).
    store:
        Optional :class:`ScheduleStore`.  When given, the schedule's
        period table is materialized into (or attached read-only from)
        the store instead of being rebuilt in-process — the cheap path
        for repeated and multi-process workloads.
    """
    if store is not None:
        return store.get(channels, n, algorithm)
    if algorithm == "paper":
        return EpochSchedule(channels, n, asynchronous=True)
    if algorithm == "paper-sync":
        return EpochSchedule(channels, n, asynchronous=False)
    if algorithm == "paper-symmetric":
        return SymmetricWrappedSchedule(EpochSchedule(channels, n, asynchronous=True))
    from repro import baselines

    return baselines.build_baseline(channels, n, algorithm)
