"""AsyncETCH baseline — after Zhang, Li, Yu, Wang (ETCH, INFOCOM 2011).

ETCH ("Efficient Channel Hopping") is the asynchronous channel-hopping
family the available-set literature measures against; the ROADMAP's
baseline matrix calls for its asynchronous variant on the same
``SweepRunner`` harness as CRSEQ / Jump-Stay / DRDS / ZOS.

Construction (channels 0-indexed): let ``P`` be the smallest prime
``P > n``.  Time is divided into *frames* of ``2P + 2`` slots, each a
pilot pair followed by ETCH's signature **two identical subframes** of
``P`` slots (the duplicate subframe guarantees that a large enough
frame overlap contains one complete aligned subframe, whatever the
clock drift).  Frame ``r`` uses

* step  ``s = (r mod (P-1)) + 1`` (cycling through ``1..P-1``) and
* start ``i = (r div (P-1)) mod P``;
* pilot slot 0 — the **anchor** — plays channel ``0``;
* pilot slot 1 — the **stay** — plays channel ``s``;
* subframe slot ``j`` plays channel ``(i + j*s) mod P`` — a full orbit
  of ``Z_P``, since ``s`` is invertible.

Channels ``>= n`` remap to ``c mod n``; unavailable channels project to
``available[c mod k]`` (the same projection every global-sequence
baseline in this package uses).  The full period is
``(2P + 2) P (P - 1)``.

Why every nonempty intersection meets, for common channel ``g``: when
the relative shift leaves the two agents' frames step-distinct, the
aligned orbit pair has a unique meeting phase ``j*`` whose channel
value sweeps all of ``Z_P`` as the start loop advances — including
``g`` — while both play natively; when the steps coincide (shifts that
are multiples of ``P - 1`` frames, the case the published multi-row
argument never faces), the aligned stay slots meet on ``s`` for every
round (covering every ``g != 0`` as ``s`` cycles) and the aligned
anchor slots meet on channel ``0``.

**Documented deviation** (see docs/ARCHITECTURE.md, deviations): the
published ASYNC-ETCH achieves ``O(P^2)`` by letting each node draw one
of ``P`` distinct sequence *rows*, and its rendezvous argument needs
two rows.  This repository's model is anonymous and deterministic —
every agent derives its schedule from its channel set alone — so all
agents share one global sequence: the row index is folded into an
outer start loop (the device Jump-Stay uses) and the single pilot slot
is widened to the anchor/stay pair above, which restores coverage of
the equal-step shifts at the price of the same cubic ``O(n^3)``
envelope as Jump-Stay.  The guarantee is certified empirically by
exhaustive ``verify_guarantee`` sweeps in
``tests/baselines/test_asyncetch.py``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.projection import project_onto_available
from repro.core.primes import smallest_prime_greater_than
from repro.core.schedule import Schedule

__all__ = [
    "AsyncETCHSchedule",
    "asyncetch_global_channel",
    "asyncetch_global_block",
    "asyncetch_global_values",
    "asyncetch_period",
]


def asyncetch_period(prime: int) -> int:
    """Full AsyncETCH period for prime ``P``: ``(2P+2)`` slots per frame
    times ``P (P-1)`` frames (step inner loop, start outer loop)."""
    return (2 * prime + 2) * prime * (prime - 1)


def asyncetch_global_channel(t: int, prime: int) -> int:
    """Channel of the global AsyncETCH sequence at slot ``t`` (in ``[0, P)``)."""
    if t < 0:
        raise ValueError(f"slot must be nonnegative, got {t}")
    frame, offset = divmod(t, 2 * prime + 2)
    step = (frame % (prime - 1)) + 1
    start = (frame // (prime - 1)) % prime
    if offset == 0:  # anchor pilot
        return 0
    if offset == 1:  # stay pilot
        return step
    return (start + ((offset - 2) % prime) * step) % prime


def asyncetch_global_values(t: np.ndarray, prime: int) -> np.ndarray:
    """Global AsyncETCH channels at an arbitrary array of slot indices.

    The closed form of :func:`asyncetch_global_channel` evaluated
    elementwise over any index array.  Shared by
    :func:`asyncetch_global_block` (contiguous windows) and
    :meth:`AsyncETCHSchedule.channel_gather` (scattered tile rows).
    """
    t = np.asarray(t, dtype=np.int64) % asyncetch_period(prime)
    frame, offset = np.divmod(t, 2 * prime + 2)
    step = (frame % (prime - 1)) + 1
    frame_start = (frame // (prime - 1)) % prime
    orbit = (frame_start + ((offset - 2) % prime) * step) % prime
    out = np.where(offset == 1, step, orbit)
    return np.where(offset == 0, 0, out)


def asyncetch_global_block(start: int, stop: int, prime: int) -> np.ndarray:
    """Global AsyncETCH channels for slots ``start .. stop-1``, vectorized.

    The closed form of :func:`asyncetch_global_channel` over a whole
    window — the chunk source for the streaming engine's tiles.
    """
    if stop < start:
        raise ValueError(f"empty window: start={start}, stop={stop}")
    return asyncetch_global_values(np.arange(start, stop, dtype=np.int64), prime)


class AsyncETCHSchedule(Schedule):
    """AsyncETCH global sequence projected onto an agent's available set."""

    def __init__(self, channels: Iterable[int], n: int):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.prime = smallest_prime_greater_than(n)
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        self.period = asyncetch_period(self.prime)

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the global sequence, projected."""
        c = asyncetch_global_channel(t % self.period, self.prime)
        c %= self.n
        if c in self.channels:
            return c
        k = len(self.sorted_channels)
        return self.sorted_channels[c % k]

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Vectorized window: closed-form global channels, projected."""
        raw = asyncetch_global_block(start, stop, self.prime) % self.n
        return project_onto_available(raw, self.sorted_channels)

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized scattered access: closed-form channels, projected.

        One closed-form evaluation plus one projection pass for a whole
        streaming tile of scattered rows.
        """
        raw = asyncetch_global_values(indices, self.prime) % self.n
        return project_onto_available(raw, self.sorted_channels)

    def _compute_period_array(self) -> np.ndarray:
        return self.channel_block(0, self.period)
