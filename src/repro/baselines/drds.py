"""DRDS-style baseline — after Gu, Hua, Wang, Lau (SECON 2013).

Cited in the paper under study (Chen et al., ICDCS 2014) in Section 1.2
and Table 1.  Gu et al. achieve ``O(n^2)`` asymmetric rendezvous by
building a global sequence from a *disjoint relaxed difference set*
(DRDS) family:
one set ``D_i`` per channel ``i``, pairwise disjoint in ``Z_m`` with
``m = O(n^2)``, such that every ``d`` in ``Z_m`` can be written as a
difference of two elements of ``D_i``.  Then, for any relative shift
``delta`` between two agents, every channel ``i`` is played by both
agents simultaneously at some slot — the defining rendezvous property.

Their exact algebraic construction is not reproduced in the paper under
study, so this module uses our own closed-form DRDS family in
``Z_{45 n^2 + 8n}`` (see docs/ARCHITECTURE.md, deviations; same ``Theta(n^2)``
guarantee class, constant 45 vs. their 3, and — unlike theirs —
prime-free).  Each channel ``i < n`` owns four components:

* **block**   ``B_i = {4n i + r : r in [0, 4n)}`` — tiles ``[0, 4n^2)``;
* **stride**  ``SA_i = {4n^2 + i + 4n s : s in [i, i + 5n)}`` — the
  start offset ``i`` cancels the block position ``4n i``, so
  ``SA_i - B_i`` covers the band ``(4n^2, 24n^2)`` *drift-free for
  every channel*;
* **column**  ``M_i = {28n^2 + i + 2n a' : a' in [0, 2n+1)}``;
* **slant**   ``S_i = {32n^2 + 2n + i + (2n+1) a : a in [0, 6n)}``.

Coverage: block self-differences give ``(0, 4n)``; the stride band gives
``(4n^2, 24n^2)``, which reaches past ``m/2``, so difference-set symmetry
(``a - b`` vs ``b - a``) closes everything except the *small-difference
corner* ``±(4n, 4n^2)``.  There ``S_i - M_i = 2n(2n+1) + (2n+1)a - 2na'``
covers most values (the coprime steps ``2n`` / ``2n+1`` solve every
residue class), but the lattice corners where both ``a`` and ``a'`` hit
their range limits leave structured hole bands — roughly ``3.5 n``
differences per channel.  Those are completed by a deterministic greedy
step: for each remaining difference ``d``, the lowest free pair
``(x, x + d)`` is claimed, with incremental coverage updates so the bonus
differences of each new element shrink the remaining work.  The final
family is *verified* to be a DRDS by FFT autocorrelation at build time
(toggle with ``verify=``); total occupancy stays near half of ``Z_m``.

Channel disjointness of the closed-form part holds because each family
separates channels by residue (mod ``4n``, ``2n`` or ``2n+1``) inside its
own zone; the greedy step claims only unowned slots.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable

import numpy as np

from repro.baselines.projection import project_onto_available
from repro.core.schedule import Schedule

__all__ = [
    "DRDSSchedule",
    "build_global_sequence",
    "difference_coverage",
    "sequence_period",
]

_FILLER_VERIFY_LIMIT = 64  # verify at build time up to this universe size


def sequence_period(n: int) -> int:
    """Global sequence period ``m = 45 n^2 + 8n`` for universe size ``n``."""
    return 45 * n * n + 8 * n


def _component_indices(i: int, n: int) -> np.ndarray:
    """All slots owned by channel ``i`` in the global sequence."""
    block = 4 * n * i + np.arange(4 * n, dtype=np.int64)
    stride = 4 * n * n + i + 4 * n * np.arange(i, i + 5 * n, dtype=np.int64)
    column = 28 * n * n + i + 2 * n * np.arange(2 * n + 1, dtype=np.int64)
    slant = (
        32 * n * n
        + 2 * n
        + i
        + (2 * n + 1) * np.arange(6 * n, dtype=np.int64)
    )
    return np.concatenate([block, stride, column, slant])


def difference_coverage(elements: np.ndarray, m: int) -> np.ndarray:
    """Boolean mask over ``Z_m``: which differences ``a - b`` occur.

    Computed by FFT circular autocorrelation; counts are integers, so a
    0.5 threshold is immune to floating-point noise at these sizes.
    """
    indicator = np.zeros(m)
    indicator[np.asarray(elements) % m] = 1.0
    spectrum = np.fft.rfft(indicator)
    correlation = np.fft.irfft(spectrum * np.conj(spectrum), m)
    return correlation > 0.5


def _greedy_patch(
    owner: np.ndarray,
    channel: int,
    elements: np.ndarray,
    covered: np.ndarray,
    m: int,
) -> np.ndarray:
    """Complete a channel's difference coverage with pairs of free slots.

    For each still-uncovered difference ``d`` a free pair ``(x, x + d)``
    is claimed; coverage is updated incrementally, so the *bonus*
    differences each new element forms against the existing set
    drastically shrink the number of pairs needed (measured: ~3.5
    pairs per channel per unit of ``n``, against ~2.5x that much free
    space).  Deterministic: always the lowest-index free pair.
    """
    elements = list(elements)
    for d in np.flatnonzero(~covered):
        d = int(d)
        if covered[d]:
            continue
        free = np.flatnonzero(owner < 0)
        usable = free[owner[(free + d) % m] < 0]
        if usable.size == 0:
            raise AssertionError(
                f"DRDS patch failed for channel {channel}: no free pair "
                f"for difference {d}"
            )
        x = int(usable[0])
        y = (x + d) % m
        owner[x] = channel
        owner[y] = channel
        existing = np.asarray(elements, dtype=np.int64)
        for new in (x, y):
            covered[(new - existing) % m] = True
            covered[(existing - new) % m] = True
        covered[[0, d, (m - d) % m]] = True
        elements.extend((x, y))
    return np.asarray(elements, dtype=np.int64)


@functools.lru_cache(maxsize=32)
def build_global_sequence(n: int, verify: bool | None = None) -> np.ndarray:
    """Global DRDS channel sequence for universe size ``n``.

    Returns an int64 array ``w`` of length ``sequence_period(n)``; ``w[t]`` is the
    channel that *owns* slot ``t`` (unowned slots are filled with
    ``t mod n``, which does not affect the guarantee).
    """
    if n < 1:
        raise ValueError(f"universe size must be positive, got {n}")
    if verify is None:
        verify = n <= _FILLER_VERIFY_LIMIT
    m = sequence_period(n)
    owner = np.full(m, -1, dtype=np.int64)
    per_channel: list[np.ndarray] = []
    for i in range(n):
        idx = _component_indices(i, n)
        if idx.max() >= m:
            raise AssertionError(f"component overflow for channel {i}, n={n}")
        if (owner[idx] >= 0).any():
            clash = idx[owner[idx] >= 0][0]
            raise AssertionError(
                f"slot collision at {clash} between channels "
                f"{owner[clash]} and {i} (n={n})"
            )
        owner[idx] = i
        per_channel.append(idx)
    if verify:
        for i in range(n):
            mask = difference_coverage(per_channel[i], m)
            if not mask.all():
                per_channel[i] = _greedy_patch(owner, i, per_channel[i], mask, m)
                mask = difference_coverage(per_channel[i], m)
                if not mask.all():
                    raise AssertionError(
                        f"DRDS coverage incomplete for channel {i} after patch"
                    )
    sequence = owner.copy()
    filler = np.flatnonzero(sequence < 0)
    sequence[filler] = filler % n
    return sequence


class DRDSSchedule(Schedule):
    """DRDS global sequence projected onto an agent's available set.

    ``global_sequence`` optionally supplies the global sequence as an
    externally owned array — typically a read-only memmap attached from
    a :class:`~repro.core.store.ScheduleStore`
    (:meth:`~repro.core.store.ScheduleStore.global_sequence`), so many
    channel sets and processes share one materialization instead of
    each rebuilding the ``45 n^2 + 8n``-slot construction.
    """

    def __init__(
        self,
        channels: Iterable[int],
        n: int,
        global_sequence: np.ndarray | None = None,
    ):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        if global_sequence is None:
            global_sequence = build_global_sequence(n)
        elif len(global_sequence) != sequence_period(n):
            raise ValueError(
                f"global sequence has {len(global_sequence)} slots, "
                f"expected {sequence_period(n)} for n={n}"
            )
        self._global = global_sequence
        self.period = len(self._global)

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the global sequence, projected."""
        c = int(self._global[t % self.period])
        if c in self.channels:
            return c
        k = len(self.sorted_channels)
        return self.sorted_channels[c % k]

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Vectorized window: one gather from the global sequence,
        projected — no per-slot Python dispatch, and no per-set table
        when the window feeds the streaming engine."""
        if stop < start:
            raise ValueError(f"empty window: start={start}, stop={stop}")
        lo = start % self.period
        if lo + (stop - start) <= self.period:
            raw = self._global[lo : lo + (stop - start)]
        else:
            indices = np.arange(start, stop, dtype=np.int64) % self.period
            raw = self._global[indices]
        return project_onto_available(raw, self.sorted_channels)

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized scattered access: one global-sequence gather,
        projected — a whole streaming tile of scattered rows costs one
        fancy index into the (possibly memmapped) global array."""
        indices = np.asarray(indices, dtype=np.int64)
        raw = np.asarray(self._global)[indices % self.period]
        return project_onto_available(raw, self.sorted_channels)

    def _compute_period_array(self) -> np.ndarray:
        return self.channel_block(0, self.period)
