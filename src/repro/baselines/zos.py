"""ZOS baseline — after Lin, Yu, Liu, Leung, Chu (arXiv:1506.00744).

ZOS is the strongest *available-channel-set* baseline for the paper's
Table-1 comparison (paper under study: Chen et al., ICDCS 2014,
Section 1.2 related work): where CRSEQ/Jump-Stay/DRDS hop over the whole
universe ``[n]`` and pay ``O(n^2)``--``O(n^3)`` periods, ZOS generates
each agent's channel-hopping sequence from its own available set
``S``, ``m = |S|``, so both the period and the rendezvous guarantee
scale with ``m`` — matching the regime (``|S| << n``) where the paper's
``O(|S_i||S_j| log log n)`` construction shines.  Yu et al.'s companion
work (arXiv:1506.01136) motivates the same available-set workload
shapes; see :func:`repro.sim.workloads.available_overlap`.

Lin et al.'s exact subsequence parameterization is not reproduced in
the paper under study, so — like :mod:`repro.baselines.drds` — this
module implements the documented three-subsequence *skeleton* with our
own parameterization in the same guarantee class.  Each agent derives a
**collision-free modulus**: the smallest prime ``p > m`` under which its
channel IDs are pairwise distinct (:func:`collision_free_modulus`), so
every residue in ``Z_p`` names at most one of its channels.  Time is
divided into rounds of ``4p`` slots, each the concatenation of three
subsequences:

* **Z-subsequence** (``p`` slots) — stay on the *zero-residue anchor*:
  the channel with ID ``== 0 (mod p)`` if the set has one, else the
  smallest channel.  Rescues the corner where a common channel's global
  ID is ``0 (mod p)`` and the rate loop below can never name it.
* **O-subsequence** (``2p`` slots) — *orbit* over the residue space:
  slot ``j`` visits residue ``x = (i + j r) mod p`` for the round's
  start ``i`` and rate ``r``; residue ``x`` plays the agent's channel
  with ID ``== x (mod p)`` when it exists (its *native* slot) and a
  deterministic filler ``sorted(S)[x mod m]`` otherwise.
* **S-subsequence** (``p`` slots) — stay on the channel with ID
  ``== r (mod p)`` if present, else the filler ``sorted(S)[(r-1) mod m]``.

Rounds cycle the rate ``r`` through ``1 .. p-1`` (inner loop) and the
start ``i`` through ``0 .. p-1`` (outer loop), giving the full period
``4 p^2 (p-1) = Theta(m^3)`` — *independent of the universe size* ``n``
up to the collision-free gap.  Why every nonempty intersection meets,
for common channel ``g``:

* different moduli ``p != q``: while one agent stays on ``g`` (its S- or
  Z-subsequence names ``g`` whenever ``r == g (mod p)``, resp.
  ``g == 0 (mod p)``), the other's orbit covers *all* residues mod its
  own prime every ``q`` slots, so it plays ``g`` natively; the coprime
  round lengths ``4p`` and ``4q`` drift through every phase alignment.
* equal moduli, different rates in some round: the start loop drives the
  orbit pair ``(x_A, x_B)`` through every residue combination,
  including ``(g mod p, g mod p)`` — both native.
* equal moduli and rates forever (agents in lockstep translation, the
  adversarial case that breaks purely index-based local hopping): both
  S-subsequences are keyed to the *global* residue ``r``, so the round
  with ``r == g (mod p)`` has both agents staying on ``g`` itself; the
  Z-subsequence covers ``g == 0 (mod p)``.

Guarantee checks are recorded by ``benchmarks/test_zos_comparison.py``
via :func:`repro.core.verification.verify_guarantee` over exhaustive
shift ranges.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.primes import smallest_prime_greater_than
from repro.core.schedule import Schedule

__all__ = ["ZOSSchedule", "collision_free_modulus", "zos_period"]


def collision_free_modulus(channels: Iterable[int]) -> int:
    """Smallest prime ``p > m`` with all channel IDs distinct mod ``p``.

    Distinctness makes the residue -> channel map injective, which is
    what lets two agents agree on a common channel through its global
    residue alone.  The search always terminates: any prime exceeding
    the largest channel ID is collision-free.  In practice ``p`` lands
    on or near the first prime past ``m``; adversarially spaced IDs can
    push it to ``O~(m^2 log n)``, still universe-size-independent for
    the workloads the paper targets.
    """
    ordered = sorted(set(int(c) for c in channels))
    if not ordered:
        raise ValueError("channel set must be nonempty")
    p = smallest_prime_greater_than(len(ordered))
    while len({c % p for c in ordered}) < len(ordered):
        p = smallest_prime_greater_than(p)
    return p


def zos_period(p: int) -> int:
    """Full ZOS period for modulus ``p``: ``4p`` slots per round times
    ``p (p-1)`` rounds (rate inner loop, start outer loop)."""
    return 4 * p * p * (p - 1)


class ZOSSchedule(Schedule):
    """Z/O/S subsequence schedule keyed to the agent's available set."""

    def __init__(self, channels: Iterable[int], n: int):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        m = len(ordered)
        self.prime = p = collision_free_modulus(ordered)
        residue_of = {c % p: c for c in ordered}
        # Residue x -> channel played when the orbit visits x: the native
        # owner when the set has a channel == x (mod p), filler otherwise.
        self._residue_channel = np.asarray(
            [residue_of.get(x, ordered[x % m]) for x in range(p)],
            dtype=np.int64,
        )
        self._zero_anchor = residue_of.get(0, ordered[0])
        # S-subsequence channel per rate r in 1..p-1 (index r-1).
        self._stay_channel = np.asarray(
            [residue_of.get(r, ordered[(r - 1) % m]) for r in range(1, p)],
            dtype=np.int64,
        )
        self.period = zos_period(p)

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: Z, O or S subsequence of the round."""
        p = self.prime
        round_index, offset = divmod(t % self.period, 4 * p)
        if offset < p:  # Z-subsequence
            return int(self._zero_anchor)
        rate = (round_index % (p - 1)) + 1
        if offset < 3 * p:  # O-subsequence
            start = (round_index // (p - 1)) % p
            x = (start + (offset - p) * rate) % p
            return int(self._residue_channel[x])
        return int(self._stay_channel[rate - 1])  # S-subsequence

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Vectorized window: the Z/O/S anatomy evaluated in closed form.

        Lets the streaming engine sweep ZOS at set sizes whose
        ``Theta(m^3)`` period exceeds the batched engine's table limit.
        """
        if stop < start:
            raise ValueError(f"empty window: start={start}, stop={stop}")
        return self.channel_gather(np.arange(start, stop, dtype=np.int64))

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized scattered access: the Z/O/S anatomy, elementwise.

        The same closed form as :meth:`channel_block`, over any index
        array — one evaluation for a whole streaming tile of scattered
        rows.
        """
        p = self.prime
        t = np.asarray(indices, dtype=np.int64) % self.period
        round_index, offset = np.divmod(t, 4 * p)
        rate = (round_index % (p - 1)) + 1
        orbit_start = (round_index // (p - 1)) % p
        x = (orbit_start + (offset - p) * rate) % p
        out = np.where(
            offset < 3 * p,
            self._residue_channel[x],
            self._stay_channel[rate - 1],
        )
        return np.where(offset < p, self._zero_anchor, out)

    def _compute_period_array(self) -> np.ndarray:
        """Vectorized full-period materialization.

        Assembles the ``(round, slot)`` matrix in one shot: the Z and S
        columns broadcast from per-round scalars, the O columns gather
        from the residue lookup — no per-slot Python dispatch, so the
        batched verification engine gets its table in milliseconds even
        at the ``Theta(m^3)`` period.
        """
        p = self.prime
        rounds = p * (p - 1)
        k = np.arange(rounds, dtype=np.int64)
        rate = (k % (p - 1)) + 1
        start = (k // (p - 1)) % p
        table = np.empty((rounds, 4 * p), dtype=np.int64)
        table[:, :p] = self._zero_anchor
        j = np.arange(2 * p, dtype=np.int64)
        orbit = (start[:, None] + j[None, :] * rate[:, None]) % p
        table[:, p : 3 * p] = self._residue_channel[orbit]
        table[:, 3 * p :] = self._stay_channel[rate - 1][:, None]
        return table.reshape(-1)
