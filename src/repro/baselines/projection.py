"""Vectorized projection of a global sequence onto an available set.

Every global-sequence baseline in this package (CRSEQ, Jump-Stay, DRDS,
AsyncETCH) plays one universe-wide channel sequence *projected* onto
the agent's available set: a slot whose global channel the agent owns
is played natively, anything else maps deterministically to
``available[c mod k]``.  The scalar form lives in each baseline's
``channel_at``; this helper is the shared window-at-a-time form that
their ``channel_block`` / ``_compute_period_array`` overrides build on,
which is what makes those baselines streamable
(:mod:`repro.core.stream`) without per-slot Python dispatch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_onto_available"]


def project_onto_available(
    raw: np.ndarray, sorted_channels: tuple[int, ...]
) -> np.ndarray:
    """Project raw global channels onto an agent's available set.

    ``raw`` holds global channel ids (already reduced mod ``n`` where
    the construction requires it); ids the agent owns pass through,
    every other id ``c`` maps to ``sorted_channels[c mod k]`` — the
    same rule as the baselines' scalar ``channel_at`` paths.
    """
    available = np.asarray(sorted_channels, dtype=np.int64)
    raw = np.asarray(raw, dtype=np.int64)
    native = np.isin(raw, available)
    return np.where(native, raw, available[raw % available.size])
