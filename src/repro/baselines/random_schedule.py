"""The naive randomized baseline (Chen et al., ICDCS 2014, Section 1.2).

Each agent hops on a channel drawn uniformly at random from its set in
every slot.  The paper notes this gives rendezvous in
``O(|S_i||S_j| log n)`` slots *with high probability* — but it needs a
random source and gives no deterministic guarantee, which is exactly the
gap the paper's deterministic constructions close.

The schedule is seeded so experiments are reproducible; distinct agents
should receive distinct seeds (the simulator handles this).  A finite
pseudo-random tape of ``tape_length`` slots is cycled — long enough that
experiments never wrap in practice.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.schedule import Schedule

__all__ = ["RandomSchedule"]


class RandomSchedule(Schedule):
    """Uniform random hopping over the agent's channel set."""

    def __init__(
        self,
        channels: Iterable[int],
        n: int,
        seed: int = 0,
        tape_length: int = 1 << 18,
    ):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        if tape_length <= 0:
            raise ValueError("tape_length must be positive")
        self.n = n
        self.seed = seed
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, len(ordered), size=tape_length)
        self._tape = np.asarray(ordered, dtype=np.int64)[picks]
        self.period = tape_length

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the seeded tape, read cyclically."""
        return int(self._tape[t % self.period])

    def _period_array(self) -> np.ndarray:
        return self._tape
