"""CRSEQ baseline — Shin, Yang, Kim (IEEE Communications Letters 2010).

The first construction guaranteeing asynchronous blind rendezvous,
cited in the paper under study (Chen et al., ICDCS 2014) in Section 1.2
and Table 1 with ``O(n^2)`` rendezvous time for both the asymmetric and
symmetric cases — the quadratic envelope the paper's
``O(|S_i||S_j| log log n)`` schedule is measured against.

Construction (channels 0-indexed): let ``P`` be the smallest prime with
``P >= n``.  The global sequence has period ``3 P^2``, divided into ``P``
subsequences of ``3P`` slots each.  Subsequence ``i`` consists of

* ``2P`` *jump* slots: channel ``(T_i + j) mod P`` for ``j = 0..2P-1``,
  where ``T_i = i (i+1) / 2`` is the i-th triangular number (the
  triangular offsets guarantee distinct relative phases under shifts);
* ``P`` *stay* slots on channel ``i``.

An agent plays the global sequence projected onto its available set:
channels outside the set map to ``available[c mod k]``.  Rendezvous is
guaranteed on the slots where both agents natively play a common channel.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.projection import project_onto_available
from repro.core.primes import smallest_prime_at_least
from repro.core.schedule import Schedule

__all__ = [
    "CRSEQSchedule",
    "crseq_global_channel",
    "crseq_global_block",
    "crseq_global_values",
]


def crseq_global_channel(t: int, prime: int) -> int:
    """Channel of the *global* CRSEQ sequence at slot ``t`` (in ``[0, P)``)."""
    if t < 0:
        raise ValueError(f"slot must be nonnegative, got {t}")
    period = 3 * prime * prime
    t %= period
    subsequence, offset = divmod(t, 3 * prime)
    if offset < 2 * prime:
        triangular = subsequence * (subsequence + 1) // 2
        return (triangular + offset) % prime
    return subsequence


def crseq_global_values(t: np.ndarray, prime: int) -> np.ndarray:
    """Global CRSEQ channels at an arbitrary array of slot indices.

    The closed form of :func:`crseq_global_channel` evaluated
    elementwise over any index array.  Shared by
    :func:`crseq_global_block` (contiguous windows) and
    :meth:`CRSEQSchedule.channel_gather` (scattered tile rows).
    """
    t = np.asarray(t, dtype=np.int64) % (3 * prime * prime)
    subsequence, offset = np.divmod(t, 3 * prime)
    triangular = subsequence * (subsequence + 1) // 2
    return np.where(offset < 2 * prime, (triangular + offset) % prime, subsequence)


def crseq_global_block(start: int, stop: int, prime: int) -> np.ndarray:
    """Global CRSEQ channels for slots ``start .. stop-1``, vectorized.

    The closed form of :func:`crseq_global_channel` over a whole window
    — the chunk source for the streaming engine's tiles.
    """
    if stop < start:
        raise ValueError(f"empty window: start={start}, stop={stop}")
    return crseq_global_values(np.arange(start, stop, dtype=np.int64), prime)


class CRSEQSchedule(Schedule):
    """CRSEQ projected onto an agent's available channel set."""

    def __init__(self, channels: Iterable[int], n: int):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.prime = smallest_prime_at_least(n)
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        self.period = 3 * self.prime * self.prime

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the global sequence, projected."""
        c = crseq_global_channel(t, self.prime)
        if c in self.channels:
            return c
        k = len(self.sorted_channels)
        return self.sorted_channels[c % k]

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Vectorized window: closed-form global channels, projected."""
        raw = crseq_global_block(start, stop, self.prime)
        return project_onto_available(raw, self.sorted_channels)

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized scattered access: closed-form channels, projected.

        One closed-form evaluation plus one projection pass for a whole
        streaming tile of scattered rows.
        """
        raw = crseq_global_values(indices, self.prime)
        return project_onto_available(raw, self.sorted_channels)

    def _compute_period_array(self) -> np.ndarray:
        return self.channel_block(0, self.period)
