"""Jump-Stay baseline — Lin, Liu, Chu, Leung (INFOCOM 2011).

Cited in the paper under study (Chen et al., ICDCS 2014) in Section 1.2
and Table 1 with ``O(n^3)`` asymmetric and ``O(n)`` symmetric
rendezvous time; the cubic global period is the baseline the paper's
coalition scenario (Section 1.3, |S| << n) is designed to escape.

Construction (channels 0-indexed): let ``P`` be the smallest prime
``P > n``.  Time is divided into *rounds* of ``3P`` slots: ``2P`` jump
slots followed by ``P`` stay slots.  Round ``m`` uses

* step ``r = (m mod (P-1)) + 1`` (cycling through ``1..P-1``) and
* start ``i = (m div (P-1)) mod P``;
* jump slot ``j`` plays channel ``(i + j*r) mod P``;
* stay slots play channel ``r``.

Channels ``>= n`` remap to ``c mod n``; unavailable channels project to
``available[c mod k]``.  The full pattern period is ``3P * P * (P-1)``,
which is the ``O(n^3)`` in Table 1.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.primes import smallest_prime_greater_than
from repro.core.schedule import Schedule

__all__ = ["JumpStaySchedule", "jump_stay_global_channel"]


def jump_stay_global_channel(t: int, prime: int) -> int:
    """Channel of the global Jump-Stay sequence at slot ``t`` (in ``[0, P)``)."""
    if t < 0:
        raise ValueError(f"slot must be nonnegative, got {t}")
    round_index, offset = divmod(t, 3 * prime)
    step = (round_index % (prime - 1)) + 1
    start = (round_index // (prime - 1)) % prime
    if offset < 2 * prime:
        return (start + offset * step) % prime
    return step


class JumpStaySchedule(Schedule):
    """Jump-Stay projected onto an agent's available channel set."""

    def __init__(self, channels: Iterable[int], n: int):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.prime = smallest_prime_greater_than(n)
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        self.period = 3 * self.prime * self.prime * (self.prime - 1)

    def channel_at(self, t: int) -> int:
        c = jump_stay_global_channel(t % self.period, self.prime)
        c %= self.n
        if c in self.channels:
            return c
        k = len(self.sorted_channels)
        return self.sorted_channels[c % k]
