"""Jump-Stay baseline — Lin, Liu, Chu, Leung (INFOCOM 2011).

Cited in the paper under study (Chen et al., ICDCS 2014) in Section 1.2
and Table 1 with ``O(n^3)`` asymmetric and ``O(n)`` symmetric
rendezvous time; the cubic global period is the baseline the paper's
coalition scenario (Section 1.3, |S| << n) is designed to escape.

Construction (channels 0-indexed): let ``P`` be the smallest prime
``P > n``.  Time is divided into *rounds* of ``3P`` slots: ``2P`` jump
slots followed by ``P`` stay slots.  Round ``m`` uses

* step ``r = (m mod (P-1)) + 1`` (cycling through ``1..P-1``) and
* start ``i = (m div (P-1)) mod P``;
* jump slot ``j`` plays channel ``(i + j*r) mod P``;
* stay slots play channel ``r``.

Channels ``>= n`` remap to ``c mod n``; unavailable channels project to
``available[c mod k]``.  The full pattern period is ``3P * P * (P-1)``,
which is the ``O(n^3)`` in Table 1.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.projection import project_onto_available
from repro.core.primes import smallest_prime_greater_than
from repro.core.schedule import Schedule

__all__ = [
    "JumpStaySchedule",
    "jump_stay_global_channel",
    "jump_stay_global_block",
    "jump_stay_global_values",
]


def jump_stay_global_channel(t: int, prime: int) -> int:
    """Channel of the global Jump-Stay sequence at slot ``t`` (in ``[0, P)``)."""
    if t < 0:
        raise ValueError(f"slot must be nonnegative, got {t}")
    round_index, offset = divmod(t, 3 * prime)
    step = (round_index % (prime - 1)) + 1
    start = (round_index // (prime - 1)) % prime
    if offset < 2 * prime:
        return (start + offset * step) % prime
    return step


def jump_stay_global_values(t: np.ndarray, prime: int) -> np.ndarray:
    """Global Jump-Stay channels at an arbitrary array of slot indices.

    The closed form of :func:`jump_stay_global_channel` evaluated
    elementwise over any index array (the construction is naturally
    periodic, so raw slot indices need no reduction).  Shared by
    :func:`jump_stay_global_block` (contiguous windows) and
    :meth:`JumpStaySchedule.channel_gather` (scattered tile rows).
    """
    t = np.asarray(t, dtype=np.int64)
    round_index, offset = np.divmod(t, 3 * prime)
    step = (round_index % (prime - 1)) + 1
    start_channel = (round_index // (prime - 1)) % prime
    jump = (start_channel + offset * step) % prime
    return np.where(offset < 2 * prime, jump, step)


def jump_stay_global_block(start: int, stop: int, prime: int) -> np.ndarray:
    """Global Jump-Stay channels for slots ``start .. stop-1``, vectorized.

    The closed form of :func:`jump_stay_global_channel` over a whole
    window — the streaming engine generates its tiles from this, so
    Jump-Stay's cubic period never needs to be materialized.
    """
    if stop < start:
        raise ValueError(f"empty window: start={start}, stop={stop}")
    return jump_stay_global_values(np.arange(start, stop, dtype=np.int64), prime)


class JumpStaySchedule(Schedule):
    """Jump-Stay projected onto an agent's available channel set."""

    def __init__(self, channels: Iterable[int], n: int):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.prime = smallest_prime_greater_than(n)
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        self.period = 3 * self.prime * self.prime * (self.prime - 1)

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the global sequence, projected."""
        c = jump_stay_global_channel(t % self.period, self.prime)
        c %= self.n
        if c in self.channels:
            return c
        k = len(self.sorted_channels)
        return self.sorted_channels[c % k]

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Vectorized window: closed-form global channels, projected.

        This is what keeps Jump-Stay streamable past ``n = 128``, where
        its cubic period exceeds the batched engine's table limit.
        """
        raw = jump_stay_global_block(start, stop, self.prime) % self.n
        return project_onto_available(raw, self.sorted_channels)

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized scattered access: closed-form channels, projected.

        A whole ``(shift row, time)`` tile of the streaming engine costs
        one closed-form evaluation and one projection pass, instead of
        one ``channel_block`` call (and one ``np.isin``) per row.
        """
        raw = jump_stay_global_values(indices, self.prime) % self.n
        return project_onto_available(raw, self.sorted_channels)

    def _compute_period_array(self) -> np.ndarray:
        return self.channel_block(0, self.period)
