"""Baseline rendezvous algorithms from the paper's Table 1.

========================  =======================  =================
Algorithm                 Asymmetric guarantee     Symmetric
========================  =======================  =================
``random``                ``O(k l log n)`` (whp)   ``O(k^2 log n)``
``crseq`` (Shin et al.)   ``O(n^2)``               ``O(n^2)``
``jump-stay`` (Lin et     ``O(n^3)``               ``O(n)``
al.)
``drds`` (after Gu et     ``O(n^2)``               measured
al.)
========================  =======================  =================

The paper's construction (``repro.core``) achieves
``O(|S_i||S_j| log log n)`` asymmetric and ``O(1)`` symmetric.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.crseq import CRSEQSchedule
from repro.baselines.drds import DRDSSchedule
from repro.baselines.jump_stay import JumpStaySchedule
from repro.baselines.random_schedule import RandomSchedule
from repro.core.schedule import Schedule

__all__ = [
    "CRSEQSchedule",
    "JumpStaySchedule",
    "DRDSSchedule",
    "RandomSchedule",
    "build_baseline",
    "BASELINE_NAMES",
]

BASELINE_NAMES = ("crseq", "jump-stay", "drds", "random")


def build_baseline(
    channels: Iterable[int],
    n: int,
    algorithm: str,
    seed: int = 0,
) -> Schedule:
    """Instantiate a baseline schedule by name (see :data:`BASELINE_NAMES`)."""
    if algorithm == "crseq":
        return CRSEQSchedule(channels, n)
    if algorithm == "jump-stay":
        return JumpStaySchedule(channels, n)
    if algorithm == "drds":
        return DRDSSchedule(channels, n)
    if algorithm == "random":
        return RandomSchedule(channels, n, seed=seed)
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected one of {BASELINE_NAMES} "
        "or a 'paper*' variant handled by repro.build_schedule"
    )
