"""Baseline rendezvous algorithms from the paper's Table 1 (Section 1.2).

========================  =======================  =================
Algorithm                 Asymmetric guarantee     Symmetric
========================  =======================  =================
``random``                ``O(k l log n)`` (whp)   ``O(k^2 log n)``
``crseq`` (Shin et al.)   ``O(n^2)``               ``O(n^2)``
``jump-stay`` (Lin et     ``O(n^3)``               ``O(n)``
al.)
``drds`` (after Gu et     ``O(n^2)``               measured
al.)
``zos`` (after Lin et     ``O~(m^3)`` in ``m``,    measured
al. 2015)                 free of ``n``
``async-etch`` (after     ``O(n^3)`` anonymized    measured
Zhang et al. 2011)
========================  =======================  =================

The paper's construction (``repro.core``) achieves
``O(|S_i||S_j| log log n)`` asymmetric and ``O(1)`` symmetric.  ZOS is
the available-channel-set baseline: its period and guarantee scale with
the set size ``m = |S|`` rather than the universe size ``n``, making it
the fair comparison point in the paper's ``|S| << n`` regime.

Registry contract: every name in :data:`BASELINE_NAMES` is accepted by
:func:`build_baseline`, by :func:`repro.build_schedule`, by the
``python -m repro`` CLI's ``--algorithm`` flag, and by
:class:`repro.sim.SweepRunner` — adding an entry to :data:`_BUILDERS`
propagates it everywhere, benchmarks and examples included.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.asyncetch import AsyncETCHSchedule
from repro.baselines.crseq import CRSEQSchedule
from repro.baselines.drds import DRDSSchedule
from repro.baselines.jump_stay import JumpStaySchedule
from repro.baselines.random_schedule import RandomSchedule
from repro.baselines.zos import ZOSSchedule
from repro.core.schedule import Schedule
from repro.core.store import ScheduleStore

__all__ = [
    "AsyncETCHSchedule",
    "CRSEQSchedule",
    "JumpStaySchedule",
    "DRDSSchedule",
    "RandomSchedule",
    "ZOSSchedule",
    "build_baseline",
    "BASELINE_NAMES",
    "DETERMINISTIC_BASELINES",
]

_BUILDERS = {
    "crseq": lambda channels, n, seed: CRSEQSchedule(channels, n),
    "jump-stay": lambda channels, n, seed: JumpStaySchedule(channels, n),
    "drds": lambda channels, n, seed: DRDSSchedule(channels, n),
    "zos": lambda channels, n, seed: ZOSSchedule(channels, n),
    "async-etch": lambda channels, n, seed: AsyncETCHSchedule(channels, n),
    "random": lambda channels, n, seed: RandomSchedule(channels, n, seed=seed),
}

BASELINE_NAMES = tuple(_BUILDERS)

#: Baselines with a worst-case guarantee (everything but ``random``) —
#: the set examples and benchmarks iterate when certifying rendezvous.
DETERMINISTIC_BASELINES = tuple(n for n in BASELINE_NAMES if n != "random")


def build_baseline(
    channels: Iterable[int],
    n: int,
    algorithm: str,
    seed: int = 0,
    store: ScheduleStore | None = None,
) -> Schedule:
    """Instantiate a baseline schedule by name (see :data:`BASELINE_NAMES`).

    With ``store=`` the period table comes from (or is materialized
    into) the given :class:`~repro.core.store.ScheduleStore` instead of
    being rebuilt in-process.
    """
    if store is not None:
        return store.get(channels, n, algorithm, seed=seed)
    builder = _BUILDERS.get(algorithm)
    if builder is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {BASELINE_NAMES} "
            "or a 'paper*' variant handled by repro.build_schedule"
        )
    return builder(channels, n, seed)
