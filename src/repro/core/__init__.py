"""Core constructions of the paper (Sections 2-3) and their substrates.

Submodules
----------
bitstrings
    Walk toolkit: balanced / Catalan / t-maximal predicates, rotations.
knuth
    Balanced encoding ``K(x)``.
catalan
    The maps ``U``, ``M`` and the headline ``R(z)`` of Theorem 1.
ramsey
    2-Ramsey edge coloring of the linear poset (Lemma 2).
pairwise
    Size-two schedules (Theorem 1), synchronous and asynchronous.
primes, crt
    Number-theoretic substrates for Theorem 3.
epoch
    The general n-schedule (Theorem 3).
symmetric
    The O(1) symmetric-case wrapper (Section 3.2).
schedule
    Schedule abstractions shared by all constructions.
verification
    Executable rendezvous-time definitions (Section 2), plus the
    degradation-report mode that certifies which shift classes keep
    the meeting guarantee under a fault environment.
environment
    Deterministic, seeded fault-injection layer: primary-user churn,
    fading misses, and asymmetric sensing expressed as vectorized
    per-slot validity masks that every sweep engine applies
    bit-identically.
batch
    Batched shift-sweep engine: whole TTR profiles in one vectorized
    pass over a ``(shift, time)`` coincidence matrix — and the engine
    dispatcher (scalar / batched / stream).
stream
    Streaming tiled-sweep engine: the same profiles computed in
    fixed-byte ``(shift, time)`` tiles generated on demand, for
    schedules whose period is too large to table — blocked over
    intra-pair worker lanes, with an L2/L3-aware tile-plan auto-tuner
    (``plan_tiles``) and a single-threaded reference scan.
store
    Shared-memory schedule store: period tables materialized once as
    read-only memmaps and attached by every sweep process (sharded
    digest-prefix layout, multi-root read path); also shares the
    global DRDS sequence across channel sets.
results
    Persistent result cache: whole sweep measurements keyed by a
    content digest of their engine-invariant inputs, served back in
    microseconds — the database layer behind ``python -m repro serve``.
telemetry
    Process-local observability registry: named counters, gauges, and
    nested timing spans that every hot path reports into — zero
    overhead when disabled, never observable by results, surfaced as
    ``--telemetry text|json`` on the CLIs (``docs/OBSERVABILITY.md``).
"""

from repro.core.environment import (
    AsymmetricSensing,
    ComposedEnvironment,
    Environment,
    FadingMisses,
    PrimaryUserChurn,
    compose,
    environment_digest,
    parse_environment,
)
from repro.core.epoch import EpochSchedule, rendezvous_bound
from repro.core.pairwise import (
    async_period,
    pair_schedule_async,
    pair_schedule_sync,
    sync_period,
)
from repro.core.schedule import (
    ConstantSchedule,
    CyclicSchedule,
    FunctionSchedule,
    Schedule,
)
from repro.core.results import ResultStore
from repro.core.store import ScheduleStore, StoredSchedule
from repro.core.stream import SweepCheckpoint
from repro.core.symmetric import SymmetricWrappedSchedule

__all__ = [
    "EpochSchedule",
    "rendezvous_bound",
    "async_period",
    "sync_period",
    "pair_schedule_async",
    "pair_schedule_sync",
    "Schedule",
    "CyclicSchedule",
    "ConstantSchedule",
    "FunctionSchedule",
    "SymmetricWrappedSchedule",
    "ScheduleStore",
    "StoredSchedule",
    "ResultStore",
    "SweepCheckpoint",
    "Environment",
    "FadingMisses",
    "PrimaryUserChurn",
    "AsymmetricSensing",
    "ComposedEnvironment",
    "compose",
    "environment_digest",
    "parse_environment",
]
