"""Size-two channel-set schedules (paper Theorem 1).

Agents whose channel set has exactly two elements ``{a, b}`` (``a < b``)
express their schedule as a binary string: ``0`` hops on the smaller
channel, ``1`` on the larger.  Rendezvous between two such agents reduces
to realizing specific bit tuples at aligned slots:

* sets sharing their smaller (or larger) element need a simultaneous
  ``(0,0)`` (resp. ``(1,1)``);
* sets forming a directed path (the shared element is the larger of one
  and the smaller of the other) need ``(0,1)`` and ``(1,0)``.

The synchronous map ``C(x) = 01 || x || wt(x)_2`` and the asynchronous map
``R(x)`` (:mod:`repro.core.catalan`) guarantee those tuples for any two
colors ``x, y`` of the 2-Ramsey coloring; the coloring guarantees that
path-forming edges receive distinct colors.

Every schedule built here for a fixed universe size ``n`` has the same
period (:func:`async_period` / :func:`sync_period`) — the epoch
construction of Theorem 3 relies on that.
"""

from __future__ import annotations

from repro.core.bitstrings import complement, encode_int, int_bit_width, weight
from repro.core.catalan import r_length, r_map
from repro.core.ramsey import color_bits, color_width, edge_color
from repro.core.schedule import CyclicSchedule

__all__ = [
    "sync_pair_string",
    "async_pair_string",
    "sync_period",
    "async_period",
    "pair_schedule_sync",
    "pair_schedule_async",
    "string_to_schedule",
]


def sync_pair_string(x: str) -> str:
    """The synchronous map ``C(x) = 01 || x || complement(wt(x)_2)``.

    The ``01`` prefix realizes ``(0,0)`` and ``(1,1)`` against any other
    ``C``-image at time 0/1 (synchronous start); the weight tail realizes
    the missing cross tuple for distinct inputs of equal length.

    **Paper erratum** (found by this reproduction's tests, documented in
    docs/ARCHITECTURE.md, deviations): the paper writes the tail as ``wt(x)_2``, but then for
    ``wt(x) < wt(y)`` the canonical-encoding property produces *another*
    ``(0,1)`` coordinate, not the required ``(1,0)`` — e.g. weights 1 vs 3
    encode as ``01`` vs ``11`` and no coordinate realizes ``(1,0)``
    anywhere in ``C(x), C(y)``.  Appending the *complement* of the weight
    encoding repairs the argument: ``wt(x) < wt(y)`` gives a coordinate
    with 0 in ``wt(x)_2`` and 1 in ``wt(y)_2``, hence ``(1,0)`` after
    complementing, while the body still supplies ``(0,1)``.
    """
    tail = encode_int(weight(x), int_bit_width(len(x)))
    return "01" + x + complement(tail)


def async_pair_string(x: str) -> str:
    """The asynchronous map ``R(x)``; see :mod:`repro.core.catalan`."""
    return r_map(x)


def sync_period(n: int) -> int:
    """``|C(x)|`` for the fixed color width of universe size ``n``."""
    width = color_width(n)
    return 2 + width + int_bit_width(width)


def async_period(n: int) -> int:
    """``|R(x)|`` for the fixed color width of universe size ``n``.

    This is ``Theta(log log n)``: the color width is
    ``~log log n`` bits and ``R`` adds ``O(log log log n)`` overhead.
    """
    return r_length(color_width(n))


def string_to_schedule(bits: str, low: int, high: int) -> CyclicSchedule:
    """Interpret a bit string as a cyclic schedule over ``{low, high}``."""
    if not low < high:
        raise ValueError(f"need low < high, got {low}, {high}")
    return CyclicSchedule([low if bit == "0" else high for bit in bits])


def _pair_color_string(a: int, b: int, n: int, asynchronous: bool) -> str:
    low, high = min(a, b), max(a, b)
    x = color_bits(edge_color(low, high, n), n)
    return async_pair_string(x) if asynchronous else sync_pair_string(x)


def pair_schedule_sync(a: int, b: int, n: int) -> CyclicSchedule:
    """Synchronous-model schedule for the set ``{a, b}`` in universe ``n``.

    Guarantees synchronous rendezvous with the schedule of any overlapping
    size-two set within ``sync_period(n)`` slots.
    """
    if a == b:
        raise ValueError("pair schedule needs two distinct channels")
    low, high = min(a, b), max(a, b)
    return string_to_schedule(_pair_color_string(a, b, n, False), low, high)


def pair_schedule_async(a: int, b: int, n: int) -> CyclicSchedule:
    """Asynchronous-model schedule for the set ``{a, b}`` in universe ``n``.

    Guarantees rendezvous with the schedule of any overlapping size-two
    set within ``async_period(n)`` slots, for **every** relative shift of
    the two cyclic schedules (Theorem 1).
    """
    if a == b:
        raise ValueError("pair schedule needs two distinct channels")
    low, high = min(a, b), max(a, b)
    return string_to_schedule(_pair_color_string(a, b, n, True), low, high)
