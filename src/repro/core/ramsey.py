"""2-Ramsey edge coloring of the linear poset ``L_n`` (paper Lemma 2).

``L_n`` is the complete DAG on channels with edges ``(a, b)`` for
``a < b``.  A *2-Ramsey* coloring assigns colors so that no directed path
of length two is monochromatic: ``chi(a, b) != chi(b, c)`` whenever
``a < b < c``.  The paper achieves a palette of ``ceil(log2 n)`` colors by
coloring ``(a, b)`` with any bit position set in ``b`` but not in ``a``.

Conventions (see docs/ARCHITECTURE.md, deviations):

* Channels are **0-indexed**: ``0 .. n-1``.  (With the paper's 1-indexed
  channels, vertex ``n`` may need a bit outside the claimed palette; with
  0-indexing the palette width ``max(1, ceil(log2 n))`` is exact.)
* The canonical color is the **highest** bit of ``b & ~a`` — any choice
  works for correctness; the ablation bench compares alternatives.

Why a nonempty choice always exists: if every set bit of ``b`` were also
set in ``a``, then ``a`` would bitwise-dominate ``b`` and hence ``a >= b``,
contradicting ``a < b``.
"""

from __future__ import annotations

__all__ = ["palette_width", "edge_color", "color_width", "color_bits"]

from repro.core.bitstrings import encode_int, even_width, int_bit_width


def palette_width(n: int) -> int:
    """Number of colors used for universe size ``n`` (``log# n``, floored at 1)."""
    if n < 2:
        raise ValueError(f"a coloring needs at least 2 channels, got n={n}")
    return int_bit_width(n - 1)


def edge_color(a: int, b: int, n: int, *, lowest: bool = False) -> int:
    """Color of the poset edge ``(a, b)`` with ``0 <= a < b < n``.

    Returns a bit position in ``[0, palette_width(n))`` that is set in
    ``b`` and clear in ``a``.  With ``lowest=True`` the lowest such bit is
    used instead of the highest (ablation knob; both are valid 2-Ramsey
    colorings).
    """
    if not 0 <= a < b < n:
        raise ValueError(f"edge_color requires 0 <= a < b < n, got a={a} b={b} n={n}")
    difference = b & ~a
    if difference == 0:
        raise AssertionError(f"no distinguishing bit for a={a} < b={b}; unreachable")
    if lowest:
        return (difference & -difference).bit_length() - 1
    return difference.bit_length() - 1


def color_width(n: int) -> int:
    """Even bit width of the canonical color encoding for universe ``n``.

    All colors of a given universe are encoded at this fixed width so that
    every size-two schedule of the universe has the same period.
    """
    return even_width(int_bit_width(palette_width(n) - 1))


def color_bits(color: int, n: int) -> str:
    """Fixed-width binary encoding of ``color`` for universe size ``n``."""
    if not 0 <= color < palette_width(n):
        raise ValueError(
            f"color {color} outside palette [0, {palette_width(n)}) for n={n}"
        )
    return encode_int(color, color_width(n))
