"""Array-namespace seam between the streaming scan and its array library.

The streaming engine's hot path (:mod:`repro.core.stream`) is a handful
of dense tile operations — gather host rows into a ``(shifts, time)``
tile, compare against the fixed side, AND in an environment mask,
reduce each row to its first coincidence, retire hit rows.  Every one
of those is embarrassingly data-parallel, so nothing about the scan
logic is numpy-specific.  This module pins down the *seam*: the scan
calls exactly the small vocabulary below through an
:class:`ArrayBackend` object, never ``np.*`` directly, so an alternate
array library (GPU, SIMD, or an instrumented fake) can execute the
identical tiles without touching first-meet semantics.

The contract, in brief:

* **Host vs device.**  Tile *assembly* stays on the host: schedules'
  ``channel_block`` / ``channel_gather`` closed forms, store memmaps,
  and environment masks all produce host numpy arrays.
  :meth:`ArrayBackend.from_host` is the single transfer point into the
  backend's array space ("device"), :meth:`ArrayBackend.to_host` the
  single point back.  Device arrays are opaque to the scan — it never
  indexes, compares, or iterates one except through backend methods
  (indices handed to :meth:`ArrayBackend.take` are host arrays).
* **Bit-identical semantics.**  ``equal`` broadcasts like numpy;
  ``argmax`` returns the *first* index of the maximum — the scan's
  first-meet retirement depends on that tie rule, and
  :func:`conformance_checklist` rejects backends that break it.
* **Selection.**  :func:`resolve_backend` turns the user-facing
  ``backend="auto"|"numpy"|"<name>"|"module:attr"`` spec (threaded
  through :func:`repro.core.batch.ttr_sweep`,
  :class:`repro.sim.runner.SweepRunner`, and ``repro sweep
  --backend``) into an instance; ``"auto"`` honours the
  ``REPRO_BACKEND`` environment variable and otherwise picks numpy.

Two backends ship in-tree: :class:`NumpyBackend` (the default;
``from_host``/``to_host`` are identity, so the seam adds only a method
call per *tile*, not per cell) and :class:`RecordingBackend` — the
conformance instrument.  It computes with numpy but wraps every device
array in an opaque box that raises on any ``np.*``-style use, so
running a full scan through it *proves* the scan never bypasses the
seam; it also records every op for inspection.  Third-party backends
certify themselves with :func:`check_conformance`, which replays the
checklist plus an end-to-end parity scan against numpy.
"""

from __future__ import annotations

import importlib
import os
from collections.abc import Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "RecordingBackend",
    "register_backend",
    "resolve_backend",
    "conformance_checklist",
    "check_conformance",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted by ``backend="auto"`` — set it to any
#: spec :func:`resolve_backend` accepts to switch the default backend
#: process-wide (e.g. in CI conformance runs).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class ArrayBackend:
    """The ~10-op array vocabulary the streaming tile scan consumes.

    Subclass and override every op to plug in an alternate array
    library; ``name`` identifies the backend in telemetry, worker
    payloads, and error messages.  Ops must match numpy semantics
    bit-for-bit on int64/bool inputs — :func:`conformance_checklist`
    spells the contract out as executable checks.  The base class
    raises on every op so a partial implementation fails loudly.
    """

    #: Identifier used in dispatch, worker payloads, and diagnostics.
    name = "abstract"

    def _unimplemented(self, op: str):
        raise NotImplementedError(
            f"backend {self.name!r} does not implement {op!r}"
        )

    def from_host(self, array: np.ndarray):
        """Move a host numpy array into this backend's array space."""
        self._unimplemented("from_host")

    def to_host(self, array) -> np.ndarray:
        """Move a device array back to a host numpy array."""
        self._unimplemented("to_host")

    def asarray(self, values, dtype=None):
        """Build a device array from host values (lists or arrays)."""
        self._unimplemented("asarray")

    def full(self, shape, fill_value, dtype=None):
        """A device array of ``shape`` filled with ``fill_value``."""
        self._unimplemented("full")

    def arange(self, start: int, stop: int):
        """Device ``[start, stop)`` int64 range."""
        self._unimplemented("arange")

    def take(self, array, indices: np.ndarray, axis: int = 0):
        """Select rows/elements of a device array by *host* indices."""
        self._unimplemented("take")

    def equal(self, a, b):
        """Elementwise ``a == b`` with numpy broadcasting rules."""
        self._unimplemented("equal")

    def logical_and(self, a, b):
        """Elementwise boolean AND with numpy broadcasting rules."""
        self._unimplemented("logical_and")

    def any(self, array, axis: int):
        """Reduce ``array`` with logical OR along ``axis``."""
        self._unimplemented("any")

    def argmax(self, array, axis: int):
        """Index of the maximum along ``axis`` — the **first** on ties.

        The scan's first-meet retirement is ``argmax`` over boolean
        rows, so a backend returning any later tied index corrupts
        every TTR; the conformance checklist tests this explicitly.
        """
        self._unimplemented("argmax")


class NumpyBackend(ArrayBackend):
    """The default backend: host numpy *is* the device.

    Transfers are identity, every op delegates straight to numpy, and
    results are the exact arrays the pre-seam scan produced — the
    differential harness certifies bit-identical profiles.
    """

    name = "numpy"

    def from_host(self, array: np.ndarray):
        """Identity — the host array already lives on the "device"."""
        return array

    def to_host(self, array) -> np.ndarray:
        """Identity — device arrays are host numpy arrays."""
        return array

    def asarray(self, values, dtype=None):
        """Delegate to :func:`numpy.asarray`."""
        return np.asarray(values, dtype=dtype)

    def full(self, shape, fill_value, dtype=None):
        """Delegate to :func:`numpy.full`."""
        return np.full(shape, fill_value, dtype=dtype)

    def arange(self, start: int, stop: int):
        """Delegate to :func:`numpy.arange` with int64 dtype."""
        return np.arange(start, stop, dtype=np.int64)

    def take(self, array, indices: np.ndarray, axis: int = 0):
        """Delegate to :func:`numpy.take`."""
        return np.take(array, indices, axis=axis)

    def equal(self, a, b):
        """Delegate to ``==`` (broadcasting elementwise compare)."""
        return a == b

    def logical_and(self, a, b):
        """Delegate to ``&`` (broadcasting boolean AND)."""
        return a & b

    def any(self, array, axis: int):
        """Delegate to :func:`numpy.any`."""
        return np.any(array, axis=axis)

    def argmax(self, array, axis: int):
        """Delegate to :func:`numpy.argmax` (first-of-ties by contract)."""
        return np.argmax(array, axis=axis)


class _Boxed:
    """Opaque wrapper for :class:`RecordingBackend` device arrays.

    Raises on every numpy-interop surface — conversion, operators,
    indexing, iteration, truthiness — so any scan code that slips a
    device array into a raw ``np.*`` expression fails immediately
    instead of silently computing outside the seam.
    """

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray):
        self.value = value

    def _refuse(self, surface: str):
        raise TypeError(
            f"raw numpy use of a backend device array (via {surface}); "
            "the streaming scan must route every array op through the "
            "ArrayBackend seam"
        )

    def __array__(self, *args, **kwargs):
        self._refuse("__array__")

    def __eq__(self, other):
        self._refuse("==")

    def __ne__(self, other):
        self._refuse("!=")

    def __and__(self, other):
        self._refuse("&")

    def __rand__(self, other):
        self._refuse("&")

    def __or__(self, other):
        self._refuse("|")

    def __invert__(self):
        self._refuse("~")

    def __add__(self, other):
        self._refuse("+")

    def __radd__(self, other):
        self._refuse("+")

    def __getitem__(self, item):
        self._refuse("indexing")

    def __len__(self):
        self._refuse("len()")

    def __bool__(self):
        self._refuse("bool()")

    def __iter__(self):
        self._refuse("iteration")

    __hash__ = None


class RecordingBackend(ArrayBackend):
    """Instrumented fake backend for seam-conformance certification.

    Computes every op with numpy — it perturbs nothing, so profiles
    stay bit-identical — but boxes every device array in :class:`_Boxed`
    and appends each op's name to :attr:`ops`.  Running a full stream
    scan through it therefore proves two things at once: the scan's
    results do not depend on numpy-specific behaviour outside the seam,
    and the scan never touches a device array except through backend
    methods (a bypass raises ``TypeError`` from the box).
    """

    name = "recording"

    def __init__(self):
        #: Op names in call order (``"from_host"``, ``"equal"``, ...).
        self.ops: list[str] = []

    def _box(self, op: str, value: np.ndarray) -> _Boxed:
        self.ops.append(op)
        return _Boxed(value)

    def _unbox(self, op: str, array) -> np.ndarray:
        if not isinstance(array, _Boxed):
            raise TypeError(
                f"{op} expected a device array from this backend, got "
                f"{type(array).__name__}; host arrays must enter through "
                "from_host"
            )
        return array.value

    def from_host(self, array: np.ndarray):
        """Box a host array; the box blocks all raw-numpy access."""
        if isinstance(array, _Boxed):
            raise TypeError("from_host expected a host array, got a device array")
        return self._box("from_host", np.asarray(array))

    def to_host(self, array) -> np.ndarray:
        """Unbox back to host numpy."""
        value = self._unbox("to_host", array)
        self.ops.append("to_host")
        return value

    def asarray(self, values, dtype=None):
        """Numpy ``asarray``, boxed."""
        return self._box("asarray", np.asarray(values, dtype=dtype))

    def full(self, shape, fill_value, dtype=None):
        """Numpy ``full``, boxed."""
        return self._box("full", np.full(shape, fill_value, dtype=dtype))

    def arange(self, start: int, stop: int):
        """Numpy int64 ``arange``, boxed."""
        return self._box("arange", np.arange(start, stop, dtype=np.int64))

    def take(self, array, indices: np.ndarray, axis: int = 0):
        """Numpy ``take`` on the unboxed payload; host indices."""
        return self._box(
            "take", np.take(self._unbox("take", array), indices, axis=axis)
        )

    def equal(self, a, b):
        """Numpy ``==`` on the unboxed payloads."""
        return self._box(
            "equal", self._unbox("equal", a) == self._unbox("equal", b)
        )

    def logical_and(self, a, b):
        """Numpy ``&`` on the unboxed payloads."""
        return self._box(
            "logical_and",
            self._unbox("logical_and", a) & self._unbox("logical_and", b),
        )

    def any(self, array, axis: int):
        """Numpy ``any`` on the unboxed payload."""
        return self._box("any", np.any(self._unbox("any", array), axis=axis))

    def argmax(self, array, axis: int):
        """Numpy ``argmax`` (first-of-ties) on the unboxed payload."""
        return self._box(
            "argmax", np.argmax(self._unbox("argmax", array), axis=axis)
        )


_BACKENDS: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "recording": RecordingBackend,
}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` for spec resolution.

    Third-party array libraries call this once at import time; the
    name then works everywhere a backend spec is accepted
    (``ttr_sweep(backend=name)``, ``repro sweep --backend name``, the
    ``REPRO_BACKEND`` environment variable).  Re-registering a name
    replaces the factory.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _BACKENDS[name] = factory


def resolve_backend(spec: ArrayBackend | str | None) -> ArrayBackend:
    """Resolve a user-facing backend spec to an :class:`ArrayBackend`.

    Accepted specs, in order of checking:

    * an :class:`ArrayBackend` instance — passed through unchanged;
    * ``None`` or ``"auto"`` — the ``REPRO_BACKEND`` environment
      variable when set (resolved recursively), else numpy;
    * a registered name (``"numpy"``, ``"recording"``, or anything
      handed to :func:`register_backend`);
    * an entry-point string ``"module.path:attr"`` — the attribute is
      imported and called if callable (a factory) or used as the
      instance otherwise.

    Anything else raises ``ValueError`` listing the registered names.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None or spec == "auto":
        env = os.environ.get(BACKEND_ENV_VAR)
        if env and env != "auto":
            return resolve_backend(env)
        spec = "numpy"
    if not isinstance(spec, str):
        raise ValueError(
            f"backend spec must be a string or ArrayBackend, got {spec!r}"
        )
    factory = _BACKENDS.get(spec)
    if factory is not None:
        return factory()
    if ":" in spec:
        module_name, _, attr = spec.partition(":")
        module = importlib.import_module(module_name)
        target = getattr(module, attr)
        backend = target() if callable(target) else target
        if not isinstance(backend, ArrayBackend):
            raise ValueError(
                f"entry point {spec!r} resolved to {type(backend).__name__}, "
                "not an ArrayBackend"
            )
        return backend
    raise ValueError(
        f"unknown backend {spec!r}; registered: {sorted(_BACKENDS)} "
        "(or use 'module.path:attr')"
    )


def conformance_checklist(
    backend: ArrayBackend,
) -> list[tuple[str, bool, str]]:
    """Run the third-party backend conformance checklist.

    Returns ``(check, passed, detail)`` triples, in order.  The checks
    are the executable form of the seam contract: transfer round-trips,
    dtype preservation, broadcasting compare/AND, OR-reduction,
    **first**-of-ties ``argmax`` (the first-meet rule), host-index
    ``take``, and finally an end-to-end streaming sweep whose profile
    must be bit-identical to the numpy backend's.  A backend passing
    every row is safe to hand to ``ttr_sweep(backend=...)``.
    """
    checks: list[tuple[str, bool, str]] = []

    def record(check: str, fn: Callable[[], str | None]) -> None:
        try:
            detail = fn() or "ok"
            checks.append((check, True, detail))
        except Exception as exc:  # noqa: BLE001 - the checklist reports, never raises
            checks.append((check, False, f"{type(exc).__name__}: {exc}"))

    def round_trip():
        host = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        back = backend.to_host(backend.from_host(host))
        assert np.array_equal(back, host), back
        assert back.dtype == np.int64, back.dtype
        return "int64 survives from_host/to_host"

    def constructors():
        filled = backend.to_host(backend.full((2, 3), 7, dtype=np.int64))
        assert filled.shape == (2, 3) and (filled == 7).all(), filled
        span = backend.to_host(backend.arange(5, 9))
        assert np.array_equal(span, np.arange(5, 9)), span
        built = backend.to_host(backend.asarray([1, 0, 1], dtype=bool))
        assert built.dtype == bool, built.dtype
        return "full/arange/asarray produce the requested contents"

    def broadcast_compare():
        rows = backend.from_host(np.array([[1, 2, 3], [3, 2, 1]], dtype=np.int64))
        fixed = backend.from_host(np.array([[3, 2, 3]], dtype=np.int64))
        eq = backend.to_host(backend.equal(rows, fixed))
        assert np.array_equal(
            eq, np.array([[False, True, True], [True, True, False]])
        ), eq
        return "equal broadcasts a (1, w) row across (n, w) tiles"

    def masked_and():
        eq = backend.from_host(np.array([[True, True], [True, False]]))
        mask = backend.from_host(np.array([[False, True], [True, True]]))
        out = backend.to_host(backend.logical_and(eq, mask))
        assert np.array_equal(out, np.array([[False, True], [True, False]])), out
        return "logical_and applies the validity mask elementwise"

    def any_reduce():
        tile = backend.from_host(
            np.array([[False, False], [False, True]], dtype=bool)
        )
        hit = backend.to_host(backend.any(tile, axis=1))
        assert np.array_equal(hit, np.array([False, True])), hit
        return "any reduces rows with logical OR"

    def argmax_first_tie():
        tile = backend.from_host(
            np.array([[False, True, True], [True, False, True]], dtype=bool)
        )
        first = backend.to_host(backend.argmax(tile, axis=1))
        assert np.array_equal(first, np.array([1, 0])), (
            f"argmax must return the FIRST maximum per row, got {first}"
        )
        return "argmax breaks ties toward the first index (first-meet rule)"

    def host_index_take():
        tile = backend.from_host(
            np.array([[0, 1], [2, 3], [4, 5]], dtype=np.int64)
        )
        picked = backend.to_host(
            backend.take(tile, np.array([2, 0], dtype=np.int64), axis=0)
        )
        assert np.array_equal(picked, np.array([[4, 5], [0, 1]])), picked
        return "take selects rows by host indices"

    def end_to_end_sweep():
        # Imported lazily: stream imports this module for its default
        # backend, so a top-level import here would be circular.
        from repro.core.schedule import CyclicSchedule
        from repro.core.stream import ttr_sweep_stream

        a = CyclicSchedule([1, 5, 9, 5])
        b = CyclicSchedule([5, 9, 1])
        shifts = list(range(-8, 13))
        expected = ttr_sweep_stream(a, b, shifts, 64, backend=NumpyBackend())
        got = ttr_sweep_stream(a, b, shifts, 64, backend=backend)
        assert got == expected, (got, expected)
        return f"streaming sweep of {len(shifts)} shifts matches numpy bit-for-bit"

    record("transfer round-trip", round_trip)
    record("constructors", constructors)
    record("broadcast compare", broadcast_compare)
    record("masked AND", masked_and)
    record("any reduction", any_reduce)
    record("argmax first-of-ties", argmax_first_tie)
    record("host-index take", host_index_take)
    record("end-to-end sweep parity", end_to_end_sweep)
    return checks


def check_conformance(backend: ArrayBackend) -> None:
    """Assert every :func:`conformance_checklist` row passes.

    Raises ``AssertionError`` naming each failed check — the one-call
    gate a third-party backend runs in its own test suite before
    claiming seam compatibility.
    """
    failures = [
        f"{check}: {detail}"
        for check, passed, detail in conformance_checklist(backend)
        if not passed
    ]
    assert not failures, (
        f"backend {backend.name!r} fails seam conformance:\n  "
        + "\n  ".join(failures)
    )
