"""Batched shift-sweep verification engine.

The paper's asynchronous rendezvous guarantee (Section 2) quantifies
over *all* relative wake-up offsets, and its Table-1 comparison rests
on worst-case TTRs — so honest reproduction means exhaustive shift
sweeps, not samples.  The scalar path in
:mod:`repro.core.verification` answers "when do these two schedules
first coincide at relative shift ``s``?" one shift at a time,
re-materializing schedule windows per call.  Benchmarks sweep thousands
of shifts per pair, so this module computes the whole profile in one
vectorized pass (methodology write-up: ``docs/BENCHMARKS.md``):

* both schedules are materialized **once** over a full period
  (:meth:`~repro.core.schedule.Schedule.period_table`);
* a shift only enters the comparison through the pair of phase offsets
  ``(s mod period_A, 0)`` (``s >= 0``: B wakes later) or
  ``(0, -s mod period_B)`` (``s < 0``), so shifts are deduplicated down
  to their distinct offset pairs before any work happens;
* for a block of offsets and a block of time, the ``(shift, time)``
  coincidence matrix is assembled from *window views* of the tiled
  period tables (:func:`numpy.lib.stride_tricks.sliding_window_view` —
  one row-gather per block instead of per-element modular indexing) and
  scanned with ``any``/``argmax``;
* time blocks grow geometrically (most shifts rendezvous early; rows
  that already hit drop out of later blocks) and the block area is
  capped by ``max_cells`` so memory stays bounded for huge sweeps;
* the scan stops at ``lcm(period_A, period_B)`` slots even when the
  caller's horizon is larger: the joint pattern is periodic, so a shift
  silent for a full joint period never rendezvouses.

``ttr_sweep`` is also the engine *dispatcher*: tiny joint periods go
to the scalar reference loop (vectorized setup would dominate),
moderate periods to the batched table path here, and periods beyond
``BATCH_TABLE_LIMIT`` (Jump-Stay's cubic period at large ``n``) to the
streaming tiled engine (:mod:`repro.core.stream`), which never
materializes a table — correctness never depends on any one path, and
``engine=`` forces a specific one.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core import schedule as _schedule
from repro.core import stream as _stream
from repro.core import telemetry
from repro.core.backend import ArrayBackend, resolve_backend
from repro.core.environment import Environment, effective_horizon
from repro.core.schedule import Schedule

__all__ = [
    "ttr_sweep",
    "ttr_sweep_pairs",
    "choose_engine",
    "BATCH_TABLE_LIMIT",
    "SCALAR_JOINT_LIMIT",
    "STRIDED_DISPATCH_FACTOR",
    "ENGINES",
]

# Largest period (slots) worth materializing as a full table; beyond it
# the streaming tiled engine takes over.  Shares the schedule cache
# limit so the batched path never sweeps against tables period_table()
# won't cache.
BATCH_TABLE_LIMIT = _schedule._CACHE_LIMIT

#: Joint periods (lcm of the pair) at or below this go to the scalar
#: reference loop under ``engine="auto"`` — at this size the batched
#: engine's vectorized setup costs more than the whole scan.
SCALAR_JOINT_LIMIT = 64

#: Valid values for the ``engine`` selector.
ENGINES = ("auto", "batched", "stream", "scalar")

#: Auto-dispatch shape test: a sweep is "one-shot strided" when its
#: shift count times this factor still undershoots the larger period —
#: the batched engine would then spend its time materializing and
#: tiling period tables whose rows the sweep never touches, and the
#: streaming engine wins (``docs/TUNING.md``, engine-selection table).
#: Only applies when a table is actually cold; warm tables make the
#: batched path's setup free, so reuse wins.
STRIDED_DISPATCH_FACTOR = 64

_INITIAL_TIME_BLOCK = 256


def ttr_sweep(
    a: Schedule | np.ndarray,
    b: Schedule | np.ndarray,
    shifts: Iterable[int],
    horizon: int,
    max_cells: int = 1 << 21,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
    checkpoint: _stream.SweepCheckpoint | None = None,
    environment: Environment | None = None,
    backend: ArrayBackend | str | None = "auto",
) -> dict[int, int | None]:
    """TTR for every relative shift, in one batched or streamed pass.

    Semantics are identical to calling
    :func:`repro.core.verification.ttr_for_shift` per shift: the result
    maps each shift to the first slot (counted from the later wake-up)
    where the schedules coincide, or ``None`` when no coincidence occurs
    within ``horizon`` slots.  ``max_cells`` bounds the area of any
    single ``(shift, time)`` block on the batched path, which bounds
    peak memory.

    ``engine`` selects the execution path (see :data:`ENGINES`):
    ``"auto"`` — the default — dispatches on period size *and* sweep
    shape: the scalar loop for tiny joint periods, the streaming tiled
    engine of :mod:`repro.core.stream` beyond ``BATCH_TABLE_LIMIT``
    and for one-shot strided sweeps under it (a cold table whose period
    dwarfs the shift count by :data:`STRIDED_DISPATCH_FACTOR` — table
    materialization would dominate), and the batched table path
    otherwise (tables warm or worth building); the explicit names force
    one path.  ``tile_bytes`` pins the streaming tile budget and
    ``stream_workers`` the streaming engine's intra-pair thread lanes
    (both ``None`` by default: the auto-tuner sizes tiles from the
    machine's cache topology and uses one lane per CPU — see
    :func:`repro.core.stream.plan_tiles` and ``docs/TUNING.md``).  All
    engines return bit-identical results.

    ``checkpoint`` attaches a
    :class:`~repro.core.stream.SweepCheckpoint` for a resumable scan;
    checkpointing is a streaming-engine feature, so ``"auto"`` then
    dispatches straight to the stream path and forcing any other
    engine raises ``ValueError``.

    Either side may be a raw 1-D period array instead of a
    :class:`~repro.core.schedule.Schedule` — e.g. a read-only memmap
    attached from a :class:`~repro.core.store.ScheduleStore`.  An
    int64 table is used as-is, never copied (other dtypes are
    converted once): the array *is* the period table, its length the
    period.

    ``environment`` applies a deterministic per-slot validity mask
    (:mod:`repro.core.environment`) to every coincidence, evaluated on
    the TTR clock — one extra masked compare per block, bit-identical
    across all engines.  An aperiodic mask disables the lcm early-stop:
    the scan then covers the caller's full horizon
    (:func:`repro.core.environment.effective_horizon`).

    ``backend`` selects the array library executing the streaming tile
    ops (:func:`repro.core.backend.resolve_backend` spec).  Like
    checkpointing it is a streaming-engine feature: a non-numpy backend
    makes ``"auto"`` dispatch straight to the stream path, and forcing
    ``"batched"`` or ``"scalar"`` with one raises ``ValueError``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if checkpoint is not None and engine not in ("auto", "stream"):
        raise ValueError(
            f"checkpointing needs the streaming engine, got engine={engine!r}"
        )
    backend = resolve_backend(backend)
    if backend.name != "numpy" and engine not in ("auto", "stream"):
        raise ValueError(
            f"backend {backend.name!r} needs the streaming engine, "
            f"got engine={engine!r}"
        )
    a = _coerce_schedule(a)
    b = _coerce_schedule(b)
    shift_list = [int(s) for s in shifts]
    if not shift_list:
        return {}
    if horizon <= 0:
        return {s: None for s in shift_list}
    joint = math.lcm(a.period, b.period)
    if engine == "auto":
        engine = choose_engine(
            a, b, len(shift_list),
            checkpoint=checkpoint is not None, backend=backend,
        )
    if engine == "scalar":
        # The joint pattern repeats every lcm slots, so capping the
        # scalar scan there preserves every answer (including misses) —
        # unless an aperiodic environment mask breaks the periodicity
        # argument, in which case the full horizon is scanned.
        return _scalar_sweep(
            a, b, shift_list, effective_horizon(horizon, joint, environment),
            environment,
        )
    if engine == "stream":
        return _stream.ttr_sweep_stream(
            a,
            b,
            shift_list,
            horizon,
            tile_bytes=tile_bytes,
            workers=stream_workers,
            checkpoint=checkpoint,
            environment=environment,
            backend=backend,
        )
    if a.period > BATCH_TABLE_LIMIT or b.period > BATCH_TABLE_LIMIT:
        raise ValueError(
            f"engine='batched' needs both periods <= {BATCH_TABLE_LIMIT}, "
            f"got {a.period} and {b.period}; use engine='stream'"
        )

    # Distinct offset pairs are the real work items: an exhaustive sweep
    # over lcm(Pa, Pb) shifts collapses to at most Pa (or Pb) rows.  The
    # reduction is shared with the streaming engine — bit-identical
    # cross-engine results depend on it staying single-sourced.
    unique_pairs, inverse = _stream.reduce_shifts(a, b, shift_list)

    # The joint pattern repeats every lcm slots: nothing new after that
    # — except under an aperiodic environment mask (full horizon then).
    effective = effective_horizon(horizon, joint, environment)
    # Every shift pins one side's offset to zero.  Profiling the sign
    # groups separately keeps that side on the constant-start fast path
    # in _windows (one tiled row) instead of forcing a strided gather
    # for both tables across a mixed block — two-sided exhaustive
    # sweeps run ~2x faster this way.
    ttrs = np.empty(len(unique_pairs), dtype=np.int64)
    negative = unique_pairs[:, 1] != 0
    with telemetry.span("batch.sweep"):
        for group in (~negative, negative):
            if group.any():
                ttrs[group] = _profile_offsets(
                    a.period_table(),
                    b.period_table(),
                    unique_pairs[group, 0],
                    unique_pairs[group, 1],
                    effective,
                    max_cells,
                    environment,
                )
    return _stream.scatter_ttrs(shift_list, ttrs, inverse)


def choose_engine(
    a: Schedule | np.ndarray,
    b: Schedule | np.ndarray,
    num_shifts: int,
    checkpoint: bool = False,
    backend: ArrayBackend | str | None = "auto",
) -> str:
    """The engine ``engine="auto"`` resolves to for one sweep shape.

    Pure decision function (no sweeping happens) — the single source of
    the auto-dispatch policy, exposed so tests can pin each regime and
    callers can preview a dispatch.  In order:

    * ``checkpoint`` or a non-numpy ``backend`` → ``"stream"`` (both
      are streaming-engine features);
    * joint period at most :data:`SCALAR_JOINT_LIMIT` → ``"scalar"``
      (vectorized setup would dominate);
    * either period beyond :data:`BATCH_TABLE_LIMIT` → ``"stream"``
      (the table no longer fits the schedule cache);
    * one-shot strided shape (:func:`_one_shot_strided`: the shift
      count times :data:`STRIDED_DISPATCH_FACTOR` undershoots the
      largest *cold* period — warm tables don't count against the
      batched path, their reuse is free) → ``"stream"``;
    * otherwise → ``"batched"``.
    """
    a = _coerce_schedule(a)
    b = _coerce_schedule(b)
    if checkpoint or resolve_backend(backend).name != "numpy":
        return "stream"
    if math.lcm(a.period, b.period) <= SCALAR_JOINT_LIMIT:
        return "scalar"
    if a.period > BATCH_TABLE_LIMIT or b.period > BATCH_TABLE_LIMIT:
        return "stream"
    if _one_shot_strided(a, b, num_shifts):
        return "stream"
    return "batched"


def ttr_sweep_pairs(
    jobs: Iterable[tuple[Schedule | np.ndarray, Schedule | np.ndarray, Iterable[int]]],
    horizon: int | Iterable[int],
    max_cells: int = 1 << 21,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
    environment: Environment | None = None,
    backend: ArrayBackend | str | None = "auto",
) -> list[dict[int, int | None]]:
    """TTR profiles for many schedule pairs, pair-major when possible.

    The multi-pair face of :func:`ttr_sweep`: ``jobs`` is a sequence of
    ``(a, b, shifts)`` items, ``horizon`` one shared horizon or a
    per-job sequence, and the result is one shift→TTR mapping per job,
    bit-identical to calling :func:`ttr_sweep` per job with the same
    arguments.  ``engine="auto"`` or ``"stream"`` runs the whole batch
    through one pair-major tile pass
    (:func:`repro.core.stream.ttr_sweep_pairs` — one chunk loop
    amortizes dispatch, planning, and fixed-row work across every
    pair); ``"batched"`` and ``"scalar"`` fall back to a per-job
    :func:`ttr_sweep` loop, which is also the reference path the
    differential harness certifies the stacked scan against.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    backend = resolve_backend(backend)
    if backend.name != "numpy" and engine not in ("auto", "stream"):
        raise ValueError(
            f"backend {backend.name!r} needs the streaming engine, "
            f"got engine={engine!r}"
        )
    if engine in ("auto", "stream"):
        return _stream.ttr_sweep_pairs(
            jobs,
            horizon,
            tile_bytes=tile_bytes,
            workers=stream_workers,
            environment=environment,
            backend=backend,
        )
    job_list = list(jobs)
    if isinstance(horizon, Iterable):
        horizons = [int(h) for h in horizon]
        if len(horizons) != len(job_list):
            raise ValueError(
                f"got {len(horizons)} horizons for {len(job_list)} jobs"
            )
    else:
        horizons = [int(horizon)] * len(job_list)
    return [
        ttr_sweep(
            a, b, shifts, h, max_cells=max_cells, engine=engine,
            environment=environment,
        )
        for (a, b, shifts), h in zip(job_list, horizons)
    ]


def _coerce_schedule(x: Schedule | np.ndarray) -> Schedule:
    """Shared raw-array adapter (see :func:`repro.core.store.coerce_schedule`)."""
    from repro.core.store import coerce_schedule

    return coerce_schedule(x)


def _one_shot_strided(a: Schedule, b: Schedule, num_shifts: int) -> bool:
    """Whether a storable-period sweep should stream anyway.

    True when the sweep is strided relative to the *cold* tables: the
    shift count times :data:`STRIDED_DISPATCH_FACTOR` undershoots the
    largest period whose table still has to be built (building one
    costs a full pass over the period, and a strided sweep then mostly
    leaves its rows unread).  Warm tables
    (:meth:`~repro.core.schedule.Schedule.has_warm_table`) never count
    against the batched path — their reuse makes its setup free — so a
    warm huge table next to a cold small one no longer drags the pair
    to the streaming engine: only the small cold build is weighed.
    With no cold side at all the batched path always wins.
    """
    cold = [s.period for s in (a, b) if not s.has_warm_table()]
    if not cold:
        return False
    return num_shifts * STRIDED_DISPATCH_FACTOR <= max(cold)


def _scalar_sweep(
    a: Schedule,
    b: Schedule,
    shifts: list[int],
    horizon: int,
    environment: Environment | None = None,
) -> dict[int, int | None]:
    from repro.core.verification import ttr_for_shift

    with telemetry.span("scalar.sweep"):
        return {
            s: ttr_for_shift(a, b, s, horizon, environment=environment)
            for s in shifts
        }


def _windows(table: np.ndarray, starts: np.ndarray, length: int) -> np.ndarray:
    """Rows ``table[(start + t) % period]`` for ``t < length``, batched.

    Tiles the period table far enough to cover ``max(starts) + length``
    and gathers one contiguous window per start from a strided view —
    a row memcpy per window rather than a modular index per element.
    """
    period = table.size
    if starts.size and starts.min() == starts.max():
        start = int(starts[0])
        reps = -(-(start + length) // period)
        row = np.tile(table, reps)[start : start + length]
        return row[np.newaxis, :]
    reps = -(-(period + length) // period)
    tiled = np.tile(table, reps)
    return sliding_window_view(tiled, length)[starts]


def _profile_offsets(
    table_a: np.ndarray,
    table_b: np.ndarray,
    off_a: np.ndarray,
    off_b: np.ndarray,
    horizon: int,
    max_cells: int,
    environment: Environment | None = None,
) -> np.ndarray:
    """First-coincidence slot per offset pair; ``-1`` marks a miss.

    With an ``environment``, each block's coincidence matrix is ANDed
    with the mask over its ``(channel, TTR-clock slot)`` cells — the
    one extra masked compare the environment layer costs.
    """
    num = off_a.size
    result = np.full(num, -1, dtype=np.int64)
    shift_block = max(1, max_cells // _INITIAL_TIME_BLOCK)
    for lo in range(0, num, shift_block):
        hi = min(lo + shift_block, num)
        remaining = np.arange(lo, hi)
        t0 = 0
        block = min(_INITIAL_TIME_BLOCK, horizon, max(1, max_cells // (hi - lo)))
        while t0 < horizon and remaining.size:
            t1 = min(t0 + block, horizon)
            length = t1 - t0
            with telemetry.span("batch.assemble") as tile_span:
                wa = _windows(
                    table_a, (off_a[remaining] + t0) % table_a.size, length
                )
                wb = _windows(
                    table_b, (off_b[remaining] + t0) % table_b.size, length
                )
                tile_span.add_bytes(wa.nbytes + wb.nbytes)
            with telemetry.span("batch.compare"):
                eq = wa == wb
            if environment is not None:
                with telemetry.span("batch.mask"):
                    eq = eq & environment.slot_mask(
                        wa, np.arange(t0, t1, dtype=np.int64)
                    )
            with telemetry.span("batch.retire"):
                hit = eq.any(axis=1)
                if hit.any():
                    result[remaining[hit]] = t0 + eq[hit].argmax(axis=1)
                    remaining = remaining[~hit]
            t0 = t1
            # Survivors are the slow rows: widen the time window so the
            # scan stays O(horizon) passes, within the memory budget.
            block = min(block * 2, max(1, max_cells // max(remaining.size, 1)))
    return result
