"""Streaming tiled-sweep verification engine for huge-period schedules.

The batched engine (:mod:`repro.core.batch`) materializes both
schedules' full period tables and gathers every coincidence block from
window views of them — which caps it at ``BATCH_TABLE_LIMIT`` slots of
period.  Jump-Stay's cubic global period crosses that limit from
``n = 128`` on, and the long-period available-set baselines (ZOS at
large ``m``) cross it well below their guarantee bounds, so the only
honest fallback used to be the scalar per-shift loop — hours instead of
seconds on Table-1-scale sweeps.

This module removes the table from the loop.  The coincidence
computation walks fixed-byte ``(shift-block, time-block)`` **tiles**:

* each tile's channel rows are generated *on demand* through
  :meth:`~repro.core.schedule.Schedule.channel_block` /
  :meth:`~repro.core.schedule.Schedule.channel_gather`, the chunk APIs
  every baseline implements (vectorized closed forms for the global
  sequences; memmap slices for store-attached tables; a generic
  modular-index fallback otherwise) — no full period is ever held;
* every shift is first reduced to its phase-offset pair exactly as in
  the batched engine (``s >= 0`` acts through ``s mod period_A``,
  ``s < 0`` through ``-s mod period_B``), and duplicate offsets are
  deduplicated before any work happens;
* tiles carry per-shift *first-meet* state: a shift row that has
  already rendezvoused retires and never costs another cell, and time
  blocks grow geometrically as rows drop out (most shifts meet early);
* the scan stops at ``lcm(period_A, period_B)`` slots even when the
  caller's horizon is larger, the same early-stop the batched engine
  applies: the joint pattern is periodic, so a silent joint period
  means no rendezvous ever — unless an aperiodic fault environment
  (:mod:`repro.core.environment`) is attached, which voids the
  periodicity argument and forces the full horizon
  (:func:`repro.core.environment.effective_horizon`).

Two scans implement those semantics:

* :func:`ttr_sweep_stream` — the production path.  The deduped shift
  classes are split into independent **shift blocks** (a
  :class:`TilePlan` decides how many rows per block and how many bytes
  per tile — :func:`plan_tiles` auto-tunes both from the worker count,
  the machine's L2/L3 cache sizes, and the problem shape), every
  block's tile rows are assembled in *one* vectorized
  ``channel_gather`` call (dense blocks use a contiguous
  ``channel_block`` chunk plus strided window views instead), and with
  ``workers > 1`` the blocks fan out over a thread pool — numpy
  releases the GIL inside the tile-sized comparisons and gathers, so
  the lanes genuinely overlap on multi-core machines.  Blocks touch
  disjoint result rows, so the merge is trivially race-free and the
  result is bit-identical to any serial order.
* :func:`ttr_sweep_stream_serial` — the original single-threaded
  reference scan, kept verbatim (fixed ``DEFAULT_TILE_BYTES`` budget,
  per-row generation for sparse blocks).  It plays the role for the
  parallel scan that the scalar loop plays for the batched engine: the
  independent implementation parity tests certify against, and the
  baseline the intra-pair speedup benchmark measures from.

Results are bit-identical across both scans, every worker count, every
tile plan, and the batched and scalar engines —
``tests/core/test_stream.py`` certifies the full parity matrix across
every workload generator, and ``tests/core/test_differential.py`` adds
a randomized cross-engine safety net.  Tuning guidance lives in
``docs/TUNING.md``.

Two seams extend the scan beyond one pair on one array library:

* **Array backend** — the tile ops (compare, mask, first-meet
  reduction, row retirement) run through a
  :class:`repro.core.backend.ArrayBackend`, never raw ``np.*``: tile
  *assembly* (schedule closed forms, memmaps, environment masks) stays
  on the host, ``from_host`` is the single transfer point into the
  backend's array space, and an alternate library (GPU/SIMD) executes
  the identical tiles by implementing the ~10-op protocol.
* **Pair-major stacking** — :func:`ttr_sweep_pairs` flattens *many*
  schedule pairs' deduped shift rows into one global row set and scans
  them through shared tiles: one chunk loop amortizes the per-pair
  dispatch, plan, and fixed-row work across an entire Table-1 cell
  grid, with each row retiring independently under its own pair's
  effective horizon.  Profiles are bit-identical to per-pair calls.
"""

from __future__ import annotations

import functools
import hashlib
import json
import math
import os
import tempfile
import threading
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core import telemetry
from repro.core.backend import ArrayBackend, resolve_backend
from repro.core.environment import (
    Environment,
    effective_horizon,
    environment_digest,
)
from repro.core.schedule import Schedule

__all__ = [
    "ttr_sweep_stream",
    "ttr_sweep_stream_serial",
    "ttr_sweep_pairs",
    "reduce_shifts",
    "scatter_ttrs",
    "TilePlan",
    "plan_tiles",
    "cache_sizes",
    "SweepCheckpoint",
    "DEFAULT_TILE_BYTES",
]

#: Fixed byte budget of the serial reference scan's tiles (and the
#: historical default of the streaming engine before the auto-tuner).
#: 4 MiB keeps tiles inside typical L2/L3 while leaving room for the
#: generated chunks.
DEFAULT_TILE_BYTES = 1 << 22

_INITIAL_TIME_BLOCK = 256
_BYTES_PER_CELL = 8  # int64 channel ids

# Auto-tuner clamps: a tile below 16 KiB drowns in per-tile dispatch
# overhead; one above 8 MiB stops fitting any per-core cache level.
_MIN_TILE_BYTES = 1 << 14
_MAX_TILE_BYTES = 1 << 23
# Shift blocks per worker lane: >1 so early-retiring lanes can steal
# remaining blocks from the queue instead of idling.
_BLOCKS_PER_WORKER = 4
# Cache-size fallbacks when the sysfs topology is unreadable.
_FALLBACK_L2_BYTES = 1 << 20
_FALLBACK_L3_BYTES = 1 << 25


def _parse_cache_size(text: str) -> int | None:
    """Parse a sysfs cache size string (``'2048K'``, ``'8M'``) to bytes."""
    text = text.strip().upper()
    scale = 1
    if text.endswith("K"):
        scale, text = 1 << 10, text[:-1]
    elif text.endswith("M"):
        scale, text = 1 << 20, text[:-1]
    try:
        return int(text) * scale
    except ValueError:
        return None


@functools.lru_cache(maxsize=1)
def cache_sizes() -> tuple[int, int]:
    """Best-effort ``(L2, L3)`` data-cache sizes of this machine, in bytes.

    Probed once from the Linux sysfs cache topology
    (``/sys/devices/system/cpu/cpu0/cache``) and memoized; platforms
    without it get the conservative fallbacks (1 MiB L2, 32 MiB L3).
    Deterministic on a given machine — the auto-tuner's plans therefore
    are too.
    """
    l2, l3 = _FALLBACK_L2_BYTES, _FALLBACK_L3_BYTES
    root = "/sys/devices/system/cpu/cpu0/cache"
    try:
        names = sorted(os.listdir(root))
    except OSError:
        names = []
    for name in names:
        if not name.startswith("index"):
            continue
        base = os.path.join(root, name)
        try:
            with open(os.path.join(base, "level")) as handle:
                level = int(handle.read())
            with open(os.path.join(base, "type")) as handle:
                kind = handle.read().strip()
            with open(os.path.join(base, "size")) as handle:
                size = _parse_cache_size(handle.read())
        except (OSError, ValueError):
            continue
        if kind not in ("Unified", "Data") or size is None:
            continue
        if level == 2:
            l2 = size
        elif level == 3:
            l3 = size
    return l2, max(l2, l3)


@dataclass(frozen=True)
class TilePlan:
    """One resolved tiling decision for the blocked streaming scan.

    ``tile_bytes`` bounds the bytes of any single ``(shift, time)``
    tile *per worker lane*; ``block_rows`` is how many deduped shift
    classes one independent block carries; ``workers`` is the number of
    thread lanes the blocks fan out over.  Results are invariant under
    every plan — a plan only moves wall-clock and peak memory.  Build
    one with :func:`plan_tiles` (auto-tuned) or directly (pinned, e.g.
    in tests that force degenerate shapes).
    """

    tile_bytes: int
    block_rows: int
    workers: int

    def __post_init__(self):
        if self.tile_bytes <= 0:
            raise ValueError(f"tile_bytes must be positive, got {self.tile_bytes}")
        if self.block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {self.block_rows}")
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")

    @property
    def cells(self) -> int:
        """Int64 cells one tile may hold under ``tile_bytes``."""
        return max(1, self.tile_bytes // _BYTES_PER_CELL)


def plan_tiles(
    num_offsets: int,
    horizon: int,
    workers: int | None = None,
    tile_bytes: int | None = None,
    caches: tuple[int, int] | None = None,
) -> TilePlan:
    """Auto-tune a :class:`TilePlan` for one blocked streaming scan.

    Pure arithmetic over the problem shape (``num_offsets`` deduped
    shift classes, ``horizon`` slots), the worker count (``None``: one
    lane per CPU), and the machine's cache sizes (``caches`` overrides
    the memoized :func:`cache_sizes` probe) — no wall-clock or RNG
    input, so the same arguments always produce the same plan.

    Sizing policy, in order:

    * **tile** — ``None`` targets half the L2 cache (clamped to
      16 KiB .. 8 MiB) so one lane's working tile stays cache-resident;
      with multiple lanes the per-lane tile is additionally capped so
      all lanes together leave half the L3 free.  An explicit
      ``tile_bytes`` pins the budget unchanged.
    * **block rows** — serial scans take the widest block one tile can
      hold (fewer tiles, best vectorization); parallel scans split the
      rows into ``workers * 4`` blocks (bounded by the tile cap) so
      lanes that retire early pick up remaining blocks instead of
      idling.
    * **workers** — clamped to the number of blocks; extra lanes could
      never receive work.
    """
    if num_offsets < 0:
        raise ValueError(f"num_offsets must be nonnegative, got {num_offsets}")
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, int(workers))
    if tile_bytes is None:
        l2, l3 = caches if caches is not None else cache_sizes()
        tile = min(max(l2 // 2, _MIN_TILE_BYTES), _MAX_TILE_BYTES)
        if workers > 1:
            tile = min(tile, max(_MIN_TILE_BYTES, (l3 // 2) // workers))
    else:
        if tile_bytes <= 0:
            raise ValueError(f"tile_bytes must be positive, got {tile_bytes}")
        tile = int(tile_bytes)
    cells = max(1, tile // _BYTES_PER_CELL)
    initial_block = min(_INITIAL_TIME_BLOCK, max(1, horizon))
    rows_cap = max(1, cells // initial_block)
    rows = max(1, num_offsets)
    if workers > 1:
        per_lane = -(-rows // (workers * _BLOCKS_PER_WORKER))
        block_rows = max(1, min(rows_cap, per_lane))
    else:
        block_rows = min(rows_cap, rows)
    num_blocks = -(-rows // block_rows)
    return TilePlan(
        tile_bytes=tile, block_rows=block_rows, workers=min(workers, num_blocks)
    )


#: Sentinel in a checkpoint's ``resolved`` arrays for a shift row whose
#: first-meet scan has not finished (``-1`` is a certified miss; ``>= 0``
#: a hit).  Never escapes into sweep results.
_UNRESOLVED = -2


class SweepCheckpoint:
    """Checkpoint sink for resumable streaming sweeps.

    Attach one to :func:`ttr_sweep_stream` (or
    :func:`repro.core.batch.ttr_sweep` with ``checkpoint=``) and the
    scan snapshots its state to ``path`` at time-block boundaries:
    every retired shift row's final TTR (or certified miss) plus the
    resume cursor — the time frontier each still-live row has been
    scanned to.  Re-running the same sweep with the same sink then
    *resumes*: retired rows are answered from the snapshot, live rows
    rescan only from (at most) their recorded frontier, and the merged
    profile is bit-identical to an uninterrupted run — first-meet
    results are invariant under where the scan was cut.

    The snapshot is keyed by a spec digest (periods, deduped offset
    pairs, effective horizon); a snapshot from a *different* sweep is
    ignored and overwritten, never merged.  Saves are atomic (temp file
    plus ``os.replace``), so a kill mid-save leaves the previous valid
    snapshot.  ``interval_blocks`` sets the save cadence: a snapshot
    every that many time-block boundaries (``1``: every boundary —
    maximal resumability, maximal I/O).  ``saves`` counts snapshots
    actually written; ``clear()`` deletes the file (the runner calls it
    after a sweep completes).
    """

    def __init__(self, path: str | os.PathLike, interval_blocks: int = 1):
        if interval_blocks <= 0:
            raise ValueError(
                f"interval_blocks must be positive, got {interval_blocks}"
            )
        self.path = Path(path)
        self.interval_blocks = int(interval_blocks)
        self.saves = 0

    def load(self) -> dict | None:
        """The last snapshot, or ``None`` when absent or unreadable."""
        try:
            state = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None
        return state if isinstance(state, dict) else None

    def save(self, state: dict) -> None:
        """Atomically persist one snapshot (temp file + ``os.replace``)."""
        with telemetry.span("stream.checkpoint_io") as io_span:
            payload = json.dumps(state)
            io_span.add_bytes(len(payload))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".ckpt.tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, self.path)
            except BaseException:
                Path(tmp).unlink(missing_ok=True)
                raise
            self.saves += 1

    def clear(self) -> None:
        """Delete the snapshot file (a completed sweep needs no resume)."""
        self.path.unlink(missing_ok=True)


def _sweep_spec(
    a: Schedule,
    b: Schedule,
    unique_pairs: np.ndarray,
    horizon: int,
    environment: Environment | None = None,
) -> str:
    """Digest identifying one sweep's work items for checkpoint matching.

    The environment digest is part of the spec: a faulted sweep must
    never resume from a clean sweep's snapshot (or vice versa) — their
    first-meet frontiers describe different masks.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{a.period}|{b.period}|{horizon}|{environment_digest(environment)}|".encode()
    )
    digest.update(np.ascontiguousarray(unique_pairs, dtype=np.int64).tobytes())
    return digest.hexdigest()[:32]


class _CheckpointRecorder:
    """Shared, lock-guarded sweep state behind one checkpoint sink.

    Owns the per-sign-group ``resolved`` / ``frontier`` arrays that a
    snapshot serializes.  ``update`` is called from scan lanes at every
    time-block boundary — the lock makes the read-modify-save atomic
    across thread lanes, and blocks own disjoint rows so updates never
    conflict on array contents, only on the save.
    """

    def __init__(
        self,
        sink: SweepCheckpoint,
        spec: str,
        sizes: dict[int, int],
        prior: dict | None,
    ):
        self._sink = sink
        self._spec = spec
        self._lock = threading.Lock()
        self._ticks = 0
        self._groups = {
            gid: {
                "resolved": np.full(size, _UNRESOLVED, dtype=np.int64),
                "frontier": np.zeros(size, dtype=np.int64),
            }
            for gid, size in sizes.items()
        }
        if prior is not None and prior.get("spec") == spec:
            for gid, size in sizes.items():
                stored = prior.get("groups", {}).get(str(gid))
                if not isinstance(stored, dict):
                    continue
                resolved = stored.get("resolved")
                frontier = stored.get("frontier")
                if (
                    isinstance(resolved, list)
                    and isinstance(frontier, list)
                    and len(resolved) == size
                    and len(frontier) == size
                ):
                    group = self._groups[gid]
                    group["resolved"] = np.asarray(resolved, dtype=np.int64)
                    group["frontier"] = np.asarray(frontier, dtype=np.int64)

    def seed(self, gid: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of one group's ``(resolved, frontier)`` resume state."""
        with self._lock:
            group = self._groups[gid]
            return group["resolved"].copy(), group["frontier"].copy()

    def update(
        self,
        gid: int,
        done_rows: np.ndarray,
        done_vals: np.ndarray,
        live_rows: np.ndarray,
        frontier: int,
    ) -> None:
        """Record one time-block boundary; snapshot on cadence.

        ``done_rows`` retire with final values ``done_vals`` (TTR or
        ``-1`` miss); ``live_rows`` advance their frontier to
        ``frontier``.  Every ``interval_blocks``-th call writes a
        snapshot through the sink.
        """
        with self._lock:
            group = self._groups[gid]
            if done_rows.size:
                group["resolved"][done_rows] = done_vals
            if live_rows.size:
                group["frontier"][live_rows] = frontier
            self._ticks += 1
            if self._ticks % self._sink.interval_blocks == 0:
                self._sink.save(self._serialize())

    def _serialize(self) -> dict:
        return {
            "spec": self._spec,
            "groups": {
                str(gid): {
                    "resolved": group["resolved"].tolist(),
                    "frontier": group["frontier"].tolist(),
                }
                for gid, group in sorted(self._groups.items())
            },
        }


def ttr_sweep_stream(
    a: Schedule | np.ndarray,
    b: Schedule | np.ndarray,
    shifts: Iterable[int],
    horizon: int,
    tile_bytes: int | None = None,
    workers: int | None = None,
    plan: TilePlan | None = None,
    checkpoint: SweepCheckpoint | None = None,
    environment: Environment | None = None,
    backend: ArrayBackend | str | None = None,
) -> dict[int, int | None]:
    """TTR for every relative shift, streamed in worker-parallel tiles.

    Semantics are identical to :func:`repro.core.batch.ttr_sweep` (and
    therefore to a per-shift loop over
    :func:`repro.core.verification.ttr_for_shift`): the result maps
    each shift to the first slot, counted from the later wake-up, where
    the schedules coincide — ``None`` when no coincidence occurs within
    ``horizon`` slots.  Unlike the batched engine it never materializes
    a full period table, so it works at any period size.

    Execution is the blocked scan described in the module docstring:
    the deduped shift classes split into independent blocks that fan
    out over ``workers`` thread lanes (``None``: one per CPU;
    ``1``: inline, no pool).  ``tile_bytes`` pins the per-lane tile
    budget (``None``: auto-tuned from the cache sizes); ``plan``
    overrides the whole :class:`TilePlan` when full control is needed.
    Results are invariant under every plan and worker count — blocks
    own disjoint result rows, and each row's first-meet scan is
    deterministic.  Either side may be a raw 1-D period array (e.g. a
    read-only memmap attached from a
    :class:`~repro.core.store.ScheduleStore`) — tiles are then sliced
    straight off the array, which for a memmap means straight off disk.

    ``checkpoint`` attaches a :class:`SweepCheckpoint` sink: the scan
    snapshots retired rows plus each live row's time frontier at block
    boundaries, and a rerun against an existing snapshot of the *same*
    sweep resumes instead of restarting — resumed profiles are
    bit-identical to uninterrupted ones (certified in tier-1 tests).

    ``environment`` ANDs a deterministic per-slot validity mask
    (:mod:`repro.core.environment`) into every tile's coincidence
    compare, on the TTR clock; its digest joins the checkpoint spec so
    faulted and clean sweeps never cross-resume, and an aperiodic mask
    disables the lcm early-stop.

    ``backend`` selects the array library executing the tile ops
    (:func:`repro.core.backend.resolve_backend` spec: an instance, a
    registered name, ``"module:attr"``, or ``None``/``"auto"`` for the
    default).  Tiles are assembled on the host either way; only the
    compare/mask/retire ops run on the backend, and every conforming
    backend returns bit-identical profiles.
    """
    if tile_bytes is not None and tile_bytes <= 0:
        raise ValueError(f"tile_bytes must be positive, got {tile_bytes}")
    xp = resolve_backend(backend)
    a = _coerce_schedule(a)
    b = _coerce_schedule(b)
    shift_list = [int(s) for s in shifts]
    if not shift_list:
        return {}
    if horizon <= 0:
        return {s: None for s in shift_list}

    with telemetry.span("stream.sweep"):
        unique_pairs, inverse = reduce_shifts(a, b, shift_list)
        effective = effective_horizon(
            horizon, math.lcm(a.period, b.period), environment
        )
        # Each shift pins one side's offset to zero, so the sign groups
        # are profiled separately with the zero side as the broadcast row.
        ttrs = np.empty(len(unique_pairs), dtype=np.int64)
        negative = unique_pairs[:, 1] != 0
        recorder = None
        if checkpoint is not None:
            recorder = _CheckpointRecorder(
                checkpoint,
                _sweep_spec(a, b, unique_pairs, effective, environment),
                {0: int((~negative).sum()), 1: int(negative.sum())},
                checkpoint.load(),
            )
        groups = ((~negative, a, b, 0), (negative, b, a, 1))
        for gid, (group, var, fixed, column) in enumerate(groups):
            if not group.any():
                continue
            group_plan = plan
            if group_plan is None:
                group_plan = plan_tiles(
                    int(group.sum()), effective,
                    workers=workers, tile_bytes=tile_bytes,
                )
            ttrs[group] = _stream_offsets(
                var, fixed, unique_pairs[group, column], effective, group_plan,
                recorder=recorder, gid=gid, environment=environment, xp=xp,
            )
        return scatter_ttrs(shift_list, ttrs, inverse)


def ttr_sweep_stream_serial(
    a: Schedule | np.ndarray,
    b: Schedule | np.ndarray,
    shifts: Iterable[int],
    horizon: int,
    tile_bytes: int = DEFAULT_TILE_BYTES,
    environment: Environment | None = None,
    backend: ArrayBackend | str | None = None,
) -> dict[int, int | None]:
    """The single-threaded reference scan of the streaming engine.

    The original streaming implementation, kept verbatim: one thread,
    a fixed ``tile_bytes`` budget, per-row chunk generation for sparse
    shift blocks.  It is to :func:`ttr_sweep_stream` what the scalar
    loop is to the batched engine — the independent reference the
    parallel blocked scan is parity-certified against (bit-identical
    per cell) and the baseline ``benchmarks/test_stream_sweep.py``
    measures the intra-pair speedup from.  Production callers should
    use :func:`ttr_sweep_stream`.  ``environment`` masks coincidences
    exactly as on the production path, and ``backend`` selects the
    array library for the tile ops exactly as there.
    """
    if tile_bytes <= 0:
        raise ValueError(f"tile_bytes must be positive, got {tile_bytes}")
    xp = resolve_backend(backend)
    a = _coerce_schedule(a)
    b = _coerce_schedule(b)
    shift_list = [int(s) for s in shifts]
    if not shift_list:
        return {}
    if horizon <= 0:
        return {s: None for s in shift_list}

    with telemetry.span("stream.sweep"):
        unique_pairs, inverse = reduce_shifts(a, b, shift_list)
        effective = effective_horizon(
            horizon, math.lcm(a.period, b.period), environment
        )
        ttrs = np.empty(len(unique_pairs), dtype=np.int64)
        negative = unique_pairs[:, 1] != 0
        if (~negative).any():
            ttrs[~negative] = _stream_offsets_serial(
                a, b, unique_pairs[~negative, 0], effective, tile_bytes,
                environment, xp,
            )
        if negative.any():
            ttrs[negative] = _stream_offsets_serial(
                b, a, unique_pairs[negative, 1], effective, tile_bytes,
                environment, xp,
            )
        return scatter_ttrs(shift_list, ttrs, inverse)


def ttr_sweep_pairs(
    jobs: Iterable[tuple[Schedule | np.ndarray, Schedule | np.ndarray, Iterable[int]]],
    horizon: int | Iterable[int],
    tile_bytes: int | None = None,
    workers: int | None = None,
    plan: TilePlan | None = None,
    environment: Environment | None = None,
    backend: ArrayBackend | str | None = None,
) -> list[dict[int, int | None]]:
    """Sweep many schedule pairs through one pair-major tile pass.

    ``jobs`` is a sequence of ``(a, b, shifts)`` work items — e.g.
    every cell of a Table-1 grid — and ``horizon`` one shared horizon
    or a per-job sequence.  Each job's shifts are reduced to distinct
    phase-offset pairs exactly as in :func:`ttr_sweep_stream`; the
    deduped rows of *all* jobs are then stacked into one global
    ``(pairs × shift-rows, width)`` tile stream: rows sort by (varying
    schedule, offset) so each tile still gathers near-contiguous
    chunks, the fixed side is generated once per distinct schedule per
    time window and broadcast to its rows, and every row retires
    independently under its own job's effective horizon (lcm
    early-stop per pair; an aperiodic ``environment`` voids it for
    all).  One chunk loop therefore amortizes the per-pair dispatch,
    plan, and fixed-row work that a per-job loop pays ``len(jobs)``
    times — the pair-major speedup ``benchmarks/test_pair_major.py``
    gates on.

    Returns one shift→TTR mapping per job, in input order, each
    bit-identical to ``ttr_sweep_stream(a, b, shifts, horizon)`` for
    that job (the differential harness certifies this).  Schedules
    repeated across jobs (same object, e.g. from
    :meth:`repro.sim.runner.SweepRunner.schedule_for`'s cache or a
    :class:`~repro.core.store.ScheduleStore` memmap) share their
    fixed-row windows across all their rows.  ``tile_bytes`` /
    ``workers`` / ``plan`` tune the tiling exactly as in
    :func:`ttr_sweep_stream` (blocks of rows fan out over thread
    lanes); ``backend`` selects the array library for the tile ops.
    Checkpointing is not supported on the pair-major path — resumable
    sweeps go through per-pair :func:`ttr_sweep_stream`.
    """
    if tile_bytes is not None and tile_bytes <= 0:
        raise ValueError(f"tile_bytes must be positive, got {tile_bytes}")
    xp = resolve_backend(backend)
    job_list = [
        (_coerce_schedule(a), _coerce_schedule(b), [int(s) for s in shifts])
        for a, b, shifts in jobs
    ]
    if isinstance(horizon, Iterable):
        horizons = [int(h) for h in horizon]
        if len(horizons) != len(job_list):
            raise ValueError(
                f"got {len(horizons)} horizons for {len(job_list)} jobs"
            )
    else:
        horizons = [int(horizon)] * len(job_list)

    results: list[dict[int, int | None] | None] = [None] * len(job_list)
    # Per-row columns of the global stacked scan, concatenated job by
    # job so each job's rows stay one contiguous slice of `result`.
    scheds: list[Schedule] = []
    sid_by_obj: dict[int, int] = {}
    col_var: list[np.ndarray] = []
    col_fixed: list[np.ndarray] = []
    col_off: list[np.ndarray] = []
    col_h: list[np.ndarray] = []
    spans: list[tuple[int, int, list[int], np.ndarray] | None] = [None] * len(job_list)
    cursor = 0

    def sid(schedule: Schedule) -> int:
        key = id(schedule)
        if key not in sid_by_obj:
            sid_by_obj[key] = len(scheds)
            scheds.append(schedule)
        return sid_by_obj[key]

    with telemetry.span("stream.pair_sweep"):
        telemetry.count("stream.pair_jobs", len(job_list))
        for j, ((a, b, shift_list), h) in enumerate(zip(job_list, horizons)):
            if not shift_list:
                results[j] = {}
                continue
            if h <= 0:
                results[j] = {s: None for s in shift_list}
                continue
            unique_pairs, inverse = reduce_shifts(a, b, shift_list)
            effective = effective_horizon(
                h, math.lcm(a.period, b.period), environment
            )
            negative = unique_pairs[:, 1] != 0
            sid_a, sid_b = sid(a), sid(b)
            n = len(unique_pairs)
            col_var.append(np.where(negative, sid_b, sid_a))
            col_fixed.append(np.where(negative, sid_a, sid_b))
            col_off.append(
                np.where(negative, unique_pairs[:, 1], unique_pairs[:, 0])
            )
            col_h.append(np.full(n, effective, dtype=np.int64))
            spans[j] = (cursor, cursor + n, shift_list, inverse)
            cursor += n

        if cursor:
            g_var = np.concatenate(col_var).astype(np.int64)
            g_fixed = np.concatenate(col_fixed).astype(np.int64)
            g_off = np.concatenate(col_off).astype(np.int64)
            g_h = np.concatenate(col_h)
            result = np.full(cursor, -1, dtype=np.int64)
            max_h = int(g_h.max())
            scan_plan = plan
            if scan_plan is None:
                scan_plan = plan_tiles(
                    cursor, max_h, workers=workers, tile_bytes=tile_bytes
                )
            # Sorted by (varying schedule, offset): each tile's rows for
            # one schedule gather from near-contiguous windows, exactly
            # the locality the single-pair scan gets from its argsort.
            order = np.lexsort((g_off, g_var))
            blocks = [
                order[lo : lo + scan_plan.block_rows]
                for lo in range(0, order.size, scan_plan.block_rows)
            ]
            fixed_caches = {
                fid: _FixedRowCache(scheds[fid], scan_plan.cells)
                for fid in np.unique(g_fixed).tolist()
            }
            lanes = min(scan_plan.workers, len(blocks))
            if lanes > 1:
                with ThreadPoolExecutor(max_workers=lanes) as pool:
                    futures = [
                        pool.submit(
                            _scan_pair_block, scheds, g_var, g_fixed, g_off,
                            g_h, block, scan_plan.cells, fixed_caches, result,
                            environment, xp,
                        )
                        for block in blocks
                    ]
                    for future in futures:
                        future.result()
            else:
                for block in blocks:
                    _scan_pair_block(
                        scheds, g_var, g_fixed, g_off, g_h, block,
                        scan_plan.cells, fixed_caches, result, environment, xp,
                    )

        for j, span in enumerate(spans):
            if span is None:
                continue
            start, stop, shift_list, inverse = span
            results[j] = scatter_ttrs(shift_list, result[start:stop], inverse)
    return results


def _scan_pair_block(
    scheds: list[Schedule],
    var_sid: np.ndarray,
    fixed_sid: np.ndarray,
    offsets: np.ndarray,
    horizons: np.ndarray,
    block: np.ndarray,
    cells: int,
    fixed_caches: dict[int, _FixedRowCache],
    result: np.ndarray,
    environment: Environment | None,
    xp: ArrayBackend,
) -> None:
    """First-meet scan of one pair-major row block.

    ``block`` holds indices into the global row arrays, sorted by
    (varying schedule, offset) so each contiguous run of one schedule
    id feeds :func:`_gather_tile` ascending offsets.  The per-chunk
    tile stacks every live row: the varying side gathers one run per
    schedule, the fixed side one cached window per distinct schedule
    broadcast to its rows.  Rows carry *per-row* horizons — a row past
    its own effective horizon retires as a miss even while rows of
    longer-horizon jobs keep scanning, and a horizon mask clips hits in
    the boundary chunk so a hit beyond a row's horizon never counts.
    Blocks write disjoint ``result`` rows, so lanes compose race-free.
    """
    remaining = block
    t0 = 0
    max_h = int(horizons[block].max())
    length = min(_INITIAL_TIME_BLOCK, max_h, max(1, cells // remaining.size))
    while t0 < max_h and remaining.size:
        t1 = min(t0 + length, max_h)
        width = t1 - t0
        with telemetry.span("stream.tile_assembly") as tile_span:
            rows = np.empty((remaining.size, width), dtype=np.int64)
            sids = var_sid[remaining]
            bounds = np.flatnonzero(np.diff(sids)) + 1
            run_edges = np.concatenate(([0], bounds, [sids.size]))
            for lo, hi in zip(run_edges[:-1], run_edges[1:]):
                rows[lo:hi] = _gather_tile(
                    scheds[int(sids[lo])], offsets[remaining[lo:hi]], t0, width
                )
            fixed_tile = np.empty_like(rows)
            fsids = fixed_sid[remaining]
            for fid in np.unique(fsids).tolist():
                fixed_tile[fsids == fid] = fixed_caches[fid].row(t0, t1)
            tile_span.add_bytes(rows.nbytes + fixed_tile.nbytes)
        with telemetry.span("stream.compare"):
            eq = xp.equal(xp.from_host(rows), xp.from_host(fixed_tile))
        if environment is not None:
            with telemetry.span("stream.mask"):
                mask = environment.slot_mask(
                    rows, np.arange(t0, t1, dtype=np.int64)
                )
                eq = xp.logical_and(eq, xp.from_host(mask))
        row_h = horizons[remaining]
        if int(row_h.min()) < t1:
            # Boundary chunk for some short-horizon row: clip its cells
            # beyond the horizon so a later coincidence never counts.
            with telemetry.span("stream.mask"):
                hmask = (
                    np.arange(t0, t1, dtype=np.int64)[np.newaxis, :]
                    < row_h[:, np.newaxis]
                )
                eq = xp.logical_and(eq, xp.from_host(hmask))
        with telemetry.span("stream.retire"):
            hit = xp.to_host(xp.any(eq, axis=1))
            hit_rows = remaining[hit]
            if hit_rows.size:
                first = xp.to_host(
                    xp.argmax(xp.take(eq, np.flatnonzero(hit), axis=0), axis=1)
                )
                result[hit_rows] = t0 + first
            # Rows that reached their own horizon hit-free stay -1.
            remaining = remaining[~hit & (row_h > t1)]
        t0 = t1
        length = min(length * 2, max(1, cells // max(remaining.size, 1)))


def reduce_shifts(
    a: Schedule, b: Schedule, shift_list: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse shifts to their distinct phase-offset pairs.

    A shift only enters the coincidence comparison through the offset
    pair ``(s mod period_A, 0)`` (``s >= 0``) or ``(0, -s mod
    period_B)`` (``s < 0``), so the distinct pairs are the real work
    items.  Returns ``(unique_pairs, inverse)`` with ``inverse``
    mapping each input shift to its row in ``unique_pairs``.  This is
    the *one* reduction both sweep engines share — bit-identical
    results across engines depend on it staying single-sourced.
    """
    arr = np.asarray(shift_list, dtype=np.int64)
    off_a = np.where(arr >= 0, arr, 0) % a.period
    off_b = np.where(arr < 0, -arr, 0) % b.period
    pairs = np.stack([off_a, off_b], axis=1)
    unique_pairs, inverse = np.unique(pairs, axis=0, return_inverse=True)
    return unique_pairs, inverse.reshape(-1)  # numpy 2.0.x: (n, 1)-shaped


def scatter_ttrs(
    shift_list: list[int], ttrs: np.ndarray, inverse: np.ndarray
) -> dict[int, int | None]:
    """Scatter per-offset-pair TTRs back to the caller's shifts.

    The inverse of :func:`reduce_shifts`: ``ttrs[i]`` is the answer for
    ``unique_pairs[i]`` with ``-1`` marking a miss, and the result maps
    every input shift to its ``int`` TTR or ``None``.
    """
    scattered = ttrs[inverse]
    return {
        s: None if t < 0 else int(t)
        for s, t in zip(shift_list, scattered.tolist())
    }


def _coerce_schedule(x: Schedule | np.ndarray) -> Schedule:
    """Shared raw-array adapter (see :func:`repro.core.store.coerce_schedule`)."""
    from repro.core.store import coerce_schedule

    return coerce_schedule(x)


class _FixedRowCache:
    """Bounded memo of the fixed side's ``(t0, t1)`` channel rows.

    Every shift block walks the same early time windows before its
    retirement schedule diverges, so the rows are shared across blocks
    — and across thread lanes.  Unlocked on purpose: dict reads/writes
    are atomic under the GIL, and the worst race outcome is one row
    generated twice with identical contents, never a wrong result.
    The byte budget keeps late, rare, per-block-unique windows from
    accumulating.
    """

    __slots__ = ("_schedule", "_budget", "_rows", "_cached_cells")

    def __init__(self, schedule: Schedule, budget_cells: int):
        self._schedule = schedule
        self._budget = budget_cells
        self._rows: dict[tuple[int, int], np.ndarray] = {}
        self._cached_cells = 0

    def row(self, t0: int, t1: int) -> np.ndarray:
        """The fixed side's channels over ``[t0, t1)``, memoized."""
        row = self._rows.get((t0, t1))
        if row is None:
            row = np.asarray(self._schedule.channel_block(t0, t1))
            if self._cached_cells + row.size <= self._budget:
                self._rows[(t0, t1)] = row
                self._cached_cells += row.size
        return row


def _gather_tile(
    schedule: Schedule, offsets: np.ndarray, t0: int, width: int
) -> np.ndarray:
    """Rows ``schedule[(off + t0) .. (off + t0 + width))`` per offset.

    ``offsets`` must be sorted ascending.  When the block's offsets are
    close together (span no larger than the rows matrix itself), one
    contiguous chunk is generated and the rows are strided window views
    of it; sparse blocks assemble the whole ``(rows, width)`` index
    matrix and fetch it in a single vectorized ``channel_gather`` call
    — the per-row Python dispatch this replaces is what dominated the
    serial reference scan on strided Table-1 sweeps.
    """
    base = int(offsets[0])
    span = int(offsets[-1]) - base + width
    if span <= offsets.size * width:
        chunk = np.asarray(schedule.channel_block(base + t0, base + t0 + span))
        return sliding_window_view(chunk, width)[offsets - base]
    starts = offsets[:, np.newaxis] + t0
    window = np.arange(width, dtype=np.int64)[np.newaxis, :]
    return np.asarray(schedule.channel_gather(starts + window))


def _scan_block(
    var: Schedule,
    offsets: np.ndarray,
    block: np.ndarray,
    horizon: int,
    cells: int,
    fixed_rows: _FixedRowCache,
    result: np.ndarray,
    start: int = 0,
    recorder: _CheckpointRecorder | None = None,
    gid: int = 0,
    environment: Environment | None = None,
    xp: ArrayBackend | None = None,
) -> None:
    """First-meet scan of one independent shift block.

    ``block`` holds indices into ``offsets``/``result`` (ascending by
    offset); the scan writes only those rows of ``result``, so blocks
    compose race-free across thread lanes.  Per-row semantics are
    identical to the serial reference scan: geometric time-block
    growth, first-meet retirement, ``-1`` for a miss.  ``start`` is the
    resume cursor — slots before it were already scanned hit-free for
    every row of the block — and ``recorder`` (with its sign-group id
    ``gid``) receives retirements and frontier advances at every
    time-block boundary.  ``environment`` ANDs its validity mask into
    each tile's compare (channels from the varying side, slots on the
    TTR clock).  ``xp`` is the array backend executing the tile ops;
    tiles are assembled host-side and enter it through ``from_host``.
    """
    if xp is None:
        xp = resolve_backend(None)
    remaining = block
    t0 = start
    length = min(_INITIAL_TIME_BLOCK, horizon, max(1, cells // remaining.size))
    while t0 < horizon and remaining.size:
        t1 = min(t0 + length, horizon)
        width = t1 - t0
        with telemetry.span("stream.tile_assembly") as tile_span:
            rows = _gather_tile(var, offsets[remaining], t0, width)
            fixed_row = fixed_rows.row(t0, t1)
            tile_span.add_bytes(rows.nbytes)
        with telemetry.span("stream.compare"):
            eq = xp.equal(
                xp.from_host(rows), xp.from_host(fixed_row[np.newaxis, :])
            )
        if environment is not None:
            with telemetry.span("stream.mask"):
                mask = environment.slot_mask(
                    rows, np.arange(t0, t1, dtype=np.int64)
                )
                eq = xp.logical_and(eq, xp.from_host(mask))
        with telemetry.span("stream.retire"):
            hit = xp.to_host(xp.any(eq, axis=1))
            hit_rows = remaining[hit]
            if hit_rows.size:
                first = xp.to_host(
                    xp.argmax(xp.take(eq, np.flatnonzero(hit), axis=0), axis=1)
                )
                result[hit_rows] = t0 + first
                remaining = remaining[~hit]
        t0 = t1
        if recorder is not None:
            recorder.update(gid, hit_rows, result[hit_rows], remaining, t0)
        # Survivors are the slow rows: widen the window so the scan
        # finishes in O(log horizon) passes within the budget.
        length = min(length * 2, max(1, cells // max(remaining.size, 1)))
    if recorder is not None and remaining.size:
        # Rows that reached the horizon hit-free are certified misses.
        recorder.update(gid, remaining, result[remaining], remaining[:0], horizon)


def _stream_offsets(
    var: Schedule,
    fixed: Schedule,
    offsets: np.ndarray,
    horizon: int,
    plan: TilePlan,
    recorder: _CheckpointRecorder | None = None,
    gid: int = 0,
    environment: Environment | None = None,
    xp: ArrayBackend | None = None,
) -> np.ndarray:
    """First-coincidence slot per offset, via the blocked parallel scan.

    ``var`` is the schedule whose phase varies per shift (windows start
    at ``offset``), ``fixed`` the one pinned at phase zero; ``-1``
    marks a miss within ``horizon``.  The sorted offset order is cut
    into ``plan.block_rows``-wide blocks; each block scans
    independently (one lane inline, ``plan.workers`` thread lanes
    otherwise) and writes its own disjoint result rows.

    With a ``recorder``, rows the checkpoint already resolved are
    answered from it and excluded from the scan; the surviving rows
    re-block freely and each block resumes from the smallest frontier
    among its rows — a row is never rescanned past its own first meet,
    so resumed results stay bit-identical.
    """
    num = offsets.size
    result = np.full(num, -1, dtype=np.int64)
    if num == 0:
        return result
    starts = np.zeros(num, dtype=np.int64)
    pending = np.ones(num, dtype=bool)
    if recorder is not None:
        resolved, frontier = recorder.seed(gid)
        done = resolved != _UNRESOLVED
        result[done] = resolved[done]
        pending = ~done
        starts = frontier
    # Ascending by offset so each tile's rows gather from one
    # near-contiguous chunk when possible.
    order = np.argsort(offsets, kind="stable")
    order = order[pending[order]]
    if order.size == 0:
        return result
    blocks = [
        order[lo : lo + plan.block_rows]
        for lo in range(0, order.size, plan.block_rows)
    ]
    fixed_rows = _FixedRowCache(fixed, plan.cells)
    lanes = min(plan.workers, len(blocks))
    if lanes > 1:
        with ThreadPoolExecutor(max_workers=lanes) as pool:
            futures = [
                pool.submit(
                    _scan_block, var, offsets, block, horizon, plan.cells,
                    fixed_rows, result, int(starts[block].min()), recorder, gid,
                    environment, xp,
                )
                for block in blocks
            ]
            for future in futures:
                future.result()
    else:
        for block in blocks:
            _scan_block(
                var, offsets, block, horizon, plan.cells, fixed_rows, result,
                int(starts[block].min()), recorder, gid, environment, xp,
            )
    return result


def _gather_rows_serial(
    schedule: Schedule, offsets: np.ndarray, t0: int, width: int
) -> np.ndarray:
    """The reference scan's row gather: contiguous chunk or per-row calls.

    ``offsets`` must be sorted ascending.  When the block's offsets are
    close together (span no larger than the rows matrix itself), one
    contiguous chunk is generated and the rows are strided window views
    of it; sparse blocks generate each row independently so the chunk
    never outgrows the tile budget.
    """
    base = int(offsets[0])
    span = int(offsets[-1]) - base + width
    if span <= offsets.size * width:
        chunk = np.asarray(schedule.channel_block(base + t0, base + t0 + span))
        return sliding_window_view(chunk, width)[offsets - base]
    return np.stack(
        [
            np.asarray(schedule.channel_block(int(off) + t0, int(off) + t0 + width))
            for off in offsets
        ]
    )


def _stream_offsets_serial(
    var: Schedule,
    fixed: Schedule,
    offsets: np.ndarray,
    horizon: int,
    tile_bytes: int,
    environment: Environment | None = None,
    xp: ArrayBackend | None = None,
) -> np.ndarray:
    """The reference scan: one thread, fixed budget, per-row gathers.

    ``var`` is the schedule whose phase varies per shift (windows start
    at ``offset``), ``fixed`` the one pinned at phase zero; ``-1``
    marks a miss within ``horizon``.  ``environment`` masks each tile's
    compare exactly as on the blocked path, and ``xp`` is the array
    backend executing the tile ops.
    """
    if xp is None:
        xp = resolve_backend(None)
    num = offsets.size
    result = np.full(num, -1, dtype=np.int64)
    cells = max(1, tile_bytes // _BYTES_PER_CELL)
    shift_block = max(1, cells // _INITIAL_TIME_BLOCK)
    order = np.argsort(offsets, kind="stable")
    fixed_rows = _FixedRowCache(fixed, cells)

    for lo in range(0, num, shift_block):
        remaining = order[lo : lo + shift_block]
        t0 = 0
        length = min(
            _INITIAL_TIME_BLOCK, horizon, max(1, cells // remaining.size)
        )
        while t0 < horizon and remaining.size:
            t1 = min(t0 + length, horizon)
            width = t1 - t0
            with telemetry.span("stream.tile_assembly") as tile_span:
                rows = _gather_rows_serial(var, offsets[remaining], t0, width)
                fixed_row = fixed_rows.row(t0, t1)
                tile_span.add_bytes(rows.nbytes)
            with telemetry.span("stream.compare"):
                eq = xp.equal(
                    xp.from_host(rows), xp.from_host(fixed_row[np.newaxis, :])
                )
            if environment is not None:
                with telemetry.span("stream.mask"):
                    mask = environment.slot_mask(
                        rows, np.arange(t0, t1, dtype=np.int64)
                    )
                    eq = xp.logical_and(eq, xp.from_host(mask))
            with telemetry.span("stream.retire"):
                hit = xp.to_host(xp.any(eq, axis=1))
                if hit.any():
                    first = xp.to_host(
                        xp.argmax(
                            xp.take(eq, np.flatnonzero(hit), axis=0), axis=1
                        )
                    )
                    result[remaining[hit]] = t0 + first
                    remaining = remaining[~hit]
            t0 = t1
            length = min(length * 2, max(1, cells // max(remaining.size, 1)))
    return result
