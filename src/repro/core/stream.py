"""Streaming tiled-sweep verification engine for huge-period schedules.

The batched engine (:mod:`repro.core.batch`) materializes both
schedules' full period tables and gathers every coincidence block from
window views of them — which caps it at ``BATCH_TABLE_LIMIT`` slots of
period.  Jump-Stay's cubic global period crosses that limit from
``n = 128`` on, and the long-period available-set baselines (ZOS at
large ``m``) cross it well below their guarantee bounds, so the only
honest fallback used to be the scalar per-shift loop — hours instead of
seconds on Table-1-scale sweeps.

This module removes the table from the loop.  The coincidence
computation walks fixed-byte ``(shift-block, time-block)`` **tiles**:

* each tile's channel rows are generated *on demand* through
  :meth:`~repro.core.schedule.Schedule.channel_block`, the chunk API
  every baseline implements (vectorized closed forms for the global
  sequences; memmap slices for store-attached tables; a generic
  modular-index fallback otherwise) — no full period is ever held;
* every shift is first reduced to its phase-offset pair exactly as in
  the batched engine (``s >= 0`` acts through ``s mod period_A``,
  ``s < 0`` through ``-s mod period_B``), and duplicate offsets are
  deduplicated before any work happens;
* tiles carry per-shift *first-meet* state: a shift row that has
  already rendezvoused retires and never costs another cell, and time
  blocks grow geometrically as rows drop out (most shifts meet early);
* within a tile, offsets are processed in sorted order; when a block's
  offsets are close together one contiguous ``channel_block`` chunk is
  gathered into rows via a strided window view, otherwise each row is
  generated independently — both paths stay inside the ``tile_bytes``
  budget;
* the scan stops at ``lcm(period_A, period_B)`` slots even when the
  caller's horizon is larger, the same early-stop the batched engine
  applies: the joint pattern is periodic, so a silent joint period
  means no rendezvous ever.

Results are bit-identical to the batched and scalar engines —
``tests/core/test_stream.py`` certifies three-way parity across every
workload generator and tile-size choice.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.schedule import Schedule

__all__ = ["ttr_sweep_stream", "reduce_shifts", "scatter_ttrs", "DEFAULT_TILE_BYTES"]

#: Default byte budget for one (shift, time) tile.  4 MiB keeps tiles
#: inside typical L2/L3 while leaving room for the generated chunks.
DEFAULT_TILE_BYTES = 1 << 22

_INITIAL_TIME_BLOCK = 256
_BYTES_PER_CELL = 8  # int64 channel ids


def ttr_sweep_stream(
    a: Schedule | np.ndarray,
    b: Schedule | np.ndarray,
    shifts: Iterable[int],
    horizon: int,
    tile_bytes: int = DEFAULT_TILE_BYTES,
) -> dict[int, int | None]:
    """TTR for every relative shift, streamed in fixed-byte tiles.

    Semantics are identical to :func:`repro.core.batch.ttr_sweep` (and
    therefore to a per-shift loop over
    :func:`repro.core.verification.ttr_for_shift`): the result maps
    each shift to the first slot, counted from the later wake-up, where
    the schedules coincide — ``None`` when no coincidence occurs within
    ``horizon`` slots.  Unlike the batched engine it never materializes
    a full period table, so it works at any period size.

    ``tile_bytes`` bounds the bytes of one ``(shift, time)`` tile and
    thereby peak memory; results are invariant under the choice (tiles
    smaller than one period included).  Either side may be a raw 1-D
    period array (e.g. a read-only memmap attached from a
    :class:`~repro.core.store.ScheduleStore`) — tiles are then sliced
    straight off the array, which for a memmap means straight off disk.
    """
    if tile_bytes <= 0:
        raise ValueError(f"tile_bytes must be positive, got {tile_bytes}")
    a = _coerce_schedule(a)
    b = _coerce_schedule(b)
    shift_list = [int(s) for s in shifts]
    if not shift_list:
        return {}
    if horizon <= 0:
        return {s: None for s in shift_list}

    unique_pairs, inverse = reduce_shifts(a, b, shift_list)
    effective = min(horizon, math.lcm(a.period, b.period))
    # Each shift pins one side's offset to zero, so the sign groups are
    # profiled separately with the zero side as the broadcast row.
    ttrs = np.empty(len(unique_pairs), dtype=np.int64)
    negative = unique_pairs[:, 1] != 0
    if (~negative).any():
        ttrs[~negative] = _stream_offsets(
            a, b, unique_pairs[~negative, 0], effective, tile_bytes
        )
    if negative.any():
        ttrs[negative] = _stream_offsets(
            b, a, unique_pairs[negative, 1], effective, tile_bytes
        )
    return scatter_ttrs(shift_list, ttrs, inverse)


def reduce_shifts(
    a: Schedule, b: Schedule, shift_list: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse shifts to their distinct phase-offset pairs.

    A shift only enters the coincidence comparison through the offset
    pair ``(s mod period_A, 0)`` (``s >= 0``) or ``(0, -s mod
    period_B)`` (``s < 0``), so the distinct pairs are the real work
    items.  Returns ``(unique_pairs, inverse)`` with ``inverse``
    mapping each input shift to its row in ``unique_pairs``.  This is
    the *one* reduction both sweep engines share — bit-identical
    results across engines depend on it staying single-sourced.
    """
    arr = np.asarray(shift_list, dtype=np.int64)
    off_a = np.where(arr >= 0, arr, 0) % a.period
    off_b = np.where(arr < 0, -arr, 0) % b.period
    pairs = np.stack([off_a, off_b], axis=1)
    unique_pairs, inverse = np.unique(pairs, axis=0, return_inverse=True)
    return unique_pairs, inverse.reshape(-1)  # numpy 2.0.x: (n, 1)-shaped


def scatter_ttrs(
    shift_list: list[int], ttrs: np.ndarray, inverse: np.ndarray
) -> dict[int, int | None]:
    """Scatter per-offset-pair TTRs back to the caller's shifts.

    The inverse of :func:`reduce_shifts`: ``ttrs[i]`` is the answer for
    ``unique_pairs[i]`` with ``-1`` marking a miss, and the result maps
    every input shift to its ``int`` TTR or ``None``.
    """
    scattered = ttrs[inverse]
    return {
        s: None if t < 0 else int(t)
        for s, t in zip(shift_list, scattered.tolist())
    }


def _coerce_schedule(x: Schedule | np.ndarray) -> Schedule:
    """Shared raw-array adapter (see :func:`repro.core.store.coerce_schedule`)."""
    from repro.core.store import coerce_schedule

    return coerce_schedule(x)


def _gather_rows(
    schedule: Schedule, offsets: np.ndarray, t0: int, width: int
) -> np.ndarray:
    """Rows ``schedule[(off + t0) .. (off + t0 + width))`` per offset.

    ``offsets`` must be sorted ascending.  When the block's offsets are
    close together (span no larger than the rows matrix itself), one
    contiguous chunk is generated and the rows are strided window views
    of it; sparse blocks generate each row independently so the chunk
    never outgrows the tile budget.
    """
    base = int(offsets[0])
    span = int(offsets[-1]) - base + width
    if span <= offsets.size * width:
        chunk = np.asarray(schedule.channel_block(base + t0, base + t0 + span))
        return sliding_window_view(chunk, width)[offsets - base]
    return np.stack(
        [
            np.asarray(schedule.channel_block(int(off) + t0, int(off) + t0 + width))
            for off in offsets
        ]
    )


def _stream_offsets(
    var: Schedule,
    fixed: Schedule,
    offsets: np.ndarray,
    horizon: int,
    tile_bytes: int,
) -> np.ndarray:
    """First-coincidence slot per offset against the zero-offset side.

    ``var`` is the schedule whose phase varies per shift (windows start
    at ``offset``), ``fixed`` the one pinned at phase zero; ``-1``
    marks a miss within ``horizon``.
    """
    num = offsets.size
    result = np.full(num, -1, dtype=np.int64)
    cells = max(1, tile_bytes // _BYTES_PER_CELL)
    shift_block = max(1, cells // _INITIAL_TIME_BLOCK)
    order = np.argsort(offsets, kind="stable")
    # Every shift block walks the same early time windows before its
    # retirement schedule diverges, so the fixed side's rows are
    # memoized per (t0, t1) — bounded by the tile budget so late, rare,
    # per-block-unique windows don't accumulate.
    fixed_rows: dict[tuple[int, int], np.ndarray] = {}
    fixed_cached_cells = 0

    def fixed_row(t0: int, t1: int) -> np.ndarray:
        nonlocal fixed_cached_cells
        row = fixed_rows.get((t0, t1))
        if row is None:
            row = np.asarray(fixed.channel_block(t0, t1))
            if fixed_cached_cells + row.size <= cells:
                fixed_rows[(t0, t1)] = row
                fixed_cached_cells += row.size
        return row

    for lo in range(0, num, shift_block):
        # Indices into `offsets`, ascending by offset so each tile's
        # rows gather from one near-contiguous chunk when possible.
        remaining = order[lo : lo + shift_block]
        t0 = 0
        length = min(
            _INITIAL_TIME_BLOCK, horizon, max(1, cells // remaining.size)
        )
        while t0 < horizon and remaining.size:
            t1 = min(t0 + length, horizon)
            width = t1 - t0
            rows = _gather_rows(var, offsets[remaining], t0, width)
            eq = rows == fixed_row(t0, t1)[np.newaxis, :]
            hit = eq.any(axis=1)
            if hit.any():
                result[remaining[hit]] = t0 + eq[hit].argmax(axis=1)
                remaining = remaining[~hit]
            t0 = t1
            # Survivors are the slow rows: widen the window so the scan
            # finishes in O(log horizon) passes within the budget.
            length = min(length * 2, max(1, cells // max(remaining.size, 1)))
    return result
