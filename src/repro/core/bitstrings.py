"""Bit-string walk toolkit (paper Section 3, Figures 1-3).

The size-two construction of the paper manipulates binary strings through
the "graph" (walk) ``G_z`` of a string ``z``: each ``1`` is a northeast
step (+1) and each ``0`` a southeast step (-1).  This module implements the
predicates the paper defines on such walks:

* *balanced*      -- ``wt(z) == |z| / 2``, i.e. the walk returns to zero;
* *Catalan*       -- balanced and the walk never goes negative;
* *strictly Catalan* -- balanced and strictly positive on the interior;
* *t-maximal / t-minimal* -- the walk attains its maximum (minimum) at
  exactly ``t`` cyclic positions.

Conventions
-----------
Strings are plain ``str`` objects over the alphabet ``{'0', '1'}``; they
are tiny (tens of bits), so readability beats raw speed here.

Walk positions are *cyclic*: the domain of ``G_z`` is ``{0, ..., |z|-1}``,
identifying position ``|z|`` with position ``0``.  This matches the
paper's remark that a strictly Catalan string is 1-minimal "and this
single minimum appears at i = 0" (the endpoint is not double-counted) and
makes maximality/minimality counts invariant under rotation of balanced
strings.
"""

from __future__ import annotations

__all__ = [
    "ALPHABET",
    "validate_bits",
    "weight",
    "walk_heights",
    "is_balanced",
    "is_catalan",
    "is_strictly_catalan",
    "maxima_count",
    "minima_count",
    "maxima_positions",
    "minima_positions",
    "rotate",
    "complement",
    "catalan_rotation_index",
    "encode_int",
    "decode_int",
    "log_sharp",
    "int_bit_width",
    "even_width",
]

ALPHABET = frozenset("01")


def validate_bits(z: str) -> str:
    """Return ``z`` unchanged after checking it is a binary string.

    Raises ``ValueError`` on any character outside ``{'0','1'}``.
    """
    if not set(z) <= ALPHABET:
        bad = sorted(set(z) - ALPHABET)
        raise ValueError(f"not a binary string: unexpected characters {bad!r}")
    return z


def weight(z: str) -> int:
    """Number of 1s in ``z`` (the paper's ``wt(z)``)."""
    return z.count("1")


def walk_heights(z: str) -> list[int]:
    """The walk ``G_z`` as a list of ``|z| + 1`` heights.

    ``walk_heights(z)[k]`` equals ``G_z(k) = sum_{i<=k} (2 z_i - 1)``,
    with ``G_z(0) = 0``.
    """
    heights = [0] * (len(z) + 1)
    h = 0
    for k, bit in enumerate(z, start=1):
        h += 1 if bit == "1" else -1
        heights[k] = h
    return heights


def is_balanced(z: str) -> bool:
    """True when ``wt(z) == |z|/2`` (the walk ends at height zero)."""
    return len(z) % 2 == 0 and 2 * weight(z) == len(z)


def is_catalan(z: str) -> bool:
    """True when ``z`` is balanced and its walk never dips below zero."""
    if not is_balanced(z):
        return False
    h = 0
    for bit in z:
        h += 1 if bit == "1" else -1
        if h < 0:
            return False
    return True


def is_strictly_catalan(z: str) -> bool:
    """True when ``z`` is balanced and its walk is positive on the interior.

    Equivalently ``G_z(i) > 0`` for all ``0 < i < |z|``; the empty string
    is vacuously strictly Catalan.
    """
    if not is_balanced(z):
        return False
    h = 0
    for k, bit in enumerate(z, start=1):
        h += 1 if bit == "1" else -1
        if h <= 0 and k < len(z):
            return False
    return True


def _cyclic_heights(z: str) -> list[int]:
    """Heights at cyclic positions ``0..|z|-1`` (endpoint excluded)."""
    return walk_heights(z)[:-1]


def maxima_positions(z: str) -> list[int]:
    """Cyclic positions where ``G_z`` attains its maximum."""
    if not z:
        return []
    heights = _cyclic_heights(z)
    top = max(heights)
    return [i for i, h in enumerate(heights) if h == top]


def minima_positions(z: str) -> list[int]:
    """Cyclic positions where ``G_z`` attains its minimum."""
    if not z:
        return []
    heights = _cyclic_heights(z)
    bottom = min(heights)
    return [i for i, h in enumerate(heights) if h == bottom]


def maxima_count(z: str) -> int:
    """``t`` such that ``z`` is t-maximal (cyclic position convention)."""
    return len(maxima_positions(z))


def minima_count(z: str) -> int:
    """``t`` such that ``z`` is t-minimal (cyclic position convention)."""
    return len(minima_positions(z))


def rotate(z: str, shift: int) -> str:
    """The paper's cyclic shift ``S^shift z`` (forward by ``shift``).

    ``rotate(z, 1)`` moves the first symbol to the end.  Negative shifts
    rotate backward; the empty string rotates to itself.
    """
    if not z:
        return z
    shift %= len(z)
    return z[shift:] + z[:shift]


def complement(z: str) -> str:
    """Coordinatewise negation (the paper's ``z-bar``)."""
    flip = {"0": "1", "1": "0"}
    return "".join(flip[bit] for bit in z)


def catalan_rotation_index(z: str) -> int:
    """Smallest ``c`` such that ``rotate(z, c)`` is Catalan.

    ``z`` must be balanced (cycle lemma: rotating a balanced string so
    that it starts just after a global minimum of its walk yields a
    Catalan string).  Returns 0 for the empty string.
    """
    if not is_balanced(z):
        raise ValueError("catalan_rotation_index requires a balanced string")
    if not z:
        return 0
    heights = _cyclic_heights(z)
    bottom = min(heights)
    if bottom == 0:
        # Already Catalan: the walk never goes negative.
        return 0
    # Rotating to start at any global-minimum position works; the smallest
    # such rotation is the first minimum position.
    return heights.index(bottom)


def log_sharp(n: int) -> int:
    """The paper's ``log# n = ceil(log2 n)`` for ``n >= 1``."""
    if n < 1:
        raise ValueError(f"log_sharp requires n >= 1, got {n}")
    return (n - 1).bit_length()


def int_bit_width(max_value: int) -> int:
    """Bits needed for the canonical encoding of values in ``[0, max_value]``.

    Always at least 1, so even a domain of ``{0}`` gets a real encoding.
    """
    if max_value < 0:
        raise ValueError(f"max_value must be nonnegative, got {max_value}")
    return max(1, max_value.bit_length())


def even_width(width: int) -> int:
    """Round a bit width up to the next even number (Knuth encoding needs
    even-length inputs)."""
    if width < 0:
        raise ValueError(f"width must be nonnegative, got {width}")
    return width + (width % 2)


def encode_int(value: int, width: int) -> str:
    """Canonical big-endian binary encoding, zero-padded to ``width`` bits.

    This is the paper's ``x_2`` notation.  Big-endian fixed width gives
    the property used in Theorem 1's proof: if ``a < b`` then some
    coordinate holds 0 in ``a_2`` and 1 in ``b_2``.
    """
    if value < 0:
        raise ValueError(f"cannot encode negative value {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b") if width > 0 else ""


def decode_int(bits: str) -> int:
    """Inverse of :func:`encode_int` (empty string decodes to 0)."""
    validate_bits(bits)
    return int(bits, 2) if bits else 0
