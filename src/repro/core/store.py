"""Shared-memory schedule store for multi-process sweeps.

The Table-1 regime the paper cares about (worst-case TTR growing
superlinearly in the universe size ``n``) is exactly where period
tables get expensive: DRDS's global sequence spans ``45 n^2 + 8n``
slots, and materializing it (:meth:`~repro.core.schedule.Schedule.period_table`)
costs a full pass over the period.  Before this module existed, every
:class:`~repro.sim.runner.SweepRunner` worker process rebuilt each
table it touched — the dominant cost of dense-universe sweeps
(``n = 128, 256``), since the verification engine itself is batched
and cheap per pair.

:class:`ScheduleStore` materializes each distinct
``(channels, n, algorithm, seed)`` period table **exactly once** into a
numpy ``.npy`` file under a store directory, and hands out *read-only
memmap views* of it.  The key is the same cache key ``SweepRunner``
already uses (:func:`store_key`: the seed collapses to ``-1`` for every
deterministic algorithm), so a store can front any sweep without
changing its semantics.  Workers attach by path — attaching is a file
open plus an mmap, not a rebuild — and the OS page cache shares the
physical pages across every process on the machine.

Contracts
---------
* ``get`` returns a :class:`StoredSchedule` whose ``period_table()`` is
  the memmap itself — no copy is ever taken on the attach path, and the
  view is read-only (writing through it raises).
* ``builds`` / ``attaches`` / ``bypasses`` / ``evictions`` count what
  actually happened; benches assert "built exactly once per sweep"
  against ``builds``.
* The on-disk footprint is capped by ``memory_cap`` bytes: storing a
  new table evicts least-recently-attached entries first (mtime order).
  Tables whose period exceeds ``STORE_PERIOD_LIMIT`` — or that would
  not fit under the cap at all — bypass the store and come back as
  ordinary in-process schedules.
* Writes are atomic (temp file + ``os.replace``), so concurrent
  builders of the same key race benignly: last writer wins, both
  results are identical.
* The on-disk layout is **sharded**: tables live in digest-prefix
  subdirectories (``ab/<digest>.npy``) so no single directory listing
  grows unbounded, and legacy flat stores (``<digest>.npy`` in the
  root) keep attaching.  Extra ``read_roots`` form a multi-root read
  path — several hosts/processes can share one warm corpus (say, a
  read-only network mount) while each writes only its own primary
  root.
* The *global* DRDS sequence (one per universe size, shared by every
  channel set) is stored once as its own entry
  (:data:`GLOBAL_SEQUENCE_ALGORITHM`) and per-set DRDS tables are
  built by projecting the attached memmap — counted separately in
  ``global_builds`` / ``global_attaches`` so per-set "built exactly
  once" assertions keep their meaning.

See ``docs/ARCHITECTURE.md`` for where the store sits in the data flow
and ``docs/API.md`` for the call-level reference.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.core import telemetry
from repro.core.schedule import _CACHE_LIMIT, Schedule

__all__ = [
    "ScheduleStore",
    "StoredSchedule",
    "store_key",
    "key_digest",
    "build_plain",
    "coerce_schedule",
    "DEFAULT_MEMORY_CAP",
    "STORE_PERIOD_LIMIT",
    "GLOBAL_SEQUENCE_ALGORITHM",
    "SHARD_PREFIX_LEN",
]

#: Default cap on the total bytes of period tables kept in a store.
DEFAULT_MEMORY_CAP = 1 << 30

#: Largest period (slots) the store will materialize.  Shares the
#: schedule cache / batched-engine limit: beyond it the batched sweep
#: hands off to the streaming engine and a table would never be used.
STORE_PERIOD_LIMIT = _CACHE_LIMIT

#: Pseudo-algorithm name under which the global DRDS sequence (one per
#: universe size, independent of any channel set) is stored.
GLOBAL_SEQUENCE_ALGORITHM = "drds-global"

#: Hex digits of the digest that name a shard subdirectory.  Two digits
#: spread a large corpus over at most 256 directories, so no single
#: directory's listing grows unbounded — the layout several hosts can
#: rsync/NFS-share without directory-size pathologies.
SHARD_PREFIX_LEN = 2


def store_key(
    channels: Iterable[int], n: int, algorithm: str, seed: int = 0
) -> tuple[frozenset[int], int, str, int]:
    """Canonical schedule cache key, shared with ``SweepRunner``.

    Deterministic algorithms ignore the seed, so it collapses to ``-1``
    for everything except the randomized baseline — two agents with the
    same channel set share one entry under ``drds`` but keep separate
    tapes under ``random``.
    """
    return (
        frozenset(int(c) for c in channels),
        int(n),
        str(algorithm),
        int(seed) if algorithm == "random" else -1,
    )


def key_digest(key: tuple[frozenset[int], int, str, int]) -> str:
    """Stable 16-hex-digit digest of a :func:`store_key` — the filename stem."""
    channels, n, algorithm, seed = key
    text = f"{algorithm}|n={n}|seed={seed}|channels={sorted(channels)}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def build_plain(
    channels: Iterable[int], n: int, algorithm: str, seed: int = 0
) -> Schedule:
    """Build a schedule directly, with no store involved.

    This is the store's miss path and the no-store path of
    ``SweepRunner`` — one place that knows how to turn a cache key back
    into a live schedule (the paper's constructions via
    :func:`repro.build_schedule`, the seeded randomized baseline via
    :func:`repro.baselines.build_baseline`).
    """
    if algorithm == "random":
        from repro.baselines import build_baseline

        return build_baseline(channels, n, "random", seed=seed)
    import repro

    return repro.build_schedule(channels, n, algorithm=algorithm)


class StoredSchedule(Schedule):
    """A schedule backed by an externally owned period table.

    Wraps a period array — typically a read-only memmap handed out by
    :class:`ScheduleStore`, but any 1-D integer array works — and
    ``period_table()`` returns the wrapped array itself (int64 input is
    used as-is; other dtypes are converted, which copies, once at
    construction).  This is also the adapter
    :func:`repro.core.batch.ttr_sweep` uses to accept raw arrays in
    place of schedule objects; when ``channels`` is not supplied it is
    derived lazily from the table, so sweep-only wrappers never scan it.
    """

    def __init__(
        self,
        table: np.ndarray,
        channels: frozenset[int] | None = None,
    ):
        table = np.atleast_1d(table)
        if table.ndim != 1 or table.size == 0:
            raise ValueError("period table must be a nonempty 1-D array")
        if table.dtype != np.int64:
            table = np.ascontiguousarray(table, dtype=np.int64)
        self._table = table
        self.period = int(table.size)
        self._channels = channels

    @property
    def channels(self) -> frozenset[int]:
        """Channels the table visits (computed on first access)."""
        if self._channels is None:
            self._channels = frozenset(int(c) for c in np.unique(self._table))
        return self._channels

    def channel_at(self, t: int) -> int:
        """Channel at local slot ``t`` — one read through the table."""
        return int(self._table[t % self.period])

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Slice the wrapped table directly — a view when possible.

        Windows that stay inside one period come back as zero-copy
        slices; for a memmap attached from a :class:`ScheduleStore`
        that means the streaming engine's tiles read straight off disk
        (the OS page cache shares the pages across processes).  Windows
        that wrap fall back to one modular gather.
        """
        if stop < start:
            raise ValueError(f"empty window: start={start}, stop={stop}")
        lo = start % self.period
        if lo + (stop - start) <= self.period:
            return self._table[lo : lo + (stop - start)]
        indices = np.arange(start, stop, dtype=np.int64) % self.period
        return self._table[indices]

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """One fancy index into the wrapped table — for a store memmap
        the touched pages come straight off disk (or the shared OS page
        cache), never the whole table."""
        indices = np.asarray(indices, dtype=np.int64)
        return self._table[indices % self.period]

    def has_warm_table(self) -> bool:
        """Always ``True``: the wrapped array *is* the period table."""
        return True

    def _period_array(self) -> np.ndarray:
        return self._table


def coerce_schedule(x: Schedule | np.ndarray) -> Schedule:
    """Wrap a raw period array as a schedule view; pass schedules through.

    The shared input adapter of both sweep engines
    (:mod:`repro.core.batch`, :mod:`repro.core.stream`): either may be
    handed a :class:`~repro.core.schedule.Schedule` or a raw 1-D period
    array (e.g. a store memmap), and a raw array becomes a
    :class:`StoredSchedule` view over it — int64 input is never copied.
    """
    if isinstance(x, Schedule):
        return x
    return StoredSchedule(x)


class ScheduleStore:
    """Materialize-once, attach-many store of schedule period tables.

    Parameters
    ----------
    store_dir:
        Primary root.  Tables land in digest-prefix shard
        subdirectories (``<digest[:2]>/<digest>.npy`` plus a
        ``.json`` metadata sidecar); created if missing.  Handing the
        same path to another process (or another ``ScheduleStore``)
        attaches the same tables.  Pre-shard stores that kept
        ``<digest>.npy`` flat in the root keep working: the read path
        checks the sharded location first and falls back to the legacy
        flat one.
    memory_cap:
        Soft cap in bytes on the total size of stored tables; storing a
        table that would exceed it evicts least-recently-attached
        entries first.
    read_roots:
        Extra store roots searched (sharded layout, then legacy flat)
        when the primary misses — the multi-root read path that lets
        several hosts or jobs share one warm corpus (e.g. a read-only
        NFS mount) while writing locally.  Never written, never
        evicted, not listed by :meth:`entries`; builds always land in
        the primary root.
    """

    def __init__(
        self,
        store_dir: str | os.PathLike,
        memory_cap: int = DEFAULT_MEMORY_CAP,
        read_roots: Iterable[str | os.PathLike] = (),
    ):
        if memory_cap <= 0:
            raise ValueError(f"memory_cap must be positive, got {memory_cap}")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.read_roots = tuple(Path(root) for root in read_roots)
        self.memory_cap = int(memory_cap)
        self.builds = 0
        self.attaches = 0
        self.bypasses = 0
        self.evictions = 0
        self.global_builds = 0
        self.global_attaches = 0
        self._globals: dict[int, np.ndarray] = {}

    def _bump(self, name: str) -> None:
        """Increment one counter: the instance attribute stays the
        public per-store view, and the same event lands on the process
        telemetry registry under ``store.schedule.<name>`` so one
        :func:`repro.core.telemetry.snapshot` covers every store."""
        setattr(self, name, getattr(self, name) + 1)
        telemetry.count(f"store.schedule.{name}")

    # -- lookup ----------------------------------------------------------

    def get(
        self,
        channels: Iterable[int],
        n: int,
        algorithm: str,
        seed: int = 0,
    ) -> Schedule:
        """Attach the stored table for this key, building it on first use.

        Returns a :class:`StoredSchedule` over a read-only memmap, or —
        when the table is too large to store (period above
        ``STORE_PERIOD_LIMIT`` or bigger than the whole cap) — a plain
        in-process schedule, counted in ``bypasses``.
        """
        key = store_key(channels, n, algorithm, seed)
        digest = key_digest(key)
        attached = self._try_attach(self._find_table(digest), key[0])
        if attached is not None:
            return attached

        schedule = self._build_for_store(key[0], n, algorithm, seed)
        if schedule.period > STORE_PERIOD_LIMIT:
            self._bump("bypasses")
            return schedule
        table = np.ascontiguousarray(schedule.period_table(), dtype=np.int64)
        if not self._ensure_capacity(table.nbytes):
            self._bump("bypasses")
            return schedule
        self._write(digest, key, table)
        self._bump("builds")
        attached = self._try_attach(self._table_path(digest), key[0], count=False)
        if attached is not None:
            return attached
        # Evicted by a concurrent process in the write-to-open window:
        # the in-process schedule is still correct.
        return schedule

    def contains(
        self,
        channels: Iterable[int],
        n: int,
        algorithm: str,
        seed: int = 0,
    ) -> bool:
        """Whether the table for this key is currently materialized.

        Checks the primary root (sharded and legacy flat layouts) and
        every extra read root.
        """
        return (
            self._find_table(key_digest(store_key(channels, n, algorithm, seed)))
            is not None
        )

    def global_sequence(self, n: int) -> np.ndarray:
        """The global DRDS channel sequence for universe ``n``, shared.

        The sequence spans ``45 n^2 + 8n`` slots and is *independent of
        any channel set*, so it is materialized into the store exactly
        once per universe size (as an entry under
        :data:`GLOBAL_SEQUENCE_ALGORITHM`) and attached read-only by
        every later caller — same store, another runner, another
        process.  The per-set ``drds`` tables built through ``get``
        project this shared memmap instead of rebuilding the sequence.

        Counted in ``global_builds`` / ``global_attaches``, separate
        from the per-set ``builds`` / ``attaches`` so sweeps' "built
        exactly once per distinct key" assertions keep their meaning.
        A sequence that cannot be stored (period or capacity limits)
        is built in-process; the per-set miss that needed it records
        the ``bypasses`` count, so one unstored schedule is one bypass.
        """
        cached = self._globals.get(n)
        if cached is not None:
            return cached
        key = store_key((), n, GLOBAL_SEQUENCE_ALGORITHM)
        digest = key_digest(key)
        attached = self._attach_array(self._find_table(digest))
        if attached is not None:
            self._bump("global_attaches")
            self._globals[n] = attached
            return attached
        from repro.baselines.drds import build_global_sequence

        sequence = np.ascontiguousarray(build_global_sequence(n), dtype=np.int64)
        if sequence.size > STORE_PERIOD_LIMIT or not self._ensure_capacity(
            sequence.nbytes
        ):
            # Not counted in `bypasses`: the per-set miss that needed
            # this sequence is the one bypass event (its table is
            # necessarily unstorable for the same reason).
            self._globals[n] = sequence
            return sequence
        self._write(digest, key, sequence)
        self._bump("global_builds")
        attached = self._attach_array(self._table_path(digest))
        self._globals[n] = sequence if attached is None else attached
        return self._globals[n]

    # -- inspection ------------------------------------------------------

    def entries(self) -> list[dict]:
        """Metadata of every stored table, least-recently-attached first.

        Each entry carries ``digest``, ``algorithm``, ``n``, ``seed``,
        ``channels``, ``period``, ``nbytes`` and ``last_used`` (the
        table file's mtime, refreshed on every attach).  Lists the
        *primary* root only — both the sharded layout and legacy flat
        files — since that is the capacity/eviction domain; extra read
        roots belong to whoever owns them.
        """
        rows = []
        meta_paths = sorted(self.store_dir.glob("*.json")) + sorted(
            self.store_dir.glob(f"{'[0-9a-f]' * SHARD_PREFIX_LEN}/*.json")
        )
        for meta_path in meta_paths:
            table_path = meta_path.with_suffix(".npy")
            if not table_path.exists():
                continue
            meta = json.loads(meta_path.read_text())
            meta["last_used"] = table_path.stat().st_mtime
            rows.append(meta)
        rows.sort(key=lambda m: m["last_used"])
        return rows

    def total_bytes(self) -> int:
        """Total size of all stored period tables, in bytes."""
        return sum(m["nbytes"] for m in self.entries())

    def stats(self) -> dict[str, int]:
        """Counter snapshot: builds, attaches, bypasses, evictions, entries, bytes.

        ``global_builds`` / ``global_attaches`` track the shared global
        DRDS sequence separately from the per-set table counters.
        """
        entries = self.entries()
        return {
            "builds": self.builds,
            "attaches": self.attaches,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "global_builds": self.global_builds,
            "global_attaches": self.global_attaches,
            "entries": len(entries),
            "total_bytes": sum(m["nbytes"] for m in entries),
        }

    # -- eviction --------------------------------------------------------

    def evict(self, digest: str) -> bool:
        """Drop one stored table by digest; returns whether it existed.

        Covers both the sharded and legacy flat layouts of the primary
        root; read roots are never touched.  Already-attached memmaps
        stay valid (the mapping holds the pages); only future ``get``
        calls rebuild.
        """
        existed = False
        for table_path in (
            self._table_path(digest),
            self.store_dir / f"{digest}.npy",
        ):
            if table_path.exists():
                existed = True
            table_path.unlink(missing_ok=True)
            table_path.with_suffix(".json").unlink(missing_ok=True)
        if existed:
            self._bump("evictions")
        return existed

    def clear(self) -> int:
        """Evict every stored table; returns how many were dropped."""
        count = 0
        for meta in self.entries():
            count += int(self.evict(meta["digest"]))
        return count

    # -- internals -------------------------------------------------------

    def _build_for_store(
        self, channels: frozenset[int], n: int, algorithm: str, seed: int
    ) -> Schedule:
        """The store's miss path: build one schedule for materialization.

        ``drds`` schedules are built over the store's shared global
        sequence (see :meth:`global_sequence`) so the expensive
        ``45 n^2 + 8n``-slot construction happens once per universe
        size, not once per channel set; everything else defers to
        :func:`build_plain`.
        """
        if algorithm == "drds":
            from repro.baselines.drds import DRDSSchedule

            return DRDSSchedule(channels, n, global_sequence=self.global_sequence(n))
        return build_plain(channels, n, algorithm, seed)

    def _attach_array(self, path: Path | None) -> np.ndarray | None:
        """mmap one stored table read-only, or None if it is (or just
        became) absent — a concurrent eviction between the existence
        check and the open must fall through to the build path, not
        raise."""
        if path is None or not path.exists():
            return None
        try:
            table = np.load(path, mmap_mode="r")
        except OSError:
            return None
        # Refresh the LRU position *after* the attach succeeded, and
        # tolerate failure separately: on a read-only root (or when a
        # concurrent eviction wins the race) the timestamp cannot be
        # updated, but the mapping is live and the attach stands —
        # discarding it here would silently rebuild a warm table.
        try:
            os.utime(path)
        except OSError:
            pass
        return table

    def _try_attach(
        self, path: Path | None, channels: frozenset[int], count: bool = True
    ) -> StoredSchedule | None:
        """Attach one per-set table as a schedule view; None if absent."""
        table = self._attach_array(path)
        if table is None:
            return None
        if count:
            self._bump("attaches")
        return StoredSchedule(table, channels)

    def _table_path(self, digest: str) -> Path:
        """Primary-root write location: the digest-prefix shard subdir."""
        return self.store_dir / digest[:SHARD_PREFIX_LEN] / f"{digest}.npy"

    def _meta_path(self, digest: str) -> Path:
        return self._table_path(digest).with_suffix(".json")

    def _find_table(self, digest: str) -> Path | None:
        """Locate one table across roots and layouts, or None.

        Search order: primary root sharded, primary root legacy flat,
        then each extra read root (sharded, then flat).  First match
        wins — a table promoted into the primary root shadows the same
        digest in any read root.
        """
        for root in (self.store_dir, *self.read_roots):
            for candidate in (
                root / digest[:SHARD_PREFIX_LEN] / f"{digest}.npy",
                root / f"{digest}.npy",
            ):
                if candidate.exists():
                    return candidate
        return None

    def _ensure_capacity(self, incoming: int) -> bool:
        """Make room for ``incoming`` bytes; False if it can never fit."""
        if incoming > self.memory_cap:
            return False
        entries = self.entries()  # least-recently-attached first
        total = sum(m["nbytes"] for m in entries)
        while total + incoming > self.memory_cap and entries:
            victim = entries.pop(0)
            if self.evict(victim["digest"]):
                total -= victim["nbytes"]
        return True

    def _write(
        self,
        digest: str,
        key: tuple[frozenset[int], int, str, int],
        table: np.ndarray,
    ) -> None:
        """Atomically persist one table and its metadata sidecar."""
        channels, n, algorithm, seed = key
        shard_dir = self._table_path(digest).parent
        shard_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".npy.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, table)
            os.replace(tmp, self._table_path(digest))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        meta = {
            "digest": digest,
            "algorithm": algorithm,
            "n": n,
            "seed": seed,
            "channels": sorted(channels),
            "period": int(table.size),
            "nbytes": int(table.nbytes),
        }
        fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(meta, handle, indent=2)
            os.replace(tmp, self._meta_path(digest))
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
