"""Closed-form guarantee bounds for every construction in this repo.

One place for the analytic worst-case rendezvous bounds, so tests,
benches and documentation all quote the same formulas:

===============================  ==========================================
construction                     asynchronous guarantee (slots)
===============================  ==========================================
Theorem 1 (size-two sets)        ``async_period(n)``
Theorem 3 (general sets)         ``2 L (p_A q_B + 2)`` for the cheapest
                                 helpful prime pair
Section 3.2 wrapper, symmetric   ``12``
Section 3.2 wrapper, general     ``12 x Theorem 3 + 24``
CRSEQ                            ``3 P^2`` (period; P = min prime >= n)
Jump-Stay                        ``3 P^2 (P - 1)`` (period; P > n)
DRDS (ours)                      ``45 n^2 + 8n`` (period)
randomized (reference)           ``O(k l log n)`` w.h.p. only
===============================  ==========================================
"""

from __future__ import annotations

import math

from repro.baselines.drds import sequence_period
from repro.core.pairwise import async_period, sync_period
from repro.core.primes import (
    smallest_prime_at_least,
    smallest_prime_greater_than,
    two_primes_for_set_size,
)

__all__ = [
    "theorem1_async_bound",
    "theorem1_sync_bound",
    "theorem3_async_bound",
    "theorem3_sync_bound",
    "symmetric_wrapper_bound",
    "wrapped_pair_bound",
    "crseq_bound",
    "jump_stay_bound",
    "drds_bound",
    "randomized_expected_ttr",
    "randomized_whp_bound",
    "SYMMETRIC_CONSTANT",
]

#: Worst-case symmetric rendezvous of the Section 3.2 wrapper.
SYMMETRIC_CONSTANT = 12


def theorem1_async_bound(n: int) -> int:
    """Asynchronous rendezvous bound for two overlapping 2-sets."""
    return async_period(n)


def theorem1_sync_bound(n: int) -> int:
    """Synchronous rendezvous bound for two overlapping 2-sets."""
    return sync_period(n)


def _helpful_pair_product(k: int, l: int) -> int:
    """Cheapest ``p * q`` over helpful (distinct) prime pairs."""
    pa = two_primes_for_set_size(k)
    pb = two_primes_for_set_size(l)
    best = None
    for p in pa:
        for q in pb:
            if p != q and (best is None or p * q < best):
                best = p * q
    if best is None:  # identical singletons cannot happen: pairs differ
        raise AssertionError("no helpful prime pair")
    return best


def theorem3_async_bound(k: int, l: int, n: int) -> int:
    """Asynchronous bound for sets of sizes ``k`` and ``l`` in ``[n]``.

    ``2 L (pq + 2)``: the CRT epoch within ``pq`` epochs, one epoch for
    the rounding of the offset ``mu`` and one for the partial first
    epoch; each epoch is ``2 L`` slots (the doubling).
    """
    return 2 * async_period(n) * (_helpful_pair_product(k, l) + 2)


def theorem3_sync_bound(k: int, l: int, n: int) -> int:
    """Synchronous variant: single-length epochs, aligned start."""
    return sync_period(n) * (_helpful_pair_product(k, l) + 2)


def symmetric_wrapper_bound() -> int:
    """Identical sets under the Section 3.2 wrapper: constant."""
    return SYMMETRIC_CONSTANT


def wrapped_pair_bound(k: int, l: int, n: int) -> int:
    """General pairs after wrapping: 12x the base bound plus slack."""
    return SYMMETRIC_CONSTANT * theorem3_async_bound(k, l, n) + 2 * SYMMETRIC_CONSTANT


def crseq_bound(n: int) -> int:
    """CRSEQ guarantee envelope: one full period."""
    p = smallest_prime_at_least(n)
    return 3 * p * p


def jump_stay_bound(n: int) -> int:
    """Jump-Stay guarantee envelope: one full period."""
    p = smallest_prime_greater_than(n)
    return 3 * p * p * (p - 1)


def drds_bound(n: int) -> int:
    """Our DRDS family's guarantee envelope: one full period."""
    return sequence_period(n)


def randomized_expected_ttr(k: int, l: int, overlap: int = 1) -> float:
    """Expected TTR of the naive randomized scheme (geometric)."""
    if overlap < 1:
        raise ValueError("agents without overlap never rendezvous")
    success = overlap / (k * l)
    return 1 / success - 1


def randomized_whp_bound(k: int, l: int, n: int, overlap: int = 1) -> int:
    """Slots for failure probability ``<= 1/n`` under random hopping."""
    if overlap < 1:
        raise ValueError("agents without overlap never rendezvous")
    success = overlap / (k * l)
    return math.ceil(math.log(n) / -math.log1p(-success))
