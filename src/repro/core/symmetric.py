"""The symmetric O(1) reduction (paper Section 3.2).

Any schedule family can be wrapped so that two agents with *identical*
channel sets rendezvous in constant time, while all other pairs slow down
by at most a constant factor (12x).  Each base slot calling for channel
``c1`` expands into the 12-slot pattern

    c0 c1 c0 c0 c1 c1 c0 c1 c0 c0 c1 c1        (c0 = min of the set)

i.e. the string ``010011`` repeated twice with ``0 -> c0``, ``1 -> c1``.
The string ``s = 010011`` satisfies ``s diamond-0 s`` at *every* relative
rotation: both ``(0,0)`` and ``(1,1)`` occur.  Since every agent with set
``A`` uses the same ``c0 = min(A)``, the ``(0,0)`` guarantee gives two
identical-set agents a simultaneous hop on ``c0`` within one 6-slot
period of both being awake — constant-time symmetric rendezvous.  The
``(1,1)`` guarantee transports any rendezvous of the base schedules into
the wrapped ones (the doubling provides the needed overlap), so general
pairs keep their guarantee at 12x the time.
"""

from __future__ import annotations

from repro.core.schedule import Schedule

__all__ = ["SYMMETRIC_PATTERN", "SymmetricWrappedSchedule"]

#: The paper's pattern for one base slot: 0 = min(A), 1 = base channel.
SYMMETRIC_PATTERN: tuple[int, ...] = (0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1, 1)

_EXPANSION = len(SYMMETRIC_PATTERN)


class SymmetricWrappedSchedule(Schedule):
    """12x expansion of a base schedule with constant symmetric rendezvous."""

    def __init__(self, base: Schedule):
        self.base = base
        self._c0 = min(base.channels)
        self.period = _EXPANSION * base.period
        self.channels = base.channels | {self._c0}

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the 3.2 pattern interleaving stay and base."""
        if t < 0:
            raise ValueError(f"slot must be nonnegative, got {t}")
        base_slot, position = divmod(t, _EXPANSION)
        if SYMMETRIC_PATTERN[position] == 0:
            return self._c0
        return self.base.channel_at(base_slot)
