"""The general n-schedule (paper Theorem 3).

An agent with channel set ``A = {a_0 < ... < a_{k-1}}`` picks the two
smallest distinct primes ``p < p'`` in ``[k, 3k]`` and runs a sequence of
fixed-length *epochs*.  Epoch ``r`` plays the Theorem 1 size-two schedule
for the channel pair ``(a_i, a_j)`` with ``i = r mod p`` and
``j = r mod p'`` (indices that fall outside ``[0, k)`` fall back to 0, the
paper's "arbitrary element").  If ``i == j`` the epoch degenerates to a
constant schedule on that channel — harmless, since every size-two
string visits both of its channels.

* **Synchronous variant**: epochs last ``sync_period(n)`` slots and play
  the ``C``-string once per epoch (repeating cyclically).
* **Asynchronous variant**: epochs last ``2 * async_period(n)`` slots —
  the paper's doubling trick, which makes any two agents' epochs overlap
  in at least one full size-two period regardless of wake-up offsets.

Rendezvous bound: for agents ``A, B`` sharing channel ``c = a_x = b_y``
there is a *helpful* prime pair ``p != q`` (one from each agent); the
Chinese Remainder Theorem yields an epoch ``r <= p*q`` with
``r = x (mod p)`` and ``r - mu = y (mod q)``, so rendezvous happens within
``O(p q)`` epochs, i.e. ``O(|A||B| log log n)`` slots.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.pairwise import (
    async_period,
    pair_schedule_async,
    pair_schedule_sync,
    sync_period,
)
from repro.core.primes import two_primes_for_set_size
from repro.core.schedule import ConstantSchedule, Schedule

__all__ = ["EpochSchedule", "rendezvous_bound"]


class EpochSchedule(Schedule):
    """Theorem 3 schedule for an arbitrary channel set.

    Parameters
    ----------
    channels:
        The agent's available channels (distinct ints in ``[0, n)``).
    n:
        Universe size; all agents of a deployment share it.
    asynchronous:
        ``True`` (default) builds the doubled-epoch asynchronous variant,
        ``False`` the synchronous one.
    prime_pair:
        Override the prime pair (ablation knob).  Must be two distinct
        primes in ``[k, 3k]``; the default is the two smallest.
    """

    def __init__(
        self,
        channels: Iterable[int],
        n: int,
        *,
        asynchronous: bool = True,
        prime_pair: tuple[int, int] | None = None,
    ):
        ordered = sorted(set(int(c) for c in channels))
        if not ordered:
            raise ValueError("channel set must be nonempty")
        if ordered[0] < 0 or ordered[-1] >= n:
            raise ValueError(f"channels {ordered} outside universe [0, {n})")
        self.n = n
        self.sorted_channels = tuple(ordered)
        self.channels = frozenset(ordered)
        self.asynchronous = asynchronous
        self.k = len(ordered)
        if prime_pair is None:
            prime_pair = two_primes_for_set_size(self.k)
        else:
            prime_pair = self._validated_prime_pair(prime_pair)
        self.prime_pair = prime_pair
        base = async_period(n) if asynchronous else sync_period(n)
        self.size_two_period = base
        self.epoch_length = 2 * base if asynchronous else base
        p, q = self.prime_pair
        self.period = self.epoch_length * p * q
        self._epoch_cache: dict[tuple[int, int], Schedule] = {}

    def _validated_prime_pair(self, pair: tuple[int, int]) -> tuple[int, int]:
        from repro.core.primes import is_prime

        p, q = pair
        if p == q or not (is_prime(p) and is_prime(q)):
            raise ValueError(f"prime_pair must be two distinct primes, got {pair}")
        if not (self.k <= min(p, q) and max(p, q) <= 3 * self.k):
            raise ValueError(
                f"prime_pair {pair} outside the paper's window "
                f"[{self.k}, {3 * self.k}]"
            )
        return (min(p, q), max(p, q))

    def _epoch_indices(self, r: int) -> tuple[int, int]:
        """Channel indices ``(i, j)`` for epoch ``r`` (with fallback to 0)."""
        p, q = self.prime_pair
        i = r % p
        j = r % q
        if i >= self.k:
            i = 0
        if j >= self.k:
            j = 0
        return i, j

    def _epoch_schedule(self, i: int, j: int) -> Schedule:
        key = (i, j) if i <= j else (j, i)
        cached = self._epoch_cache.get(key)
        if cached is not None:
            return cached
        a, b = self.sorted_channels[key[0]], self.sorted_channels[key[1]]
        if a == b:
            built: Schedule = ConstantSchedule(a)
        elif self.asynchronous:
            built = pair_schedule_async(a, b, self.n)
        else:
            built = pair_schedule_sync(a, b, self.n)
        self._epoch_cache[key] = built
        return built

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: epoch ``r = t div epoch_length``'s pair string."""
        if t < 0:
            raise ValueError(f"slot must be nonnegative, got {t}")
        r, offset = divmod(t, self.epoch_length)
        i, j = self._epoch_indices(r)
        return self._epoch_schedule(i, j).channel_at(offset)


def rendezvous_bound(a: EpochSchedule, b: EpochSchedule) -> int:
    """Conservative worst-case asynchronous TTR bound for two schedules.

    Uses the cheapest *helpful* prime pair (one prime from each agent,
    distinct).  The CRT argument places a good epoch within ``p*q`` epochs
    of wake-up; one extra epoch absorbs the rounding of the relative
    offset ``mu`` and one more the partial first epoch.
    """
    best = None
    for p in a.prime_pair:
        for q in b.prime_pair:
            if p != q and (best is None or p * q < best):
                best = p * q
    if best is None:
        raise AssertionError("no helpful prime pair; unreachable for distinct pairs")
    epoch = max(a.epoch_length, b.epoch_length)
    return epoch * (best + 2)
