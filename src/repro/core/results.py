"""Persistent, content-addressed cache of sweep measurements.

The repo's headline numbers are *repeat queries*: the same
``(algorithm, n, channel sets, shift plan)`` cell is recomputed by
every benchmark, example, and CI smoke that touches it.  The schedule
store (:mod:`repro.core.store`) already removed repeated period-table
construction; this module removes the repeated *sweep* — a measurement,
once computed, is answered from disk in microseconds.

:class:`ResultStore` keys each measurement by a canonical digest of its
engine-invariant inputs (see :func:`pair_query` / :func:`result_digest`)
and persists records as JSON lines in digest-prefix **shards** under a
store directory.  The design mirrors the schedule store's discipline:

* **content addressing** — the key is the query itself, canonically
  JSON-encoded with sorted keys and sorted channel lists, hashed with
  SHA-256.  Engine identity (``batched`` / ``stream`` / ``scalar``),
  tile budgets, and worker counts are deliberately *excluded*: every
  engine is parity-certified bit-identical, so a result computed under
  one configuration answers a query made under any other.
* **atomic shards** — a record lands in shard file
  ``<digest[:2]>.jsonl``; shard rewrites go through a temp file plus
  ``os.replace``, so concurrent writers race benignly (last writer
  wins, and both were computing identical values).
* **counters** — ``hits`` / ``misses`` / ``writes`` / ``invalidations``
  / ``evictions`` count what actually happened; the serve CLI and the
  service-cache benchmark assert against them.
* **LRU byte cap** — the on-disk footprint is capped by ``memory_cap``
  bytes; writing into a full store evicts least-recently-*read* shards
  first (shard-file mtime order, refreshed on every hit), never the
  shard being written.

``SweepRunner`` (:mod:`repro.sim.runner`) consults an attached result
store before building any schedule and writes through after computing;
``python -m repro serve`` is the query front end.  See
``docs/ARCHITECTURE.md`` (serving layer) and ``docs/API.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Iterable
from pathlib import Path

from repro.core import telemetry

__all__ = [
    "ResultStore",
    "pair_query",
    "result_digest",
    "DEFAULT_RESULT_CAP",
    "SHARD_PREFIX_LEN",
]

#: Default cap on the total bytes of result shards kept in a store.
#: Records are a few hundred bytes each, so 64 MiB holds on the order
#: of a hundred thousand measurements.
DEFAULT_RESULT_CAP = 1 << 26

#: Hex digits of the digest that name a shard file: 2 digits spread
#: records over at most 256 shards, matching the schedule store's
#: digest-prefix subdirectory layout.
SHARD_PREFIX_LEN = 2


def pair_query(
    algorithm: str,
    n: int,
    set_a: Iterable[int],
    set_b: Iterable[int],
    horizon: int,
    dense: int,
    probes: int,
    seed: int,
    environment=None,
) -> dict:
    """Canonical query dict for one pairwise worst-TTR measurement.

    Carries exactly the engine-invariant inputs that determine the
    measurement: the algorithm, universe size, both channel sets
    (sorted — agent order within the pair does not matter to the
    sweep's *inputs*, but the two sets are kept positional because the
    shift plan is signed: positive shifts delay agent B), and the shift
    plan parameters (``dense``/``probes``/``seed``) plus ``horizon``.
    Engine name, tile bytes, and worker counts are excluded on purpose:
    results are bit-identical across all of them.

    ``environment`` (an :class:`~repro.core.environment.Environment`)
    joins the query as its canonical spec when present; a clean query
    omits the key entirely, so digests of pre-environment records are
    unchanged and a faulted measurement can never answer a clean query
    (or vice versa).
    """
    query = {
        "kind": "measure_pair",
        "algorithm": str(algorithm),
        "n": int(n),
        "set_a": sorted(int(c) for c in set_a),
        "set_b": sorted(int(c) for c in set_b),
        "horizon": int(horizon),
        "dense": int(dense),
        "probes": int(probes),
        "seed": int(seed),
    }
    if environment is not None:
        query["environment"] = environment.spec()
    return query


def result_digest(query: dict) -> str:
    """Stable hex digest of a canonical query dict.

    The digest of the sorted-keys JSON encoding — two dicts with the
    same contents produce the same digest regardless of insertion
    order.  The first :data:`SHARD_PREFIX_LEN` digits pick the shard.
    """
    text = json.dumps(query, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:32]


class ResultStore:
    """Persistent JSON-lines cache of measurement results.

    Parameters
    ----------
    store_dir:
        Directory holding the ``<prefix>.jsonl`` shard files; created
        if missing.  Handing the same path to another process (or
        another ``ResultStore``) shares the same records.
    memory_cap:
        Soft cap in bytes on the total size of shard files; writing
        into a full store evicts least-recently-read shards first.
    """

    def __init__(
        self,
        store_dir: str | os.PathLike,
        memory_cap: int = DEFAULT_RESULT_CAP,
    ):
        if memory_cap <= 0:
            raise ValueError(f"memory_cap must be positive, got {memory_cap}")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.memory_cap = int(memory_cap)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        self.evictions = 0

    def _bump(self, name: str) -> None:
        """Increment one counter: the instance attribute stays the
        public per-store view, and the same event lands on the process
        telemetry registry under ``store.result.<name>`` — namespaced
        apart from the schedule store's counters, so the two stores'
        identically named events (``evictions``) never collide in one
        :func:`repro.core.telemetry.snapshot`."""
        setattr(self, name, getattr(self, name) + 1)
        telemetry.count(f"store.result.{name}")

    # -- lookup ----------------------------------------------------------

    def get(self, query: dict) -> dict | None:
        """The cached value for ``query``, or ``None`` on a miss.

        A hit refreshes the containing shard's LRU position (its file
        mtime) and bumps ``hits``; a miss bumps ``misses``.
        """
        digest = result_digest(query)
        path = self._shard_path(digest)
        record = self._read_shard(path).get(digest)
        if record is None:
            self._bump("misses")
            return None
        self._bump("hits")
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass  # shard evicted/read-only mid-hit: the value stands
        return record["value"]

    def put(self, query: dict, value: dict) -> None:
        """Write one result through to disk (last writer wins).

        The record joins its digest-prefix shard atomically (temp file
        plus ``os.replace``); an existing record under the same digest
        is replaced.  Evicts least-recently-read *other* shards first
        when the store is over its byte cap.
        """
        digest = result_digest(query)
        path = self._shard_path(digest)
        records = self._read_shard(path)
        records[digest] = {"digest": digest, "query": query, "value": value}
        payload = "".join(
            json.dumps(records[key], sort_keys=True) + "\n"
            for key in sorted(records)
        )
        self._ensure_capacity(len(payload.encode()), keep=path.name)
        fd, tmp = tempfile.mkstemp(dir=self.store_dir, suffix=".jsonl.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self._bump("writes")

    def invalidate(self, query: dict) -> bool:
        """Drop one cached result by query; returns whether it existed.

        The explicit cache-busting hook for when an algorithm
        implementation changes underneath stored measurements.
        """
        digest = result_digest(query)
        path = self._shard_path(digest)
        records = self._read_shard(path)
        if digest not in records:
            return False
        del records[digest]
        if records:
            payload = "".join(
                json.dumps(records[key], sort_keys=True) + "\n"
                for key in sorted(records)
            )
            fd, tmp = tempfile.mkstemp(dir=self.store_dir, suffix=".jsonl.tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                Path(tmp).unlink(missing_ok=True)
                raise
        else:
            path.unlink(missing_ok=True)
        self._bump("invalidations")
        return True

    # -- inspection ------------------------------------------------------

    def entries(self) -> list[dict]:
        """Every stored record, shard by shard (least-recently-read first)."""
        rows: list[dict] = []
        for path in self._shards():
            rows.extend(self._read_shard(path).values())
        return rows

    def total_bytes(self) -> int:
        """Total size of all shard files, in bytes."""
        return sum(path.stat().st_size for path in self._shards())

    def clear(self) -> int:
        """Drop every shard; returns how many records were removed."""
        count = len(self.entries())
        for path in self._shards():
            path.unlink(missing_ok=True)
        return count

    def stats(self) -> dict[str, int]:
        """Counter snapshot: hits, misses, writes, invalidations, evictions, entries, bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self.entries()),
            "total_bytes": self.total_bytes(),
        }

    # -- internals -------------------------------------------------------

    def _shards(self) -> list[Path]:
        """Shard files, least-recently-read (oldest mtime) first."""
        paths = [p for p in self.store_dir.glob("*.jsonl") if p.is_file()]
        paths.sort(key=lambda p: p.stat().st_mtime)
        return paths

    def _shard_path(self, digest: str) -> Path:
        return self.store_dir / f"{digest[:SHARD_PREFIX_LEN]}.jsonl"

    def _read_shard(self, path: Path) -> dict[str, dict]:
        """Records of one shard by digest; corrupt lines are skipped.

        A half-written line can only come from a non-atomic external
        writer; skipping it degrades to a cache miss, never a wrong
        answer.
        """
        try:
            text = path.read_text()
        except OSError:
            return {}
        records: dict[str, dict] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                records[record["digest"]] = record
            except (ValueError, KeyError, TypeError):
                continue
        return records

    def _ensure_capacity(self, incoming: int, keep: str) -> None:
        """Evict cold shards until ``incoming`` bytes fit under the cap.

        ``keep`` names the shard being rewritten: it never evicts (its
        old size is about to be replaced, and evicting it would lose
        the sibling records being carried over).
        """
        shards = [p for p in self._shards() if p.name != keep]
        total = sum(p.stat().st_size for p in shards)
        while total + incoming > self.memory_cap and shards:
            victim = shards.pop(0)
            try:
                size = victim.stat().st_size
                victim.unlink()
            except OSError:
                continue
            total -= size
            self._bump("evictions")
