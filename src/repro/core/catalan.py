"""The maps ``U``, ``M`` and ``R`` of Theorem 1 (paper Section 3).

The asynchronous size-two construction needs an injective map ``R`` whose
images are simultaneously

* **balanced**          (as many 0s as 1s),
* **strictly Catalan**  (walk positive on the interior), and
* **2-maximal**         (walk maximum attained at exactly two positions).

These three properties drive the rendezvous proof: balancedness equalises
the counts of ``(0,1)/(1,0)`` and of ``(0,0)/(1,1)`` coincidences between
any two equal-length strings at any relative rotation; strict Catalan-ness
makes every string distinguishable from all nontrivial rotations of every
other; 2-maximality rules out a string coinciding with the *complement* of
any rotation (complements of rotations are 1-maximal... 2-minimal, never
2-maximal-and-strictly-Catalan).

Pipeline (paper notation):

    R(z) = M( 1 || U(K(z)) || 0 )

* ``K`` is the balanced encoding (:mod:`repro.core.knuth`).
* ``U(z) = S^c(z) || 1^{l/2} || K(c_2) || 0^{l/2}`` rotates the balanced
  string ``z`` to a Catalan string (cycle lemma) and records the rotation
  ``c`` so the map stays injective; ``l = |K(c_2)|``.
* Wrapping in ``1 ... 0`` upgrades Catalan to strictly Catalan.
* ``M`` inserts ``1010`` at the first walk-maximum, making the string
  2-maximal while preserving balance and strictness.

Every map here has an explicit inverse, which the test-suite uses to prove
injectivity by round-trip.
"""

from __future__ import annotations

from repro.core import knuth
from repro.core.bitstrings import (
    catalan_rotation_index,
    decode_int,
    encode_int,
    even_width,
    int_bit_width,
    is_balanced,
    is_catalan,
    is_strictly_catalan,
    maxima_positions,
    rotate,
    validate_bits,
    walk_heights,
)

__all__ = [
    "u_transform",
    "u_inverse",
    "u_length",
    "m_transform",
    "m_inverse",
    "r_map",
    "r_inverse",
    "r_length",
]

_MARKER = "1010"


def _rotation_field_width(length: int) -> int:
    """Even bit width used to record a rotation index in ``[0, length)``."""
    return even_width(int_bit_width(max(length - 1, 0)))


def u_length(input_length: int) -> int:
    """``|U(z)|`` for balanced ``z`` with ``|z| == input_length``."""
    if input_length % 2 != 0:
        raise ValueError(f"balanced strings have even length, got {input_length}")
    tail = knuth.encoded_length(_rotation_field_width(input_length))
    return input_length + 2 * tail


def u_transform(z: str) -> str:
    """Rotate ``z`` to a Catalan string, appending an invertible record.

    ``U(z) = S^c(z) || 1^{l/2} || K(c_2) || 0^{l/2}`` where ``c`` is the
    Catalan rotation index and ``l = |K(c_2)|``.  The output is Catalan:
    the rotated part ends at height 0, the ramp climbs to ``l/2``, the
    balanced middle cannot dip below ``-l/2``, and the final descent
    returns exactly to 0 (so the output is balanced, too).
    """
    validate_bits(z)
    if not is_balanced(z):
        raise ValueError("u_transform requires a balanced string")
    c = catalan_rotation_index(z)
    field = encode_int(c, _rotation_field_width(len(z)))
    record = knuth.encode(field)
    half = len(record) // 2
    out = rotate(z, c) + "1" * half + record + "0" * half
    if not is_catalan(out):
        raise AssertionError(f"U({z!r}) produced non-Catalan output {out!r}")
    return out


def u_inverse(y: str, input_length: int) -> str:
    """Inverse of :func:`u_transform` for inputs of known length."""
    validate_bits(y)
    expected = u_length(input_length)
    if len(y) != expected:
        raise ValueError(
            f"U-image has length {len(y)}, expected {expected} for "
            f"input_length {input_length}"
        )
    field_width = _rotation_field_width(input_length)
    record_length = knuth.encoded_length(field_width)
    half = record_length // 2
    rotated = y[:input_length]
    ramp = y[input_length : input_length + half]
    record = y[input_length + half : input_length + half + record_length]
    descent = y[input_length + half + record_length :]
    if ramp != "1" * half or descent != "0" * half:
        raise ValueError("corrupt U-image: ramp/descent padding mismatch")
    c = decode_int(knuth.decode(record, field_width))
    if input_length and c >= input_length:
        raise ValueError(f"corrupt U-image: rotation {c} out of range")
    return rotate(rotated, -c)


def m_transform(z: str) -> str:
    """Insert ``1010`` at the first walk-maximum of ``z``.

    For a strictly Catalan ``z`` the result is strictly Catalan, balanced,
    and 2-maximal: the inserted peak exceeds the old maximum by one and is
    attained exactly twice.
    """
    validate_bits(z)
    if not z:
        raise ValueError("m_transform requires a nonempty string")
    heights = walk_heights(z)
    top = max(heights[:-1])
    first_max = heights.index(top)
    return z[:first_max] + _MARKER + z[first_max:]


def m_inverse(y: str) -> str:
    """Inverse of :func:`m_transform`.

    The insertion point is recoverable: the first position attaining the
    (new) maximum is one step into the inserted ``1010``.
    """
    validate_bits(y)
    if len(y) < len(_MARKER):
        raise ValueError("M-image too short")
    heights = walk_heights(y)
    top = max(heights[:-1])
    first_max = heights.index(top)
    insert_at = first_max - 1
    if insert_at < 0 or y[insert_at : insert_at + 4] != _MARKER:
        raise ValueError("corrupt M-image: marker not found at insertion point")
    return y[:insert_at] + y[insert_at + 4 :]


def r_length(input_length: int) -> int:
    """``|R(z)|`` for inputs of even length ``input_length``."""
    inner = knuth.encoded_length(input_length)
    return u_length(inner) + 2 + len(_MARKER)


def r_map(z: str) -> str:
    """The full Theorem 1 map ``R(z) = M(1 || U(K(z)) || 0)``.

    ``z`` must have even length (pad widths with
    :func:`repro.core.bitstrings.even_width` first).  The output is
    balanced, strictly Catalan and 2-maximal; the test-suite checks all
    three predicates plus injectivity directly.
    """
    validate_bits(z)
    if len(z) % 2 != 0:
        raise ValueError(f"r_map requires even-length input, got length {len(z)}")
    wrapped = "1" + u_transform(knuth.encode(z)) + "0"
    out = m_transform(wrapped)
    if not is_strictly_catalan(out):
        raise AssertionError(f"R({z!r}) is not strictly Catalan: {out!r}")
    if len(maxima_positions(out)) != 2:
        raise AssertionError(f"R({z!r}) is not 2-maximal: {out!r}")
    return out


def r_inverse(y: str, input_length: int) -> str:
    """Inverse of :func:`r_map` for inputs of known even length."""
    if input_length % 2 != 0:
        raise ValueError(f"input_length must be even, got {input_length}")
    expected = r_length(input_length)
    if len(y) != expected:
        raise ValueError(
            f"R-image has length {len(y)}, expected {expected} for "
            f"input_length {input_length}"
        )
    wrapped = m_inverse(y)
    if not (wrapped.startswith("1") and wrapped.endswith("0")):
        raise ValueError("corrupt R-image: strict-Catalan wrapper missing")
    inner = knuth.encoded_length(input_length)
    return knuth.decode(u_inverse(wrapped[1:-1], inner), input_length)
