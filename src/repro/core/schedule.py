"""Channel-hopping schedule abstractions.

A *schedule* is the paper's ``sigma : N -> S`` (Section 2, "channel
schedule"): an infinite map from local time slots to the agent's
available channels.  Two agents rendezvous at global slot ``t`` when
``sigma_A(t - tA) == sigma_B(t - tB)`` for their wake-up times
``tA, tB`` — the predicate every verifier in this repo ultimately
evaluates.  All concrete constructions in this package (the paper's
epoch schedules of Theorem 3 as well as every Table-1 baseline) are
eventually cyclic, so the base class carries a ``period`` and supports
vectorized materialization into numpy arrays — the verification engine
and the simulator compare schedules as arrays rather than slot by slot.

The bulk hooks are :meth:`Schedule.period_table` — one full period as a
shared read-only array, cached up to ``_CACHE_LIMIT`` slots —
:meth:`Schedule.channel_block` — an arbitrary slot window **without**
materializing the period, which is what lets the streaming engine
(:mod:`repro.core.stream`) sweep schedules whose period is too large to
table — and :meth:`Schedule.channel_gather` — channels at an arbitrary
*array* of slot indices in one vectorized call, which is how the
streaming engine's blocked scan assembles a whole ``(shift, time)``
tile of scattered rows without per-row Python dispatch.  The batched
engine (:mod:`repro.core.batch`) builds every sweep from window views
of the period table; adding a new algorithm only requires
``channel_at`` plus (optionally) a vectorized
``_compute_period_array``, ``channel_block``, and/or
``channel_gather``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "Schedule",
    "CyclicSchedule",
    "ConstantSchedule",
    "FunctionSchedule",
]

_CACHE_LIMIT = 1 << 22  # largest period array worth caching (slots)


class Schedule:
    """Base class: an infinite, eventually-cyclic channel schedule.

    Subclasses must set ``period`` (a positive int) and ``channels`` (the
    frozenset of channels the schedule can visit) and implement
    :meth:`channel_at`.
    """

    period: int
    channels: frozenset[int]

    def channel_at(self, t: int) -> int:
        """Channel accessed at local slot ``t >= 0``."""
        raise NotImplementedError

    def materialize(self, start: int, stop: int) -> np.ndarray:
        """Channels for slots ``start .. stop-1`` as an int64 array.

        For moderate periods this tiles one cached period array, so a
        window of any size costs one pass over the period plus a copy.
        Schedules with huge periods (e.g. Jump-Stay's cubic period at
        large ``n``) evaluate only the requested window instead.
        """
        return self.channel_block(start, stop)

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """Channels for slots ``start .. stop-1``, generated on demand.

        This is the chunk hook the streaming engine
        (:mod:`repro.core.stream`) builds tiles from: unlike
        :meth:`period_table` it never requires materializing a full
        period, so it stays usable on schedules whose period exceeds
        the table limit (Jump-Stay's cubic period at large ``n``).

        The generic fallback indexes the cached period array modularly
        for moderate periods and evaluates ``channel_at`` slot by slot
        for huge ones; subclasses with closed-form sequences override
        it with a vectorized window computation.
        """
        if stop < start:
            raise ValueError(f"empty window: start={start}, stop={stop}")
        if self.period > _CACHE_LIMIT and (stop - start) < self.period:
            return np.fromiter(
                (self.channel_at(t) for t in range(start, stop)),
                dtype=np.int64,
                count=stop - start,
            )
        period_array = self._period_array()
        indices = np.arange(start, stop, dtype=np.int64) % self.period
        return period_array[indices]

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """Channels at an arbitrary array of slot indices, shape-preserving.

        The scattered-access sibling of :meth:`channel_block`: where a
        block is one contiguous window, a gather answers any index
        array (typically the 2-D ``(shift row, time)`` matrix of one
        streaming tile — see :mod:`repro.core.stream`) in a single
        vectorized call.  The generic fallback indexes the cached
        period array modularly for moderate periods and evaluates
        ``channel_at`` per element for huge ones; subclasses with
        closed-form sequences override it so a whole tile of scattered
        rows costs one array expression instead of one Python call per
        row.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.period > _CACHE_LIMIT and indices.size < self.period:
            flat = indices.reshape(-1)
            out = np.fromiter(
                (self.channel_at(int(t)) for t in flat),
                dtype=np.int64,
                count=flat.size,
            )
            return out.reshape(indices.shape)
        return self._period_array()[indices % self.period]

    def period_table(self) -> np.ndarray:
        """One full period of the schedule as a shared int64 array.

        This is the bulk-materialization hook the batched verification
        engine builds on: the table is computed once per schedule (and
        cached for periods up to ``_CACHE_LIMIT``), after which any
        window of the infinite schedule is a view/tile of it.  Callers
        must treat the returned array as read-only.
        """
        return self._period_array()

    def _period_array(self) -> np.ndarray:
        """Cache wrapper around :meth:`_compute_period_array`.

        Subclasses that can build their period faster than a scalar
        ``channel_at`` loop should override ``_compute_period_array``
        (pure computation); the caching policy lives only here.
        """
        cached = getattr(self, "_period_array_cache", None)
        if cached is not None:
            return cached
        array = self._compute_period_array()
        if self.period <= _CACHE_LIMIT:
            self._period_array_cache = array
        return array

    def has_warm_table(self) -> bool:
        """Whether :meth:`period_table` is already materialized.

        ``True`` means the next ``period_table()`` call is free (the
        cached array, a wrapped sequence, or a store memmap); ``False``
        means it would pay a full pass over the period.  The engine
        dispatcher (:func:`repro.core.batch.ttr_sweep`) uses this to
        weigh table reuse against a one-shot streamed scan.
        """
        return getattr(self, "_period_array_cache", None) is not None

    def _compute_period_array(self) -> np.ndarray:
        return np.fromiter(
            (self.channel_at(t) for t in range(self.period)),
            dtype=np.int64,
            count=self.period,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = type(self).__name__
        return f"{name}(period={self.period}, channels={sorted(self.channels)})"


class CyclicSchedule(Schedule):
    """Endless repetition of a finite channel sequence (``sigma-circle``)."""

    def __init__(self, sequence: Sequence[int]):
        if len(sequence) == 0:
            raise ValueError("cyclic schedule needs a nonempty sequence")
        self._sequence = np.asarray(sequence, dtype=np.int64)
        self.period = len(sequence)
        self.channels = frozenset(int(c) for c in sequence)

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the sequence read cyclically."""
        return int(self._sequence[t % self.period])

    def has_warm_table(self) -> bool:
        """Always ``True``: the wrapped sequence *is* the period table."""
        return True

    def _period_array(self) -> np.ndarray:
        return self._sequence


class ConstantSchedule(Schedule):
    """Always the same channel (singleton channel sets, stay phases)."""

    def __init__(self, channel: int):
        self._channel = int(channel)
        self.period = 1
        self.channels = frozenset((self._channel,))

    def channel_at(self, t: int) -> int:
        """The constant channel, at every slot."""
        return self._channel

    def has_warm_table(self) -> bool:
        """Always ``True``: a one-slot table costs nothing to produce."""
        return True

    def channel_block(self, start: int, stop: int) -> np.ndarray:
        """The constant channel, broadcast over the window."""
        if stop < start:
            raise ValueError(f"empty window: start={start}, stop={stop}")
        return np.full(stop - start, self._channel, dtype=np.int64)

    def channel_gather(self, indices: np.ndarray) -> np.ndarray:
        """The constant channel, broadcast over the index array."""
        return np.full(np.shape(indices), self._channel, dtype=np.int64)


class FunctionSchedule(Schedule):
    """Schedule defined by an arbitrary slot function with known period."""

    def __init__(
        self,
        fn: Callable[[int], int],
        period: int,
        channels: frozenset[int] | None = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._fn = fn
        self.period = period
        if channels is None:
            channels = frozenset(fn(t) for t in range(min(period, 4096)))
        self.channels = channels

    def channel_at(self, t: int) -> int:
        """Channel at slot ``t``: the wrapped slot function, verbatim."""
        return self._fn(t)
