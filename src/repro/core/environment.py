"""Deterministic fault-injection environments for dynamic spectrum.

Every engine in this repo so far measures rendezvous on a *static*
spectrum: each agent draws its available set once and the channel is
usable forever after.  The paper's cognitive-radio setting is defined
by the opposite — primary users seize and release channels mid-sequence,
deep fades swallow individual slots, and sensing errors make one radio's
picture of the spectrum disagree with the truth.  This module models
those perturbations *after* schedule construction, as a layer the sweep
and simulation engines consult per slot:

* an :class:`Environment` maps a ``(channel, slot)`` grid to a boolean
  **validity mask** — ``True`` means a coincidence on that channel at
  that slot counts as a rendezvous, ``False`` means the slot is lost
  (primary user on the channel, a fade, a sensing miss);
* three fault families implement it: :class:`PrimaryUserChurn` (seeded
  busy windows per channel — a primary user holds the channel for a
  dwell of slots at a time), :class:`FadingMisses` (per-slot Bernoulli
  loss applied to otherwise-coincident slots), and
  :class:`AsymmetricSensing` (a static per-channel missense: one side's
  sensed set silently disagrees with ground truth, so the channel never
  yields a rendezvous);
* :class:`ComposedEnvironment` ANDs any number of masks together, and
  :func:`parse_environment` builds any of the above from a CLI spec
  string such as ``"pu-churn:rate=0.1,seed=7+fading:p=0.05"``.

**Determinism.**  Masks are pure functions of ``(channel, slot)`` and
the environment's own parameters, computed through a vectorized
splitmix64-style integer hash (:func:`hash_uniform`) — no RNG state, no
Python ``hash()``, so the same spec produces the same mask in every
process, under every ``PYTHONHASHSEED``, on every engine.  That purity
is what lets the batched and streaming sweep engines apply an
environment as *one extra masked compare per tile* and stay
bit-identical with the scalar reference
(:func:`repro.core.verification.ttr_for_shift` with ``environment=``).

**Clocks.**  The pairwise sweep engines evaluate the mask on the TTR
clock — slots counted from the later wake-up — which keeps the shared
shift deduplication (:func:`repro.core.stream.reduce_shifts`) valid:
two shifts collapsing to the same phase-offset pair see identical
channel windows *and* identical mask rows.  The population simulators
(:mod:`repro.sim.netcore`, :mod:`repro.sim.network`) evaluate the same
mask on the global simulation clock.  Both engines of each layer agree
with each other; the two layers deliberately model different clocks
(see ``docs/ARCHITECTURE.md``, environment layer).

**Identity.**  Every environment has a canonical :meth:`~Environment.spec`
dict and a :meth:`~Environment.digest` derived from it; result caches
and sweep checkpoints fold the digest into their keys so faulted and
clean measurements can never collide.  Composition digests are
order-insensitive: masks compose by AND, which commutes.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Environment",
    "PrimaryUserChurn",
    "FadingMisses",
    "AsymmetricSensing",
    "ComposedEnvironment",
    "compose",
    "parse_environment",
    "environment_digest",
    "effective_horizon",
    "hash_uniform",
    "ENVIRONMENT_KINDS",
]

#: Spec names accepted by :func:`parse_environment`, mapped to families.
ENVIRONMENT_KINDS = ("pu-churn", "fading", "sensing")

# Family salts: distinct integer keys folded into the hash stream so two
# families with identical (seed, channel, slot) inputs draw independent
# uniforms.
_SALT_FADING = 0x66616465  # "fade"
_SALT_CHURN = 0x63687572  # "chur"
_SALT_SENSING = 0x73656E73  # "sens"

_U64 = np.uint64


def _bit_mix(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: avalanche one uint64 array in place.

    Array-only on purpose — numpy integer *array* arithmetic wraps
    modulo ``2**64`` silently, which is exactly the splitmix64 contract
    (scalar numpy ints would warn on overflow).
    """
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def hash_uniform(key: int, *parts: "np.ndarray | int") -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` from integer coordinates.

    Folds ``key`` and each broadcastable integer array in ``parts``
    through the splitmix64 finalizer and maps the final 53 bits to a
    ``float64`` in ``[0, 1)``.  A pure function of its arguments:
    process-independent, ``PYTHONHASHSEED``-immune, and identical on
    every engine — the primitive every fault family draws from.
    Negative coordinates (e.g. the :data:`~repro.sim.agent.ASLEEP`
    sentinel) wrap to distinct uint64 values, deterministically.
    """
    # At least 1-d throughout: numpy wraps array overflow silently (the
    # splitmix64 contract) but would warn on 0-d scalar paths.
    acc = _bit_mix(np.full(1, _U64(key & 0xFFFFFFFFFFFFFFFF)))
    for part in parts:
        arr = np.asarray(part)
        acc = _bit_mix(acc ^ arr.astype(_U64))
    return (acc >> _U64(11)) * 2.0**-53


def environment_digest(environment: "Environment | None") -> str:
    """Stable hex digest of an environment (empty string for ``None``).

    The digest of the sorted-keys JSON encoding of
    :meth:`Environment.spec` — the same canonicalization the result
    cache applies to queries, so any two environments with equal specs
    share a digest and any parameter difference separates them.
    """
    if environment is None:
        return ""
    text = json.dumps(environment.spec(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def effective_horizon(horizon: int, joint: int, environment: "Environment | None") -> int:
    """How many slots a first-meet scan must cover to be exhaustive.

    Clean scans stop at the joint period ``joint = lcm(Pa, Pb)``: the
    coincidence pattern repeats, so a silent joint period proves a miss.
    An environment breaks that argument unless its own mask is periodic
    — :attr:`Environment.period` ``None`` (aperiodic) forces the full
    ``horizon``; a finite period clamps at ``lcm(joint, period)``.
    Every engine calls this one helper, so the early-stop decision can
    never diverge across them.
    """
    if environment is None:
        return min(horizon, joint)
    period = environment.period
    if period is None:
        return horizon
    return min(horizon, math.lcm(joint, period))


class Environment:
    """A deterministic per-slot validity mask over ``(channel, slot)``.

    Subclasses implement :meth:`slot_mask` as a pure vectorized function
    and :meth:`spec` as a canonical JSON-able identity.  The base class
    derives the digest, composition, and equality from those.
    """

    #: Mask period in slots (``None``: aperiodic — no early-stop), as a
    #: class default; subclasses with periodic masks override it.
    period: int | None = None

    def slot_mask(
        self, channels: np.ndarray, slots: np.ndarray
    ) -> np.ndarray:
        """Boolean validity over the broadcast of ``channels`` x ``slots``.

        ``True`` cells keep a coincidence; ``False`` cells lose it.  The
        arrays broadcast like any numpy pair (a ``(rows, width)`` channel
        tile against a ``(width,)`` slot row is the engines' shape), and
        the result may be a read-only broadcast view — callers combine
        it with ``&``, never mutate it.
        """
        raise NotImplementedError

    def spec(self) -> dict:
        """Canonical JSON-able identity of this environment."""
        raise NotImplementedError

    def digest(self) -> str:
        """Stable hex digest of :meth:`spec` (see :func:`environment_digest`)."""
        return environment_digest(self)

    def intensity(self) -> float:
        """The family's headline fault-intensity knob, for reports."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        """Spec equality: two environments are equal iff their masks are."""
        if not isinstance(other, Environment):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        """Hash of the canonical digest (stable across processes)."""
        return hash(self.digest())


@dataclass(frozen=True, eq=False)
class FadingMisses(Environment):
    """Per-slot Bernoulli loss: each slot independently fades with ``p``.

    Models small-scale fading deep enough to swallow a whole slot: when
    a slot fades, *no* channel yields a rendezvous in it (the fade is a
    property of the slot, not of one channel — see the deviations note
    in ``docs/ARCHITECTURE.md``).  The draw is
    ``hash_uniform(seed, slot) >= p``, so ``p = 0`` keeps every slot
    (and is byte-identical to no environment) and ``p = 1`` loses all.
    """

    p: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fading probability must be in [0, 1], got {self.p}")

    def slot_mask(self, channels: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Valid where the slot's uniform clears ``p`` (channel-blind)."""
        channels = np.asarray(channels)
        slots = np.asarray(slots)
        keep = hash_uniform(_SALT_FADING, _U64(self.seed & 0xFFFFFFFFFFFFFFFF), slots) >= self.p
        shape = np.broadcast_shapes(channels.shape, keep.shape)
        return np.broadcast_to(keep, shape)

    def spec(self) -> dict:
        """Canonical identity: ``{kind, p, seed}``."""
        return {"kind": "fading", "p": float(self.p), "seed": int(self.seed)}

    def intensity(self) -> float:
        """The per-slot miss probability ``p``."""
        return float(self.p)


@dataclass(frozen=True, eq=False)
class PrimaryUserChurn(Environment):
    """Primary users seize channels for whole dwell windows at a time.

    Time divides into windows of ``dwell`` slots; in each window every
    channel is independently busy with probability ``rate`` (drawn from
    ``hash_uniform(seed, channel, window)``), and a busy channel yields
    no rendezvous for the whole window — the PU occupies the medium, so
    the loss hits *both* agents.  ``channels`` restricts the churn to a
    subset of the spectrum (``None``: every channel can be seized),
    which is what makes the guarantee-preservation property testable:
    churn confined outside a pair's common channels can never change
    any TTR.
    """

    rate: float
    seed: int = 0
    dwell: int = 64
    channels: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"churn rate must be in [0, 1], got {self.rate}")
        if self.dwell <= 0:
            raise ValueError(f"dwell must be positive, got {self.dwell}")
        if self.channels is not None:
            object.__setattr__(
                self, "channels", tuple(sorted({int(c) for c in self.channels}))
            )

    def slot_mask(self, channels: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Valid where the channel's dwell window is PU-free (or unscoped)."""
        channels = np.asarray(channels)
        slots = np.asarray(slots)
        windows = slots // self.dwell
        busy = (
            hash_uniform(
                _SALT_CHURN, _U64(self.seed & 0xFFFFFFFFFFFFFFFF), channels, windows
            )
            < self.rate
        )
        if self.channels is not None:
            scoped = np.isin(channels, np.asarray(self.channels, dtype=np.int64))
            busy = busy & scoped
        return ~busy

    def spec(self) -> dict:
        """Canonical identity: ``{kind, rate, seed, dwell, channels}``."""
        return {
            "kind": "pu-churn",
            "rate": float(self.rate),
            "seed": int(self.seed),
            "dwell": int(self.dwell),
            "channels": None if self.channels is None else list(self.channels),
        }

    def intensity(self) -> float:
        """The per-window busy probability ``rate``."""
        return float(self.rate)


@dataclass(frozen=True, eq=False)
class AsymmetricSensing(Environment):
    """Static sensing error: one side's sensed set disagrees with truth.

    Each channel is independently mis-sensed with probability ``p``
    (drawn once from ``hash_uniform(seed, channel, side)`` — no time
    input, so the error is static and the mask has period 1).  A
    mis-sensed channel never yields a rendezvous: the ``side`` agent
    believes it unavailable and never listens there.  ``side`` names
    which agent mis-senses (``"a"`` or ``"b"``); it feeds the hash, so
    the two sides draw independent error sets and their digests differ.
    """

    p: float
    seed: int = 0
    side: str = "b"

    #: Static per-channel masks repeat every slot.
    period: int | None = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"sensing error must be in [0, 1], got {self.p}")
        if self.side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {self.side!r}")

    def slot_mask(self, channels: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Valid where the channel is sensed correctly (slot-blind)."""
        channels = np.asarray(channels)
        slots = np.asarray(slots)
        side_key = 1 if self.side == "a" else 2
        keep = (
            hash_uniform(
                _SALT_SENSING,
                _U64(self.seed & 0xFFFFFFFFFFFFFFFF),
                channels,
                _U64(side_key),
            )
            >= self.p
        )
        shape = np.broadcast_shapes(keep.shape, slots.shape)
        return np.broadcast_to(keep, shape)

    def spec(self) -> dict:
        """Canonical identity: ``{kind, p, seed, side}``."""
        return {
            "kind": "sensing",
            "p": float(self.p),
            "seed": int(self.seed),
            "side": self.side,
        }

    def intensity(self) -> float:
        """The per-channel missense probability ``p``."""
        return float(self.p)


class ComposedEnvironment(Environment):
    """The AND of several environments: a slot survives every fault.

    Masks compose commutatively (boolean AND), so the canonical spec
    sorts the parts — ``compose(x, y)`` and ``compose(y, x)`` share one
    digest, while any difference in the parts themselves separates the
    digests.  Nested compositions flatten on construction.
    """

    def __init__(self, parts: Sequence[Environment]):
        flat: list[Environment] = []
        for part in parts:
            if isinstance(part, ComposedEnvironment):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            raise ValueError("composition needs at least one environment")
        self.parts: tuple[Environment, ...] = tuple(flat)

    @property
    def period(self) -> int | None:  # type: ignore[override]
        """lcm of the parts' periods; ``None`` if any part is aperiodic."""
        joint = 1
        for part in self.parts:
            if part.period is None:
                return None
            joint = math.lcm(joint, part.period)
        return joint

    def slot_mask(self, channels: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """AND of every part's mask over the broadcast grid."""
        mask = self.parts[0].slot_mask(channels, slots)
        for part in self.parts[1:]:
            mask = mask & part.slot_mask(channels, slots)
        return mask

    def spec(self) -> dict:
        """Canonical identity: parts sorted by their canonical encoding."""
        encoded = sorted(
            self.parts,
            key=lambda p: json.dumps(p.spec(), sort_keys=True, separators=(",", ":")),
        )
        return {"kind": "composed", "parts": [p.spec() for p in encoded]}

    def intensity(self) -> float:
        """The strongest part's intensity (reporting convenience)."""
        return max(part.intensity() for part in self.parts)


def compose(*environments: Environment) -> Environment:
    """AND environments together; a single argument passes through."""
    if len(environments) == 1:
        return environments[0]
    return ComposedEnvironment(environments)


def _parse_value(key: str, text: str) -> object:
    """One ``key=value`` operand: channel lists, ints, floats, or sides."""
    if key == "channels":
        try:
            return tuple(int(part) for part in text.split("/") if part != "")
        except ValueError as exc:
            raise ValueError(
                f"bad channels list {text!r} (use '/'-separated ints)"
            ) from exc
    if key == "side":
        return text
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise ValueError(f"bad value {text!r} for {key!r}") from exc


_FAMILY_BUILDERS = {
    "fading": FadingMisses,
    "pu-churn": PrimaryUserChurn,
    "sensing": AsymmetricSensing,
}


def parse_environment(text: str | None) -> Environment | None:
    """Build an environment from a CLI spec string.

    Grammar: ``family:key=value,key=value`` terms joined by ``+`` into
    a composition; families are :data:`ENVIRONMENT_KINDS`.  Examples::

        pu-churn:rate=0.1,seed=7
        fading:p=0.05
        sensing:p=0.2,side=a
        fading:p=0.1+pu-churn:rate=0.2,dwell=32,channels=1/4/9

    ``None``, the empty string, and ``"none"`` mean no environment.
    Raises ``ValueError`` on unknown families or malformed operands.
    """
    if text is None or text.strip() in ("", "none"):
        return None
    parts: list[Environment] = []
    for term in text.split("+"):
        name, _, body = term.partition(":")
        name = name.strip()
        builder = _FAMILY_BUILDERS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown environment {name!r}; expected one of "
                f"{ENVIRONMENT_KINDS}"
            )
        kwargs = {}
        for item in body.split(","):
            if not item.strip():
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"expected key=value in {term!r}, got {item!r}")
            kwargs[key.strip()] = _parse_value(key.strip(), value.strip())
        try:
            parts.append(builder(**kwargs))
        except TypeError as exc:
            raise ValueError(f"bad parameters for {name!r}: {exc}") from exc
    return compose(*parts)
