"""Unified telemetry layer: counters, gauges, and nested timing spans.

Every hot path in the stack — the three sweep engines, the runner's
pair fan-out, the schedule/result stores, the network simulator — used
to answer "where did the time go?" with ad-hoc private counters or not
at all.  This module is the one process-local registry they all report
into, designed around three contracts:

* **Zero overhead when disabled.**  Telemetry is off by default.  A
  disabled :func:`span` returns one shared no-op singleton (no
  allocation, no clock read, no lock) and a disabled :func:`count` /
  :func:`gauge` returns after a single flag test — the stream engine's
  tile loop pays a few nanoseconds per call, certified under 2% of the
  intra-pair benchmark by ``benchmarks/test_telemetry_overhead.py``
  and allocation-free by ``tests/core/test_telemetry.py``.
* **Never observable by results.**  Instrumented code calls the same
  functions whether telemetry is on or off — it never branches on the
  flag — and no wall-clock value ever feeds a digest, cache key, or
  sweep result.  Telemetry-on and telemetry-off runs are certified
  bit-identical across all three engines.
* **Deterministic structure.**  A :func:`snapshot` sorts every key, so
  two runs of the same work produce the same names in the same order
  (only the measured durations differ) — immune to ``PYTHONHASHSEED``,
  mergeable across processes, and diffable across machines.

Spans nest: ``with span("runner.measure_pair"): ... with
span("stream.sweep"): ...`` builds a tree per thread (each thread keeps
its own stack; a span opened on a worker lane with an empty stack
becomes its own root).  Durations come from the monotonic
``perf_counter_ns`` clock; ``add_bytes`` attributes throughput to a
span (the stream engine credits each tile's bytes to
``stream.tile_assembly``).  Pool workers serialize their registry with
:func:`snapshot` and the parent folds it in with :func:`merge` — the
``SweepRunner`` does exactly that, so one snapshot covers a whole
multi-process sweep.

Surface: ``python -m repro sweep|serve|netsim --telemetry text|json``
prints the phase tree (see :func:`format_tree`), and
``docs/OBSERVABILITY.md`` documents the span taxonomy and how benches
should consume snapshots.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "enable",
    "disable",
    "enabled",
    "span",
    "count",
    "gauge",
    "counter_value",
    "snapshot",
    "reset",
    "merge",
    "format_tree",
    "total_seconds",
]


class _NullSpan:
    """The shared no-op span handed out while telemetry is disabled.

    One module-level instance serves every disabled ``span()`` call:
    entering, exiting, and ``add_bytes`` do nothing and allocate
    nothing, so disabled instrumentation costs one function call and
    one flag test per site.
    """

    __slots__ = ()

    def __enter__(self):
        """Return self; nothing is recorded."""
        return self

    def __exit__(self, exc_type, exc, tb):
        """Never swallow exceptions; nothing is recorded."""
        return False

    def add_bytes(self, nbytes):
        """Ignore throughput attribution while disabled."""
        return None


_NULL_SPAN = _NullSpan()


class _Node:
    """One aggregated span node: call count, duration, bytes, children."""

    __slots__ = ("calls", "ns", "bytes", "children")

    def __init__(self):
        self.calls = 0
        self.ns = 0
        self.bytes = 0
        self.children: dict[str, _Node] = {}


class _SpanTimer:
    """Live timing context for one enabled ``span()`` call.

    ``__enter__`` pushes the span name onto the calling thread's stack
    (so spans opened inside it become children) and reads the
    monotonic clock; ``__exit__`` pops, computes the duration, and
    folds ``(calls, ns, bytes)`` into the registry tree under the
    captured path.  Exceptions propagate — a failed phase still
    records the time it consumed.
    """

    __slots__ = ("_registry", "_name", "_bytes", "_start", "_path")

    def __init__(self, registry: "Telemetry", name: str):
        self._registry = registry
        self._name = name
        self._bytes = 0
        self._start = 0
        self._path: tuple[str, ...] = ()

    def add_bytes(self, nbytes: int) -> None:
        """Attribute ``nbytes`` of throughput to this span occurrence."""
        self._bytes += int(nbytes)

    def __enter__(self):
        """Push onto the thread's span stack and start the clock."""
        stack = self._registry._stack()
        stack.append(self._name)
        self._path = tuple(stack)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        """Stop the clock, pop the stack, and record into the tree."""
        elapsed = time.perf_counter_ns() - self._start
        stack = self._registry._stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._registry._record(self._path, elapsed, self._bytes)
        return False


class Telemetry:
    """Process-local registry of counters, gauges, and span trees.

    One module-level instance backs the functional API below; tests
    may construct private registries.  All mutation is lock-guarded so
    thread lanes (the stream engine's block pool) aggregate safely;
    reads via :meth:`snapshot` take the same lock and therefore see a
    consistent tree.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._root = _Node()

    # -- recording -------------------------------------------------------

    def _stack(self) -> list[str]:
        """The calling thread's span-name stack (created on first use)."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _record(self, path: tuple[str, ...], ns: int, nbytes: int) -> None:
        """Fold one finished span occurrence into the tree."""
        with self._lock:
            node = self._root
            for name in path:
                child = node.children.get(name)
                if child is None:
                    child = _Node()
                    node.children[name] = child
                node = child
            node.calls += 1
            node.ns += ns
            node.bytes += nbytes

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(delta)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last writer wins)."""
        with self._lock:
            self._gauges[name] = value

    def counter_value(self, name: str) -> int:
        """Current value of one counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able state: sorted counters, gauges, and the span tree.

        Keys appear in sorted order at every level, so the *structure*
        (names, nesting, ordering, call counts) is deterministic across
        runs and ``PYTHONHASHSEED`` values — only the measured
        ``seconds`` vary.  ``total_seconds`` sums the root spans'
        durations (thread-lane roots overlap their parent in wall
        time; see ``docs/OBSERVABILITY.md``).
        """
        with self._lock:
            spans = _serialize_children(self._root)
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "spans": spans,
                "total_seconds": round(
                    sum(node["seconds"] for node in spans.values()), 6
                ),
            }

    def reset(self) -> None:
        """Drop every counter, gauge, and span (open spans still record).

        Also clears the *calling thread's* span stack: a forked pool
        worker inherits the parent's stack (the parent is typically
        inside its fan-out span at fork time), and without the clear
        the worker's spans would nest under a phantom parent that
        varies with the multiprocessing start method.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._root = _Node()
        self._stack().clear()

    def merge(self, snap: dict | None) -> None:
        """Fold a serialized snapshot (e.g. from a pool worker) in.

        Counters and span calls/seconds/bytes add; gauges overwrite
        (last writer wins).  ``None`` and empty snapshots are accepted
        and ignored, so callers can merge unconditionally.
        """
        if not snap:
            return
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = value
            _merge_children(self._root, snap.get("spans", {}))


def _serialize_children(node: _Node) -> dict:
    """Children of one node as sorted JSON-able dicts (recursive)."""
    out = {}
    for name in sorted(node.children):
        child = node.children[name]
        out[name] = {
            "calls": child.calls,
            "seconds": round(child.ns / 1e9, 6),
            "bytes": child.bytes,
            "children": _serialize_children(child),
        }
    return out


def _merge_children(node: _Node, spans: dict) -> None:
    """Add serialized span subtrees into a live node (recursive)."""
    for name, payload in spans.items():
        child = node.children.get(name)
        if child is None:
            child = _Node()
            node.children[name] = child
        child.calls += int(payload.get("calls", 0))
        child.ns += int(round(float(payload.get("seconds", 0.0)) * 1e9))
        child.bytes += int(payload.get("bytes", 0))
        _merge_children(child, payload.get("children", {}))


_REGISTRY = Telemetry()
_ENABLED = False


def enable() -> None:
    """Turn telemetry on: spans time, counters and gauges record."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry off: every call becomes a near-free no-op.

    Recorded state is kept (``reset()`` drops it), so a snapshot taken
    after disabling still describes the instrumented window.
    """
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether the registry is currently recording."""
    return _ENABLED


def span(name: str):
    """Context manager timing one occurrence of the named phase.

    Disabled: returns the shared no-op singleton — no allocation, no
    clock read.  Enabled: returns a :class:`_SpanTimer` that nests
    under the innermost open span on the calling thread and aggregates
    ``(calls, seconds, bytes)`` under its path in the registry tree.
    Use dotted names (``"stream.tile_assembly"``) so roots group by
    subsystem; see ``docs/OBSERVABILITY.md`` for the taxonomy.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _SpanTimer(_REGISTRY, name)


def count(name: str, delta: int = 1) -> None:
    """Bump the named counter by ``delta`` (no-op while disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.count(name, delta)


def gauge(name: str, value: float) -> None:
    """Set the named gauge (no-op while disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, value)


def counter_value(name: str) -> int:
    """Read one counter's current value (works disabled too)."""
    return _REGISTRY.counter_value(name)


def snapshot() -> dict:
    """Serialize the process registry (see :meth:`Telemetry.snapshot`)."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Clear the process registry's counters, gauges, and spans."""
    _REGISTRY.reset()


def merge(snap: dict | None) -> None:
    """Fold a worker snapshot into the process registry."""
    _REGISTRY.merge(snap)


def total_seconds(snap: dict) -> float:
    """Sum of a snapshot's root-span durations (its ``total_seconds``)."""
    return float(snap.get("total_seconds", 0.0))


def _format_bytes(nbytes: int) -> str:
    """Human-readable byte count for the text tree."""
    if nbytes >= 1 << 30:
        return f"{nbytes / (1 << 30):.1f} GiB"
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.1f} MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.1f} KiB"
    return f"{nbytes} B"


def _format_node(
    lines: list[str], name: str, node: dict, depth: int, parent_seconds: float
) -> None:
    """Append one span row (and its children) to the text tree."""
    share = ""
    if parent_seconds > 0:
        share = f"  {100.0 * node['seconds'] / parent_seconds:5.1f}%"
    throughput = f"  {_format_bytes(node['bytes'])}" if node["bytes"] else ""
    lines.append(
        f"{'  ' * depth}{name:<{max(1, 36 - 2 * depth)}} "
        f"{node['calls']:>7} call{'s' if node['calls'] != 1 else ' '} "
        f"{node['seconds']:>10.4f} s{share}{throughput}"
    )
    for child_name, child in node["children"].items():
        _format_node(lines, child_name, child, depth + 1, node["seconds"])


def format_tree(snap: dict, wall_seconds: float | None = None) -> str:
    """Render a snapshot as the hierarchical phase tree, with shares.

    Each row shows calls, seconds, the share of its parent's time
    (root rows: share of ``wall_seconds`` when given), and byte
    throughput where recorded; counters and gauges follow the tree.
    This is the ``--telemetry text`` output of the CLIs.
    """
    lines: list[str] = []
    total = total_seconds(snap)
    header = f"telemetry: {total:.4f} s in spans"
    if wall_seconds is not None:
        header += f" ({wall_seconds:.4f} s wall)"
    lines.append(header)
    parent = wall_seconds if wall_seconds else total
    for name, node in snap.get("spans", {}).items():
        _format_node(lines, name, node, 1, parent or 0.0)
    counters = snap.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<44} {value}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name:<44} {value}")
    return "\n".join(lines)
