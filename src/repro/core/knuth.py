"""Knuth-style balanced encoding ``K(x)`` (paper Section 3).

Theorem 1 needs an efficient *injective* map ``K`` from arbitrary binary
strings to *balanced* strings (equal number of 0s and 1s) with only
logarithmic overhead.  The paper cites Knuth's "Efficient balanced codes"
(IEEE IT 1986): flipping the first ``c`` bits of ``x`` changes the weight
by one per step, so some prefix length ``c*`` balances the string; the
encoder appends a short balanced encoding of ``c*``.

Deviation from the paper (see docs/ARCHITECTURE.md, deviations): Knuth's original tail
encoding recursively saves a ``(1/2) log log`` factor; we use the simpler
balanced tail ``c*_2 || complement(c*_2)``, giving

    |K(x)| = |x| + 2 * width(|x|)

which has the same ``|x| + O(log |x|)`` shape.  Only constants in the
final rendezvous time are affected.

The input length must be even (a balanced output of odd length cannot
exist).  Callers pad widths to even via :func:`repro.core.bitstrings.even_width`.
"""

from __future__ import annotations

from repro.core.bitstrings import (
    complement,
    decode_int,
    encode_int,
    int_bit_width,
    is_balanced,
    validate_bits,
    weight,
)

__all__ = [
    "encode",
    "decode",
    "tail_width",
    "encoded_length",
    "balancing_prefix_length",
]


def tail_width(input_length: int) -> int:
    """Width of the prefix-length field for inputs of ``input_length`` bits.

    The balancing prefix length lies in ``[0, input_length]``, so it needs
    ``int_bit_width(input_length)`` bits; the balanced tail stores it along
    with its complement, doubling the width.
    """
    if input_length < 0:
        raise ValueError(f"input_length must be nonnegative, got {input_length}")
    return int_bit_width(input_length)


def encoded_length(input_length: int) -> int:
    """``|K(x)|`` for any ``x`` with ``|x| == input_length`` (even)."""
    if input_length % 2 != 0:
        raise ValueError(f"input_length must be even, got {input_length}")
    return input_length + 2 * tail_width(input_length)


def _flip_prefix(x: str, count: int) -> str:
    """Flip the first ``count`` bits of ``x``."""
    return complement(x[:count]) + x[count:]


def balancing_prefix_length(x: str) -> int:
    """Smallest ``c`` such that flipping the first ``c`` bits balances ``x``.

    Exists for every even-length ``x``: the disparity ``wt - |x|/2`` moves
    by one per unit of ``c`` and is negated at ``c = |x|``, so a discrete
    intermediate-value argument yields a zero crossing.
    """
    validate_bits(x)
    if len(x) % 2 != 0:
        raise ValueError("balancing requires an even-length string")
    half = len(x) // 2
    disparity = weight(x) - half
    for c, bit in enumerate(x):
        if disparity == 0:
            return c
        # Flipping bit c changes the weight by -1 for a 1, +1 for a 0.
        disparity += -1 if bit == "1" else 1
    if disparity != 0:
        raise AssertionError("no balancing prefix found; unreachable for even length")
    return len(x)


def encode(x: str) -> str:
    """Balanced encoding ``K(x)`` of an even-length binary string.

    ``K(x) = flip_prefix(x, c*) || c*_2 || complement(c*_2)``; the tail is
    itself balanced, so the whole output is balanced.
    """
    validate_bits(x)
    c_star = balancing_prefix_length(x)
    body = _flip_prefix(x, c_star)
    tail_value = encode_int(c_star, tail_width(len(x)))
    encoded = body + tail_value + complement(tail_value)
    if not is_balanced(encoded):
        raise AssertionError(f"K({x!r}) produced unbalanced output {encoded!r}")
    return encoded


def decode(y: str, input_length: int) -> str:
    """Inverse of :func:`encode` for inputs of known ``input_length``."""
    validate_bits(y)
    if input_length % 2 != 0:
        raise ValueError(f"input_length must be even, got {input_length}")
    expected = encoded_length(input_length)
    if len(y) != expected:
        raise ValueError(
            f"encoded string has length {len(y)}, expected {expected} "
            f"for input_length {input_length}"
        )
    width = tail_width(input_length)
    body = y[:input_length]
    tail_value = y[input_length : input_length + width]
    tail_check = y[input_length + width :]
    if tail_check != complement(tail_value):
        raise ValueError("corrupt encoding: tail complement mismatch")
    c_star = decode_int(tail_value)
    if c_star > input_length:
        raise ValueError(f"corrupt encoding: prefix length {c_star} > {input_length}")
    return _flip_prefix(body, c_star)
