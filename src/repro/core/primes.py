"""Prime-number utilities for the epoch construction (paper Theorem 3).

Theorem 3 assigns each agent with ``k`` channels a pair of distinct primes
from ``[k, 3k]``; Bertrand's postulate (applied twice) guarantees the pair
exists for every ``k >= 1``.  The baselines additionally need the smallest
prime at least / strictly greater than ``n``.

Deterministic Miller-Rabin is exact for 64-bit inputs with the standard
witness set; everything here is far below that.
"""

from __future__ import annotations

__all__ = [
    "is_prime",
    "primes_in_range",
    "two_primes_for_set_size",
    "smallest_prime_at_least",
    "smallest_prime_greater_than",
]

_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test (exact for all ``n < 3.3e24``)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def primes_in_range(lo: int, hi: int) -> list[int]:
    """All primes ``p`` with ``lo <= p <= hi`` (inclusive both ends)."""
    return [p for p in range(max(lo, 2), hi + 1) if is_prime(p)]


def two_primes_for_set_size(k: int) -> tuple[int, int]:
    """The two smallest distinct primes in ``[k, 3k]`` (paper Theorem 3).

    For every ``k >= 1`` at least two primes exist in this window; we
    assert rather than assume.
    """
    if k < 1:
        raise ValueError(f"set size must be positive, got {k}")
    primes = primes_in_range(k, 3 * k)
    if len(primes) < 2:
        raise AssertionError(
            f"fewer than two primes in [{k}, {3 * k}]; contradicts Bertrand"
        )
    return primes[0], primes[1]


def smallest_prime_at_least(n: int) -> int:
    """Smallest prime ``p >= n`` (used by CRSEQ and the DRDS baseline)."""
    candidate = max(n, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def smallest_prime_greater_than(n: int) -> int:
    """Smallest prime ``p > n`` (used by Jump-Stay)."""
    return smallest_prime_at_least(n + 1)
