"""Rendezvous verification engine (paper Section 2 definitions).

Implements the paper's synchronous and asynchronous rendezvous-time
definitions as executable checks:

* ``sigma_A`` and ``sigma_B`` rendezvous *synchronously* in time ``T`` if
  some ``t <= T`` has ``sigma_A(t) == sigma_B(t)``;
* they rendezvous *asynchronously* in time ``T`` if for all wake-ups
  ``tA, tB`` there is ``max(tA,tB) <= t <= max(tA,tB) + T`` with
  ``sigma_A(t - tA) == sigma_B(t - tB)``.

Only the relative shift ``tB - tA`` matters, so the asynchronous checks
sweep shifts.  For two cyclic schedules a nonnegative shift only acts
through its phase mod ``period_A`` and a negative one mod ``period_B``,
so checking the ``period_A + period_B - 1`` shift classes of
:func:`exhaustive_shift_range` is *exhaustive* — the tests use this to
certify guarantees, not just sample them.

All scans are vectorized over numpy windows.  Multi-shift queries
(``ttr_profile``, ``max_ttr``, ``verify_guarantee``) are computed by the
batched engine in :mod:`repro.core.batch`, which sweeps every shift in
one vectorized pass; ``ttr_for_shift`` remains the independent scalar
reference path the batched engine is parity-tested against.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core import batch
from repro.core.schedule import Schedule

__all__ = [
    "first_rendezvous",
    "ttr_for_shift",
    "ttr_profile",
    "max_ttr",
    "exhaustive_shift_range",
    "strided_shift_range",
    "verify_guarantee",
]


def first_rendezvous(
    a: Schedule,
    b: Schedule,
    wake_a: int,
    wake_b: int,
    horizon: int,
    chunk: int = 1 << 16,
) -> int | None:
    """Slots until rendezvous measured from ``max(wake_a, wake_b)``.

    Scans global time ``t`` from the later wake-up in vectorized chunks;
    returns ``None`` when no coincidence occurs within ``horizon`` slots.
    """
    if wake_a < 0 or wake_b < 0:
        raise ValueError("wake-up times must be nonnegative")
    start = max(wake_a, wake_b)
    for lo in range(start, start + horizon, chunk):
        hi = min(lo + chunk, start + horizon)
        window_a = a.materialize(lo - wake_a, hi - wake_a)
        window_b = b.materialize(lo - wake_b, hi - wake_b)
        hits = np.nonzero(window_a == window_b)[0]
        if hits.size:
            return lo - start + int(hits[0])
    return None


def ttr_for_shift(
    a: Schedule,
    b: Schedule,
    shift: int,
    horizon: int,
    chunk: int = 1 << 16,
) -> int | None:
    """TTR when ``b`` wakes ``shift`` slots after ``a`` (negative: before).

    ``chunk`` tunes the scan granularity: small chunks suit exhaustive
    shift sweeps where most hits come early.
    """
    if shift >= 0:
        return first_rendezvous(a, b, 0, shift, horizon, chunk=chunk)
    return first_rendezvous(a, b, -shift, 0, horizon, chunk=chunk)


def ttr_profile(
    a: Schedule,
    b: Schedule,
    shifts: Iterable[int],
    horizon: int,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
) -> dict[int, int | None]:
    """TTR for each relative shift; ``None`` marks a miss within horizon.

    ``engine`` / ``tile_bytes`` / ``stream_workers`` select and tune
    the sweep engine (see :func:`repro.core.batch.ttr_sweep`); the
    default dispatches on period size, auto-tunes the streaming tile
    plan, and all engines are bit-identical.
    """
    return batch.ttr_sweep(
        a, b, shifts, horizon, engine=engine, tile_bytes=tile_bytes,
        stream_workers=stream_workers,
    )


def exhaustive_shift_range(a: Schedule, b: Schedule) -> range:
    """Shifts that cover *all* joint behaviours of two cyclic schedules.

    A nonnegative shift ``s`` (B wakes later) only enters the
    comparison through the phase offset ``s mod period_A``; a negative
    one through ``-s mod period_B`` (see :mod:`repro.core.batch`).  So
    ``range(-period_B + 1, period_A)`` hits every distinct joint
    behaviour of both signs exactly once — ``period_A + period_B - 1``
    shifts, instead of the ``lcm(period_A, period_B)`` a naive full
    lattice period would sweep.
    """
    return range(-b.period + 1, a.period)


def strided_shift_range(a: Schedule, b: Schedule, max_shifts: int) -> range:
    """The exhaustive shift classes, strided down to ``~max_shifts``.

    The deterministic fallback when a full certification over
    ``period_A + period_B - 1`` shift classes is too expensive (the
    quadratic/cubic global-sequence baselines at large ``n``): same
    covering order, every ``stride``-th class.  ``max_shifts`` large
    enough degenerates to :func:`exhaustive_shift_range`.
    """
    if max_shifts < 1:
        raise ValueError(f"max_shifts must be positive, got {max_shifts}")
    stride = -(-(a.period + b.period - 1) // max_shifts)
    return range(-b.period + 1, a.period, stride)


def max_ttr(
    a: Schedule,
    b: Schedule,
    shifts: Iterable[int],
    horizon: int,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
) -> int:
    """Maximum TTR over the given shifts.

    Raises ``AssertionError`` if any shift misses within the horizon —
    callers that expect guaranteed rendezvous should size the horizon
    above the theoretical bound.  ``engine`` / ``tile_bytes`` /
    ``stream_workers`` pass through to
    :func:`repro.core.batch.ttr_sweep`.
    """
    worst = -1
    for shift, ttr in ttr_profile(
        a, b, shifts, horizon, engine=engine, tile_bytes=tile_bytes,
        stream_workers=stream_workers,
    ).items():
        if ttr is None:
            raise AssertionError(
                f"no rendezvous within horizon {horizon} at shift {shift}"
            )
        worst = max(worst, ttr)
    return worst


def verify_guarantee(
    a: Schedule,
    b: Schedule,
    bound: int,
    shifts: Iterable[int] | None = None,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
) -> tuple[bool, int, int | None]:
    """Check that every tested shift rendezvouses within ``bound`` slots.

    Returns ``(ok, worst_ttr, failing_shift)``.  With ``shifts=None`` the
    exhaustive shift range is used (exact certification for cyclic
    schedules).  ``engine`` / ``tile_bytes`` / ``stream_workers`` pass
    through to :func:`repro.core.batch.ttr_sweep` — with the streaming
    engine this certification works even on schedules whose period is
    too large to table.
    """
    if shifts is None:
        shifts = exhaustive_shift_range(a, b)
    worst = -1
    shift_iter = iter(shifts)
    while True:
        pending = [s for _, s in zip(range(4096), shift_iter)]
        if not pending:
            return True, worst, None
        profile = batch.ttr_sweep(
            a, b, pending, bound + 1, engine=engine, tile_bytes=tile_bytes,
            stream_workers=stream_workers,
        )
        for shift in pending:
            ttr = profile[shift]
            if ttr is None or ttr > bound:
                return False, worst, shift
            worst = max(worst, ttr)
