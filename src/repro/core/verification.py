"""Rendezvous verification engine (paper Section 2 definitions).

Implements the paper's synchronous and asynchronous rendezvous-time
definitions as executable checks:

* ``sigma_A`` and ``sigma_B`` rendezvous *synchronously* in time ``T`` if
  some ``t <= T`` has ``sigma_A(t) == sigma_B(t)``;
* they rendezvous *asynchronously* in time ``T`` if for all wake-ups
  ``tA, tB`` there is ``max(tA,tB) <= t <= max(tA,tB) + T`` with
  ``sigma_A(t - tA) == sigma_B(t - tB)``.

Only the relative shift ``tB - tA`` matters, so the asynchronous checks
sweep shifts.  For two cyclic schedules a nonnegative shift only acts
through its phase mod ``period_A`` and a negative one mod ``period_B``,
so checking the ``period_A + period_B - 1`` shift classes of
:func:`exhaustive_shift_range` is *exhaustive* — the tests use this to
certify guarantees, not just sample them.

All scans are vectorized over numpy windows.  Multi-shift queries
(``ttr_profile``, ``max_ttr``, ``verify_guarantee``) are computed by the
batched engine in :mod:`repro.core.batch`, which sweeps every shift in
one vectorized pass; ``ttr_for_shift`` remains the independent scalar
reference path the batched engine is parity-tested against.

Every entry point accepts an ``environment``
(:mod:`repro.core.environment`): a deterministic per-slot validity mask
that drops coincidences lost to primary-user churn, fading, or sensing
error.  The mask is evaluated on the TTR clock (slots since the later
wake-up), and the scalar path here is the reference the masked batched
and streaming engines are parity-certified against.
:func:`degradation_report` is the guarantee-under-fault view: instead
of a bare bool it reports which shift classes lost the meeting
guarantee and how far TTRs inflated.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core import batch
from repro.core.environment import Environment
from repro.core.schedule import Schedule

__all__ = [
    "first_rendezvous",
    "ttr_for_shift",
    "ttr_profile",
    "max_ttr",
    "exhaustive_shift_range",
    "strided_shift_range",
    "verify_guarantee",
    "DegradationReport",
    "degradation_report",
]


def first_rendezvous(
    a: Schedule,
    b: Schedule,
    wake_a: int,
    wake_b: int,
    horizon: int,
    chunk: int = 1 << 16,
    environment: Environment | None = None,
) -> int | None:
    """Slots until rendezvous measured from ``max(wake_a, wake_b)``.

    Scans global time ``t`` from the later wake-up in vectorized chunks;
    returns ``None`` when no coincidence occurs within ``horizon`` slots.
    With an ``environment``, a coincidence only counts when the mask
    keeps its ``(channel, slots-since-later-wake)`` cell.
    """
    if wake_a < 0 or wake_b < 0:
        raise ValueError("wake-up times must be nonnegative")
    start = max(wake_a, wake_b)
    for lo in range(start, start + horizon, chunk):
        hi = min(lo + chunk, start + horizon)
        window_a = a.materialize(lo - wake_a, hi - wake_a)
        window_b = b.materialize(lo - wake_b, hi - wake_b)
        eq = window_a == window_b
        if environment is not None:
            eq = eq & environment.slot_mask(
                window_a, np.arange(lo - start, hi - start, dtype=np.int64)
            )
        hits = np.nonzero(eq)[0]
        if hits.size:
            return lo - start + int(hits[0])
    return None


def ttr_for_shift(
    a: Schedule,
    b: Schedule,
    shift: int,
    horizon: int,
    chunk: int = 1 << 16,
    environment: Environment | None = None,
) -> int | None:
    """TTR when ``b`` wakes ``shift`` slots after ``a`` (negative: before).

    ``chunk`` tunes the scan granularity: small chunks suit exhaustive
    shift sweeps where most hits come early.  ``environment`` applies a
    per-slot validity mask on the TTR clock (see
    :mod:`repro.core.environment`).
    """
    if shift >= 0:
        return first_rendezvous(
            a, b, 0, shift, horizon, chunk=chunk, environment=environment
        )
    return first_rendezvous(
        a, b, -shift, 0, horizon, chunk=chunk, environment=environment
    )


def ttr_profile(
    a: Schedule,
    b: Schedule,
    shifts: Iterable[int],
    horizon: int,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
    environment: Environment | None = None,
) -> dict[int, int | None]:
    """TTR for each relative shift; ``None`` marks a miss within horizon.

    ``engine`` / ``tile_bytes`` / ``stream_workers`` select and tune
    the sweep engine (see :func:`repro.core.batch.ttr_sweep`); the
    default dispatches on period size, auto-tunes the streaming tile
    plan, and all engines are bit-identical — with or without an
    ``environment`` mask.
    """
    return batch.ttr_sweep(
        a, b, shifts, horizon, engine=engine, tile_bytes=tile_bytes,
        stream_workers=stream_workers, environment=environment,
    )


def exhaustive_shift_range(a: Schedule, b: Schedule) -> range:
    """Shifts that cover *all* joint behaviours of two cyclic schedules.

    A nonnegative shift ``s`` (B wakes later) only enters the
    comparison through the phase offset ``s mod period_A``; a negative
    one through ``-s mod period_B`` (see :mod:`repro.core.batch`).  So
    ``range(-period_B + 1, period_A)`` hits every distinct joint
    behaviour of both signs exactly once — ``period_A + period_B - 1``
    shifts, instead of the ``lcm(period_A, period_B)`` a naive full
    lattice period would sweep.
    """
    return range(-b.period + 1, a.period)


def strided_shift_range(a: Schedule, b: Schedule, max_shifts: int) -> range:
    """The exhaustive shift classes, strided down to ``~max_shifts``.

    The deterministic fallback when a full certification over
    ``period_A + period_B - 1`` shift classes is too expensive (the
    quadratic/cubic global-sequence baselines at large ``n``): same
    covering order, every ``stride``-th class.  ``max_shifts`` large
    enough degenerates to :func:`exhaustive_shift_range`.
    """
    if max_shifts < 1:
        raise ValueError(f"max_shifts must be positive, got {max_shifts}")
    stride = -(-(a.period + b.period - 1) // max_shifts)
    return range(-b.period + 1, a.period, stride)


def max_ttr(
    a: Schedule,
    b: Schedule,
    shifts: Iterable[int],
    horizon: int,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
    environment: Environment | None = None,
) -> int:
    """Maximum TTR over the given shifts.

    Raises ``AssertionError`` if any shift misses within the horizon —
    callers that expect guaranteed rendezvous should size the horizon
    above the theoretical bound (under an ``environment``, prefer
    :func:`degradation_report`: losing shifts is the object of study
    there, not an error).  ``engine`` / ``tile_bytes`` /
    ``stream_workers`` pass through to
    :func:`repro.core.batch.ttr_sweep`.
    """
    worst = -1
    for shift, ttr in ttr_profile(
        a, b, shifts, horizon, engine=engine, tile_bytes=tile_bytes,
        stream_workers=stream_workers, environment=environment,
    ).items():
        if ttr is None:
            raise AssertionError(
                f"no rendezvous within horizon {horizon} at shift {shift}"
            )
        worst = max(worst, ttr)
    return worst


def verify_guarantee(
    a: Schedule,
    b: Schedule,
    bound: int,
    shifts: Iterable[int] | None = None,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
    environment: Environment | None = None,
) -> tuple[bool, int, int | None]:
    """Check that every tested shift rendezvouses within ``bound`` slots.

    Returns ``(ok, worst_ttr, failing_shift)``.  With ``shifts=None`` the
    exhaustive shift range is used (exact certification for cyclic
    schedules).  ``engine`` / ``tile_bytes`` / ``stream_workers`` pass
    through to :func:`repro.core.batch.ttr_sweep` — with the streaming
    engine this certification works even on schedules whose period is
    too large to table.  ``environment`` checks the guarantee under a
    fault mask; when the question is *which* shifts lost it and by how
    much, use :func:`degradation_report` instead.
    """
    if shifts is None:
        shifts = exhaustive_shift_range(a, b)
    worst = -1
    shift_iter = iter(shifts)
    while True:
        pending = [s for _, s in zip(range(4096), shift_iter)]
        if not pending:
            return True, worst, None
        profile = batch.ttr_sweep(
            a, b, pending, bound + 1, engine=engine, tile_bytes=tile_bytes,
            stream_workers=stream_workers, environment=environment,
        )
        for shift in pending:
            ttr = profile[shift]
            if ttr is None or ttr > bound:
                return False, worst, shift
            worst = max(worst, ttr)


@dataclass(frozen=True)
class DegradationReport:
    """How a rendezvous guarantee degrades under a fault environment.

    Derived from two profiles over the same shifts — clean and masked —
    both truncated at ``bound + 1`` slots.  A shift *survives* when its
    masked TTR exists and stays within ``bound``; ``lost_shifts`` lists
    the rest.  Inflation is measured per surviving shift as
    ``(faulted + 1) / (clean + 1)`` (the +1 keeps slot-0 meetings
    finite) and summarized by its mean and max; ``faulted_worst`` is
    ``None`` when no shift survived.  Reports are plain data, built
    from bit-identical engine profiles, so the report itself is
    bit-identical across scalar/batched/stream.
    """

    bound: int
    environment_digest: str
    total_shifts: int
    survived: int
    lost_shifts: tuple[int, ...]
    clean_worst: int
    faulted_worst: int | None
    inflation_mean: float
    inflation_max: float

    @property
    def survival_fraction(self) -> float:
        """Fraction of tested shifts that kept the bounded guarantee."""
        return self.survived / self.total_shifts if self.total_shifts else 1.0

    @property
    def ok(self) -> bool:
        """Whether the guarantee survived on every tested shift."""
        return not self.lost_shifts

    def to_dict(self) -> dict:
        """JSON-able view (the CLI degradation mode prints this)."""
        return {
            "bound": self.bound,
            "environment_digest": self.environment_digest,
            "total_shifts": self.total_shifts,
            "survived": self.survived,
            "survival_fraction": self.survival_fraction,
            "lost_shifts": list(self.lost_shifts),
            "clean_worst": self.clean_worst,
            "faulted_worst": self.faulted_worst,
            "inflation_mean": self.inflation_mean,
            "inflation_max": self.inflation_max,
            "ok": self.ok,
        }


def degradation_report(
    a: Schedule,
    b: Schedule,
    bound: int,
    environment: Environment | None,
    shifts: Iterable[int] | None = None,
    engine: str = "auto",
    tile_bytes: int | None = None,
    stream_workers: int | None = None,
) -> DegradationReport:
    """Measure guarantee survival and TTR inflation under a fault mask.

    The degradation mode of :func:`verify_guarantee`: instead of a bare
    bool it sweeps the same shifts twice — once clean, once under
    ``environment`` — and reports which shift classes lost the
    ``bound``-slot meeting guarantee plus the TTR inflation
    distribution over the survivors.  ``shifts=None`` uses the
    exhaustive shift range (exact certification); ``environment=None``
    degenerates to a report with every shift surviving at inflation
    1.0.  Engine knobs pass through to
    :func:`repro.core.batch.ttr_sweep`, and because both profiles are
    bit-identical across engines, so is the report.
    """
    from repro.core.environment import environment_digest as _env_digest

    if bound < 0:
        raise ValueError(f"bound must be nonnegative, got {bound}")
    if shifts is None:
        shifts = exhaustive_shift_range(a, b)
    shift_list = [int(s) for s in shifts]
    sweep = dict(engine=engine, tile_bytes=tile_bytes, stream_workers=stream_workers)
    clean = batch.ttr_sweep(a, b, shift_list, bound + 1, **sweep)
    faulted = batch.ttr_sweep(
        a, b, shift_list, bound + 1, environment=environment, **sweep
    )
    lost: list[int] = []
    survivors: list[int] = []
    clean_worst = -1
    faulted_worst: int | None = None
    inflations: list[float] = []
    for shift in shift_list:
        c = clean[shift]
        if c is not None and c <= bound:
            clean_worst = max(clean_worst, c)
        f = faulted[shift]
        if f is None or f > bound:
            lost.append(shift)
            continue
        survivors.append(shift)
        faulted_worst = f if faulted_worst is None else max(faulted_worst, f)
        if c is not None and c <= bound:
            inflations.append((f + 1) / (c + 1))
    return DegradationReport(
        bound=bound,
        environment_digest=_env_digest(environment),
        total_shifts=len(shift_list),
        survived=len(survivors),
        lost_shifts=tuple(sorted(lost)),
        clean_worst=clean_worst,
        faulted_worst=faulted_worst,
        inflation_mean=sum(inflations) / len(inflations) if inflations else 0.0,
        inflation_max=max(inflations, default=0.0),
    )
