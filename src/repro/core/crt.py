"""Chinese Remainder Theorem solver (substrate for Theorem 3's analysis).

The epoch construction's rendezvous proof finds an epoch index ``r`` with
``r = x (mod p)`` and ``r = y + mu (mod q)`` for distinct primes ``p, q``;
the bound on ``r`` (at most ``p*q``) is exactly the CRT bound.  The tests
and the bound predictor in :mod:`repro.core.epoch` use this module rather
than re-deriving modular arithmetic inline.
"""

from __future__ import annotations

__all__ = ["extended_gcd", "crt_pair", "solve_congruences"]


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, s, t)`` with ``g = gcd(a, b) = s*a + t*b``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> tuple[int, int]:
    """Solve ``x = r1 (mod m1)``, ``x = r2 (mod m2)``.

    Returns ``(x, lcm)`` with ``0 <= x < lcm``.  Raises ``ValueError``
    when the congruences are incompatible (possible only for non-coprime
    moduli).
    """
    if m1 <= 0 or m2 <= 0:
        raise ValueError(f"moduli must be positive, got {m1}, {m2}")
    g, s, _ = extended_gcd(m1, m2)
    if (r2 - r1) % g != 0:
        raise ValueError(
            f"incompatible congruences x={r1} (mod {m1}), x={r2} (mod {m2})"
        )
    lcm = m1 // g * m2
    step = (r2 - r1) // g
    x = (r1 + m1 * (step * s % (m2 // g))) % lcm
    return x, lcm


def solve_congruences(pairs: list[tuple[int, int]]) -> tuple[int, int]:
    """Solve a system ``x = r_i (mod m_i)``; returns ``(x, lcm)``."""
    if not pairs:
        raise ValueError("need at least one congruence")
    x, m = pairs[0][0] % pairs[0][1], pairs[0][1]
    for r_i, m_i in pairs[1:]:
        x, m = crt_pair(x, m, r_i, m_i)
    return x, m
