"""Agents: a channel set, a hopping schedule, and a wake-up time.

The paper's model (Section 2): each agent runs its deterministic schedule
from its own wake-up slot; before waking it accesses no channel.  Agents
are *anonymous* — the schedule may depend only on the channel set — which
the constructors here cannot enforce but the factory functions respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import Schedule

__all__ = ["Agent", "ASLEEP"]

#: Sentinel channel value for slots before an agent's wake-up.
ASLEEP = -1


@dataclass
class Agent:
    """One cognitive radio in the simulation.

    Attributes
    ----------
    name:
        Display identifier (not visible to the algorithm — anonymity).
    schedule:
        The agent's channel-hopping schedule (local time).
    wake_time:
        Global slot at which the agent starts executing its schedule.
    leave_time:
        Global slot at which the agent departs (churn) and stops
        accessing any channel; ``None`` means it stays forever.  An
        agent whose ``leave_time`` does not exceed its ``wake_time``
        never transmits at all.
    """

    name: str
    schedule: Schedule
    wake_time: int = 0
    leave_time: int | None = None
    channels: frozenset[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.wake_time < 0:
            raise ValueError(f"wake_time must be nonnegative, got {self.wake_time}")
        if self.leave_time is not None and self.leave_time < 0:
            raise ValueError(
                f"leave_time must be nonnegative, got {self.leave_time}"
            )
        self.channels = self.schedule.channels

    def channel_at_global(self, t: int) -> int:
        """Channel at global slot ``t``, or :data:`ASLEEP` outside the
        agent's awake window ``[wake_time, leave_time)``."""
        if t < self.wake_time:
            return ASLEEP
        if self.leave_time is not None and t >= self.leave_time:
            return ASLEEP
        return self.schedule.channel_at(t - self.wake_time)

    def materialize_global(self, start: int, stop: int) -> np.ndarray:
        """Channels over global slots ``[start, stop)``, ASLEEP-padded
        before ``wake_time`` and from ``leave_time`` on."""
        if stop < start:
            raise ValueError(f"empty window: {start}..{stop}")
        out = np.full(stop - start, ASLEEP, dtype=np.int64)
        awake_from = max(start, self.wake_time)
        awake_until = stop
        if self.leave_time is not None:
            awake_until = min(stop, self.leave_time)
        if awake_from < awake_until:
            local_start = awake_from - self.wake_time
            local_stop = awake_until - self.wake_time
            out[awake_from - start : awake_until - start] = (
                self.schedule.materialize(local_start, local_stop)
            )
        return out

    def overlaps(self, other: "Agent") -> bool:
        """Whether the two agents share any channel (can ever rendezvous)."""
        return bool(self.channels & other.channels)
