"""Agents: a channel set, a hopping schedule, and a wake-up time.

The paper's model (Section 2): each agent runs its deterministic schedule
from its own wake-up slot; before waking it accesses no channel.  Agents
are *anonymous* — the schedule may depend only on the channel set — which
the constructors here cannot enforce but the factory functions respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import Schedule

__all__ = ["Agent", "ASLEEP"]

#: Sentinel channel value for slots before an agent's wake-up.
ASLEEP = -1


@dataclass
class Agent:
    """One cognitive radio in the simulation.

    Attributes
    ----------
    name:
        Display identifier (not visible to the algorithm — anonymity).
    schedule:
        The agent's channel-hopping schedule (local time).
    wake_time:
        Global slot at which the agent starts executing its schedule.
    """

    name: str
    schedule: Schedule
    wake_time: int = 0
    channels: frozenset[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.wake_time < 0:
            raise ValueError(f"wake_time must be nonnegative, got {self.wake_time}")
        self.channels = self.schedule.channels

    def channel_at_global(self, t: int) -> int:
        """Channel at global slot ``t`` or :data:`ASLEEP` if not yet awake."""
        if t < self.wake_time:
            return ASLEEP
        return self.schedule.channel_at(t - self.wake_time)

    def materialize_global(self, start: int, stop: int) -> np.ndarray:
        """Channels over global slots ``[start, stop)``, ASLEEP-padded."""
        if stop < start:
            raise ValueError(f"empty window: {start}..{stop}")
        out = np.full(stop - start, ASLEEP, dtype=np.int64)
        awake_from = max(start, self.wake_time)
        if awake_from < stop:
            local_start = awake_from - self.wake_time
            local_stop = stop - self.wake_time
            out[awake_from - start :] = self.schedule.materialize(
                local_start, local_stop
            )
        return out

    def overlaps(self, other: "Agent") -> bool:
        """Whether the two agents share any channel (can ever rendezvous)."""
        return bool(self.channels & other.channels)
