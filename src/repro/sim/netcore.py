"""Vectorized network-scale discovery simulation core.

The pairwise reference (:meth:`repro.sim.network.Network.run` with
``engine="pairwise"``) walks an ``O(num_pairs * horizon)`` Python loop
over :class:`~repro.sim.agent.Agent` objects — fine for a handful of
radios, hopeless for the paper's real setting of thousands discovering
each other on shared spectrum.  This module steps the *whole population*
as numpy columns instead:

* **Cohorts.**  Agents are grouped into cohorts of identical behaviour —
  same schedule object, same wake-up slot, same departure slot.  Every
  member of a cohort occupies the same channel at every slot, so the
  simulation runs over ``R`` cohort rows rather than ``N`` agents, and
  agent-pair results expand combinatorially afterwards (10k agents
  sharing a few hundred distinct schedules pay for each row — and each
  period table, including store memmaps — exactly once).
* **Chunked channel matrix.**  Time advances in chunks; each chunk
  assembles an ``(active cohorts, chunk)`` channel matrix with one
  :meth:`~repro.core.schedule.Schedule.channel_gather` call per distinct
  schedule — the same bulk hook the streaming verification engine tiles
  with, so store-backed schedules answer from their shared memmap.
* **Bucketed rendezvous detection.**  Per slot, the channel column is
  bucketed by channel value (a counting sort): only channels holding at
  least two cohorts can produce a rendezvous, and candidate cohort pairs
  are filtered against a pending matrix — *first-meet retirement* —
  so no pair is ever reported twice and the simulation retires as soon
  as every overlapping pair has met.
* **Event wheel.**  Wake (join) and leave (churn) events live in a
  time-chunked :class:`EventWheel`; each chunk pops only its own bucket,
  so maintaining the active-cohort set costs ``O(events)`` over the
  whole run rather than ``O(R)`` per chunk.

The result is columnar too: :class:`NetResult` keeps cohort-level event
arrays plus per-channel contention counters, derives population metrics
(through :class:`~repro.sim.metrics.DiscoveryProfile`) without ever
materializing the quadratic agent-pair set, and can expand to the exact
per-pair events of the pairwise reference when the population is small
enough to want them.  The two engines are certified bit-identical in
``tests/sim/test_netcore.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core import telemetry
from repro.core.environment import Environment
from repro.core.schedule import Schedule
from repro.sim.agent import ASLEEP, Agent
from repro.sim.metrics import DiscoveryProfile

__all__ = [
    "Population",
    "EventWheel",
    "NetResult",
    "simulate_population",
    "DEFAULT_CHUNK",
    "LEAVE_NEVER",
    "WAKE",
    "LEAVE",
]

#: Default time-chunk length (slots) for channel-matrix assembly.
DEFAULT_CHUNK = 4096

#: Sentinel departure slot for cohorts that never leave.
LEAVE_NEVER = np.iinfo(np.int64).max

#: Event-wheel kind tag: a cohort wakes (joins) at the event slot.
WAKE = 0

#: Event-wheel kind tag: a cohort leaves at the event slot.
LEAVE = 1


class EventWheel:
    """Time-chunked buckets of wake/leave events.

    Events are pushed once up front and popped exactly when the chunk
    containing their slot begins, so the active-cohort set is maintained
    with ``O(total events)`` work over a whole simulation instead of a
    full population scan per chunk.
    """

    def __init__(self, chunk: int):
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk
        self._buckets: dict[int, list[tuple[int, int, int]]] = {}

    def push(self, time: int, kind: int, cohort: int) -> None:
        """Schedule ``(time, kind, cohort)`` into its chunk bucket."""
        if time < 0:
            raise ValueError(f"event time must be nonnegative, got {time}")
        self._buckets.setdefault(time // self.chunk, []).append(
            (time, kind, cohort)
        )

    def pop(self, index: int) -> list[tuple[int, int, int]]:
        """Drain chunk ``index``'s bucket, sorted by (time, kind, cohort)."""
        return sorted(self._buckets.pop(index, ()))

    def __len__(self) -> int:
        """Number of events not yet popped."""
        return sum(len(bucket) for bucket in self._buckets.values())


class Population:
    """Columnar population: distinct schedules plus per-cohort columns.

    A *cohort* groups agents with identical behaviour — the same
    schedule object, wake slot, and departure slot — so the simulation
    core scales with the number of distinct behaviours rather than the
    number of agents.  Construction is columnar
    (:meth:`from_columns`) with an object-level convenience wrapper
    (:meth:`from_agents`) that deduplicates schedules by identity.
    """

    def __init__(
        self,
        schedules: Sequence[Schedule],
        cohort_schedule: np.ndarray,
        cohort_wake: np.ndarray,
        cohort_leave: np.ndarray,
        cohort_members: list[np.ndarray],
        num_agents: int,
    ):
        self.schedules = list(schedules)
        self.cohort_schedule = np.asarray(cohort_schedule, dtype=np.int64)
        self.cohort_wake = np.asarray(cohort_wake, dtype=np.int64)
        self.cohort_leave = np.asarray(cohort_leave, dtype=np.int64)
        self.cohort_members = cohort_members
        self.num_agents = num_agents
        self.cohort_size = np.array(
            [len(m) for m in cohort_members], dtype=np.int64
        )
        channels: set[int] = set()
        for schedule in self.schedules:
            channels |= schedule.channels
        if channels and min(channels) < 0:
            raise ValueError("channel values must be nonnegative")
        #: One past the largest channel value any schedule visits.
        self.num_channels = (max(channels) + 1) if channels else 0

    @property
    def num_cohorts(self) -> int:
        """Number of distinct (schedule, wake, leave) cohorts."""
        return len(self.cohort_schedule)

    @classmethod
    def from_columns(
        cls,
        schedules: Sequence[Schedule],
        schedule_index: np.ndarray,
        wake: np.ndarray,
        leave: np.ndarray | None = None,
    ) -> "Population":
        """Build from per-agent columns, grouping cohorts vectorized.

        ``schedule_index[a]`` names agent ``a``'s schedule in
        ``schedules``; ``wake[a]`` its wake slot; ``leave[a]`` its
        departure slot (``LEAVE_NEVER`` or ``None`` for none).  Cohorts
        come out sorted lexicographically by (schedule, wake, leave),
        so cohort numbering is deterministic.
        """
        schedule_index = np.asarray(schedule_index, dtype=np.int64)
        wake = np.asarray(wake, dtype=np.int64)
        if leave is None:
            leave = np.full(len(wake), LEAVE_NEVER, dtype=np.int64)
        else:
            leave = np.asarray(leave, dtype=np.int64)
        if not (len(schedule_index) == len(wake) == len(leave)):
            raise ValueError("population columns must have equal length")
        if len(wake) and wake.min() < 0:
            raise ValueError("wake times must be nonnegative")
        if len(schedule_index) and (
            schedule_index.min() < 0 or schedule_index.max() >= len(schedules)
        ):
            raise ValueError("schedule_index out of range")
        columns = np.stack([schedule_index, wake, leave])
        keys, inverse = np.unique(columns, axis=1, return_inverse=True)
        inverse = inverse.reshape(-1)
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(
            inverse[order], np.arange(keys.shape[1] + 1)
        )
        members = [
            order[bounds[c] : bounds[c + 1]] for c in range(keys.shape[1])
        ]
        return cls(
            schedules,
            keys[0],
            keys[1],
            keys[2],
            members,
            num_agents=len(wake),
        )

    @classmethod
    def from_agents(cls, agents: Sequence[Agent]) -> "Population":
        """Build from :class:`Agent` objects, sharing schedules by identity.

        Agents holding the *same schedule object* share one period
        table (and one cohort, when wake and leave also agree); equal
        but distinct schedule objects simply land in separate cohorts —
        a performance distinction, never a correctness one.
        """
        schedules: list[Schedule] = []
        index_of: dict[int, int] = {}
        schedule_index = np.empty(len(agents), dtype=np.int64)
        wake = np.empty(len(agents), dtype=np.int64)
        leave = np.full(len(agents), LEAVE_NEVER, dtype=np.int64)
        for a, agent in enumerate(agents):
            key = id(agent.schedule)
            g = index_of.get(key)
            if g is None:
                g = len(schedules)
                schedules.append(agent.schedule)
                index_of[key] = g
            schedule_index[a] = g
            wake[a] = agent.wake_time
            if agent.leave_time is not None:
                leave[a] = agent.leave_time
        return cls.from_columns(schedules, schedule_index, wake, leave)

    def schedule_overlap(self) -> np.ndarray:
        """Boolean (cohort, cohort) matrix: do the channel sets intersect?

        Computed at the distinct-schedule level (a small membership
        matmul) and expanded to cohorts by indexing, so the cost scales
        with distinct schedules rather than cohorts.
        """
        values = sorted(
            {c for schedule in self.schedules for c in schedule.channels}
        )
        column = {c: i for i, c in enumerate(values)}
        membership = np.zeros((len(self.schedules), len(values)))
        for g, schedule in enumerate(self.schedules):
            for c in schedule.channels:
                membership[g, column[c]] = 1.0
        overlap = (membership @ membership.T) > 0
        return overlap[self.cohort_schedule][:, self.cohort_schedule]


class NetResult:
    """Columnar outcome of one :func:`simulate_population` run.

    Events stay at cohort granularity: ``pair_events`` holds one row per
    *cohort pair* first meeting, ``intra_events`` one row per cohort of
    two or more members (its internal pairs all meet the slot the
    cohort wakes).  Population metrics derive from these plus the
    cohort sizes without ever materializing agent pairs; the exact
    agent-pair events of the pairwise reference are recovered on demand
    by :meth:`iter_agent_events`.

    Contention counters cover global slots ``[0, slots_simulated)`` —
    with ``early_stop`` the simulator retires once every overlapping
    pair has met, so ``slots_simulated`` can be well short of the
    horizon.
    """

    def __init__(
        self,
        population: Population,
        horizon: int,
        slots_simulated: int,
        pair_events: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        intra_events: tuple[np.ndarray, np.ndarray, np.ndarray],
        contended_slots: np.ndarray,
        pair_colocations: np.ndarray,
        overlapping_pairs: int,
        unmet_cohort_pairs: int,
    ):
        self.population = population
        self.horizon = horizon
        self.slots_simulated = slots_simulated
        self.event_i, self.event_j, self.event_time, self.event_channel = (
            pair_events
        )
        self.intra_cohort, self.intra_time, self.intra_channel = intra_events
        self.contended_slots = contended_slots
        self.pair_colocations = pair_colocations
        self.overlapping_pairs = overlapping_pairs
        self.unmet_cohort_pairs = unmet_cohort_pairs

    def met_pairs(self) -> int:
        """Number of agent pairs that met, weighted by cohort sizes."""
        sizes = self.population.cohort_size
        inter = int(np.sum(sizes[self.event_i] * sizes[self.event_j]))
        intra_sizes = sizes[self.intra_cohort]
        intra = int(np.sum(intra_sizes * (intra_sizes - 1) // 2))
        return inter + intra

    def all_discovered(self) -> bool:
        """Whether every overlapping agent pair met within the horizon."""
        return self.met_pairs() == self.overlapping_pairs

    def discovery_time(self) -> int | None:
        """Global slot by which every overlapping pair has met (or None)."""
        if not self.all_discovered():
            return None
        times = np.concatenate([self.event_time, self.intra_time])
        return int(times.max()) if times.size else 0

    def discovery_profile(self) -> DiscoveryProfile:
        """First-meet times with agent-pair weights, sorted by time."""
        sizes = self.population.cohort_size
        intra_sizes = sizes[self.intra_cohort]
        times = np.concatenate([self.intra_time, self.event_time])
        weights = np.concatenate(
            [
                intra_sizes * (intra_sizes - 1) // 2,
                sizes[self.event_i] * sizes[self.event_j],
            ]
        )
        order = np.argsort(times, kind="stable")
        return DiscoveryProfile(
            times=times[order],
            weights=weights[order],
            overlapping_pairs=self.overlapping_pairs,
        )

    def iter_agent_events(self):
        """Yield ``(agent_i, agent_j, time, channel)`` per first meeting.

        Expands cohort events combinatorially — quadratic in cohort
        sizes, so intended for populations small enough to want the
        pairwise representation (the :class:`~repro.sim.network.Network`
        facade and parity tests), not for the 10k-agent regime.
        """
        members = self.population.cohort_members
        for c, t, ch in zip(self.intra_cohort, self.intra_time, self.intra_channel):
            group = members[c]
            for x in range(len(group)):
                for y in range(x + 1, len(group)):
                    yield int(group[x]), int(group[y]), int(t), int(ch)
        for i, j, t, ch in zip(
            self.event_i, self.event_j, self.event_time, self.event_channel
        ):
            for a in members[i]:
                for b in members[j]:
                    yield int(a), int(b), int(t), int(ch)


def _assemble_rows(
    population: Population,
    rows_idx: np.ndarray,
    start: int,
    stop: int,
) -> np.ndarray:
    """Channel matrix for cohorts ``rows_idx`` over ``[start, stop)``.

    One :meth:`~repro.core.schedule.Schedule.channel_gather` call per
    distinct schedule covers every cohort row sharing it; pre-wake and
    post-leave slots come back as :data:`~repro.sim.agent.ASLEEP`.
    """
    width = stop - start
    rows = np.full((rows_idx.size, width), ASLEEP, dtype=np.int64)
    offsets = np.arange(start, stop, dtype=np.int64)
    scheds = population.cohort_schedule[rows_idx]
    for g in np.unique(scheds):
        telemetry.count("netsim.gather_calls")
        sel = np.nonzero(scheds == g)[0]
        cohorts = rows_idx[sel]
        local = offsets[None, :] - population.cohort_wake[cohorts, None]
        valid = (local >= 0) & (
            offsets[None, :] < population.cohort_leave[cohorts, None]
        )
        gathered = population.schedules[g].channel_gather(
            np.where(valid, local, 0)
        )
        rows[sel] = np.where(valid, gathered, ASLEEP)
    return rows


def _first_valid_meet(
    schedule: Schedule,
    wake: int,
    leave: int,
    horizon: int,
    chunk: int,
    environment: Environment,
) -> tuple[int, int] | None:
    """First ``(slot, channel)`` where an intra-cohort pair's coincidence
    survives the environment mask, or ``None`` if none does.

    Members of one cohort sit on the same channel every awake slot, so
    their meeting slot is the first global slot in
    ``[wake, min(leave, horizon))`` the mask validates — scanned in
    chunks so huge-period schedules never materialize a full row.
    """
    stop_at = min(leave, horizon)
    for start in range(wake, stop_at, chunk):
        stop = min(start + chunk, stop_at)
        slots = np.arange(start, stop, dtype=np.int64)
        channels = schedule.channel_gather(slots - wake)
        valid = np.broadcast_to(
            environment.slot_mask(channels, slots), channels.shape
        )
        hits = np.nonzero(valid)[0]
        if hits.size:
            k = int(hits[0])
            return int(slots[k]), int(channels[k])
    return None


def simulate_population(
    population: Population,
    horizon: int,
    chunk: int = DEFAULT_CHUNK,
    early_stop: bool = True,
    environment: Environment | None = None,
) -> NetResult:
    """Simulate ``horizon`` slots over the whole population, vectorized.

    Per chunk: pop the event wheel to update the active-cohort set,
    assemble the ``(active cohorts, chunk)`` channel matrix, then bucket
    each slot's channel column — cohort pairs sharing a bucket and still
    pending are recorded (first-meet retirement) and per-channel
    contention counters accumulate.  With ``early_stop`` (the default)
    the scan retires at the slot the last pending pair meets;
    ``early_stop=False`` scans the full horizon so contention metrics
    cover every slot.

    With an ``environment``
    (:class:`~repro.core.environment.Environment`), each chunk also
    evaluates the fault mask over its ``(channel, global slot)`` grid
    and a coincidence only counts as a meeting on a validated cell —
    the *same* mask generator the sweep engines apply, here on the
    global simulation clock (the sweep engines index it by slots since
    the later wake-up; see ``docs/ARCHITECTURE.md``).  Intra-cohort
    pairs, which the clean path retires at their wake slot, instead
    meet at the first masked-valid awake slot (or never).  Contention
    counters stay *raw* — primary users occupying a channel still
    contend with everyone sensing it; the mask decides meetings, not
    presence.

    Certified bit-identical to the pairwise reference
    (``Network.run(engine="pairwise")``) in ``tests/sim/test_netcore.py``,
    clean and masked.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    sizes = population.cohort_size
    num_cohorts = population.num_cohorts
    overlap = population.schedule_overlap()
    np.fill_diagonal(overlap, False)
    # The reference counts every channel-set-sharing pair as
    # overlapping, whether or not it ever wakes; weight cohort pairs by
    # member counts and add each cohort's internal pairs.
    cross = overlap @ sizes.astype(np.float64)
    overlapping_pairs = int(round(float(sizes @ cross) / 2))
    overlapping_pairs += int(np.sum(sizes * (sizes - 1) // 2))

    # A cohort participates only if it is awake before both the horizon
    # and its own departure.
    alive = (population.cohort_wake < horizon) & (
        population.cohort_wake < population.cohort_leave
    )
    pending = overlap
    pending[~alive, :] = False
    pending[:, ~alive] = False
    remaining = int(np.count_nonzero(np.triu(pending, 1)))

    # Intra-cohort pairs share one behaviour: clean, they meet the slot
    # the cohort wakes, on the schedule's first channel; under an
    # environment, at the first awake slot the mask validates (if any).
    intra_mask = alive & (sizes >= 2)
    intra_cohort = np.nonzero(intra_mask)[0]
    if environment is None:
        intra_time = population.cohort_wake[intra_cohort]
        intra_channel = np.array(
            [
                population.schedules[g].channel_at(0)
                for g in population.cohort_schedule[intra_cohort]
            ],
            dtype=np.int64,
        )
    else:
        kept, times, channels_out = [], [], []
        for c in intra_cohort:
            meet = _first_valid_meet(
                population.schedules[population.cohort_schedule[c]],
                int(population.cohort_wake[c]),
                int(population.cohort_leave[c]),
                horizon,
                chunk,
                environment,
            )
            if meet is not None:
                kept.append(c)
                times.append(meet[0])
                channels_out.append(meet[1])
        intra_cohort = np.array(kept, dtype=np.int64)
        intra_time = np.array(times, dtype=np.int64)
        intra_channel = np.array(channels_out, dtype=np.int64)

    wheel = EventWheel(chunk)
    for c in np.nonzero(alive)[0]:
        wheel.push(int(population.cohort_wake[c]), WAKE, int(c))
        if population.cohort_leave[c] < horizon:
            wheel.push(int(population.cohort_leave[c]), LEAVE, int(c))

    num_channels = population.num_channels
    contended_slots = np.zeros(num_channels, dtype=np.int64)
    pair_colocations = np.zeros(num_channels, dtype=np.int64)
    ev_i: list[np.ndarray] = []
    ev_j: list[np.ndarray] = []
    ev_t: list[np.ndarray] = []
    ev_c: list[np.ndarray] = []

    active = np.zeros(num_cohorts, dtype=bool)
    slots_simulated = 0
    done = early_stop and remaining == 0
    for start in range(0, horizon, chunk):
        if done:
            break
        stop = min(start + chunk, horizon)
        leaves: list[int] = []
        for _, kind, cohort in wheel.pop(start // chunk):
            if kind == WAKE:
                active[cohort] = True
            else:
                leaves.append(cohort)
        rows_idx = np.nonzero(active)[0]
        if rows_idx.size == 0:
            slots_simulated = stop
            for cohort in leaves:
                active[cohort] = False
            continue
        telemetry.count("netsim.chunks")
        telemetry.count("netsim.cohort_rows", int(rows_idx.size))
        with telemetry.span("netsim.assemble") as assemble_span:
            rows = _assemble_rows(population, rows_idx, start, stop)
            assemble_span.add_bytes(rows.nbytes)
        sizes_rows = sizes[rows_idx]
        valid_chunk = None
        if environment is not None and num_channels:
            # One (channel, slot) validity grid per chunk, shared by
            # every bucket below — the identical mask generator the
            # sweep engines tile with.
            with telemetry.span("netsim.mask"):
                valid_chunk = np.broadcast_to(
                    environment.slot_mask(
                        np.arange(num_channels, dtype=np.int64)[:, None],
                        np.arange(start, stop, dtype=np.int64)[None, :],
                    ),
                    (num_channels, stop - start),
                )
        with telemetry.span("netsim.scan"):
            for s in range(stop - start):
                column = rows[:, s]
                awake = column >= 0
                slots_simulated = start + s + 1
                if not awake.any():
                    continue
                values = column[awake]
                agents_on = np.bincount(
                    values, weights=sizes_rows[awake], minlength=num_channels
                ).astype(np.int64)
                crowded = agents_on >= 2
                contended_slots += crowded
                pair_colocations += np.where(
                    crowded, agents_on * (agents_on - 1) // 2, 0
                )
                if remaining:
                    counts = np.bincount(values, minlength=num_channels)
                    for channel in np.nonzero(counts >= 2)[0]:
                        if valid_chunk is not None and not valid_chunk[channel, s]:
                            continue
                        bucket = rows_idx[awake & (column == channel)]
                        sub = pending[np.ix_(bucket, bucket)]
                        if not sub.any():
                            continue
                        ii, jj = np.nonzero(np.triu(sub, 1))
                        first, second = bucket[ii], bucket[jj]
                        ev_i.append(first)
                        ev_j.append(second)
                        ev_t.append(
                            np.full(first.size, start + s, dtype=np.int64)
                        )
                        ev_c.append(
                            np.full(first.size, channel, dtype=np.int64)
                        )
                        pending[first, second] = False
                        pending[second, first] = False
                        remaining -= first.size
                if early_stop and remaining == 0:
                    done = True
                    break
        for cohort in leaves:
            active[cohort] = False

    def _concat(parts: list[np.ndarray]) -> np.ndarray:
        return (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )

    return NetResult(
        population,
        horizon,
        slots_simulated,
        (_concat(ev_i), _concat(ev_j), _concat(ev_t), _concat(ev_c)),
        (intra_cohort, intra_time, intra_channel),
        contended_slots,
        pair_colocations,
        overlapping_pairs,
        unmet_cohort_pairs=remaining,
    )
