"""Discrete-time multi-agent rendezvous simulator.

Simulates the paper's model directly: a global slotted clock, agents that
wake at arbitrary slots and then follow their deterministic schedules,
and pairwise rendezvous whenever two awake agents access the same channel
in the same slot.  Detection is vectorized over time windows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.sim.agent import ASLEEP, Agent
from repro.sim.events import RendezvousEvent

__all__ = ["Network", "SimulationResult"]


class SimulationResult:
    """First-rendezvous events per overlapping pair, plus derived metrics."""

    def __init__(
        self,
        agents: Sequence[Agent],
        events: dict[tuple[str, str], RendezvousEvent],
        horizon: int,
    ):
        self.agents = list(agents)
        self.events = events
        self.horizon = horizon

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """All pairs that share a channel (and hence must eventually meet)."""
        pairs = []
        for i, a in enumerate(self.agents):
            for b in self.agents[i + 1 :]:
                if a.overlaps(b):
                    pairs.append(tuple(sorted((a.name, b.name))))
        return pairs

    def met_pairs(self) -> list[tuple[str, str]]:
        """Pairs that rendezvoused within the horizon, sorted by name."""
        return sorted(self.events)

    def unmet_pairs(self) -> list[tuple[str, str]]:
        """Overlapping pairs that did not meet within the horizon."""
        return [p for p in self.overlapping_pairs() if p not in self.events]

    def all_discovered(self) -> bool:
        """Whether every overlapping pair met within the horizon."""
        return not self.unmet_pairs()

    def discovery_time(self) -> int | None:
        """Global slot by which every overlapping pair has met (or None)."""
        if not self.all_discovered():
            return None
        if not self.events:
            return 0
        return max(e.time for e in self.events.values())

    def ttrs(self) -> dict[tuple[str, str], int]:
        """Per-pair time-to-rendezvous (slots after both agents woke)."""
        return {pair: e.ttr for pair, e in self.events.items()}


class Network:
    """A set of agents sharing a slotted spectrum."""

    def __init__(self, agents: Sequence[Agent]):
        names = [a.name for a in agents]
        if len(set(names)) != len(names):
            raise ValueError("agent names must be unique")
        self.agents = list(agents)

    def run(self, horizon: int, chunk: int = 1 << 14) -> SimulationResult:
        """Simulate ``horizon`` slots; record each pair's first rendezvous.

        Complexity ``O(num_pairs * horizon)`` with numpy constant factors;
        windows are processed in chunks to bound memory.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        pending: set[tuple[int, int]] = set()
        for i in range(len(self.agents)):
            for j in range(i + 1, len(self.agents)):
                if self.agents[i].overlaps(self.agents[j]):
                    pending.add((i, j))
        events: dict[tuple[str, str], RendezvousEvent] = {}
        for start in range(0, horizon, chunk):
            if not pending:
                break
            stop = min(start + chunk, horizon)
            windows = [a.materialize_global(start, stop) for a in self.agents]
            for i, j in sorted(pending):
                row_i, row_j = windows[i], windows[j]
                hits = np.nonzero((row_i == row_j) & (row_i != ASLEEP))[0]
                if hits.size == 0:
                    continue
                t = start + int(hits[0])
                a, b = self.agents[i], self.agents[j]
                key = tuple(sorted((a.name, b.name)))
                events[key] = RendezvousEvent(
                    time=t,
                    first=key[0],
                    second=key[1],
                    channel=int(row_i[hits[0]]),
                    ttr=t - max(a.wake_time, b.wake_time),
                )
                pending.discard((i, j))
        return SimulationResult(self.agents, events, horizon)
