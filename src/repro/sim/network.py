"""Discrete-time multi-agent rendezvous simulator.

Simulates the paper's model directly: a global slotted clock, agents that
wake at arbitrary slots (and may leave — churn) while following their
deterministic schedules, and pairwise rendezvous whenever two awake
agents access the same channel in the same slot.

:class:`Network` is a thin facade over two engines producing
bit-identical events:

* ``engine="pairwise"`` — the certification reference: an
  ``O(num_pairs * horizon)`` loop comparing materialized agent windows,
  kept deliberately simple (it only skips agents with no pending pair).
* ``engine="vectorized"`` — the network-scale core
  (:mod:`repro.sim.netcore`): the whole population stepped as numpy
  cohort columns with bucketed per-slot detection, built for thousands
  of agents.
* ``engine="auto"`` — pairwise below
  :data:`AUTO_VECTORIZE_MIN_AGENTS` agents, vectorized from there up.

The split mirrors the verification stack, where
``ttr_sweep_stream_serial`` certifies the streaming engine: the slow
loop stays verbatim as the reference and the fast path must match it
exactly (``tests/sim/test_netcore.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.environment import Environment
from repro.sim.agent import ASLEEP, Agent
from repro.sim.events import RendezvousEvent
from repro.sim.metrics import DiscoveryProfile

__all__ = ["Network", "SimulationResult", "ENGINES", "AUTO_VECTORIZE_MIN_AGENTS"]

#: Engine names accepted by :meth:`Network.run`.
ENGINES = ("auto", "pairwise", "vectorized")

#: Population size at which ``engine="auto"`` switches to the
#: vectorized core: below it the pairwise loop's simplicity wins,
#: above it the cohort-columnar scan does.
AUTO_VECTORIZE_MIN_AGENTS = 64


class SimulationResult:
    """First-rendezvous events per overlapping pair, plus derived metrics."""

    def __init__(
        self,
        agents: Sequence[Agent],
        events: dict[tuple[str, str], RendezvousEvent],
        horizon: int,
    ):
        self.agents = list(agents)
        self.events = events
        self.horizon = horizon

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """All pairs that share a channel (and hence must eventually meet)."""
        pairs = []
        for i, a in enumerate(self.agents):
            for b in self.agents[i + 1 :]:
                if a.overlaps(b):
                    pairs.append(tuple(sorted((a.name, b.name))))
        return pairs

    def met_pairs(self) -> list[tuple[str, str]]:
        """Pairs that rendezvoused within the horizon, sorted by name."""
        return sorted(self.events)

    def unmet_pairs(self) -> list[tuple[str, str]]:
        """Overlapping pairs that did not meet within the horizon."""
        return [p for p in self.overlapping_pairs() if p not in self.events]

    def all_discovered(self) -> bool:
        """Whether every overlapping pair met within the horizon."""
        return not self.unmet_pairs()

    def discovery_time(self) -> int | None:
        """Global slot by which every overlapping pair has met (or None)."""
        if not self.all_discovered():
            return None
        if not self.events:
            return 0
        return max(e.time for e in self.events.values())

    def ttrs(self) -> dict[tuple[str, str], int]:
        """Per-pair time-to-rendezvous (slots after both agents woke)."""
        return {pair: e.ttr for pair, e in self.events.items()}

    def discovery_profile(self) -> DiscoveryProfile:
        """First-meet times (weight 1 each) for the population metrics.

        The pairwise-engine counterpart of
        :meth:`repro.sim.netcore.NetResult.discovery_profile`: feed it
        to :func:`~repro.sim.metrics.summarize_discovery` or
        :func:`~repro.sim.metrics.discovery_throughput`.
        """
        times = np.sort(
            np.array([e.time for e in self.events.values()], dtype=np.int64)
        )
        return DiscoveryProfile(
            times=times,
            weights=np.ones(times.size, dtype=np.int64),
            overlapping_pairs=len(self.overlapping_pairs()),
        )


class Network:
    """A set of agents sharing a slotted spectrum (engine facade)."""

    def __init__(self, agents: Sequence[Agent]):
        names = [a.name for a in agents]
        if len(set(names)) != len(names):
            raise ValueError("agent names must be unique")
        self.agents = list(agents)

    def resolve_engine(self, engine: str) -> str:
        """Map an engine request to the concrete engine ``run`` will use."""
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine == "auto":
            if len(self.agents) >= AUTO_VECTORIZE_MIN_AGENTS:
                return "vectorized"
            return "pairwise"
        return engine

    def run(
        self,
        horizon: int,
        chunk: int = 1 << 14,
        engine: str = "auto",
        environment: Environment | None = None,
    ) -> SimulationResult:
        """Simulate ``horizon`` slots; record each pair's first rendezvous.

        Both engines produce bit-identical events; see the module
        docstring for the dispatch rule.  ``chunk`` bounds the slot
        window materialized at once on either path.  ``environment``
        (:class:`~repro.core.environment.Environment`) runs the whole
        simulation under a fault mask on the global clock: a
        coincidence only becomes a rendezvous on a mask-validated
        ``(channel, slot)`` cell, identically on both engines.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if self.resolve_engine(engine) == "vectorized":
            return self._run_vectorized(horizon, chunk, environment)
        return self._run_pairwise(horizon, chunk, environment)

    def _run_pairwise(
        self,
        horizon: int,
        chunk: int,
        environment: Environment | None = None,
    ) -> SimulationResult:
        """The certification reference: compare each pending pair's windows.

        Complexity ``O(num_pairs * horizon)`` with numpy constant factors;
        windows are processed in chunks to bound memory, and only agents
        still holding a pending pair are materialized each chunk.
        """
        pending: set[tuple[int, int]] = set()
        for i in range(len(self.agents)):
            for j in range(i + 1, len(self.agents)):
                if self.agents[i].overlaps(self.agents[j]):
                    pending.add((i, j))
        events: dict[tuple[str, str], RendezvousEvent] = {}
        for start in range(0, horizon, chunk):
            if not pending:
                break
            stop = min(start + chunk, horizon)
            windows = {
                i: self.agents[i].materialize_global(start, stop)
                for i in sorted({index for pair in pending for index in pair})
            }
            if environment is not None:
                slots = np.arange(start, stop, dtype=np.int64)
            for i, j in sorted(pending):
                row_i, row_j = windows[i], windows[j]
                eq = (row_i == row_j) & (row_i != ASLEEP)
                if environment is not None:
                    eq = eq & environment.slot_mask(row_i, slots)
                hits = np.nonzero(eq)[0]
                if hits.size == 0:
                    continue
                t = start + int(hits[0])
                a, b = self.agents[i], self.agents[j]
                key = tuple(sorted((a.name, b.name)))
                events[key] = RendezvousEvent(
                    time=t,
                    first=key[0],
                    second=key[1],
                    channel=int(row_i[hits[0]]),
                    ttr=t - max(a.wake_time, b.wake_time),
                )
                pending.discard((i, j))
        return SimulationResult(self.agents, events, horizon)

    def _run_vectorized(
        self,
        horizon: int,
        chunk: int,
        environment: Environment | None = None,
    ) -> SimulationResult:
        """Run the columnar core and expand cohort events to pair events."""
        from repro.sim.netcore import Population, simulate_population

        population = Population.from_agents(self.agents)
        result = simulate_population(
            population, horizon, chunk=chunk, environment=environment
        )
        events: dict[tuple[str, str], RendezvousEvent] = {}
        for ai, bi, t, channel in result.iter_agent_events():
            a, b = self.agents[ai], self.agents[bi]
            key = tuple(sorted((a.name, b.name)))
            events[key] = RendezvousEvent(
                time=t,
                first=key[0],
                second=key[1],
                channel=channel,
                ttr=t - max(a.wake_time, b.wake_time),
            )
        return SimulationResult(self.agents, events, horizon)
