"""Event records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RendezvousEvent"]


@dataclass(frozen=True, order=True)
class RendezvousEvent:
    """Two agents hopped on the same channel in the same slot.

    ``time`` is the global slot; ``ttr`` is measured from the later
    wake-up of the pair (the paper's asynchronous rendezvous time).
    """

    time: int
    first: str
    second: str
    channel: int
    ttr: int

    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) agent-name pair."""
        return tuple(sorted((self.first, self.second)))  # type: ignore[return-value]
