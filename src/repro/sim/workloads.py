"""Workload generators — the scenarios the paper's introduction motivates.

Each generator returns an :class:`Instance`: a universe size plus one
channel set per agent (and metadata).  All generators are seeded and
deterministic.

Scenarios
---------
``random_subsets``
    i.i.d. k-subsets of the universe — the standard evaluation workload.
``single_overlap``
    Adversarial pairs intersecting in exactly one channel — the regime of
    the paper's ``Omega(|S_i||S_j|)`` lower bound (Theorem 7).
``symmetric``
    All agents share one channel set — the Section 3.2 special case.
``coalition_bands``
    The paper's military-coalition motivation: a huge spectrum pool where
    each coalition member operates in a small band that guarantees
    overlap with allies.
``whitespace``
    TV-whitespace style: incumbents occupy channels; each agent senses
    the free channels with local (seeded) sensing asymmetry.
``nested``
    Chains ``S_1 ⊂ S_2 ⊂ ...`` — stresses the anonymity requirement
    (different-size sets must still coordinate).
``available_overlap``
    Available-channel-set workloads parameterized by the overlap
    fraction ``rho`` — the evaluation axis of the ZOS / available-set
    literature (Lin et al., arXiv:1506.00744; Yu et al.,
    arXiv:1506.01136): every pair shares a common core of
    ``~rho * k`` channels.
``adversarial_single_common``
    Many agents pairwise intersecting in exactly one globally shared
    channel — the multi-agent sharpening of ``single_overlap``
    (paper Theorem 7 regime) on which available-set algorithms must
    still certify finite maximum TTR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "Instance",
    "random_subsets",
    "single_overlap",
    "symmetric",
    "coalition_bands",
    "whitespace",
    "nested",
    "available_overlap",
    "adversarial_single_common",
]


@dataclass
class Instance:
    """A rendezvous problem instance: one channel set per agent."""

    n: int
    sets: list[frozenset[int]]
    kind: str
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for s in self.sets:
            if not s:
                raise ValueError("instance contains an empty channel set")
            if min(s) < 0 or max(s) >= self.n:
                raise ValueError(f"set {sorted(s)} outside universe [0, {self.n})")

    @property
    def num_agents(self) -> int:
        """Number of agents (channel sets) in the instance."""
        return len(self.sets)

    def overlapping_pairs(self) -> list[tuple[int, int]]:
        """Index pairs of agents whose sets intersect."""
        return [
            (i, j)
            for i in range(len(self.sets))
            for j in range(i + 1, len(self.sets))
            if self.sets[i] & self.sets[j]
        ]


def random_subsets(
    n: int, k: int, num_agents: int, seed: int = 0
) -> Instance:
    """Each agent draws a uniform ``k``-subset of ``[n]``."""
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = random.Random(seed)
    sets = [frozenset(rng.sample(range(n), k)) for _ in range(num_agents)]
    return Instance(n, sets, "random_subsets", {"k": k, "seed": seed})


def single_overlap(n: int, k: int, l: int, seed: int = 0) -> Instance:
    """Two agents with ``|A| = k``, ``|B| = l`` and ``|A ∩ B| = 1``.

    The hard instance family of Theorem 7: asynchronous rendezvous takes
    ``Omega(k l)`` on such pairs.
    """
    if k + l - 1 > n:
        raise ValueError(f"need k + l - 1 <= n, got k={k}, l={l}, n={n}")
    rng = random.Random(seed)
    channels = rng.sample(range(n), k + l - 1)
    common = channels[0]
    a = frozenset(channels[:k])
    b = frozenset([common] + channels[k:])
    return Instance(n, [a, b], "single_overlap", {"k": k, "l": l, "seed": seed})


def symmetric(n: int, k: int, num_agents: int, seed: int = 0) -> Instance:
    """All agents share one uniform ``k``-subset (the symmetric case)."""
    rng = random.Random(seed)
    shared = frozenset(rng.sample(range(n), k))
    return Instance(n, [shared] * num_agents, "symmetric", {"k": k, "seed": seed})


def coalition_bands(
    n: int,
    band_width: int,
    agents_per_band: int,
    num_bands: int,
    overlap: int = 2,
    seed: int = 0,
) -> Instance:
    """Huge spectrum, small per-agent subsets inside overlapping bands.

    Band ``b`` occupies channels ``[b * (band_width - overlap),
    ... + band_width)``; consecutive bands share ``overlap`` channels so
    that cross-band discovery is possible.  Each agent picks a random
    subset of its band including at least one shared boundary channel.
    """
    if band_width <= overlap:
        raise ValueError("band_width must exceed overlap")
    stride = band_width - overlap
    if stride * (num_bands - 1) + band_width > n:
        raise ValueError("bands do not fit in the universe")
    rng = random.Random(seed)
    sets = []
    for band in range(num_bands):
        lo = band * stride
        band_channels = list(range(lo, lo + band_width))
        boundary = band_channels[:overlap] + band_channels[-overlap:]
        for _ in range(agents_per_band):
            size = rng.randint(2, max(2, band_width // 2))
            picked = {rng.choice(boundary)}
            picked.update(rng.sample(band_channels, size - 1))
            sets.append(frozenset(picked))
    return Instance(
        n,
        sets,
        "coalition_bands",
        {"band_width": band_width, "num_bands": num_bands, "seed": seed},
    )


def whitespace(
    n: int,
    num_agents: int,
    incumbent_load: float = 0.4,
    sensing_noise: float = 0.1,
    seed: int = 0,
) -> Instance:
    """TV-whitespace availability with local sensing asymmetry.

    A global incumbent occupancy pattern frees ``~(1 - incumbent_load)``
    of the channels; each agent additionally misses each free channel
    with probability ``sensing_noise`` (local fading), producing the
    asymmetric sets the paper's model is built for.  Every agent is
    guaranteed at least one channel (the globally clearest one).
    """
    if not 0 <= incumbent_load < 1:
        raise ValueError("incumbent_load must be in [0, 1)")
    rng = random.Random(seed)
    free = [c for c in range(n) if rng.random() >= incumbent_load]
    if not free:
        free = [rng.randrange(n)]
    anchor = free[0]
    sets = []
    for _ in range(num_agents):
        sensed = {c for c in free if rng.random() >= sensing_noise}
        sensed.add(anchor)
        sets.append(frozenset(sensed))
    return Instance(
        n,
        sets,
        "whitespace",
        {
            "incumbent_load": incumbent_load,
            "sensing_noise": sensing_noise,
            "free_channels": len(free),
            "seed": seed,
        },
    )


def available_overlap(
    n: int,
    k: int,
    num_agents: int,
    rho: float,
    seed: int = 0,
) -> Instance:
    """Size-``k`` sets sharing a common core of ``max(1, round(rho*k))``.

    The overlap-fraction axis from the available-channel-set literature:
    ``rho`` close to 1 approaches the symmetric case, ``rho`` close to 0
    degenerates toward single-common-channel adversaries.  Every agent's
    set is the common core plus ``k - g`` private channels drawn (with
    possible cross-agent collisions) from the rest of the universe, so
    every pairwise intersection *contains* the core — rendezvous is
    always possible and ``verify_guarantee`` must find a finite maximum
    TTR.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"overlap fraction must be in [0, 1], got {rho}")
    core_size = min(k, max(1, round(rho * k)))
    rng = random.Random(seed)
    core = rng.sample(range(n), core_size)
    # k <= n and |rest| = n - core_size, so private draws always fit.
    rest = [c for c in range(n) if c not in set(core)]
    sets = [
        frozenset(core + rng.sample(rest, k - core_size))
        for _ in range(num_agents)
    ]
    return Instance(
        n,
        sets,
        "available_overlap",
        {"k": k, "rho": rho, "core_size": core_size, "seed": seed},
    )


def adversarial_single_common(
    n: int, k: int, num_agents: int, seed: int = 0
) -> Instance:
    """Pairwise intersections of exactly one (globally shared) channel.

    One channel is common to everyone; each agent's remaining ``k - 1``
    channels are private and pairwise disjoint across agents, so *every*
    pair meets only on the shared channel — the multi-agent extension of
    the Theorem 7 hard instances (``Omega(k l)`` asynchronous lower
    bound), and the adversarial floor for available-channel-set
    algorithms.  Requires ``num_agents * (k - 1) + 1 <= n``.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got k={k}")
    needed = num_agents * (k - 1) + 1
    if needed > n:
        raise ValueError(
            f"need num_agents*(k-1)+1 <= n, got {needed} > {n}"
        )
    rng = random.Random(seed)
    channels = rng.sample(range(n), needed)
    common = channels[0]
    private = channels[1:]
    sets = [
        frozenset([common] + private[i * (k - 1) : (i + 1) * (k - 1)])
        for i in range(num_agents)
    ]
    return Instance(
        n, sets, "adversarial_single_common", {"k": k, "seed": seed}
    )


def nested(n: int, sizes: list[int], seed: int = 0) -> Instance:
    """A chain of nested channel sets ``S_1 ⊂ S_2 ⊂ ...``."""
    if sorted(sizes) != sizes:
        raise ValueError("sizes must be nondecreasing for a nested chain")
    if sizes and sizes[-1] > n:
        raise ValueError("largest set exceeds the universe")
    rng = random.Random(seed)
    order = rng.sample(range(n), sizes[-1]) if sizes else []
    sets = [frozenset(order[:size]) for size in sizes]
    return Instance(n, sets, "nested", {"sizes": sizes, "seed": seed})
