"""Summary metrics over simulation results and TTR samples.

Two metric families live here.  The pair family (:class:`TTRStats`,
:func:`summarize_ttrs`, :func:`summarize_profile`) summarizes
time-to-rendezvous samples from the sweep engines.  The population
family works over whole-network discovery runs: a
:class:`DiscoveryProfile` — first-meet times with agent-pair weights,
produced by both the vectorized core
(:meth:`repro.sim.netcore.NetResult.discovery_profile`) and the
pairwise reference
(:meth:`repro.sim.network.SimulationResult.discovery_profile`) — feeds
:func:`summarize_discovery` (time-to-full-neighbor-discovery plus
quantile milestones) and :func:`discovery_throughput` (the cumulative
pairs-met-over-time curve), while :func:`channel_contention` ranks
channels by the co-location counters the vectorized core accumulates.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TTRStats",
    "summarize_ttrs",
    "summarize_profile",
    "DiscoveryProfile",
    "DiscoveryStats",
    "summarize_discovery",
    "discovery_throughput",
    "channel_contention",
]


@dataclass(frozen=True)
class TTRStats:
    """Distribution summary of time-to-rendezvous samples."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: int
    minimum: int

    def as_row(self) -> dict[str, float | int]:
        """The stats as one flat dict row, ready for a results table."""
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
            "min": self.minimum,
        }


def _percentile(ordered: list[int], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]) of a sorted list."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lo = math.floor(position)
    hi = math.ceil(position)
    frac = position - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize_profile(
    profile: Mapping[int, int | None],
) -> tuple[TTRStats | None, list[int]]:
    """Summarize a shift -> TTR profile from the batched sweep engine.

    Returns ``(stats over the shifts that rendezvoused, shifts that
    missed)``; stats are ``None`` when every shift missed.
    """
    misses = sorted(s for s, ttr in profile.items() if ttr is None)
    hits = [ttr for ttr in profile.values() if ttr is not None]
    return (summarize_ttrs(hits) if hits else None), misses


@dataclass(frozen=True)
class DiscoveryProfile:
    """First-meet event times with agent-pair weights, sorted by time.

    ``times[k]`` is the global slot of the ``k``-th first-meet event and
    ``weights[k]`` how many agent pairs met at it (the pairwise engine
    always weights 1; the vectorized core weights by cohort sizes).
    ``overlapping_pairs`` is the population's total count of agent pairs
    sharing a channel — the denominator every coverage metric divides
    by.
    """

    times: np.ndarray
    weights: np.ndarray
    overlapping_pairs: int

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.int64)
        weights = np.asarray(self.weights, dtype=np.int64)
        if times.shape != weights.shape:
            raise ValueError("times and weights must have equal length")
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("times must be sorted nondecreasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "weights", weights)

    @property
    def met_pairs(self) -> int:
        """Total agent pairs that met (the sum of event weights)."""
        return int(self.weights.sum())


@dataclass(frozen=True)
class DiscoveryStats:
    """Population discovery summary derived from a profile.

    ``milestones`` maps a coverage fraction to the first global slot by
    which at least that fraction of the overlapping pairs had met
    (``None`` when the run never reached it); ``discovery_time`` is the
    full-coverage slot — the paper-scale time-to-full-neighbor-
    discovery metric — or ``None`` when some overlapping pair never
    met.
    """

    overlapping_pairs: int
    met_pairs: int
    discovery_time: int | None
    milestones: dict[float, int | None] = field(default_factory=dict)

    def as_row(self) -> dict[str, float | int | None]:
        """The stats as one flat dict row, ready for a results table."""
        row: dict[str, float | int | None] = {
            "overlapping_pairs": self.overlapping_pairs,
            "met_pairs": self.met_pairs,
            "discovery_time": self.discovery_time,
        }
        for quantile, slot in self.milestones.items():
            row[f"t{quantile:g}"] = slot
        return row


def summarize_discovery(
    profile: DiscoveryProfile,
    quantiles: Sequence[float] = (0.5, 0.9, 0.99, 1.0),
) -> DiscoveryStats:
    """Summarize a discovery profile into coverage milestones.

    A quantile ``q`` is reached at the first slot where the cumulative
    met-pair count meets ``ceil(q * overlapping_pairs)``; with zero
    overlapping pairs every quantile is trivially reached at slot 0.
    """
    cumulative = np.cumsum(profile.weights)
    met = int(cumulative[-1]) if cumulative.size else 0
    total = profile.overlapping_pairs
    milestones: dict[float, int | None] = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        needed = math.ceil(q * total)
        if needed == 0:
            milestones[q] = 0
        elif met < needed:
            milestones[q] = None
        else:
            index = int(np.searchsorted(cumulative, needed))
            milestones[q] = int(profile.times[index])
    if total == 0:
        discovery = 0
    elif met < total:
        discovery = None
    else:
        discovery = int(profile.times[int(np.searchsorted(cumulative, total))])
    return DiscoveryStats(
        overlapping_pairs=total,
        met_pairs=met,
        discovery_time=discovery,
        milestones=milestones,
    )


def discovery_throughput(
    profile: DiscoveryProfile, num_points: int | None = None
) -> list[tuple[int, int]]:
    """Cumulative discovery curve: ``(slot, pairs met by that slot)``.

    One breakpoint per distinct event time; ``num_points`` downsamples
    the curve evenly (keeping the final point) for plotting or JSON
    output.
    """
    if profile.times.size == 0:
        return []
    cumulative = np.cumsum(profile.weights)
    last_of_time = np.nonzero(
        np.r_[profile.times[1:] != profile.times[:-1], True]
    )[0]
    points = [
        (int(profile.times[k]), int(cumulative[k])) for k in last_of_time
    ]
    if num_points is not None and 0 < num_points < len(points):
        picks = np.unique(
            np.linspace(0, len(points) - 1, num_points).round().astype(int)
        )
        points = [points[int(p)] for p in picks]
    return points


def channel_contention(result, top: int | None = None) -> list[dict[str, int]]:
    """Rank channels by co-location pressure from a vectorized run.

    ``result`` is a :class:`~repro.sim.netcore.NetResult` (anything
    exposing ``contended_slots`` and ``pair_colocations`` arrays).
    Returns one row per channel that ever held two or more agents in a
    slot — ``{"channel", "contended_slots", "colocated_pairs"}`` —
    sorted by co-located pairs descending, trimmed to ``top`` rows when
    given.  Counts cover ``[0, slots_simulated)``.
    """
    rows = [
        {
            "channel": int(c),
            "contended_slots": int(result.contended_slots[c]),
            "colocated_pairs": int(result.pair_colocations[c]),
        }
        for c in np.nonzero(result.contended_slots)[0]
    ]
    rows.sort(key=lambda r: (-r["colocated_pairs"], r["channel"]))
    return rows[:top] if top is not None else rows


def summarize_ttrs(samples: Iterable[int]) -> TTRStats:
    """Summarize a collection of TTR samples."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("no TTR samples to summarize")
    return TTRStats(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        maximum=ordered[-1],
        minimum=ordered[0],
    )
