"""Summary metrics over simulation results and TTR samples."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = ["TTRStats", "summarize_ttrs", "summarize_profile"]


@dataclass(frozen=True)
class TTRStats:
    """Distribution summary of time-to-rendezvous samples."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: int
    minimum: int

    def as_row(self) -> dict[str, float | int]:
        """The stats as one flat dict row, ready for a results table."""
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
            "min": self.minimum,
        }


def _percentile(ordered: list[int], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]) of a sorted list."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lo = math.floor(position)
    hi = math.ceil(position)
    frac = position - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize_profile(
    profile: Mapping[int, int | None],
) -> tuple[TTRStats | None, list[int]]:
    """Summarize a shift -> TTR profile from the batched sweep engine.

    Returns ``(stats over the shifts that rendezvoused, shifts that
    missed)``; stats are ``None`` when every shift missed.
    """
    misses = sorted(s for s, ttr in profile.items() if ttr is None)
    hits = [ttr for ttr in profile.values() if ttr is not None]
    return (summarize_ttrs(hits) if hits else None), misses


def summarize_ttrs(samples: Iterable[int]) -> TTRStats:
    """Summarize a collection of TTR samples."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("no TTR samples to summarize")
    return TTRStats(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        maximum=ordered[-1],
        minimum=ordered[0],
    )
