"""Channel-time trace rendering: see what the radios actually did.

Renders a slot-by-slot diagram of a set of agents — one row per channel,
one column per slot, agents as letters, ``*`` marking rendezvous slots —
the kind of picture used to explain channel-hopping papers on a
whiteboard.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.agent import ASLEEP, Agent

__all__ = ["render_trace"]

_AGENT_SYMBOLS = "abcdefghijklmnopqrstuvwxyz"


def render_trace(
    agents: Sequence[Agent],
    start: int,
    stop: int,
    channels: Sequence[int] | None = None,
) -> str:
    """ASCII channel-time diagram of ``agents`` over ``[start, stop)``.

    Cells show the agent's symbol (a, b, c ... by position in the list);
    when two or more agents share a channel in a slot the cell shows
    ``*`` — a rendezvous.  Rows cover ``channels`` (default: every
    channel any agent can use), top row = highest channel.
    """
    if stop <= start:
        raise ValueError(f"empty window {start}..{stop}")
    if len(agents) > len(_AGENT_SYMBOLS):
        raise ValueError("too many agents to render")
    if channels is None:
        channels = sorted({c for a in agents for c in a.channels})
    width = stop - start
    occupancy: dict[int, list[str]] = {c: [" "] * width for c in channels}
    for index, agent in enumerate(agents):
        symbol = _AGENT_SYMBOLS[index]
        for t in range(start, stop):
            channel = agent.channel_at_global(t)
            if channel == ASLEEP or channel not in occupancy:
                continue
            cell = occupancy[channel][t - start]
            occupancy[channel][t - start] = symbol if cell == " " else "*"
    label_width = max(len(str(c)) for c in channels)
    lines = [
        f"{str(c).rjust(label_width)} |" + "".join(occupancy[c])
        for c in sorted(channels, reverse=True)
    ]
    legend = ", ".join(
        f"{_AGENT_SYMBOLS[i]}={agent.name}" for i, agent in enumerate(agents)
    )
    axis = " " * label_width + " +" + "-" * width
    footer = f"slots {start}..{stop - 1}; {legend}; * = rendezvous"
    return "\n".join(lines + [axis, footer])
