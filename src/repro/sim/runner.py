"""Experiment runner: build schedules, sweep shifts, aggregate TTRs.

This is the measurement harness behind every benchmark table: given an
:class:`~repro.sim.workloads.Instance` and an algorithm name, it builds
one schedule per agent, measures pairwise time-to-rendezvous over a
deterministic set of relative shifts, and aggregates.

Shift policy: the asynchronous guarantee quantifies over *all* relative
wake-up offsets.  Exhaustive sweeps are only feasible for small periods,
so `shift_plan` mixes structured shifts (0..S dense prefix) with seeded
pseudo-random probes across the joint period — the same policy for every
algorithm, so comparisons are fair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import repro
from repro.core.schedule import Schedule
from repro.core.verification import ttr_for_shift
from repro.sim.metrics import TTRStats, summarize_ttrs
from repro.sim.workloads import Instance

__all__ = ["MeasuredPair", "shift_plan", "measure_pairwise", "measure_instance"]


@dataclass(frozen=True)
class MeasuredPair:
    """Worst-case and sample TTRs for one agent pair under one algorithm."""

    algorithm: str
    pair: tuple[int, int]
    worst_ttr: int
    stats: TTRStats


def shift_plan(
    a: Schedule,
    b: Schedule,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
) -> list[int]:
    """Deterministic shift schedule: dense prefix + seeded probes."""
    rng = random.Random(seed)
    joint = max(a.period, b.period)
    shifts = list(range(min(dense, joint)))
    shifts += [rng.randrange(joint) for _ in range(probes)]
    return shifts


def _build(channels: frozenset[int], n: int, algorithm: str, seed: int) -> Schedule:
    if algorithm == "random":
        from repro.baselines import build_baseline

        return build_baseline(channels, n, "random", seed=seed)
    return repro.build_schedule(channels, n, algorithm=algorithm)


def measure_pairwise(
    instance: Instance,
    algorithm: str,
    pair: tuple[int, int],
    horizon: int,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
) -> MeasuredPair:
    """Measure TTR for one overlapping pair over the shift plan.

    Raises ``AssertionError`` if any shift misses within ``horizon`` —
    deterministic algorithms must never miss when the horizon exceeds
    their guarantee; the randomized baseline gets the same horizon and is
    expected to make it with high probability.
    """
    i, j = pair
    a = _build(instance.sets[i], instance.n, algorithm, seed=seed * 1000 + i)
    b = _build(instance.sets[j], instance.n, algorithm, seed=seed * 1000 + j)
    samples = []
    for shift in shift_plan(a, b, dense=dense, probes=probes, seed=seed):
        ttr = ttr_for_shift(a, b, shift, horizon)
        if ttr is None:
            raise AssertionError(
                f"{algorithm} missed rendezvous within {horizon} slots for "
                f"pair {pair} at shift {shift} "
                f"(sets {sorted(instance.sets[i])} / {sorted(instance.sets[j])})"
            )
        samples.append(ttr)
    return MeasuredPair(algorithm, pair, max(samples), summarize_ttrs(samples))


def measure_instance(
    instance: Instance,
    algorithm: str,
    horizon: int,
    max_pairs: int | None = None,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
) -> list[MeasuredPair]:
    """Measure all (or the first ``max_pairs``) overlapping pairs."""
    pairs = instance.overlapping_pairs()
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    return [
        measure_pairwise(
            instance, algorithm, pair, horizon, dense=dense, probes=probes, seed=seed
        )
        for pair in pairs
    ]
