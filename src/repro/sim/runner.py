"""Experiment runner: build schedules, sweep shifts, aggregate TTRs.

This is the measurement harness behind every benchmark table: given an
:class:`~repro.sim.workloads.Instance` and an algorithm name, it builds
one schedule per agent, measures pairwise time-to-rendezvous over a
deterministic set of relative shifts, and aggregates.

The heavy lifting happens in :class:`SweepRunner`:

* schedules are cached per ``(channels, n, algorithm, seed)`` — in an
  instance with many agents the same channel set is never rebuilt for
  each pair it appears in;
* every pair's shift sweep goes through the batched engine
  (:func:`repro.core.batch.ttr_sweep`), one vectorized pass instead of a
  Python loop over shifts;
* instances with many pairs fan out across a
  ``concurrent.futures.ProcessPoolExecutor`` (worker count configurable,
  default ``os.cpu_count()``); small jobs stay serial, where the
  schedule cache and warm numpy buffers beat process startup;
* with a :class:`~repro.core.store.ScheduleStore` attached, period
  tables are materialized **once** (the parent prewarms every distinct
  key before fanning out) and workers attach read-only memmap views
  instead of rebuilding tables per process — the enabling layer for
  dense-universe sweeps, where table construction dominates;
* with a :class:`~repro.core.results.ResultStore` attached, whole
  *measurements* persist: a repeat query is answered from disk before
  any schedule is built, which is the serving layer behind
  ``python -m repro serve``;
* with a ``checkpoint_dir``, streaming sweeps snapshot their progress
  and resume after an interruption, bit-identically.

Shift policy: the asynchronous guarantee quantifies over *all* relative
wake-up offsets — both wake orders.  A nonnegative shift only acts
through its phase class mod ``period_A`` and a negative one mod
``period_B`` (see
:func:`repro.core.verification.exhaustive_shift_range`), so
``shift_plan`` straddles zero: a signed dense prefix
(``0, -1, 1, -2, 2, ...``) plus seeded pseudo-random probes drawn
uniformly from the two-sided class range, each side clamped to
``joint_cap``.  The same policy applies to every algorithm, so
comparisons are fair.

The module-level ``shift_plan`` / ``measure_pairwise`` /
``measure_instance`` functions are thin wrappers over a serial
``SweepRunner`` and keep the original API.
"""

from __future__ import annotations

import os
import random
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.core import telemetry
from repro.core.backend import ArrayBackend, resolve_backend
from repro.core.batch import ENGINES, ttr_sweep, ttr_sweep_pairs
from repro.core.environment import Environment, environment_digest, parse_environment
from repro.core.results import ResultStore, pair_query, result_digest
from repro.core.schedule import Schedule
from repro.core.store import ScheduleStore, build_plain, store_key
from repro.core.stream import SweepCheckpoint
from repro.sim.metrics import TTRStats, summarize_ttrs
from repro.sim.workloads import Instance

__all__ = [
    "MeasuredPair",
    "SweepRunner",
    "shift_plan",
    "measure_pairwise",
    "measure_instance",
]

# Probes never sample beyond this many shifts of the joint period: the
# lcm of two large coprime periods can dwarf any meaningful sweep.
DEFAULT_JOINT_CAP = 1 << 20

# Below this many pairs a process pool costs more than it saves.
MIN_PARALLEL_PAIRS = 8


@dataclass(frozen=True)
class MeasuredPair:
    """Worst-case and sample TTRs for one agent pair under one algorithm.

    ``missed`` counts the shifts in the plan that never rendezvoused
    within the horizon.  On a clean run it is always zero (a miss
    raises instead); under a fault environment misses are expected —
    that loss *is* the measurement — so ``worst_ttr`` and ``stats``
    summarize the shifts that still met (``worst_ttr`` is ``-1`` when
    none did).
    """

    algorithm: str
    pair: tuple[int, int]
    worst_ttr: int
    stats: TTRStats
    missed: int = 0


def shift_plan(
    a: Schedule,
    b: Schedule,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
    joint_cap: int = DEFAULT_JOINT_CAP,
) -> list[int]:
    """Deterministic shift schedule: signed dense prefix + seeded probes.

    Covers both wake orders: the distinct shift classes are
    ``[-period_B + 1, period_A)`` (nonnegative shifts act mod
    ``period_A``, negative ones mod ``period_B``), so the dense prefix
    alternates ``0, -1, 1, -2, 2, ...`` around zero and probes are
    drawn uniformly from the full two-sided range, each side clamped to
    ``joint_cap``.
    """
    rng = random.Random(seed)
    lo = -min(b.period - 1, joint_cap)
    hi = min(a.period, joint_cap)
    shifts = []
    for i in range(dense):
        magnitude = (i + 1) // 2
        shift = magnitude if i % 2 == 0 else -magnitude
        if lo <= shift < hi:
            shifts.append(shift)
    shifts += [rng.randrange(lo, hi) for _ in range(probes)]
    return shifts


class SweepRunner:
    """Batched, schedule-caching, optionally parallel sweep engine.

    **Caching contract.** One runner owns one schedule cache, keyed by
    :func:`~repro.core.store.store_key` — ``(channels, n, algorithm,
    seed)`` with the seed collapsed to ``-1`` for every deterministic
    algorithm — so in an instance where many agents share a channel
    set, each distinct set is built exactly once per runner, and
    reusing one runner across calls amortizes schedule construction
    over a whole table.  ``cache_hits``/``cache_misses`` expose the
    effect.  Entries are never evicted: a runner's lifetime is expected
    to be one table, not one process.

    **Store contract.** With ``store=`` (a
    :class:`~repro.core.store.ScheduleStore` or a directory path), the
    local cache's miss path goes through the store: period tables are
    materialized into the store exactly once per distinct key and every
    later lookup — same runner, another runner, another *process* —
    attaches a read-only memmap view instead of rebuilding.  Parallel
    ``measure_instance`` calls prewarm every key in the parent before
    fanning out, so worker processes never build at all; the store's
    ``builds``/``attaches`` counters certify it.

    **Engine contract.** ``engine`` / ``tile_bytes`` pass straight
    through to :func:`repro.core.batch.ttr_sweep` for every pair the
    runner measures (workers included): ``"auto"`` dispatches per pair
    on period size — batched tables up to the limit, the streaming
    tiled engine beyond it — so huge-period baselines (Jump-Stay at
    ``n >= 128``) sweep transparently; forcing ``"stream"`` or
    ``"batched"`` pins the path, and every engine is bit-identical.

    **Backend & pair-major contract.** ``backend`` selects the array
    library executing the streaming tile ops (a
    :func:`repro.core.backend.resolve_backend` spec, threaded through
    every sweep including pool workers, which receive the spec — or a
    registered instance's name — in their payload).  ``pair_major``
    controls pair-major stacking on the *serial* path: ``"auto"`` (the
    default) batches every uncached pair of a multi-pair job into one
    :func:`repro.core.batch.ttr_sweep_pairs` tile pass whenever the
    streaming engine is reachable and no checkpoint directory is
    attached; ``True`` requires that configuration (raising otherwise);
    ``False`` keeps the per-pair loop.  Stacked results are
    bit-identical to per-pair ones, cache consultation and write-
    through per pair included; the process-pool path is per-pair
    regardless (each worker owns disjoint pairs already).

    **Process-pool contract.** ``measure_instance`` stays serial below
    ``MIN_PARALLEL_PAIRS`` pairs or when ``workers <= 1`` — there the
    shared cache and warm numpy buffers beat process startup.  Larger
    jobs fan pairs out over a fresh ``ProcessPoolExecutor`` per call;
    each worker process keeps its *own* ``SweepRunner`` (module-global,
    reused across the tasks that land on it), so parent-side cache
    statistics only describe serial runs.  The fan-out ships store
    handles (directory paths) and picklable inputs (``Instance`` +
    algorithm name), never live ``Schedule`` objects.  Results return
    in pair order regardless of which path executed.

    **Result-cache contract.** With ``results=`` (a
    :class:`~repro.core.results.ResultStore` or a directory path),
    ``measure_pair`` consults the persistent result cache *before
    building any schedule* — a warm query costs one shard read, not a
    sweep — and writes every computed measurement through after.  The
    cache key is engine-invariant (see
    :func:`repro.core.results.pair_query`), so results computed under
    any engine/tile/lane configuration answer queries made under any
    other; parallel ``measure_instance`` workers consult and fill the
    same on-disk cache.

    **Checkpoint contract.** With ``checkpoint_dir=``, every
    streaming-engine sweep snapshots its progress into
    ``<query digest>.ckpt.json`` under that directory (see
    :class:`~repro.core.stream.SweepCheckpoint`): an interrupted
    measurement resumes from the snapshot on rerun and the completed
    sweep deletes it.  Resumed profiles are bit-identical to
    uninterrupted ones.  Checkpointing rides the streaming engine, so
    ``engine="auto"`` dispatches checkpointed sweeps to it; forcing
    ``"batched"``/``"scalar"`` alongside a checkpoint directory raises.

    **Worker-budget contract.** ``workers`` is *one* budget spent on
    two axes: across pairs (the process pool) or within a pair (the
    streaming engine's intra-pair thread lanes,
    :func:`repro.core.stream.ttr_sweep_stream`).
    :meth:`worker_budget` resolves it per job: a job big enough to fan
    out gives every process to the pair fan-out and keeps each pair's
    scan single-lane (cores are already saturated; nested parallelism
    would only thrash), while a small job — few pairs, or one huge-
    period pair — stays in one process and hands the whole budget to
    the intra-pair scan.  ``stream_workers`` pins the per-pair lane
    count on both paths instead (``None`` keeps the automatic split).
    Every split is bit-identical; see ``docs/TUNING.md``.

    **Environment contract.** With ``environment=`` (an
    :class:`~repro.core.environment.Environment`, or a spec string for
    :func:`~repro.core.environment.parse_environment`), every sweep the
    runner performs — serial or fanned out — runs under that fault
    model: the mask passes straight through to
    :func:`repro.core.batch.ttr_sweep`, the environment's canonical
    spec joins the result-cache query (faulted and clean measurements
    can never answer each other), and its digest joins the worker
    runner key and any checkpoint digest.  Misses stop raising and are
    counted in :attr:`MeasuredPair.missed` instead — under primary-user
    churn a lost guarantee is the observation, not a bug.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: ScheduleStore | str | os.PathLike | None = None,
        engine: str = "auto",
        tile_bytes: int | None = None,
        stream_workers: int | None = None,
        results: ResultStore | str | os.PathLike | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        environment: Environment | str | None = None,
        backend: ArrayBackend | str | None = "auto",
        pair_major: bool | str = "auto",
    ):
        self.workers = os.cpu_count() or 1 if workers is None else max(1, workers)
        if store is not None and not isinstance(store, ScheduleStore):
            store = ScheduleStore(store)
        self.store = store
        if results is not None and not isinstance(results, ResultStore):
            results = ResultStore(results)
        self.results = results
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self.tile_bytes = tile_bytes
        if stream_workers is not None and stream_workers < 1:
            raise ValueError(
                f"stream_workers must be positive, got {stream_workers}"
            )
        self.stream_workers = stream_workers
        if isinstance(environment, str):
            environment = parse_environment(environment)
        self.environment = environment
        # Resolve eagerly so a bad spec fails here, not mid-sweep; the
        # original spec is kept for picklable worker payloads.
        resolved = resolve_backend(backend)
        if resolved.name != "numpy" and engine not in ("auto", "stream"):
            raise ValueError(
                f"backend {resolved.name!r} needs the streaming engine, "
                f"got engine={engine!r}"
            )
        self.backend = backend
        if pair_major not in (True, False, "auto"):
            raise ValueError(
                f"pair_major must be True, False, or 'auto', got {pair_major!r}"
            )
        if pair_major is True:
            if engine not in ("auto", "stream"):
                raise ValueError(
                    "pair-major stacking needs the streaming engine, "
                    f"got engine={engine!r}"
                )
            if checkpoint_dir is not None:
                raise ValueError(
                    "pair-major stacking does not support checkpointing; "
                    "use pair_major=False with checkpoint_dir"
                )
        self.pair_major = pair_major
        self._schedules: dict[
            tuple[frozenset[int], int, str, int], Schedule
        ] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def schedule_for(
        self, channels: frozenset[int], n: int, algorithm: str, seed: int
    ) -> Schedule:
        """Build (or fetch) one agent's schedule.

        Deterministic algorithms ignore the seed, so it only
        discriminates cache entries for the randomized baseline.  The
        miss path goes through the store when one is attached.
        """
        key = store_key(channels, n, algorithm, seed)
        cached = self._schedules.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if self.store is not None:
            schedule = self.store.get(channels, n, algorithm, seed)
        else:
            schedule = build_plain(channels, n, algorithm, seed)
        self._schedules[key] = schedule
        return schedule

    def prewarm(
        self,
        instance: Instance,
        algorithm: str,
        pairs: list[tuple[int, int]] | None = None,
        seed: int = 0,
        agents: list[int] | None = None,
    ) -> int:
        """Materialize every schedule a sweep over ``pairs`` will need.

        Touches each agent once with the same per-agent seeds
        ``measure_pair`` uses, so each distinct cache key is built
        exactly once (into the store, when one is attached) before any
        fan-out.  ``agents`` overrides the pair-derived agent selection
        (e.g. warm everything regardless of overlaps).  Returns the
        number of distinct keys touched.
        """
        if agents is None:
            if pairs is None:
                pairs = instance.overlapping_pairs()
            agents = sorted({index for pair in pairs for index in pair})
        keys = set()
        for i in agents:
            agent_seed = seed * 1000 + i
            keys.add(store_key(instance.sets[i], instance.n, algorithm, agent_seed))
            self.schedule_for(instance.sets[i], instance.n, algorithm, agent_seed)
        if self.store is not None:
            resident = sum(
                self.store.contains(channels, n, algo, agent_seed)
                for channels, n, algo, agent_seed in keys
            )
            if resident < len(keys):
                # The sweep's working set exceeds the store cap (or the
                # tables bypassed it): workers will rebuild what fell
                # out, defeating the built-once contract.
                warnings.warn(
                    f"schedule store holds only {resident}/{len(keys)} of "
                    "this sweep's tables (memory cap or period limit); "
                    "workers will rebuild the rest per process",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return len(keys)

    def measure_pair(
        self,
        instance: Instance,
        algorithm: str,
        pair: tuple[int, int],
        horizon: int,
        dense: int = 64,
        probes: int = 64,
        seed: int = 0,
        stream_workers: int | None = None,
    ) -> MeasuredPair:
        """Measure TTR for one overlapping pair over the shift plan.

        Raises ``AssertionError`` if any shift misses within ``horizon``
        — deterministic algorithms must never miss when the horizon
        exceeds their guarantee; the randomized baseline gets the same
        horizon and is expected to make it with high probability.
        Under an attached fault environment misses are expected, so
        they are tallied in :attr:`MeasuredPair.missed` instead of
        raising and the aggregates cover only the shifts that met.
        ``stream_workers`` pins the intra-pair streaming lanes for this
        one measurement; ``None`` takes the runner's one-pair budget
        (see :meth:`worker_budget`).

        With a result store attached, a cached measurement is returned
        *before any schedule is built* (the warm-query fast path) and a
        computed one is written through; with a checkpoint directory,
        the sweep itself is interrupt/resumable.
        """
        with telemetry.span("runner.measure_pair"):
            i, j = pair
            query = None
            if self.results is not None or self.checkpoint_dir is not None:
                query = self.pair_query_for(
                    instance, algorithm, pair, horizon, dense, probes, seed
                )
            if self.results is not None:
                cached = self.results.get(query)
                if cached is not None:
                    return _measured_from_record(algorithm, pair, cached)
            a = self.schedule_for(
                instance.sets[i], instance.n, algorithm, seed * 1000 + i
            )
            b = self.schedule_for(
                instance.sets[j], instance.n, algorithm, seed * 1000 + j
            )
            plan = shift_plan(a, b, dense=dense, probes=probes, seed=seed)
            if not plan:
                raise ValueError("empty shift plan: need dense > 0 or probes > 0")
            if stream_workers is None:
                stream_workers = self.worker_budget(1)[1]
            checkpoint = None
            if self.checkpoint_dir is not None:
                checkpoint = SweepCheckpoint(
                    self.checkpoint_dir / f"{result_digest(query)}.ckpt.json"
                )
            profile = ttr_sweep(
                a, b, plan, horizon, engine=self.engine,
                tile_bytes=self.tile_bytes, stream_workers=stream_workers,
                checkpoint=checkpoint, environment=self.environment,
                backend=self.backend,
            )
            measured = self._finalize_pair(
                instance, algorithm, pair, horizon, plan, profile, query
            )
            if checkpoint is not None:
                checkpoint.clear()
            return measured

    def _finalize_pair(
        self,
        instance: Instance,
        algorithm: str,
        pair: tuple[int, int],
        horizon: int,
        plan: list[int],
        profile: dict[int, int | None],
        query: dict | None,
    ) -> MeasuredPair:
        """Aggregate one pair's profile and write it through the cache.

        Shared tail of :meth:`measure_pair` and the pair-major stacked
        path: tally misses (raising on a clean-run miss, counting them
        under a fault environment), summarize the samples, and persist
        the measurement when a result store is attached.
        """
        i, j = pair
        missed = 0
        samples = []
        for shift in plan:
            ttr = profile[shift]
            if ttr is None:
                if self.environment is None:
                    raise AssertionError(
                        f"{algorithm} missed rendezvous within {horizon} "
                        f"slots for pair {pair} at shift {shift} "
                        f"(sets {sorted(instance.sets[i])} / "
                        f"{sorted(instance.sets[j])})"
                    )
                missed += 1
            else:
                samples.append(ttr)
        if samples:
            worst, stats = max(samples), summarize_ttrs(samples)
        else:
            # Every shift lost the guarantee: sentinel aggregates, the
            # miss count carries the whole story.
            worst, stats = -1, TTRStats(0, 0.0, 0.0, 0.0, -1, -1)
        measured = MeasuredPair(algorithm, pair, worst, stats, missed)
        if self.results is not None:
            self.results.put(query, _measured_record(measured))
        return measured

    def pair_query_for(
        self,
        instance: Instance,
        algorithm: str,
        pair: tuple[int, int],
        horizon: int,
        dense: int = 64,
        probes: int = 64,
        seed: int = 0,
    ) -> dict:
        """Canonical result-cache query for one ``measure_pair`` call.

        The randomized baseline additionally pins the derived per-agent
        tape seeds — two pairs over the same channel sets but different
        agent indices draw different tapes and must not share a cache
        entry.  The runner's environment spec joins the query when one
        is attached (clean queries are unchanged).
        """
        i, j = pair
        query = pair_query(
            algorithm, instance.n, instance.sets[i], instance.sets[j],
            horizon, dense, probes, seed, environment=self.environment,
        )
        if algorithm == "random":
            query["agent_seeds"] = [seed * 1000 + i, seed * 1000 + j]
        return query

    def effective_workers(self, num_pairs: int) -> int:
        """Process count a job of ``num_pairs`` pairs will actually use."""
        if self.workers > 1 and num_pairs >= MIN_PARALLEL_PAIRS:
            return self.workers
        return 1

    def worker_budget(self, num_pairs: int) -> tuple[int, int]:
        """Split the worker budget: ``(pair_processes, stream_lanes)``.

        One budget, two axes.  Jobs that fan out across pairs
        (``effective_workers > 1``) give every process to the pair pool
        and keep each pair's streaming scan at one lane — the cores are
        already saturated, and nested intra-pair threads would only
        contend.  Jobs that stay serial (fewer than
        ``MIN_PARALLEL_PAIRS`` pairs) hand the entire budget to the
        intra-pair scan, so a single huge-period pair still uses every
        core.  A pinned ``stream_workers`` overrides the per-pair lane
        count on both paths.
        """
        pool = self.effective_workers(num_pairs)
        if self.stream_workers is not None:
            return pool, self.stream_workers
        return pool, 1 if pool > 1 else self.workers

    def measure_instance(
        self,
        instance: Instance,
        algorithm: str,
        horizon: int,
        max_pairs: int | None = None,
        dense: int = 64,
        probes: int = 64,
        seed: int = 0,
    ) -> list[MeasuredPair]:
        """Measure all (or the first ``max_pairs``) overlapping pairs.

        Fans out across processes when the job is big enough; results
        are returned in pair order either way.
        """
        pairs = instance.overlapping_pairs()
        if max_pairs is not None:
            pairs = pairs[:max_pairs]
        pool_workers, stream_lanes = self.worker_budget(len(pairs))
        if pool_workers > 1:
            store_handle = None
            if self.store is not None:
                # Build each distinct period table exactly once, here in
                # the parent; workers then only ever attach.  The handle
                # carries the memory cap so worker-side stores honor it.
                self.prewarm(instance, algorithm, pairs, seed=seed)
                store_handle = (
                    str(self.store.store_dir),
                    self.store.memory_cap,
                    tuple(str(root) for root in self.store.read_roots),
                )
            results_handle = None
            if self.results is not None:
                results_handle = (
                    str(self.results.store_dir), self.results.memory_cap
                )
            checkpoint_handle = (
                None if self.checkpoint_dir is None else str(self.checkpoint_dir)
            )
            backend_spec = (
                self.backend.name
                if isinstance(self.backend, ArrayBackend)
                else self.backend
            )
            payloads = [
                (
                    instance, algorithm, pair, horizon, dense, probes, seed,
                    store_handle, self.engine, self.tile_bytes, stream_lanes,
                    results_handle, checkpoint_handle, self.environment,
                    backend_spec, telemetry.enabled(),
                )
                for pair in pairs
            ]
            chunk = max(1, len(payloads) // (self.workers * 4))
            with telemetry.span("runner.pool_fanout"):
                telemetry.count("runner.pool_pairs", len(pairs))
                telemetry.gauge("runner.pool_processes", pool_workers)
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    outcomes = list(
                        pool.map(_measure_pair_task, payloads, chunksize=chunk)
                    )
            # Worker processes time their tasks on their own registries
            # and ship snapshots back alongside the results; folding
            # them in here makes one parent snapshot cover the whole
            # fanned-out sweep.
            for _, snap in outcomes:
                telemetry.merge(snap)
            return [measured for measured, _ in outcomes]
        with telemetry.span("runner.serial"):
            telemetry.count("runner.serial_pairs", len(pairs))
            if self._use_pair_major(len(pairs)):
                return self._measure_pairs_stacked(
                    instance, algorithm, pairs, horizon,
                    dense=dense, probes=probes, seed=seed,
                    stream_lanes=stream_lanes,
                )
            return [
                self.measure_pair(
                    instance, algorithm, pair, horizon,
                    dense=dense, probes=probes, seed=seed,
                    stream_workers=stream_lanes,
                )
                for pair in pairs
            ]

    def _use_pair_major(self, num_pairs: int) -> bool:
        """Whether a serial job of ``num_pairs`` pairs scans pair-major.

        ``pair_major=False`` never stacks; ``True`` always does (the
        incompatible configurations were rejected at construction);
        ``"auto"`` stacks whenever stacking is available — the
        streaming engine reachable (``engine`` auto or stream), no
        checkpoint directory (the stacked scan is not resumable) — and
        there is more than one pair to amortize across.
        """
        if self.pair_major is False:
            return False
        if self.checkpoint_dir is not None or self.engine not in ("auto", "stream"):
            return False
        if self.pair_major is True:
            return True
        return num_pairs >= 2

    def _measure_pairs_stacked(
        self,
        instance: Instance,
        algorithm: str,
        pairs: list[tuple[int, int]],
        horizon: int,
        dense: int,
        probes: int,
        seed: int,
        stream_lanes: int,
    ) -> list[MeasuredPair]:
        """Measure a serial job through one pair-major tile pass.

        Per-pair bookkeeping is unchanged from :meth:`measure_pair` —
        the result cache is consulted first (warm pairs never enter the
        scan), schedules come from the shared cache, and computed
        measurements are written through — but every uncached pair's
        shift plan joins one :func:`repro.core.batch.ttr_sweep_pairs`
        call, so the whole grid shares a single tile pass instead of
        one engine dispatch per pair.  Results are bit-identical to the
        per-pair loop and return in pair order.
        """
        measured: list[MeasuredPair | None] = [None] * len(pairs)
        jobs: list[tuple[Schedule, Schedule, list[int]]] = []
        meta: list[tuple[int, tuple[int, int], list[int], dict | None]] = []
        for idx, pair in enumerate(pairs):
            with telemetry.span("runner.measure_pair"):
                i, j = pair
                query = None
                if self.results is not None:
                    query = self.pair_query_for(
                        instance, algorithm, pair, horizon, dense, probes, seed
                    )
                    cached = self.results.get(query)
                    if cached is not None:
                        measured[idx] = _measured_from_record(
                            algorithm, pair, cached
                        )
                        continue
                a = self.schedule_for(
                    instance.sets[i], instance.n, algorithm, seed * 1000 + i
                )
                b = self.schedule_for(
                    instance.sets[j], instance.n, algorithm, seed * 1000 + j
                )
                plan = shift_plan(a, b, dense=dense, probes=probes, seed=seed)
                if not plan:
                    raise ValueError(
                        "empty shift plan: need dense > 0 or probes > 0"
                    )
                jobs.append((a, b, plan))
                meta.append((idx, pair, plan, query))
        if jobs:
            profiles = ttr_sweep_pairs(
                jobs, horizon, engine=self.engine,
                tile_bytes=self.tile_bytes, stream_workers=stream_lanes,
                environment=self.environment, backend=self.backend,
            )
            for (idx, pair, plan, query), profile in zip(meta, profiles):
                measured[idx] = self._finalize_pair(
                    instance, algorithm, pair, horizon, plan, profile, query
                )
        return measured


def _measured_record(measured: MeasuredPair) -> dict:
    """JSON-able result-store record of one measurement."""
    stats = measured.stats
    return {
        "worst_ttr": measured.worst_ttr,
        "missed": measured.missed,
        "stats": {
            "count": stats.count,
            "mean": stats.mean,
            "median": stats.median,
            "p95": stats.p95,
            "maximum": stats.maximum,
            "minimum": stats.minimum,
        },
    }


def _measured_from_record(
    algorithm: str, pair: tuple[int, int], record: dict
) -> MeasuredPair:
    """Rehydrate a cached record into a ``MeasuredPair`` (bit-identical:
    JSON round-trips the ints and IEEE doubles exactly)."""
    stats = record["stats"]
    return MeasuredPair(
        algorithm,
        pair,
        int(record["worst_ttr"]),
        TTRStats(
            count=int(stats["count"]),
            mean=float(stats["mean"]),
            median=float(stats["median"]),
            p95=float(stats["p95"]),
            maximum=int(stats["maximum"]),
            minimum=int(stats["minimum"]),
        ),
        # Pre-environment records carry no miss count; they were all
        # clean runs, where a miss raised instead of recording.
        int(record.get("missed", 0)),
    )


# One runner per (worker process, store handle, engine config), so the
# schedule cache — and the store attachment — survives across the tasks
# that land on that worker.
_WORKER_RUNNERS: dict[tuple, SweepRunner] = {}


def _measure_pair_task(payload: tuple) -> tuple[MeasuredPair, dict | None]:
    """Measure one pair inside a pool worker (its runner is reused).

    Returns ``(measured, telemetry_snapshot)``: when the parent fanned
    out with telemetry enabled, the worker enables its own registry,
    times the task under ``runner.worker_task``, and ships the snapshot
    back for the parent to :func:`repro.core.telemetry.merge` —
    resetting after each task so successive tasks on the same worker
    never double-count.  Telemetry-off fan-outs ship ``None``.
    """
    (
        instance, algorithm, pair, horizon, dense, probes, seed,
        store_handle, engine, tile_bytes, stream_lanes,
        results_handle, checkpoint_handle, environment, backend_spec,
        telemetry_on,
    ) = payload
    runner_key = (
        store_handle, engine, tile_bytes, stream_lanes,
        results_handle, checkpoint_handle, environment_digest(environment),
        backend_spec,
    )
    runner = _WORKER_RUNNERS.get(runner_key)
    if runner is None:
        store = None
        if store_handle is not None:
            store_dir, memory_cap, read_roots = store_handle
            store = ScheduleStore(
                store_dir, memory_cap=memory_cap, read_roots=read_roots
            )
        results = None
        if results_handle is not None:
            results_dir, results_cap = results_handle
            results = ResultStore(results_dir, memory_cap=results_cap)
        runner = SweepRunner(
            workers=1, store=store, engine=engine, tile_bytes=tile_bytes,
            stream_workers=stream_lanes, results=results,
            checkpoint_dir=checkpoint_handle, environment=environment,
            backend=backend_spec,
        )
        _WORKER_RUNNERS[runner_key] = runner
    if not telemetry_on:
        measured = runner.measure_pair(
            instance, algorithm, pair, horizon,
            dense=dense, probes=probes, seed=seed,
        )
        return measured, None
    telemetry.enable()
    telemetry.reset()
    with telemetry.span("runner.worker_task"):
        measured = runner.measure_pair(
            instance, algorithm, pair, horizon,
            dense=dense, probes=probes, seed=seed,
        )
    return measured, telemetry.snapshot()


def measure_pairwise(
    instance: Instance,
    algorithm: str,
    pair: tuple[int, int],
    horizon: int,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
    store: ScheduleStore | str | Path | None = None,
) -> MeasuredPair:
    """Measure one pair with a throwaway serial runner (legacy API)."""
    return SweepRunner(workers=1, store=store).measure_pair(
        instance, algorithm, pair, horizon, dense=dense, probes=probes, seed=seed
    )


def measure_instance(
    instance: Instance,
    algorithm: str,
    horizon: int,
    max_pairs: int | None = None,
    dense: int = 64,
    probes: int = 64,
    seed: int = 0,
    workers: int | None = 1,
    store: ScheduleStore | str | Path | None = None,
) -> list[MeasuredPair]:
    """Measure an instance; ``workers=None`` uses every core."""
    return SweepRunner(workers=workers, store=store).measure_instance(
        instance,
        algorithm,
        horizon,
        max_pairs=max_pairs,
        dense=dense,
        probes=probes,
        seed=seed,
    )
