"""Discrete-time cognitive-radio-network simulator.

The paper's model (Section 2) as an executable substrate: slotted time,
channel universe ``[n]``, agents with private channel subsets and
arbitrary wake-up times, pairwise rendezvous detection, workload
generators for the motivating scenarios, and an experiment runner used by
the benchmark harness.
"""

from repro.sim.agent import ASLEEP, Agent
from repro.sim.events import RendezvousEvent
from repro.sim.handshake import ChirpAndListen, HandshakeResult
from repro.sim.trace import render_trace
from repro.sim.metrics import TTRStats, summarize_profile, summarize_ttrs
from repro.sim.network import Network, SimulationResult
from repro.sim.runner import (
    MeasuredPair,
    SweepRunner,
    measure_instance,
    measure_pairwise,
    shift_plan,
)
from repro.sim.workloads import (
    Instance,
    adversarial_single_common,
    available_overlap,
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

__all__ = [
    "Agent",
    "ASLEEP",
    "RendezvousEvent",
    "ChirpAndListen",
    "HandshakeResult",
    "render_trace",
    "Network",
    "SimulationResult",
    "TTRStats",
    "summarize_ttrs",
    "summarize_profile",
    "Instance",
    "random_subsets",
    "single_overlap",
    "symmetric",
    "coalition_bands",
    "whitespace",
    "nested",
    "available_overlap",
    "adversarial_single_common",
    "MeasuredPair",
    "SweepRunner",
    "measure_pairwise",
    "measure_instance",
    "shift_plan",
]
