"""Discrete-time cognitive-radio-network simulator.

The paper's model (Section 2) as an executable substrate: slotted time,
channel universe ``[n]``, agents with private channel subsets and
arbitrary wake-up times, pairwise rendezvous detection, workload
generators for the motivating scenarios, and an experiment runner used by
the benchmark harness.
"""

from repro.sim.agent import ASLEEP, Agent
from repro.sim.events import RendezvousEvent
from repro.sim.handshake import ChirpAndListen, HandshakeResult
from repro.sim.trace import render_trace
from repro.sim.metrics import (
    DiscoveryProfile,
    DiscoveryStats,
    TTRStats,
    channel_contention,
    discovery_throughput,
    summarize_discovery,
    summarize_profile,
    summarize_ttrs,
)
from repro.sim.netcore import (
    EventWheel,
    NetResult,
    Population,
    simulate_population,
)
from repro.sim.network import (
    AUTO_VECTORIZE_MIN_AGENTS,
    ENGINES,
    Network,
    SimulationResult,
)
from repro.sim.runner import (
    MeasuredPair,
    SweepRunner,
    measure_instance,
    measure_pairwise,
    shift_plan,
)
from repro.sim.workloads import (
    Instance,
    adversarial_single_common,
    available_overlap,
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

__all__ = [
    "Agent",
    "ASLEEP",
    "RendezvousEvent",
    "ChirpAndListen",
    "HandshakeResult",
    "render_trace",
    "Network",
    "SimulationResult",
    "ENGINES",
    "AUTO_VECTORIZE_MIN_AGENTS",
    "EventWheel",
    "NetResult",
    "Population",
    "simulate_population",
    "TTRStats",
    "summarize_ttrs",
    "summarize_profile",
    "DiscoveryProfile",
    "DiscoveryStats",
    "summarize_discovery",
    "discovery_throughput",
    "channel_contention",
    "Instance",
    "random_subsets",
    "single_overlap",
    "symmetric",
    "coalition_bands",
    "whitespace",
    "nested",
    "available_overlap",
    "adversarial_single_common",
    "MeasuredPair",
    "SweepRunner",
    "measure_pairwise",
    "measure_instance",
    "shift_plan",
]
