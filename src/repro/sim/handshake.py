"""Chirp-and-listen mutual identification (paper Section 1.3 remark).

The paper's rendezvous definition is *co-presence*: same channel, same
slot.  In practice a pair must also exchange identities; the paper notes
that once agents co-occur they "employ the standard chirp-and-listen
technique to ensure mutual identification" — which matters exactly when
*more than two* agents share a channel and chirps collide.

Model: in every slot, each agent on a channel independently chirps with
probability 1/2 (deterministic per-agent coin derived from a seed, the
slot and the agent's name) or listens.  A chirp is received iff it is the
*only* chirp on that channel in that slot; every listener then learns the
chirper's identity.  A pair is *mutually identified* once each side has
heard the other (in any pair of slots).  With ``g`` agents on a channel,
a given agent is the sole chirper with probability ``g / 2^g`` per slot —
identification stays fast for small groups but degrades in dense pile-ups,
which is the phenomenon this module lets experiments quantify.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass, field

from repro.sim.agent import ASLEEP, Agent

__all__ = ["ChirpAndListen", "HandshakeResult"]

_MASK = (1 << 64) - 1


@functools.lru_cache(maxsize=4096)
def _name_key(name: str) -> int:
    """Stable 64-bit key for an agent name.

    Built from CRC32 (not Python's ``hash``, which is randomized per
    process via ``PYTHONHASHSEED``) so a seeded simulation replays
    identically across runs and machines.
    """
    data = name.encode()
    return (zlib.crc32(data) << 32 | zlib.crc32(data[::-1])) & _MASK


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


@dataclass
class HandshakeResult:
    """Identification outcomes of a chirp-and-listen run."""

    heard: dict[tuple[str, str], int] = field(default_factory=dict)
    mutual: dict[tuple[str, str], int] = field(default_factory=dict)

    def first_heard(self, listener: str, chirper: str) -> int | None:
        """Slot at which ``listener`` first learned ``chirper``'s identity."""
        return self.heard.get((listener, chirper))

    def mutual_identification_time(self, a: str, b: str) -> int | None:
        """Slot by which both directions have been heard (or None)."""
        return self.mutual.get(tuple(sorted((a, b))))


class ChirpAndListen:
    """Slot-by-slot chirp-and-listen simulation over agent schedules."""

    def __init__(self, agents: list[Agent], seed: int = 0):
        names = [a.name for a in agents]
        if len(set(names)) != len(names):
            raise ValueError("agent names must be unique")
        self.agents = list(agents)
        self.seed = seed

    def _chirps(self, name: str, t: int) -> bool:
        """Deterministic fair coin per (agent, slot) — stable across
        processes (no ``hash`` randomization)."""
        return _mix(self.seed ^ _name_key(name) ^ (t * 0xD1342543DE82EF95 & _MASK)) & 1 == 1

    def run(self, horizon: int) -> HandshakeResult:
        """Simulate ``horizon`` slots; record hearing and mutual events."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        result = HandshakeResult()
        for t in range(horizon):
            by_channel: dict[int, list[Agent]] = {}
            for agent in self.agents:
                channel = agent.channel_at_global(t)
                if channel != ASLEEP:
                    by_channel.setdefault(channel, []).append(agent)
            for group in by_channel.values():
                if len(group) < 2:
                    continue
                chirpers = [a for a in group if self._chirps(a.name, t)]
                if len(chirpers) != 1:
                    continue  # silence or collision
                speaker = chirpers[0]
                for listener in group:
                    if listener is speaker:
                        continue
                    key = (listener.name, speaker.name)
                    if key not in result.heard:
                        result.heard[key] = t
                    reverse = (speaker.name, listener.name)
                    if reverse in result.heard:
                        pair = tuple(sorted((speaker.name, listener.name)))
                        if pair not in result.mutual:
                            result.mutual[pair] = t
        return result

    def sole_chirp_probability(self, group_size: int) -> float:
        """Per-slot probability that a *specific* agent is the sole chirper.

        ``(1/2) * (1/2)^(g-1) = 2^-g``; any-sole-chirper probability is
        ``g * 2^-g``.
        """
        if group_size < 1:
            raise ValueError("group must be nonempty")
        return 0.5**group_size
