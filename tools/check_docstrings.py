"""Fail on missing docstrings in the core, sim, baselines and analysis layers.

Walks python sources and reports every public definition — module,
class, function, or method — that lacks a docstring.  "Public" means
the name does not start with ``_``; dunder methods, nested functions,
and anything under a private module are exempt.  The gate is 100%: one
missing docstring fails the run, which is what keeps ``docs/API.md``
and the code from drifting apart.

Run from the repo root (CI runs it in the docs job; the tier-1 suite
runs it via ``tests/test_docs.py``):

    python tools/check_docstrings.py                 # default targets
    python tools/check_docstrings.py src/repro/sim   # explicit targets
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The layers whose public surface docs/API.md documents.  The result
#: cache and the vectorized network core are named explicitly even
#: though the directory walks also reach them — listing them here keeps
#: the gate intact if either module ever moves out of its package.
DEFAULT_TARGETS = (
    "src/repro/core",
    "src/repro/core/backend.py",
    "src/repro/core/environment.py",
    "src/repro/core/results.py",
    "src/repro/core/telemetry.py",
    "src/repro/sim",
    "src/repro/sim/netcore.py",
    "src/repro/baselines",
    "src/repro/analysis",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _definitions(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """Public (qualname, node) pairs at module and class-body level."""
    found: list[tuple[str, ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(node.name):
                continue
            found.append((node.name, node))
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if _is_public(child.name):
                            found.append((f"{node.name}.{child.name}", child))
    return found


def missing_docstrings(path: Path) -> list[tuple[int, str]]:
    """(line, qualname) for every public definition lacking a docstring."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[tuple[int, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "<module>"))
    for qualname, node in _definitions(tree):
        if ast.get_docstring(node) is None:
            missing.append((node.lineno, qualname))
    return missing


def python_files(targets: list[str]) -> list[Path]:
    """Public ``.py`` files under each target directory (or single files).

    Deduplicated: a file named both directly and via a directory walk is
    checked (and reported) once.
    """
    files: list[Path] = []
    seen: set[Path] = set()
    for target in targets:
        root = REPO_ROOT / target
        if root.is_file():
            candidates = [root]
        else:
            candidates = [
                path
                for path in sorted(root.rglob("*.py"))
                if _is_public(path.stem) or path.name == "__init__.py"
            ]
        for path in candidates:
            if path not in seen:
                seen.add(path)
                files.append(path)
    return files


def main(argv: list[str] | None = None) -> int:
    """Check every target; exit nonzero when any docstring is missing."""
    targets = list(argv if argv is not None else sys.argv[1:]) or list(
        DEFAULT_TARGETS
    )
    files = python_files(targets)
    if not files:
        print("no python files found", file=sys.stderr)
        return 1
    checked = 0
    failures = 0
    for path in files:
        gaps = missing_docstrings(path)
        checked += 1
        for lineno, qualname in gaps:
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: missing docstring on {qualname}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} missing docstring(s)", file=sys.stderr)
        return 1
    print(f"checked {checked} file(s): every public definition is documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
