"""Fail on broken intra-repo links in the documentation.

Scans ``README.md`` and every markdown file under ``docs/`` for inline
markdown links and image references.  Links with a URL scheme
(``http(s)://``, ``mailto:``) are skipped — this tool only guards the
*intra-repo* links that silently rot when files move.  Relative targets
resolve against the file that contains them; anchors (``#section``) are
stripped before the existence check.

Run from the repo root (CI runs it in the docs job; the tier-1 suite
runs it via ``tests/test_docs.py``):

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target)  /  ![alt](target), optionally with a quoted title —
# the target is the first whitespace-delimited token inside the parens.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)]+)\)")
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def doc_files() -> list[Path]:
    files = []
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def broken_links(path: Path) -> list[tuple[int, str]]:
    broken = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for raw in _LINK.findall(line):
            parts = raw.strip().split()
            target = parts[0].strip("<>") if parts else ""
            if not target or _SCHEME.match(target) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    files = doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for lineno, target in broken_links(path):
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
