"""Legacy setup shim.

All real metadata lives in ``pyproject.toml`` (src layout, numpy
dependency); ``pip install -e .`` works wherever the ``wheel`` package
is available.  The offline build environment lacks ``wheel``, so
editable installs there go through ``python setup.py develop``, which
this shim keeps working.
"""

from setuptools import setup

setup()
