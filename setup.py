"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so editable
installs must go through ``setup.py develop``; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
