"""Extension experiment: identification overhead of chirp-and-listen.

The paper treats co-presence as rendezvous and waves at mutual
identification ("chirp and listen", Section 1.3).  This bench quantifies
the wave: per-group-size mutual-identification delay once agents share a
channel, and the end-to-end overhead on top of the paper's schedules.
"""

from __future__ import annotations

import statistics

from repro.analysis import format_table
from repro.core.schedule import ConstantSchedule
from repro.sim.agent import Agent
from repro.sim.handshake import ChirpAndListen

GROUP_SIZES = (2, 3, 4, 6, 8)


def test_identification_delay_vs_group_size(benchmark, record):
    def measure():
        rows = []
        for g in GROUP_SIZES:
            delays = []
            for seed in range(6):
                agents = [
                    Agent(f"node{i}", ConstantSchedule(1)) for i in range(g)
                ]
                result = ChirpAndListen(agents, seed=seed).run(30_000)
                pair_delays = [
                    result.mutual_identification_time(f"node{i}", f"node{j}")
                    for i in range(g)
                    for j in range(i + 1, g)
                ]
                assert all(d is not None for d in pair_delays)
                delays.append(max(pair_delays))
            theory = 2**g / g  # per-slot sole-chirp probability is g/2^g
            rows.append(
                [
                    g,
                    f"{statistics.mean(delays):.0f}",
                    max(delays),
                    f"{theory:.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "handshake_group_size",
        "chirp-and-listen: slots until ALL pairs mutually identified, by "
        "group size\n"
        + format_table(
            ["group", "mean (6 seeds)", "max", "~1/P(sole chirp)"], rows
        ),
    )
    # Collisions bite: the 8-crowd is much slower than the pair.
    mean_pair = float(rows[0][1])
    mean_crowd = float(rows[-1][1])
    assert mean_crowd > 3 * mean_pair


def test_end_to_end_identification_overhead(benchmark, record):
    """Theorem 3 schedules + handshake: overhead beyond first co-presence."""
    import repro
    from repro.sim import Network

    def measure():
        n = 16
        sets = [{1, 5}, {5, 9}, {1, 9}, {9, 13}]
        agents = [
            Agent(f"radio{i}", repro.build_schedule(s, n), wake_time=3 * i)
            for i, s in enumerate(sets)
        ]
        plain = Network(agents).run(60_000)
        shake = ChirpAndListen(agents, seed=4).run(120_000)
        rows = []
        for pair, event in sorted(plain.events.items()):
            mutual = shake.mutual_identification_time(*pair)
            assert mutual is not None
            rows.append(
                [f"{pair[0]}-{pair[1]}", event.time, mutual, mutual - event.time]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "handshake_overhead",
        "end-to-end: co-presence vs mutual identification "
        "(paper schedules, 4 radios)\n"
        + format_table(
            ["pair", "first co-presence", "mutual id", "overhead"], rows
        ),
    )
    overheads = [row[3] for row in rows]
    assert all(o >= 0 for o in overheads)
