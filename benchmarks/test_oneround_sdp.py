"""Regenerates the Appendix comparison: 0.25 random vs 0.439 SDP.

On random graphs (agents = edges, one slot): the random-orientation
baseline achieves 1/4 of incident pairs in expectation; the GW-style SDP
with hyperplane rounding guarantees 0.439 of the optimum.  We report
measured ratios against the brute-force optimum on small graphs and
against the incident-pair upper bound on larger ones.
"""

from __future__ import annotations

import random
import statistics

from repro.analysis import format_table
from repro.oneround import (
    OneRoundInstance,
    best_of_random,
    brute_force_optimum,
    count_in_pairs,
    random_orientation,
    sdp_orient,
)


def _random_graph(num_vertices: int, num_edges: int, seed: int) -> OneRoundInstance:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.sample(range(num_vertices), 2)
        edges.add((min(a, b), max(a, b)))
    return OneRoundInstance(sorted(edges))


def test_small_graph_ratios_vs_optimum(benchmark, record):
    def measure():
        rows = []
        ratios = []
        for seed in range(6):
            inst = _random_graph(9, 15, seed)
            optimum, _ = brute_force_optimum(inst)
            rand = count_in_pairs(inst, random_orientation(inst, seed=seed))
            sdp, _ = sdp_orient(inst, trials=48, seed=seed)
            ratios.append(sdp / optimum)
            rows.append(
                [
                    f"G{seed}",
                    inst.incident_pair_count(),
                    optimum,
                    rand,
                    sdp,
                    f"{sdp / optimum:.2f}",
                ]
            )
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "oneround_small",
        "Appendix: one-round in-pairs on random graphs (9 vertices, 15 edges)\n"
        + format_table(
            ["graph", "incident", "optimum", "1 random", "SDP", "SDP/opt"], rows
        )
        + f"\n\nmean SDP/optimum ratio: {statistics.mean(ratios):.3f} "
        "(guarantee: 0.439)",
    )
    assert all(r >= 0.439 for r in ratios), ratios
    assert statistics.mean(ratios) > 0.8  # in practice near-optimal


def test_large_graph_sdp_vs_random(benchmark, record):
    def measure():
        rows = []
        for seed in range(3):
            inst = _random_graph(24, 48, 50 + seed)
            rand_best, _ = best_of_random(inst, trials=64, seed=seed)
            sdp, _ = sdp_orient(inst, iterations=150, trials=48, seed=seed)
            upper = inst.incident_pair_count()
            rows.append(
                [
                    f"G{seed} (24v/48e)",
                    upper,
                    rand_best,
                    sdp,
                    f"{sdp / upper:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "oneround_large",
        "Appendix: larger graphs (optimum unavailable; incident-pair "
        "count is an upper bound)\n"
        + format_table(
            ["graph", "incident pairs", "best-of-64 random", "SDP",
             "SDP/upper-bound"],
            rows,
        ),
    )
    for row in rows:
        assert row[3] >= row[2] * 0.95, "SDP should match or beat random"


def test_random_expectation_quarter(benchmark, record):
    """The 0.25 baseline's defining property, measured."""

    def measure() -> float:
        inst = _random_graph(16, 32, 7)
        total = 0
        trials = 600
        for t in range(trials):
            total += count_in_pairs(inst, random_orientation(inst, seed=t))
        return (total / trials) / inst.incident_pair_count()

    fraction = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "oneround_random_expectation",
        f"random orientation: measured in-pair fraction = {fraction:.3f} "
        "(theory: 0.250)",
    )
    assert abs(fraction - 0.25) < 0.05
