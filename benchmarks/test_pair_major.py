"""Pair-major stacking: the whole Table-1 cell grid in one tile pass.

The per-pair streaming loop pays its fixed costs — engine dispatch,
tile-plan sizing, fixed-row cache construction, a short final partial
tile — once per (algorithm, n, seed) cell.  Pair-major stacking
(:func:`repro.core.stream.ttr_sweep_pairs`) assembles every cell's
shift rows into one global row set and scans them in shared tiles, so
those costs amortize across the grid.  This bench measures the full
asymmetric Table-1 grid both ways, asserts the profiles are
bit-identical, and gates the stacked pass on a measured speedup over
the per-pair loop.

Writes ``benchmarks/results/BENCH_pair_major.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import repro
from repro.analysis import format_table
from repro.core.batch import ttr_sweep
from repro.core.stream import ttr_sweep_pairs, ttr_sweep_stream_serial
from repro.core.verification import strided_shift_range
from repro.sim.workloads import single_overlap

ALGORITHMS = ("paper", "crseq", "drds", "zos", "jump-stay")
NS = (16, 32, 64)
SEEDS = (0, 1)
K = L = 3
MAX_SHIFTS = 256
REPS = 3

#: The stacked pass must beat the per-pair streaming loop by at least
#: this factor on the Table-1 grid, or the refactor has regressed.
MIN_PAIR_MAJOR_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def grid():
    """One sweep job per Table-1 cell: (algorithm, n, seed)."""
    cells, jobs, horizons = [], [], []
    for algorithm in ALGORITHMS:
        for n in NS:
            for seed in SEEDS:
                instance = single_overlap(n, K, L, seed=seed)
                a = repro.build_schedule(
                    instance.sets[0], n, algorithm=algorithm
                )
                b = repro.build_schedule(
                    instance.sets[1], n, algorithm=algorithm
                )
                shifts = list(strided_shift_range(a, b, MAX_SHIFTS))
                cells.append((algorithm, n, seed))
                jobs.append((a, b, shifts))
                horizons.append(4 * max(a.period, b.period))
    return cells, jobs, horizons


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_pair_major_beats_per_pair_loop(benchmark, grid, record):
    cells, jobs, horizons = grid

    def per_pair_loop():
        return [
            ttr_sweep_stream_serial(a, b, shifts, horizon)
            for (a, b, shifts), horizon in zip(jobs, horizons)
        ]

    def stacked():
        return ttr_sweep_pairs(jobs, horizons)

    # Parity first: one pass over the grid must be bit-identical to the
    # per-pair loop, and to the auto-dispatched engine, cell by cell.
    loop_profiles = per_pair_loop()
    stacked_profiles = stacked()
    assert stacked_profiles == loop_profiles
    for (a, b, shifts), horizon, profile in zip(
        jobs, horizons, stacked_profiles
    ):
        assert ttr_sweep(a, b, shifts, horizon) == profile

    loop_s = _best_of(per_pair_loop)
    stacked_s = _best_of(stacked)
    auto_s = _best_of(
        lambda: [
            ttr_sweep(a, b, shifts, horizon)
            for (a, b, shifts), horizon in zip(jobs, horizons)
        ]
    )
    benchmark.pedantic(stacked, rounds=1, iterations=1)

    speedup = loop_s / stacked_s
    total_shifts = sum(len(shifts) for _, _, shifts in jobs)
    rows = [
        ["per-pair stream loop", f"{loop_s * 1000:.1f}", "1.0x"],
        ["per-pair auto loop", f"{auto_s * 1000:.1f}",
         f"{loop_s / auto_s:.2f}x"],
        ["pair-major stacked", f"{stacked_s * 1000:.1f}",
         f"{speedup:.2f}x"],
    ]
    record(
        "pair_major_speedup",
        f"pair-major stacking vs per-pair loops: full Table-1 grid "
        f"({len(cells)} cells, {total_shifts} shift rows) in one pass\n"
        + format_table(["path", "best of 3 (ms)", "vs stream loop"], rows)
        + "\nprofiles bit-identical across all three paths",
    )

    payload = {
        "grid": {
            "algorithms": list(ALGORITHMS),
            "ns": list(NS),
            "seeds": list(SEEDS),
            "workload": f"single_overlap(k=l={K})",
            "cells": len(cells),
            "shift_rows": total_shifts,
            "shift_classes": f"two-sided strided, <= {MAX_SHIFTS} per cell",
            "horizon": "4 x max period per cell",
        },
        "seconds_best_of": REPS,
        "per_pair_stream_loop_s": loop_s,
        "per_pair_auto_loop_s": auto_s,
        "pair_major_stacked_s": stacked_s,
        "speedup_vs_stream_loop": round(speedup, 3),
        "speedup_vs_auto_loop": round(auto_s / stacked_s, 3),
        "min_required_speedup": MIN_PAIR_MAJOR_SPEEDUP,
        "parity": "bit-identical across stacked, stream loop, auto loop",
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_pair_major.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= MIN_PAIR_MAJOR_SPEEDUP, (
        f"pair-major stacking must amortize the per-pair fixed costs: "
        f"{speedup:.2f}x < {MIN_PAIR_MAJOR_SPEEDUP}x"
    )
