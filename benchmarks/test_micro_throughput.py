"""Micro-benchmarks: construction and evaluation throughput.

Not a paper table — engineering numbers a downstream user cares about:
how fast schedules are built and evaluated, and what the verification
engine sustains.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.baselines.drds import build_global_sequence
from repro.core.epoch import EpochSchedule
from repro.core.pairwise import async_pair_string, pair_schedule_async
from repro.core.ramsey import color_bits, edge_color
from repro.core.verification import ttr_for_shift


def test_build_epoch_schedule(benchmark):
    channels = list(range(0, 160, 10))  # k = 16
    benchmark(lambda: EpochSchedule(channels, 1024))


def test_build_size2_string(benchmark):
    n = 1 << 20
    bits = color_bits(edge_color(1234, 99999, n), n)
    benchmark(lambda: async_pair_string(bits))


def test_channel_at_throughput(benchmark):
    schedule = EpochSchedule([3, 17, 40, 99], 128)

    def evaluate() -> int:
        total = 0
        for t in range(2000):
            total += schedule.channel_at(t)
        return total

    benchmark(evaluate)


def test_materialize_throughput(benchmark):
    schedule = EpochSchedule([3, 17, 40, 99], 128)
    benchmark(lambda: schedule.materialize(0, 100_000))


def test_verification_scan(benchmark):
    n = 64
    a = pair_schedule_async(5, 40, n)
    b = pair_schedule_async(40, 63, n)
    benchmark(lambda: ttr_for_shift(a, b, 17, 10_000))


def test_drds_global_build(benchmark):
    def build():
        build_global_sequence.cache_clear()
        return build_global_sequence(8)

    sequence = benchmark.pedantic(build, rounds=3, iterations=1)
    assert isinstance(sequence, np.ndarray)


def test_simulator_network_run(benchmark):
    from repro.sim import Agent, Network

    n = 32
    sets = [{1, 9, 17}, {9, 25}, {17, 25, 31}, {1, 31}]
    agents = [
        Agent(f"a{i}", repro.build_schedule(s, n), wake_time=7 * i)
        for i, s in enumerate(sets)
    ]
    benchmark(lambda: Network(agents).run(20_000))
