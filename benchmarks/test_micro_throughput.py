"""Micro-benchmarks: construction and evaluation throughput.

Not a paper table — engineering numbers a downstream user cares about:
how fast schedules are built and evaluated, and what the verification
engine sustains.  ``test_batched_sweep_speedup`` is the acceptance gate
for the batched engine: an exhaustive shift sweep at ``n = 64`` must run
at least 5x faster than the scalar per-shift loop, and the measurement
is persisted to ``results/BENCH_batched_sweep.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.baselines.drds import build_global_sequence
from repro.core.batch import ttr_sweep
from repro.core.epoch import EpochSchedule
from repro.core.pairwise import async_pair_string, pair_schedule_async
from repro.core.ramsey import color_bits, edge_color
from repro.core.verification import exhaustive_shift_range, ttr_for_shift
from repro.sim.workloads import single_overlap


def test_build_epoch_schedule(benchmark):
    channels = list(range(0, 160, 10))  # k = 16
    benchmark(lambda: EpochSchedule(channels, 1024))


def test_build_size2_string(benchmark):
    n = 1 << 20
    bits = color_bits(edge_color(1234, 99999, n), n)
    benchmark(lambda: async_pair_string(bits))


def test_channel_at_throughput(benchmark):
    schedule = EpochSchedule([3, 17, 40, 99], 128)

    def evaluate() -> int:
        total = 0
        for t in range(2000):
            total += schedule.channel_at(t)
        return total

    benchmark(evaluate)


def test_materialize_throughput(benchmark):
    schedule = EpochSchedule([3, 17, 40, 99], 128)
    benchmark(lambda: schedule.materialize(0, 100_000))


def test_verification_scan(benchmark):
    n = 64
    a = pair_schedule_async(5, 40, n)
    b = pair_schedule_async(40, 63, n)
    benchmark(lambda: ttr_for_shift(a, b, 17, 10_000))


def test_batched_sweep_speedup(benchmark, record):
    """Exhaustive shift sweep, scalar loop vs the batched engine."""
    n = 64
    instance = single_overlap(n, 3, 3, seed=2)
    a = repro.build_schedule(instance.sets[0], n)
    b = repro.build_schedule(instance.sets[1], n)
    shifts = list(exhaustive_shift_range(a, b))
    horizon = 4 * max(a.period, b.period)

    # Warm the period-table caches so neither side pays one-time
    # construction inside its timed region, and take the scalar loop's
    # best of three so the comparison is honest.
    a.period_table(), b.period_table()
    scalar = {s: ttr_for_shift(a, b, s, horizon) for s in shifts}
    scalar_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for s in shifts:
            ttr_for_shift(a, b, s, horizon)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)

    batched = benchmark(lambda: ttr_sweep(a, b, shifts, horizon))
    assert batched == scalar, "batched engine must be bit-identical to scalar"

    batched_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / batched_seconds
    payload = {
        "n": n,
        "workload": "single_overlap(k=l=3, seed=2)",
        "shifts": len(shifts),
        "horizon": horizon,
        "scalar_seconds": round(scalar_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(speedup, 2),
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_batched_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "micro_batched_sweep",
        f"exhaustive sweep, n={n}, {len(shifts)} shifts: "
        f"scalar {scalar_seconds * 1e3:.1f} ms, "
        f"batched {batched_seconds * 1e3:.1f} ms ({speedup:.1f}x)",
    )
    assert speedup >= 5, f"batched sweep only {speedup:.1f}x faster than scalar"


def test_drds_global_build(benchmark):
    def build():
        build_global_sequence.cache_clear()
        return build_global_sequence(8)

    sequence = benchmark.pedantic(build, rounds=3, iterations=1)
    assert isinstance(sequence, np.ndarray)


def test_simulator_network_run(benchmark):
    from repro.sim import Agent, Network

    n = 32
    sets = [{1, 9, 17}, {9, 25}, {17, 25, 31}, {1, 31}]
    agents = [
        Agent(f"a{i}", repro.build_schedule(s, n), wake_time=7 * i)
        for i, s in enumerate(sets)
    ]
    benchmark(lambda: Network(agents).run(20_000))
