"""Guarantee degradation under fading, measured as survival/inflation curves.

The acceptance bench for ``repro.core.environment``: a Theorem-7
``single_overlap`` pair at ``n = 16`` is swept exhaustively — every
shift class, no sampling — under :class:`FadingMisses` at increasing
intensity, for each of the paper construction, Jump-Stay, and ZOS.
Each sweep is a :func:`degradation_report` against the algorithm's own
clean worst-case bound, so the curves answer the paper-shaped question
"how much of the deterministic guarantee survives when the spectrum
misbehaves, and how much later do the survivors meet?".

Results land in ``results/degradation.txt`` and
``results/BENCH_degradation.json``.  The gates assert the
zero-intensity row is exactly the clean sweep (full survival, worst
TTR unchanged, inflation 1.0) and that survival never increases with
intensity — a fault model that helps rendezvous is a bug.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro import build_schedule
from repro.core.environment import FadingMisses, environment_digest
from repro.core.verification import degradation_report
from repro.sim.workloads import single_overlap

N = 16
K = 3
L = 3
ALGORITHMS = ("paper", "jump-stay", "zos")
INTENSITIES = (0.0, 0.05, 0.1, 0.2, 0.4)
SEED = 11


def test_degradation_curves(benchmark, record):
    """Recorded survival/inflation vs fading intensity + clean-row gate."""
    instance = single_overlap(N, K, L, seed=2)
    a_set, b_set = instance.sets[0], instance.sets[1]
    curves = {}
    for algorithm in ALGORITHMS:
        a = build_schedule(a_set, N, algorithm=algorithm)
        b = build_schedule(b_set, N, algorithm=algorithm)
        joint = math.lcm(a.period, b.period)
        # The algorithm's own exhaustive clean worst case is the bound
        # the faulted sweeps are held to.
        bound = degradation_report(a, b, joint, None).clean_worst
        rows = []
        for p in INTENSITIES:
            env = FadingMisses(p, seed=SEED)
            report = degradation_report(a, b, bound, env)
            rows.append(
                {
                    "intensity": p,
                    "environment_digest": environment_digest(env),
                    "total_shifts": report.total_shifts,
                    "survived": report.survived,
                    "survival_fraction": round(report.survival_fraction, 6),
                    "faulted_worst": report.faulted_worst,
                    "inflation_mean": round(report.inflation_mean, 4),
                    "inflation_max": round(report.inflation_max, 4),
                }
            )
        zero = rows[0]
        clean = degradation_report(a, b, bound, None)
        assert zero["survival_fraction"] == 1.0
        assert zero["survived"] == clean.total_shifts == zero["total_shifts"]
        assert zero["faulted_worst"] == clean.clean_worst == bound
        assert zero["inflation_mean"] == zero["inflation_max"] == 1.0
        survivals = [row["survival_fraction"] for row in rows]
        assert survivals == sorted(survivals, reverse=True), (
            f"{algorithm}: survival must be non-increasing in intensity"
        )
        curves[algorithm] = {"clean_worst_bound": bound, "rows": rows}

    # Time one representative report (the largest shift space).
    a = build_schedule(a_set, N, algorithm="jump-stay")
    b = build_schedule(b_set, N, algorithm="jump-stay")
    bound = curves["jump-stay"]["clean_worst_bound"]
    benchmark.pedantic(
        lambda: degradation_report(a, b, bound, FadingMisses(0.2, seed=SEED)),
        rounds=3,
        iterations=1,
    )

    payload = {
        "n": N,
        "k": K,
        "l": L,
        "workload": f"single_overlap(k={K}, l={L}, seed=2)",
        "fault_model": f"fading (channel-blind misses, seed={SEED})",
        "intensities": list(INTENSITIES),
        "curves": curves,
    }
    out_dir = Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "BENCH_degradation.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"Guarantee survival under fading, n={N} single_overlap "
        f"k={K} l={L} (exhaustive shifts, bound = own clean worst):",
        f"  {'algorithm':10} {'bound':>6} "
        + " ".join(f"p={p:<6g}" for p in INTENSITIES),
    ]
    for algorithm in ALGORITHMS:
        curve = curves[algorithm]
        lines.append(
            f"  {algorithm:10} {curve['clean_worst_bound']:>6} "
            + " ".join(
                f"{row['survival_fraction']:<8.4f}" for row in curve["rows"]
            )
        )
        lines.append(
            f"  {'':10} {'inflmax':>6} "
            + " ".join(
                f"{row['inflation_max']:<8.2f}" for row in curve["rows"]
            )
        )
    record("degradation", "\n".join(lines))
