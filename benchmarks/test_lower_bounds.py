"""Regenerates the Section 4 lower-bound evidence.

* Exact ``Rs(n, 2)`` for tiny universes by exhaustive search — concrete
  points under Theorem 4's ``Omega(log log n)``.
* The Ramsey universe threshold ``e (2^T)!`` of Theorem 4's proof.
* Theorem 7's ``Omega(|A||B|)``: adversarial single-overlap witnesses
  found against the paper's own construction, compared to ``k*l``.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.epoch import EpochSchedule
from repro.core.pairwise import sync_period
from repro.lowerbounds import (
    exact_rs2,
    ramsey_universe_threshold,
    search_hard_instance,
)


def test_exact_rs2_table(benchmark, record):
    values = benchmark.pedantic(
        lambda: {n: exact_rs2(n, T_max=4, node_budget=3_000_000) for n in (2, 3, 4)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, values[n], sync_period(n)]
        for n in (2, 3, 4)
    ]
    record(
        "lower_bound_rs2",
        "exact Rs(n,2) by exhaustive search vs this paper's construction\n"
        + format_table(
            ["n", "optimal sync T (exact)", "construction period |C|"], rows
        ),
    )
    assert values[2] == 1
    assert values[3] == 3
    assert values[4] == 3
    # The construction is within a small constant of optimal here.
    assert all(sync_period(n) <= 4 * values[n] for n in (3, 4))


def test_exact_ra2_table(benchmark, record):
    """Exact *asynchronous* optima — new data beneath Theorem 1."""
    from repro.core.pairwise import async_period
    from repro.lowerbounds.exhaustive import exact_ra2

    values = benchmark.pedantic(
        lambda: {n: exact_ra2(n, T_max=8, node_budget=3_000_000) for n in (2, 3)},
        rounds=1,
        iterations=1,
    )
    rows = [[n, values[n], async_period(n)] for n in (2, 3)]
    record(
        "lower_bound_ra2",
        "exact Ra(n,2) (cyclic, all shifts) vs this paper's construction\n"
        + format_table(
            ["n", "optimal cyclic period (exact)", "construction period |R|"],
            rows,
        )
        + "\n\nnote: the minimum cyclic string realizing (0,0)/(1,1) against"
        "\nall of its own rotations has length 6 — the paper's Section 3.2"
        "\npattern 010011 is length-optimal.",
    )
    assert values[2] == 6
    assert values[3] == 7


def test_ramsey_thresholds(benchmark, record):
    thresholds = benchmark.pedantic(
        lambda: {t: ramsey_universe_threshold(t) for t in range(4)},
        rounds=1,
        iterations=1,
    )
    rows = [[t, 2**t, thresholds[t]] for t in range(4)]
    record(
        "lower_bound_ramsey",
        "Theorem 4 machinery: universe size forcing failure of any "
        "T-slot (n,2)-schedule\n"
        + format_table(["T", "colors 2^T", "n >= e*(2^T)!"], rows),
    )
    # Doubly-exponential blowup: the inverse is Omega(log log n).
    assert thresholds[3] > 1000 * thresholds[2]


def test_theorem7_adversarial_witnesses(benchmark, record):
    def builder(channels, n):
        return EpochSchedule(channels, n)

    combos = ((2, 2), (2, 4), (3, 3), (4, 4))

    def hunt():
        out = {}
        for k, l in combos:
            out[(k, l)] = search_hard_instance(
                builder,
                16,
                k,
                l,
                instances=5,
                shifts_per_instance=15,
                horizon=300_000,
                seed=3,
                extra_shifts=range(0, 60, 7),
            )
        return out

    witnesses = benchmark.pedantic(hunt, rounds=1, iterations=1)
    rows = []
    for (k, l), w in witnesses.items():
        rows.append([f"{k}x{l}", k * l, w.ttr, f"{w.ttr / (k * l):.1f}"])
    record(
        "lower_bound_theorem7",
        "Theorem 7 (async Omega(kl)): worst single-overlap witnesses "
        "against the paper's schedule (n=16)\n"
        + format_table(["k x l", "k*l floor", "found TTR", "ratio"], rows),
    )
    # Found witnesses must scale at least with the k*l floor (up to the
    # loglog factor the upper bound allows).
    for (k, l), w in witnesses.items():
        assert w.ttr >= k * l, ((k, l), w.ttr)
    assert witnesses[(4, 4)].ttr > witnesses[(2, 2)].ttr
