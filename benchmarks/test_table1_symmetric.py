"""Regenerates Table 1, symmetric column.

Paper's claims: CRSEQ ``O(n^2)``, Jump-Stay ``O(n)``, DRDS (Gu et al.)
``O(n)``, this paper ``O(1)`` via the Section 3.2 wrapper.

Both agents share one channel set; we sweep relative wake-up shifts
densely and report the worst TTR per universe size.  The paper's
``O(1)`` is certified strictly: the wrapped schedule must meet within 12
slots at *every* tested shift, for every ``n`` — including a deep
``n = 1024`` probe where every baseline's guarantee has long blown up.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import scaling_exponent, table1
from repro.core.batch import ttr_sweep
from repro.core.store import ScheduleStore
from repro.core.verification import max_ttr
from repro.sim.workloads import symmetric

NS = (8, 16, 32)
K = 3
ALGORITHMS = ("paper-symmetric", "jump-stay", "crseq", "drds", "zos")
_CLAIM_KEY = {"paper-symmetric": "paper"}

# Dense-universe extension: schedules come out of a shared
# ScheduleStore (both agents share one channel set, so each table is
# built once and attached once); Jump-Stay drops out — its cubic
# period exceeds the batch table limit from n = 128 on.
NS_LARGE = (64, 128, 256)
ALGORITHMS_LARGE = ("paper-symmetric", "crseq", "drds", "zos")


def _worst_symmetric_ttr(algorithm: str, n: int, shifts) -> int:
    instance = symmetric(n, K, 2, seed=5)
    a = repro.build_schedule(instance.sets[0], n, algorithm=algorithm)
    b = repro.build_schedule(instance.sets[1], n, algorithm=algorithm)
    horizon = 4 * max(a.period, b.period)
    folded = [shift % max(a.period, b.period) for shift in shifts]
    return max_ttr(a, b, folded, horizon)


@pytest.fixture(scope="module")
def measured() -> dict[str, dict[int, int]]:
    result: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        key = _CLAIM_KEY.get(algorithm, algorithm)
        result[key] = {}
        for n in NS:
            shifts = list(range(0, 600)) + list(range(600, 20_000, 97))
            result[key][n] = _worst_symmetric_ttr(algorithm, n, shifts)
    return result


def test_table1_symmetric(benchmark, measured, record):
    benchmark.pedantic(
        lambda: _worst_symmetric_ttr("paper-symmetric", 16, range(50)),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Table 1 (symmetric): worst TTR over dense shifts, |S|={K}",
        table1(measured, "symmetric", NS),
    ]
    record("table1_symmetric", "\n".join(lines))

    paper = measured["paper"]
    # O(1): constant 12 at every universe size (measured: 2).
    assert all(paper[n] <= 12 for n in NS), paper
    # Every baseline exceeds the paper's constant at the largest n.
    for name in ("crseq", "jump-stay", "drds"):
        assert measured[name][NS[-1]] > paper[NS[-1]], name
    # Jump-Stay's O(n) symmetric claim: clear growth with n.
    js_exponent = scaling_exponent(
        list(NS), [measured["jump-stay"][n] for n in NS]
    )
    assert js_exponent > 0.4, f"Jump-Stay should grow ~linearly, got {js_exponent:+.2f}"
    # Our DRDS variant has no symmetric shortcut: ~quadratic (documented).
    drds_exponent = scaling_exponent(list(NS), [measured["drds"][n] for n in NS])
    assert drds_exponent > 1.5


def test_table1_symmetric_large_universe(benchmark, record, tmp_path):
    """The symmetric column pushed to n = 64/128/256 through the store."""
    store = ScheduleStore(tmp_path / "store")

    def measure() -> dict[str, dict[int, int]]:
        result: dict[str, dict[int, int]] = {}
        for algorithm in ALGORITHMS_LARGE:
            key = _CLAIM_KEY.get(algorithm, algorithm)
            result[key] = {}
            for n in NS_LARGE:
                instance = symmetric(n, K, 2, seed=5)
                a = repro.build_schedule(
                    instance.sets[0], n, algorithm=algorithm, store=store
                )
                b = repro.build_schedule(
                    instance.sets[1], n, algorithm=algorithm, store=store
                )
                shifts = list(range(0, 600)) + list(range(600, 20_000, 97))
                folded = [s % max(a.period, b.period) for s in shifts]
                result[key][n] = max_ttr(
                    a, b, folded, 4 * max(a.period, b.period)
                )
        return result

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    stats = store.stats()
    lines = [
        f"Table 1 (symmetric) at large universes: worst TTR over dense "
        f"shifts, |S|={K} (jump-stay omitted: cubic period exceeds the "
        "batch table limit)",
        table1(measured, "symmetric", NS_LARGE),
        "",
        "fitted scaling exponents:",
    ]
    exponents = {
        name: scaling_exponent(list(NS_LARGE), [by_n[n] for n in NS_LARGE])
        for name, by_n in measured.items()
    }
    lines += [f"  {name}: {e:+.2f}" for name, e in exponents.items()]
    lines += [
        "",
        "note: the ~800-shift dense sample under-covers the quadratic",
        "periods at these universe sizes, so baseline exponents flatten;",
        "the guarantee-envelope table carries the bound.",
        "",
        f"schedule store: {stats['builds']} tables built once, "
        f"{stats['attaches']} attached (shared set: one build per "
        "(algorithm, n), the second agent attaches), "
        f"{stats['total_bytes'] / (1 << 20):.1f} MiB resident",
    ]
    record("table1_symmetric_large_universe", "\n".join(lines))

    # O(1) survives the dense universes untouched.
    assert all(measured["paper"][n] <= 12 for n in NS_LARGE), measured["paper"]
    # Every global-sequence baseline is orders of magnitude above the
    # paper's constant at the largest universe.
    biggest = NS_LARGE[-1]
    for name in ("crseq", "drds"):
        assert measured[name][biggest] > 10 * measured["paper"][biggest], name
    # The set-size-keyed constructions stay flat in n.
    assert exponents["paper"] < 0.1 and exponents["zos"] < 0.1, exponents
    # Both agents share one set: every second lookup is an attach.
    assert stats["attaches"] == stats["builds"]


def test_symmetric_O1_deep_universe(benchmark, record):
    """The O(1) claim at n = 1024: still within 12 slots."""

    def probe() -> int:
        n = 1024
        instance = symmetric(n, 4, 2, seed=9)
        a = repro.build_schedule(instance.sets[0], n, algorithm="paper-symmetric")
        b = repro.build_schedule(instance.sets[1], n, algorithm="paper-symmetric")
        shifts = list(range(0, 300)) + [10_007, 123_456, 999_983]
        profile = ttr_sweep(a, b, shifts, 13)
        worst = 0
        for shift, ttr in profile.items():
            assert ttr is not None and ttr <= 12, (shift, ttr)
            worst = max(worst, ttr)
        return worst

    worst = benchmark.pedantic(probe, rounds=1, iterations=1)
    record(
        "table1_symmetric_deep",
        f"symmetric O(1) probe at n=1024, |S|=4: worst TTR = {worst} "
        "(bound: 12, independent of n)",
    )
