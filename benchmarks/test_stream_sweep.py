"""The streaming tiled engine vs the scalar loop, measured on Jump-Stay.

The acceptance bench for ``repro.core.stream``: Jump-Stay is the
baseline whose cubic global period made huge-universe sweeps
unmeasurable — past ``BATCH_TABLE_LIMIT`` the only correct path used to
be the scalar per-shift loop.  Two measurements are recorded to
``results/stream_sweep.txt`` / ``results/BENCH_stream_sweep.json``:

* **both-engines regime** (``n = 64``, period 888,822 slots — under the
  table limit): the streaming and batched profiles are asserted
  bit-identical over the full strided shift set, and the streaming
  engine is timed against the scalar reference on a shift subset (the
  scalar loop is too slow for the full set — which is the point);
* **stream-only regime** (``n = 128``, period 6,692,790 slots — past
  the table limit): the streamed sweep that produces Jump-Stay's
  measured Table-1 column, timed end to end.

The gate asserts parity and a wall-clock win for streaming over the
scalar loop.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.core.batch import BATCH_TABLE_LIMIT, ttr_sweep
from repro.core.verification import strided_shift_range, ttr_for_shift
from repro.sim.workloads import single_overlap

N_BOTH = 64
N_STREAM_ONLY = 128
K = L = 3
MAX_SHIFTS = 2_000
SCALAR_SUBSET = 48  # shifts the scalar loop is timed on


def _build(n: int):
    instance = single_overlap(n, K, L, seed=0)
    a = repro.build_schedule(instance.sets[0], n, algorithm="jump-stay")
    b = repro.build_schedule(instance.sets[1], n, algorithm="jump-stay")
    return a, b


def test_stream_vs_scalar(benchmark, record):
    """Recorded wall-clock comparison + the bit-identical parity gate."""
    a, b = _build(N_BOTH)
    assert max(a.period, b.period) <= BATCH_TABLE_LIMIT
    shifts = list(strided_shift_range(a, b, MAX_SHIFTS))
    horizon = 4 * max(a.period, b.period)

    start = time.perf_counter()
    streamed = ttr_sweep(a, b, shifts, horizon, engine="stream")
    stream_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = ttr_sweep(a, b, shifts, horizon, engine="batched")
    batched_seconds = time.perf_counter() - start
    assert streamed == batched, "stream and batched profiles must be bit-identical"

    subset = shifts[:: max(1, len(shifts) // SCALAR_SUBSET)]
    start = time.perf_counter()
    scalar = {s: ttr_for_shift(a, b, s, horizon) for s in subset}
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    stream_subset = ttr_sweep(a, b, subset, horizon, engine="stream")
    stream_subset_seconds = time.perf_counter() - start
    assert stream_subset == scalar

    a_large, b_large = _build(N_STREAM_ONLY)
    assert max(a_large.period, b_large.period) > BATCH_TABLE_LIMIT
    shifts_large = list(strided_shift_range(a_large, b_large, MAX_SHIFTS))
    horizon_large = 4 * max(a_large.period, b_large.period)

    def stream_large():
        start = time.perf_counter()
        profile = ttr_sweep(a_large, b_large, shifts_large, horizon_large)
        return time.perf_counter() - start, profile

    large_seconds, large_profile = benchmark.pedantic(
        stream_large, rounds=1, iterations=1
    )
    assert all(t is not None for t in large_profile.values())
    worst_large = max(large_profile.values())

    speedup = scalar_seconds / stream_subset_seconds
    payload = {
        "algorithm": "jump-stay",
        "workload": f"single_overlap(k=l={K}, seed=0)",
        "both_engines_n": N_BOTH,
        "both_engines_period": a.period,
        "shifts": len(shifts),
        "stream_seconds": round(stream_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "parity_bit_identical": True,
        "scalar_subset_shifts": len(subset),
        "scalar_subset_seconds": round(scalar_seconds, 4),
        "stream_subset_seconds": round(stream_subset_seconds, 4),
        "stream_vs_scalar_speedup": round(speedup, 2),
        "stream_only_n": N_STREAM_ONLY,
        "stream_only_period": a_large.period,
        "stream_only_shifts": len(shifts_large),
        "stream_only_seconds": round(large_seconds, 4),
        "stream_only_worst_ttr": int(worst_large),
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_stream_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "stream_sweep",
        f"Jump-Stay shift sweeps (single-overlap k=l={K}):\n"
        f"  n={N_BOTH} (period {a.period}, both engines, {len(shifts)} shifts)\n"
        f"    streaming            {stream_seconds:8.3f} s\n"
        f"    batched              {batched_seconds:8.3f} s  (bit-identical)\n"
        f"    scalar, {len(subset):4d} shifts  {scalar_seconds:8.3f} s\n"
        f"    stream, {len(subset):4d} shifts  {stream_subset_seconds:8.3f} s  "
        f"({speedup:.1f}x over scalar)\n"
        f"  n={N_STREAM_ONLY} (period {a_large.period} > table limit "
        f"{BATCH_TABLE_LIMIT}: stream only)\n"
        f"    streaming, {len(shifts_large)} shifts  {large_seconds:8.3f} s, "
        f"worst TTR {worst_large}\n"
        "the scalar loop was the only correct path past the table limit "
        "before repro.core.stream",
    )
    assert speedup > 1.0, (
        f"streaming must beat the scalar loop, got {speedup:.2f}x "
        f"({scalar_seconds:.3f}s vs {stream_subset_seconds:.3f}s)"
    )
