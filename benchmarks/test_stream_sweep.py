"""The streaming engine measured: vs the scalar loop, and intra-pair parallel vs serial.

The acceptance bench for ``repro.core.stream``: Jump-Stay is the
baseline whose cubic global period made huge-universe sweeps
unmeasurable — past ``BATCH_TABLE_LIMIT`` the only correct path used to
be the scalar per-shift loop.  Three measurements are recorded to
``results/stream_sweep.txt`` / ``results/BENCH_stream_sweep.json``:

* **both-engines regime** (``n = 64``, period 888,822 slots — under the
  table limit): the streaming and batched profiles are asserted
  bit-identical over the full strided shift set, and the streaming
  engine is timed against the scalar reference on a shift subset (the
  scalar loop is too slow for the full set — which is the point);
* **intra-pair parallel regime** (``n = 128`` and ``n = 256`` — past
  the table limit): one pair's sweep through the serial reference scan
  (:func:`~repro.core.stream.ttr_sweep_stream_serial`, fixed 4 MiB
  tiles, per-row gathers) against the blocked parallel scan
  (:func:`~repro.core.stream.ttr_sweep_stream`, auto-tuned
  :class:`~repro.core.stream.TilePlan`, vectorized ``channel_gather``
  tile assembly, 4 thread lanes).  The speedup on a single core comes
  from the tuned plan and the one-call tile gather; extra cores scale
  it further because numpy releases the GIL inside the tile ops.

The gate asserts bit-identical profiles everywhere, a wall-clock win
for streaming over the scalar loop, and a >= 2x intra-pair win for the
parallel scan over the serial reference at ``n = 128``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.core.batch import BATCH_TABLE_LIMIT, ttr_sweep
from repro.core.stream import plan_tiles, ttr_sweep_stream, ttr_sweep_stream_serial
from repro.core.verification import strided_shift_range, ttr_for_shift
from repro.sim.workloads import single_overlap

N_BOTH = 64
PARALLEL_NS = (128, 256)
K = L = 3
MAX_SHIFTS = 2_000
SCALAR_SUBSET = 48  # shifts the scalar loop is timed on
STREAM_WORKERS = 4
MIN_INTRA_PAIR_SPEEDUP = 2.0  # gate at n = 128


def _build(n: int):
    instance = single_overlap(n, K, L, seed=0)
    a = repro.build_schedule(instance.sets[0], n, algorithm="jump-stay")
    b = repro.build_schedule(instance.sets[1], n, algorithm="jump-stay")
    return a, b


def _measure_intra_pair(n: int) -> dict:
    """One pair at universe ``n``: serial reference vs parallel scan."""
    a, b = _build(n)
    assert max(a.period, b.period) > BATCH_TABLE_LIMIT
    shifts = list(strided_shift_range(a, b, MAX_SHIFTS))
    horizon = 4 * max(a.period, b.period)

    start = time.perf_counter()
    serial = ttr_sweep_stream_serial(a, b, shifts, horizon)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_one = ttr_sweep_stream(a, b, shifts, horizon, workers=1)
    one_lane_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ttr_sweep_stream(a, b, shifts, horizon, workers=STREAM_WORKERS)
    parallel_seconds = time.perf_counter() - start

    assert parallel == serial == parallel_one, (
        "parallel and serial streams must be bit-identical"
    )
    assert all(t is not None for t in parallel.values())
    plan = plan_tiles(len(shifts), horizon, workers=STREAM_WORKERS)
    return {
        "n": n,
        "period": a.period,
        "shifts": len(shifts),
        "worst_ttr": int(max(parallel.values())),
        "serial_seconds": round(serial_seconds, 4),
        "blocked_1worker_seconds": round(one_lane_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "workers": STREAM_WORKERS,
        "tile_plan": {
            "tile_bytes": plan.tile_bytes,
            "block_rows": plan.block_rows,
            "workers": plan.workers,
        },
        "intra_pair_speedup": round(serial_seconds / parallel_seconds, 2),
        "parity_bit_identical": True,
    }


def test_stream_vs_scalar_and_intra_pair_parallel(benchmark, record):
    """Recorded wall-clock comparisons + the bit-identical parity gates."""
    a, b = _build(N_BOTH)
    assert max(a.period, b.period) <= BATCH_TABLE_LIMIT
    shifts = list(strided_shift_range(a, b, MAX_SHIFTS))
    horizon = 4 * max(a.period, b.period)

    start = time.perf_counter()
    streamed = ttr_sweep(a, b, shifts, horizon, engine="stream")
    stream_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = ttr_sweep(a, b, shifts, horizon, engine="batched")
    batched_seconds = time.perf_counter() - start
    assert streamed == batched, "stream and batched profiles must be bit-identical"

    subset = shifts[:: max(1, len(shifts) // SCALAR_SUBSET)]
    start = time.perf_counter()
    scalar = {s: ttr_for_shift(a, b, s, horizon) for s in subset}
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    stream_subset = ttr_sweep(a, b, subset, horizon, engine="stream")
    stream_subset_seconds = time.perf_counter() - start
    assert stream_subset == scalar

    def intra_pair_rows():
        return [_measure_intra_pair(n) for n in PARALLEL_NS]

    intra_pair = benchmark.pedantic(intra_pair_rows, rounds=1, iterations=1)

    speedup = scalar_seconds / stream_subset_seconds
    payload = {
        "algorithm": "jump-stay",
        "workload": f"single_overlap(k=l={K}, seed=0)",
        "both_engines_n": N_BOTH,
        "both_engines_period": a.period,
        "shifts": len(shifts),
        "stream_seconds": round(stream_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "parity_bit_identical": True,
        "scalar_subset_shifts": len(subset),
        "scalar_subset_seconds": round(scalar_seconds, 4),
        "stream_subset_seconds": round(stream_subset_seconds, 4),
        "stream_vs_scalar_speedup": round(speedup, 2),
        "intra_pair": intra_pair,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_stream_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    intra_lines = "".join(
        f"  n={row['n']} (period {row['period']}, {row['shifts']} shifts, "
        f"worst TTR {row['worst_ttr']})\n"
        f"    serial reference     {row['serial_seconds']:8.3f} s\n"
        f"    blocked, 1 worker    {row['blocked_1worker_seconds']:8.3f} s\n"
        f"    blocked, {row['workers']} workers   {row['parallel_seconds']:8.3f} s  "
        f"({row['intra_pair_speedup']:.1f}x intra-pair, tile "
        f"{row['tile_plan']['tile_bytes'] >> 10} KiB x "
        f"{row['tile_plan']['block_rows']} rows)\n"
        for row in intra_pair
    )
    record(
        "stream_sweep",
        f"Jump-Stay shift sweeps (single-overlap k=l={K}):\n"
        f"  n={N_BOTH} (period {a.period}, both engines, {len(shifts)} shifts)\n"
        f"    streaming            {stream_seconds:8.3f} s\n"
        f"    batched              {batched_seconds:8.3f} s  (bit-identical)\n"
        f"    scalar, {len(subset):4d} shifts  {scalar_seconds:8.3f} s\n"
        f"    stream, {len(subset):4d} shifts  {stream_subset_seconds:8.3f} s  "
        f"({speedup:.1f}x over scalar)\n"
        f"{intra_lines}"
        "serial reference = ttr_sweep_stream_serial (fixed 4 MiB tiles, "
        "per-row gathers);\nblocked = ttr_sweep_stream (auto-tuned tile "
        "plan, vectorized channel_gather tiles,\nthread lanes over "
        "independent shift blocks) — all profiles bit-identical",
    )
    assert speedup > 1.0, (
        f"streaming must beat the scalar loop, got {speedup:.2f}x "
        f"({scalar_seconds:.3f}s vs {stream_subset_seconds:.3f}s)"
    )
    gate = intra_pair[0]
    assert gate["intra_pair_speedup"] >= MIN_INTRA_PAIR_SPEEDUP, (
        f"parallel stream must win >= {MIN_INTRA_PAIR_SPEEDUP}x over the "
        f"serial reference at n={gate['n']} with {STREAM_WORKERS} workers, "
        f"got {gate['intra_pair_speedup']}x"
    )
