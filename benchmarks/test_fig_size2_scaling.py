"""Theorem 1 scaling: size-two rendezvous time is Theta(log log n).

Sweeps the universe size over 46 orders of magnitude (2^4 .. 2^48) and
reports the async size-two schedule period |R| — the guaranteed
asynchronous rendezvous time for any two overlapping 2-sets.  The defining
signature of log log growth: doubling the *exponent* adds only a few
slots.
"""

from __future__ import annotations

from repro.analysis import format_table, series_plot
from repro.core.pairwise import async_period, sync_period

EXPONENTS = (4, 6, 8, 12, 16, 24, 32, 40, 48)


def test_size2_period_scaling(benchmark, record):
    benchmark.pedantic(lambda: async_period(2**32), rounds=1, iterations=1)
    rows = []
    for e in EXPONENTS:
        n = 2**e
        rows.append([f"2^{e}", async_period(n), sync_period(n)])
    table = format_table(["n", "async period |R|", "sync period |C|"], rows)
    plot = series_plot(
        list(EXPONENTS),
        [async_period(2**e) for e in EXPONENTS],
        width=48,
        height=10,
        label="async size-2 period vs log2(n)",
    )
    record("fig_size2_scaling", table + "\n\n" + plot)

    periods = [async_period(2**e) for e in EXPONENTS]
    assert periods == sorted(periods), "period must be nondecreasing in n"
    # log log signature: multiplying n by 2^44 adds only a few slots.
    assert periods[-1] - periods[0] <= 12
    # ... while remaining nontrivially above the sync length.
    assert all(p >= 16 for p in periods)


def test_size2_guarantee_certified_at_scale(benchmark, record):
    """The period is a *guarantee*: exhaustively certified for n = 64
    (all pairs of overlapping 2-sets, all shifts; the construction
    factors through colors, so the color-level check is exhaustive)."""
    import itertools

    from repro.core.bitstrings import rotate
    from repro.core.pairwise import async_pair_string
    from repro.core.ramsey import color_bits, palette_width

    def certify(n: int) -> int:
        strings = [
            async_pair_string(color_bits(c, n)) for c in range(palette_width(n))
        ]
        length = len(strings[0])
        checked = 0
        for r, s in itertools.product(strings, repeat=2):
            for shift in range(length):
                w = rotate(s, shift)
                tuples = {(r[t], w[t]) for t in range(length)}
                assert ("0", "0") in tuples and ("1", "1") in tuples
                if r != s:
                    assert ("0", "1") in tuples and ("1", "0") in tuples
                checked += 1
        return checked

    checked = benchmark.pedantic(lambda: certify(64), rounds=1, iterations=1)
    record(
        "fig_size2_certification",
        f"Theorem 1 guarantee certified at n=64: {checked} "
        "(color-pair, shift) combinations, all rendezvous within one period",
    )
