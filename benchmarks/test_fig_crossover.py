"""Crossover analysis: where |S_i||S_j| log log n meets O(n^2).

The paper's construction wins when channel sets are small relative to the
universe ("near-quadratic gain ... when channel subsets have constant
size"); as k grows toward n, its k^2-ish guarantee envelope must cross the
baselines' n^2 envelopes.  This bench sweeps k at fixed n and reports the
guarantee envelopes plus the crossover point — the third shape property
("where crossovers fall") Table 1 implies.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import format_table
from repro.sim.workloads import single_overlap

N = 32
KS = (2, 3, 4, 6, 8, 12, 16)


@pytest.fixture(scope="module")
def envelopes() -> dict[int, dict[str, int]]:
    result: dict[int, dict[str, int]] = {}
    for k in KS:
        instance = single_overlap(N, k, k, seed=0)
        row = {}
        for algorithm in ("paper", "crseq", "drds"):
            sched = repro.build_schedule(instance.sets[0], N, algorithm=algorithm)
            row[algorithm] = sched.period
        result[k] = row
    return result


def test_crossover_table(benchmark, envelopes, record):
    benchmark.pedantic(
        lambda: repro.build_schedule(list(range(8)), N).period,
        rounds=1,
        iterations=1,
    )
    rows = []
    crossover = None
    for k in KS:
        paper = envelopes[k]["paper"]
        crseq = envelopes[k]["crseq"]
        rows.append(
            [
                k,
                paper,
                crseq,
                envelopes[k]["drds"],
                "paper" if paper < crseq else "crseq",
            ]
        )
        if crossover is None and paper >= crseq:
            crossover = k
    table = format_table(
        ["k=|S|", "paper envelope", "crseq envelope", "drds envelope", "winner"],
        rows,
    )
    record(
        "fig_crossover",
        f"guarantee envelopes vs set size at n={N}\n{table}\n\n"
        f"crossover at k = {crossover} "
        "(paper wins below, O(n^2) baselines above)",
    )

    # Shape assertions: paper wins at small k, loses by large k; the
    # paper envelope grows ~quadratically in k while baselines are flat.
    assert envelopes[KS[0]]["paper"] < envelopes[KS[0]]["crseq"]
    assert crossover is not None, "a crossover must exist within the sweep"
    assert envelopes[KS[-1]]["paper"] > envelopes[KS[-1]]["crseq"]
    small, large = envelopes[2]["paper"], envelopes[16]["paper"]
    assert large / small > 10, "paper envelope must grow ~k^2"
    assert envelopes[2]["crseq"] == envelopes[16]["crseq"]
