"""Gate: disabled telemetry costs < 2% of the intra-pair stream sweep.

The telemetry layer's first contract (see :mod:`repro.core.telemetry`)
is zero overhead when disabled.  This bench certifies it on the exact
workload ``BENCH_stream_sweep`` profiles — one jump-stay pair at
``n = 128`` (``single_overlap`` k = l = 3, seed 0) swept over the
strided shift plan — by combining two measurements:

* the **per-call cost** of a disabled span (enter + ``add_bytes`` +
  exit on the shared no-op singleton), timed over a 200k-call burst;
* the **call count** an enabled run of the same sweep actually makes
  (every span occurrence plus every counter bump, read from the
  enabled run's snapshot).

Their product is the total time the disabled instrumentation adds to
the sweep; the gate holds it under 2% of the sweep's measured wall
time.  This indirect product-form is deliberate: the per-call cost is
a few tens of nanoseconds, far below run-to-run sweep variance, so
timing two sweeps and subtracting would gate on noise.

Riding along, the other two contracts on the same workload: the
enabled and disabled sweeps are bit-identical, and the enabled
snapshot shows tile assembly dominating compare — the PR 5 profile
that motivated the vectorized gather.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.core import telemetry
from repro.core.stream import ttr_sweep_stream
from repro.core.verification import strided_shift_range
from repro.sim.workloads import single_overlap

N = 128
K = L = 3
MAX_SHIFTS = 2_000
NULL_CALLS = 200_000
MAX_OVERHEAD_FRACTION = 0.02


def _sum_calls(children: dict) -> int:
    """Total span occurrences in a serialized snapshot subtree."""
    return sum(
        node["calls"] + _sum_calls(node["children"])
        for node in children.values()
    )


def _null_span_seconds(calls: int) -> float:
    """Wall time for ``calls`` disabled span + add_bytes round trips."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(calls):
        with telemetry.span("overhead.probe") as probe:
            probe.add_bytes(0)
    return time.perf_counter() - start


def test_disabled_telemetry_overhead_under_gate(benchmark, record):
    """Product-form overhead gate + parity + assembly-dominant profile."""
    instance = single_overlap(N, K, L, seed=0)
    a = repro.build_schedule(instance.sets[0], N, algorithm="jump-stay")
    b = repro.build_schedule(instance.sets[1], N, algorithm="jump-stay")
    shifts = list(strided_shift_range(a, b, MAX_SHIFTS))
    horizon = 4 * max(a.period, b.period)

    # Enabled run: the result for parity plus the instrumented call
    # census (spans and counter bumps the sweep actually performs).
    telemetry.enable()
    telemetry.reset()
    enabled_profile = ttr_sweep_stream(a, b, shifts, horizon, workers=1)
    snap = telemetry.snapshot()
    telemetry.disable()
    telemetry.reset()
    span_calls = _sum_calls(snap["spans"])
    counter_bumps = sum(snap["counters"].values())
    instrumented_calls = span_calls + counter_bumps

    # Disabled run: the production configuration, timed.
    def disabled_sweep():
        return ttr_sweep_stream(a, b, shifts, horizon, workers=1)

    start = time.perf_counter()
    disabled_profile = benchmark.pedantic(disabled_sweep, rounds=1, iterations=1)
    sweep_seconds = time.perf_counter() - start
    assert disabled_profile == enabled_profile, (
        "telemetry-on and telemetry-off sweeps must be bit-identical"
    )

    # Per-call cost of the no-op path, after a short warm-up.
    _null_span_seconds(1_000)
    per_call = _null_span_seconds(NULL_CALLS) / NULL_CALLS

    overhead_seconds = per_call * instrumented_calls
    overhead_fraction = overhead_seconds / sweep_seconds
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled telemetry costs {100 * overhead_fraction:.2f}% of the "
        f"sweep ({instrumented_calls} calls x {per_call * 1e9:.0f} ns), "
        f"gate is {100 * MAX_OVERHEAD_FRACTION:.0f}%"
    )

    # The enabled profile must show the PR 5 shape: tile assembly
    # dominates the vectorized compare.
    sweep_node = snap["spans"]["stream.sweep"]
    assembly = sweep_node["children"]["stream.tile_assembly"]
    compare = sweep_node["children"]["stream.compare"]
    assert assembly["seconds"] >= compare["seconds"], (
        "tile assembly should dominate compare on the stream engine"
    )

    payload = {
        "workload": f"single_overlap(n={N}, k=l={K}, seed=0), jump-stay",
        "shifts": len(shifts),
        "horizon": horizon,
        "sweep_seconds_disabled": round(sweep_seconds, 4),
        "instrumented_calls": instrumented_calls,
        "span_calls": span_calls,
        "counter_bumps": counter_bumps,
        "null_span_ns_per_call": round(per_call * 1e9, 1),
        "overhead_seconds": round(overhead_seconds, 6),
        "overhead_fraction": round(overhead_fraction, 6),
        "gate_fraction": MAX_OVERHEAD_FRACTION,
        "parity_bit_identical": True,
        "assembly_seconds": assembly["seconds"],
        "compare_seconds": compare["seconds"],
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_telemetry_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "telemetry_overhead",
        f"Disabled-telemetry overhead (stream sweep, n={N}, "
        f"{len(shifts)} shifts):\n"
        f"  sweep wall time        {sweep_seconds:8.3f} s\n"
        f"  instrumented calls     {instrumented_calls:8d}  "
        f"({span_calls} spans + {counter_bumps} counter bumps)\n"
        f"  no-op span cost        {per_call * 1e9:8.1f} ns/call\n"
        f"  implied overhead       {100 * overhead_fraction:8.3f} %  "
        f"(gate {100 * MAX_OVERHEAD_FRACTION:.0f}%)\n"
        f"  enabled profile        assembly {assembly['seconds']:.3f} s "
        f">= compare {compare['seconds']:.3f} s (bit-identical results)",
    )
