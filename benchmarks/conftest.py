"""Shared infrastructure for the benchmark harness.

Every bench writes its regenerated table/figure to
``benchmarks/results/<name>.txt`` via the ``record`` fixture; a terminal
summary hook replays them after the pytest-benchmark timing table, so
``pytest benchmarks/ --benchmark-only`` shows the paper-shaped outputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_session_outputs: list[Path] = []


@pytest.fixture()
def record():
    """Save a named table/figure and register it for the summary."""

    def _record(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text.rstrip() + "\n")
        _session_outputs.append(path)
        print(f"\n[{name}]\n{text}")
        return text

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _session_outputs:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for path in _session_outputs:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", path.stem)
        terminalreporter.write_line(path.read_text().rstrip())
