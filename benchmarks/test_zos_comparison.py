"""ZOS vs DRDS on the available-channel-set workload family.

The paper's Table-1 comparison is only meaningful against strong
available-channel-set baselines: ZOS (after Lin et al.,
arXiv:1506.00744) keys its period to the set size ``m`` while DRDS
(after Gu et al.) pays a ``Theta(n^2)`` global sequence regardless of
how few channels an agent actually has.  This bench measures both on
the workloads the available-set literature evaluates:

* ``available_overlap`` — overlap-fraction ``rho`` sweep: every pair
  shares a ``~rho k`` core (Yu et al., arXiv:1506.01136 shapes);
* ``adversarial_single_common`` — every pair meets on exactly one
  channel (the paper's Theorem 7 hard regime).

Recorded outputs:

* ``zos_vs_drds`` — worst TTR per universe size in both regimes; every
  cell must be finite (``max_ttr`` raises on a miss), which certifies
  rendezvous on every nonempty-intersection workload tested.
* ``zos_guarantee_checks`` — ``verify_guarantee`` over the exhaustive
  shift classes for ZOS pairs at n = 16, 32, 64: maximum TTR against
  the joint-period bound.
* ``zos_rho_curves`` — the overlap-fraction curve extended to
  k = 8 and 16 on *dense* universes (``n = 2k``), recording the
  collision-free modulus gap: how far past the first prime ``> m`` the
  modulus search is pushed when channel IDs are packed densely enough
  to collide (ROADMAP open item).
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.analysis import format_table
from repro.analysis.tables import scaling_exponent, zos_vs_drds
from repro.core.store import ScheduleStore
from repro.core.verification import (
    exhaustive_shift_range,
    max_ttr,
    strided_shift_range,
    verify_guarantee,
)
from repro.sim.workloads import adversarial_single_common, available_overlap

NS = (16, 32, 64, 128, 256)
K = 4
MAX_SHIFTS = 20_000  # stride cap for DRDS's quadratic period


def _worst_pair_ttr(
    algorithm: str, instance, store: ScheduleStore | None = None
) -> int:
    worst = 0
    schedules = [
        repro.build_schedule(s, instance.n, algorithm=algorithm, store=store)
        for s in instance.sets
    ]
    for i, j in instance.overlapping_pairs():
        a, b = schedules[i], schedules[j]
        shifts = strided_shift_range(a, b, MAX_SHIFTS)
        horizon = 2 * math.lcm(a.period, b.period)
        worst = max(worst, max_ttr(a, b, shifts, horizon))
    return worst


@pytest.fixture(scope="module")
def comparison_store(tmp_path_factory) -> ScheduleStore:
    """One store for the whole comparison: DRDS tables at n = 128/256
    span megabytes and are shared across the asymmetric and symmetric
    regimes instead of being rebuilt per fixture."""
    return ScheduleStore(tmp_path_factory.mktemp("zos-comparison-store"))


@pytest.fixture(scope="module")
def measured(comparison_store) -> dict[str, dict[str, dict[int, int]]]:
    result: dict[str, dict[str, dict[int, int]]] = {
        "asymmetric": {"zos": {}, "drds": {}},
        "symmetric": {"zos": {}, "drds": {}},
    }
    for algorithm in ("zos", "drds"):
        for n in NS:
            single = adversarial_single_common(n, K, 3, seed=2)
            result["asymmetric"][algorithm][n] = _worst_pair_ttr(
                algorithm, single, store=comparison_store
            )
            shared = available_overlap(n, K, 2, rho=1.0, seed=3)
            result["symmetric"][algorithm][n] = _worst_pair_ttr(
                algorithm, shared, store=comparison_store
            )
    return result


def test_zos_vs_drds_table(benchmark, measured, comparison_store, record):
    benchmark.pedantic(
        lambda: _worst_pair_ttr("zos", adversarial_single_common(32, K, 3, seed=2)),
        rounds=1,
        iterations=1,
    )
    stats = comparison_store.stats()
    lines = [
        f"ZOS vs DRDS, worst TTR over swept shifts (k={K}, "
        "single-common asymmetric / shared-set symmetric):",
        zos_vs_drds(measured, NS),
        "",
        "DRDS pays its Theta(n^2) global period at every universe size;",
        "ZOS tracks the available-set size m and stays flat in n.",
        "",
        f"schedule store: {stats['builds']} tables built once, "
        f"{stats['attaches']} attached across regimes, "
        f"{stats['total_bytes'] / (1 << 20):.1f} MiB resident",
    ]
    record("zos_vs_drds", "\n".join(lines))

    # Finite maximum TTR everywhere is already certified (max_ttr raises
    # on any miss).  The shape claims:
    for regime in ("asymmetric", "symmetric"):
        zos_exp = scaling_exponent(
            list(NS), [measured[regime]["zos"][n] for n in NS]
        )
        assert zos_exp < 1.0, f"ZOS should be ~flat in n, got {zos_exp:+.2f}"
    assert measured["asymmetric"]["drds"][NS[-1]] > measured["asymmetric"]["zos"][NS[-1]], (
        "at n=64 the global-sequence baseline should trail the available-set one"
    )


def test_zos_rho_curves_dense_universes(benchmark, record):
    """rho curves at k = 4/8/16, n = 2k, with the modulus gap recorded.

    Dense universes are where the collision-free modulus ``p`` parts
    company with the first prime past ``m``: half the universe per
    agent makes residue collisions mod small primes likely, pushing the
    search upward — the gap the ROADMAP asked to quantify.  The worst
    TTR column certifies rendezvous (``max_ttr`` raises on any miss)
    while staying keyed to ``m``, not ``n``.
    """
    from repro.core.primes import smallest_prime_greater_than

    ks = (4, 8, 16)
    rhos = (0.0, 0.5, 1.0)

    def measure() -> list[list[object]]:
        rows = []
        for k in ks:
            n = 2 * k
            base_prime = smallest_prime_greater_than(k)
            for rho in rhos:
                instance = available_overlap(n, k, 2, rho=rho, seed=21)
                a = repro.build_schedule(instance.sets[0], n, algorithm="zos")
                b = repro.build_schedule(instance.sets[1], n, algorithm="zos")
                shifts = strided_shift_range(a, b, MAX_SHIFTS)
                horizon = 2 * math.lcm(a.period, b.period)
                worst = max_ttr(a, b, shifts, horizon)
                gap = max(a.prime, b.prime) - base_prime
                rows.append(
                    [k, n, rho, f"{a.prime}/{b.prime}", base_prime, gap, worst]
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "zos_rho_curves",
        "ZOS rho curves on dense universes (n = 2k): worst TTR over "
        f"~{MAX_SHIFTS} strided shift classes, and the collision-free "
        "modulus gap (modulus minus first prime > m)\n"
        + format_table(
            ["k", "n", "rho", "moduli", "prime>m", "gap", "worst TTR"], rows
        ),
    )

    gaps = {k: max(r[5] for r in rows if r[0] == k) for k in ks}
    assert all(g >= 0 for g in gaps.values())
    # Dense packing must actually exercise the modulus search at the
    # larger set sizes — otherwise the bench measures nothing new.
    assert gaps[16] > 0, gaps
    # The TTR stays keyed to the modulus (hence m), not the universe:
    # every row is finite (asserted by max_ttr) and bounded by the
    # cubic envelope of its own moduli.
    for k, n, rho, moduli, base, gap, worst in rows:
        p = max(int(x) for x in moduli.split("/"))
        assert worst <= 4 * p * p * (p - 1), (k, rho, worst)


def test_zos_guarantee_checks(benchmark, record):
    """verify_guarantee over exhaustive shift classes, n = 16, 32, 64."""

    def check() -> list[list[object]]:
        rows = []
        for n in NS:
            for rho, seed in ((0.0, 11), (0.5, 12)):
                instance = available_overlap(n, K, 2, rho=rho, seed=seed)
                a = repro.build_schedule(instance.sets[0], n, algorithm="zos")
                b = repro.build_schedule(instance.sets[1], n, algorithm="zos")
                bound = math.lcm(a.period, b.period)
                ok, worst, failing = verify_guarantee(
                    a, b, bound, shifts=exhaustive_shift_range(a, b)
                )
                assert ok, (n, rho, failing)
                rows.append(
                    [n, rho, f"{a.prime}/{b.prime}", worst, bound, "yes"]
                )
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    record(
        "zos_guarantee_checks",
        f"ZOS maximum-TTR guarantee checks (k={K}, exhaustive shift "
        "classes, bound = lcm of periods)\n"
        + format_table(
            ["n", "rho", "moduli", "max TTR", "bound", "certified"], rows
        ),
    )
