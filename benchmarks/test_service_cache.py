"""The persistent result cache vs recomputation, measured on a Table-1 pair.

The acceptance bench for ``repro.core.results``: the same worst-TTR
pair query — a Theorem-7 ``single_overlap`` pair at ``n = 128`` under
Jump-Stay, whose cubic period (6,692,790 slots — past the batched
table limit, so the streaming engine does the work) makes the sweep a
genuine compute — is answered twice through ``SweepRunner`` instances sharing
one result-cache directory:

* **cold** — empty cache: the full shift sweep runs and the
  ``MeasuredPair`` is written through to a shard
  (``misses == 1``, ``writes == 1``);
* **warm** — a fresh runner (fresh process state, nothing memoized in
  Python) attached to the same directory: the answer is a shard read,
  no schedule is built and no shift is scanned (``hits == 1``).

This is the gap ``python -m repro serve`` trades on. Results are
recorded to ``results/service_cache.txt`` and
``results/BENCH_service_cache.json``; the gate asserts the warm query
is bit-identical to the cold one and at least 50x faster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.results import result_digest
from repro.sim.runner import SweepRunner
from repro.sim.workloads import single_overlap

N = 128
K = 8
L = 8
ALGORITHM = "jump-stay"
HORIZON = 28_000_000
SWEEP = dict(dense=512, probes=512)
MIN_SPEEDUP = 50.0


def test_warm_query_beats_recomputation(benchmark, record, tmp_path):
    """Recorded cold-compute vs warm-cache-hit wall-clock + parity gate."""
    instance = single_overlap(N, K, L, seed=2)
    results_dir = tmp_path / "results"

    cold_runner = SweepRunner(workers=1, results=results_dir)
    start = time.perf_counter()
    cold = cold_runner.measure_pair(instance, ALGORITHM, (0, 1), HORIZON, **SWEEP)
    cold_seconds = time.perf_counter() - start
    assert cold_runner.results.hits == 0
    assert cold_runner.results.misses == 1
    assert cold_runner.results.writes == 1

    warm_runner = SweepRunner(workers=1, results=results_dir)
    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: warm_runner.measure_pair(
            instance, ALGORITHM, (0, 1), HORIZON, **SWEEP
        ),
        rounds=1,
        iterations=1,
    )
    warm_seconds = time.perf_counter() - start
    assert warm_runner.results.hits == 1
    assert warm_runner.results.misses == 0
    assert warm_runner.results.writes == 0

    assert warm == cold, "a cache hit must be bit-identical to the sweep"

    query = cold_runner.pair_query_for(instance, ALGORITHM, (0, 1), HORIZON, **SWEEP)
    speedup = cold_seconds / warm_seconds
    payload = {
        "n": N,
        "k": K,
        "l": L,
        "algorithm": ALGORITHM,
        "workload": f"single_overlap(k={K}, l={L}, seed=2)",
        "horizon": HORIZON,
        "digest": result_digest(query),
        "worst_ttr": cold.worst_ttr,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 6),
        "speedup_warm": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
    }
    results_dir_out = Path(__file__).parent / "results"
    results_dir_out.mkdir(exist_ok=True)
    (results_dir_out / "BENCH_service_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "service_cache",
        f"Worst-TTR pair query at n={N} ({ALGORITHM}, "
        f"single_overlap k={K} l={L}, horizon {HORIZON}):\n"
        f"  cold (sweep + write-through)  {cold_seconds:10.4f} s\n"
        f"  warm (result-cache hit)       {warm_seconds:10.6f} s  "
        f"({speedup:.0f}x)\n"
        f"identical MeasuredPair on both paths "
        f"(worst TTR {cold.worst_ttr}, digest {result_digest(query)})",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm query must be at least {MIN_SPEEDUP:.0f}x faster than the "
        f"cold sweep, got {speedup:.1f}x "
        f"({cold_seconds:.4f}s vs {warm_seconds:.6f}s)"
    )
