"""Regenerates Figures 1-3: the walk diagrams of Section 3.

* Figure 1a — the graph of the sequence ``11010``.
* Figure 1b — the graph of the balanced sequence ``110001``.
* Figure 2a — a strictly Catalan sequence (a real ``1 U(K(x)) 0`` image).
* Figure 2b — a (nontrivial) shift of it: no longer strictly Catalan.
* Figure 3a/3b — a sequence before and after the 2-maximality transform.

Each figure is emitted as an ASCII mountain plot; the structural claims
the figures illustrate are asserted alongside.
"""

from __future__ import annotations

from repro.analysis import walk_plot
from repro.core import knuth
from repro.core.bitstrings import (
    is_balanced,
    is_strictly_catalan,
    maxima_count,
    rotate,
)
from repro.core.catalan import m_transform, u_transform


def test_figure_1(benchmark, record):
    benchmark.pedantic(lambda: walk_plot("11010"), rounds=1, iterations=1)
    fig_a = walk_plot("11010", title="Figure 1a: the graph of 11010")
    fig_b = walk_plot("110001", title="Figure 1b: the balanced sequence 110001")
    record("figure1_walks", fig_a + "\n\n" + fig_b)
    assert not is_balanced("11010")
    assert is_balanced("110001")


def test_figure_2(benchmark, record):
    def build() -> str:
        # A genuine intermediate of the Theorem 1 pipeline.
        return "1" + u_transform(knuth.encode("0110")) + "0"

    z = benchmark.pedantic(build, rounds=1, iterations=1)
    shifted = rotate(z, 5)
    fig_a = walk_plot(z, title="Figure 2a: a strictly Catalan sequence")
    fig_b = walk_plot(shifted, title="Figure 2b: shifted - interior touches zero")
    record("figure2_catalan", fig_a + "\n\n" + fig_b)
    assert is_strictly_catalan(z)
    assert not is_strictly_catalan(shifted)


def test_figure_3(benchmark, record):
    before = "1" + u_transform(knuth.encode("0110")) + "0"
    after = benchmark.pedantic(
        lambda: m_transform(before), rounds=1, iterations=1
    )
    fig_a = walk_plot(before, title="Figure 3a: before the transformation")
    fig_b = walk_plot(
        after, title="Figure 3b: after inserting 1010 at the first maximum"
    )
    record("figure3_two_maximal", fig_a + "\n\n" + fig_b)
    assert maxima_count(after) == 2
    assert is_strictly_catalan(after)
    assert len(after) == len(before) + 4
