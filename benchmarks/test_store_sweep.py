"""The schedule store vs per-worker rebuilds, measured at n = 128.

The acceptance bench for ``repro.core.store``: a Table-1-regime sweep
(the multi-agent Theorem-7 adversarial family at ``n = 128``, DRDS —
the baseline whose ``45 n^2 + 8n``-slot global sequence makes period
tables genuinely expensive) is run three ways over the same pairs with
the same parallel ``SweepRunner`` settings:

* **rebuild** — no store: every worker process materializes the period
  table of every schedule its chunk of pairs touches;
* **store, cold** — fresh store: the parent builds each distinct table
  exactly once (asserted via the store's build counter), workers attach
  read-only memmaps;
* **store, warm** — the store already holds every table (the steady
  state every later sweep, table, and process on the machine sees):
  nothing is built anywhere.

Results are recorded to ``results/store_sweep.txt`` and
``results/BENCH_store_sweep.json``; the gate asserts bit-identical
measurements across all three paths and that the warm store is no
slower than per-worker rebuilds.

Historical note: before the streaming-engine PR vectorized DRDS table
construction (closed-form projection of a shared global sequence), the
rebuild path cost ~3.5 s here and the warm store won by ~8x; the
vectorization shrank the rebuild penalty itself, so the store's
remaining margin on this workload is the global-sequence build and the
memory it deduplicates, not the projection loop.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.store import store_key
from repro.sim.runner import SweepRunner
from repro.sim.workloads import adversarial_single_common

N = 128
K = 4
NUM_AGENTS = 6  # 15 overlapping pairs: comfortably above the pool cutoff
ALGORITHM = "drds"
HORIZON = 2 * (45 * N * N + 8 * N)  # two DRDS periods
# At least two workers, so the per-worker-rebuild pathology this bench
# quantifies is actually exercised even on small CI boxes.
WORKERS = max(2, min(4, os.cpu_count() or 1))
SWEEP = dict(dense=8, probes=8)


def _timed_sweep(runner: SweepRunner, instance) -> tuple[float, list]:
    start = time.perf_counter()
    measured = runner.measure_instance(
        instance, ALGORITHM, HORIZON, **SWEEP
    )
    return time.perf_counter() - start, measured


def test_store_vs_per_worker_rebuild(benchmark, record, tmp_path):
    """Recorded wall-clock comparison + the built-exactly-once assertion."""
    instance = adversarial_single_common(N, K, NUM_AGENTS, seed=2)
    pairs = instance.overlapping_pairs()
    distinct = {store_key(s, N, ALGORITHM, 0) for s in instance.sets}

    rebuild_runner = SweepRunner(workers=WORKERS)
    assert rebuild_runner.effective_workers(len(pairs)) == WORKERS
    rebuild_seconds, rebuild_measured = _timed_sweep(rebuild_runner, instance)

    store_runner = SweepRunner(workers=WORKERS, store=tmp_path / "store")
    cold_seconds, cold_measured = _timed_sweep(store_runner, instance)
    # The tentpole contract: each distinct (channels, n, algorithm,
    # seed) period table was materialized exactly once for the sweep —
    # plus one shared DRDS global sequence (its own entry, counted
    # separately) that every per-set build projected from.
    assert store_runner.store.builds == len(distinct)
    assert store_runner.store.global_builds == 1
    assert len(store_runner.store.entries()) == len(distinct) + 1

    warm_runner = SweepRunner(workers=WORKERS, store=tmp_path / "store")
    warm_seconds, warm_measured = benchmark.pedantic(
        lambda: _timed_sweep(warm_runner, instance),
        rounds=1,
        iterations=1,
    )
    # Warm pass: attaches only, zero builds anywhere.
    assert warm_runner.store.builds == 0
    assert warm_runner.store.attaches == len(distinct)

    assert rebuild_measured == cold_measured == warm_measured, (
        "store on/off must be bit-identical"
    )

    speedup_warm = rebuild_seconds / warm_seconds
    speedup_cold = rebuild_seconds / cold_seconds
    payload = {
        "n": N,
        "k": K,
        "algorithm": ALGORITHM,
        "workload": f"adversarial_single_common(k={K}, agents={NUM_AGENTS}, seed=2)",
        "pairs": len(pairs),
        "workers": WORKERS,
        "distinct_tables": len(distinct),
        "table_slots": 45 * N * N + 8 * N,
        "rebuild_seconds": round(rebuild_seconds, 4),
        "store_cold_seconds": round(cold_seconds, 4),
        "store_warm_seconds": round(warm_seconds, 4),
        "speedup_cold": round(speedup_cold, 2),
        "speedup_warm": round(speedup_warm, 2),
        "store_builds": store_runner.store.builds,
        "global_sequence_builds": store_runner.store.global_builds,
        "parent_attaches": store_runner.store.attaches,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_store_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record(
        "store_sweep",
        f"Table-1 sweep at n={N} ({ALGORITHM}, {len(pairs)} pairs, "
        f"{WORKERS} workers, {len(distinct)} distinct tables of "
        f"{45 * N * N + 8 * N} slots):\n"
        f"  per-worker rebuild   {rebuild_seconds:8.3f} s\n"
        f"  store, cold          {cold_seconds:8.3f} s  "
        f"({speedup_cold:.2f}x; parent builds each table once)\n"
        f"  store, warm          {warm_seconds:8.3f} s  "
        f"({speedup_warm:.2f}x; attach-only, zero builds)\n"
        "identical measurements on all three paths; store builds == "
        f"{len(distinct)} == distinct (channels, n, algorithm, seed) keys",
    )
    assert warm_seconds <= rebuild_seconds * 1.2, (
        f"warm store must not lose to per-worker rebuilds, got "
        f"{speedup_warm:.2f}x ({rebuild_seconds:.3f}s vs {warm_seconds:.3f}s)"
    )
