"""Regenerates the Section 5 beacon-protocol comparison.

Sweeps the set size ``k = |S_i| = |S_j|`` on single-overlap instances and
reports mean/max TTR over beacon seeds for

* the deterministic Theorem 3 schedule (no beacon, Omega(k^2) floor),
* the simple beacon protocol (fresh permutation per ``d log n`` bits),
* the amplified protocol (expander walk, ``O(k + log n)`` bits).

Expected shape: deterministic TTR grows ~quadratically in ``k``; the
amplified protocol grows ~linearly and dominates everything at large k.
"""

from __future__ import annotations

import statistics

import pytest

import repro
from repro.analysis import format_table
from repro.analysis.tables import scaling_exponent
from repro.beacon import (
    AmplifiedBeaconProtocol,
    BeaconSource,
    SimpleBeaconProtocol,
    beacon_first_meeting,
)
from repro.core.batch import ttr_sweep
from repro.sim.workloads import single_overlap

N = 64
KS = (2, 4, 8, 12)
BEACON_SEEDS = tuple(range(8))


def _deterministic_mean(k: int) -> float:
    instance = single_overlap(N, k, k, seed=11)
    a = repro.build_schedule(instance.sets[0], N)
    b = repro.build_schedule(instance.sets[1], N)
    profile = ttr_sweep(a, b, range(0, 4400, 401), 10**6)
    assert all(ttr is not None for ttr in profile.values())
    return statistics.mean(profile.values())


def _beacon_mean(cls, k: int) -> float:
    instance = single_overlap(N, k, k, seed=11)
    ttrs = []
    for seed in BEACON_SEEDS:
        beacon = BeaconSource(seed)
        a = cls(instance.sets[0], N, beacon)
        b = cls(instance.sets[1], N, beacon)
        ttr = beacon_first_meeting(a, b, 0, (seed * 31) % 173, 300_000)
        assert ttr is not None
        ttrs.append(ttr)
    return statistics.mean(ttrs)


@pytest.fixture(scope="module")
def sweep() -> dict[str, dict[int, float]]:
    return {
        "deterministic (paper)": {k: _deterministic_mean(k) for k in KS},
        "simple beacon": {k: _beacon_mean(SimpleBeaconProtocol, k) for k in KS},
        "amplified beacon": {
            k: _beacon_mean(AmplifiedBeaconProtocol, k) for k in KS
        },
    }


def test_beacon_ttr_sweep(benchmark, sweep, record):
    benchmark.pedantic(
        lambda: _beacon_mean(AmplifiedBeaconProtocol, 4), rounds=1, iterations=1
    )
    rows = [
        [k] + [f"{sweep[name][k]:.0f}" for name in sweep]
        for k in KS
    ]
    exponents = {
        name: scaling_exponent(list(KS), [by_k[k] for k in KS])
        for name, by_k in sweep.items()
    }
    lines = [
        f"Section 5: mean TTR vs set size k (n={N}, single overlap)",
        format_table(["k"] + list(sweep), rows),
        "",
        "fitted exponents (slope of log TTR vs log k):",
    ]
    lines += [f"  {name}: {e:+.2f}" for name, e in exponents.items()]
    record("beacon_sweep", "\n".join(lines))

    # Shape: deterministic grows super-linearly in k; amplified stays
    # near-linear and wins at the largest k.
    deterministic = sweep["deterministic (paper)"]
    amplified = sweep["amplified beacon"]
    assert exponents["deterministic (paper)"] > 1.0
    assert exponents["amplified beacon"] < 1.2
    assert amplified[KS[-1]] < deterministic[KS[-1]]


def test_beacon_bit_budgets(benchmark, record):
    """The bit-cost side of Section 5: bits consumed until rendezvous."""

    def budgets():
        k = 8
        instance = single_overlap(N, k, k, seed=11)
        rows = []
        for name, cls in (
            ("simple", SimpleBeaconProtocol),
            ("amplified", AmplifiedBeaconProtocol),
        ):
            costs = []
            for seed in BEACON_SEEDS:
                beacon = BeaconSource(seed)
                a = cls(instance.sets[0], N, beacon)
                b = cls(instance.sets[1], N, beacon)
                ttr = beacon_first_meeting(a, b, 0, 0, 300_000)
                assert ttr is not None
                # One beacon bit is broadcast per slot: bits = slots used.
                costs.append(ttr)
            rows.append([name, f"{statistics.mean(costs):.0f}", max(costs)])
        return rows

    rows = benchmark.pedantic(budgets, rounds=1, iterations=1)
    record(
        "beacon_bits",
        "beacon bits (slots) until rendezvous, k=8, n=64\n"
        + format_table(["protocol", "mean bits", "max bits"], rows),
    )
    simple_mean = float(rows[0][1])
    amplified_mean = float(rows[1][1])
    assert amplified_mean < simple_mean
