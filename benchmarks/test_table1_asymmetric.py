"""Regenerates Table 1, asymmetric column.

Paper's Table 1 compares *worst-case guarantees*:

    Shin-Yang-Kim (CRSEQ)   O(n^2)
    Lin-Liu-Chu-Leung (JS)  O(n^3)
    Gu-Hua-Wang-Lau (DRDS)  O(n^2)
    This paper              O(|S_i||S_j| log log n)

Each construction guarantees rendezvous within (a constant multiple of)
one period of its schedule, and the periods *are* the guarantee classes:
``3P^2``, ``3P^2(P-1)``, ``45n^2+8n`` and ``2L(n) p q`` respectively.  We
regenerate the table two ways:

1. **Guarantee envelope** — the exact period of each construction as a
   function of ``n`` at fixed set size ``k = 3``, with fitted scaling
   exponents (expected: ~2, ~3, ~2, ~0).
2. **Measured worst TTR** — exhaustive (or densely strided, for the
   cubic-period Jump-Stay) sweep over relative shifts on adversarial
   single-overlap instances.  Note for EXPERIMENTS.md: the projected
   baselines measure far below their guarantees on random small-``k``
   instances; the paper's contribution is the *guarantee*, which the
   envelope table captures.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import format_table
from repro.analysis.tables import scaling_exponent, table1
from repro.core.verification import max_ttr
from repro.sim.workloads import single_overlap

NS = (8, 16, 32)
ALGORITHMS = ("paper", "crseq", "jump-stay", "drds", "zos")
K = L = 3
MAX_SHIFTS = 40_000


def _schedules(algorithm: str, n: int, seed: int):
    instance = single_overlap(n, K, L, seed=seed)
    a = repro.build_schedule(instance.sets[0], n, algorithm=algorithm)
    b = repro.build_schedule(instance.sets[1], n, algorithm=algorithm)
    return a, b


def _worst_over_shifts(a, b) -> int:
    period = max(a.period, b.period)
    stride = max(1, period // MAX_SHIFTS)
    return max_ttr(a, b, range(0, period, stride), 4 * period)


@pytest.fixture(scope="module")
def envelopes() -> dict[str, dict[int, int]]:
    result: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        result[algorithm] = {}
        for n in NS:
            a, _ = _schedules(algorithm, n, seed=0)
            result[algorithm][n] = a.period
    return result


@pytest.fixture(scope="module")
def measured() -> dict[str, dict[int, int]]:
    result: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        result[algorithm] = {}
        for n in NS:
            worst = 0
            for seed in (0, 1):
                a, b = _schedules(algorithm, n, seed)
                worst = max(worst, _worst_over_shifts(a, b))
            result[algorithm][n] = worst
    return result


def test_table1_guarantee_envelopes(benchmark, envelopes, record):
    benchmark.pedantic(
        lambda: _schedules("paper", 32, seed=0)[0].period, rounds=1, iterations=1
    )
    exponents = {
        algorithm: scaling_exponent(list(NS), [by_n[n] for n in NS])
        for algorithm, by_n in envelopes.items()
    }
    lines = [
        f"Table 1 (asymmetric, guarantee envelopes): period at k=l={K}",
        table1(envelopes, "asymmetric", NS),
        "",
        "fitted scaling exponents (slope of log period vs log n):",
    ]
    lines += [f"  {a}: {e:+.2f}" for a, e in exponents.items()]
    record("table1_asymmetric_envelope", "\n".join(lines))

    assert exponents["paper"] < 0.5, "paper envelope must be ~flat in n"
    assert 1.5 < exponents["crseq"] < 2.5, "CRSEQ must be ~quadratic"
    assert 2.5 < exponents["jump-stay"] < 3.5, "Jump-Stay must be ~cubic"
    assert 1.5 < exponents["drds"] < 2.5, "DRDS must be ~quadratic"
    # ZOS keys its period to the set size, not n: sub-linear in n (the
    # collision-free modulus can wiggle a prime upward between draws).
    assert exponents["zos"] < 1.0, "ZOS envelope must be ~flat in n"
    biggest = NS[-1]
    assert envelopes["paper"][biggest] < envelopes["crseq"][biggest]
    assert envelopes["crseq"][biggest] < envelopes["jump-stay"][biggest]


def test_table1_measured_worst(benchmark, measured, record):
    benchmark.pedantic(
        lambda: _worst_over_shifts(*_schedules("paper", 16, seed=0)),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Table 1 (asymmetric, measured): worst TTR over exhaustive/strided "
        f"shifts, single-overlap k=l={K}",
        table1(measured, "asymmetric", NS),
        "",
        "note: projected baselines measure below their guarantees on random",
        "instances at small fixed k; the envelope table carries the bound.",
    ]
    record("table1_asymmetric_measured", "\n".join(lines))

    paper = [measured["paper"][n] for n in NS]
    # The paper's measured worst is ~flat in n (loglog growth).
    assert max(paper) <= 2 * min(paper)
    # Everyone rendezvoused (asserted inside _worst_over_shifts).


def test_guarantee_ratio_grows(benchmark, envelopes, record):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            n,
            f"{envelopes['crseq'][n] / envelopes['paper'][n]:.1f}x",
            f"{envelopes['jump-stay'][n] / envelopes['paper'][n]:.1f}x",
        ]
        for n in NS
    ]
    record(
        "table1_guarantee_gap",
        "guarantee-envelope gap vs the paper's construction (k=l=3)\n"
        + format_table(["n", "crseq/paper", "jump-stay/paper"], rows),
    )
    first, last = NS[0], NS[-1]
    assert (
        envelopes["crseq"][last] / envelopes["paper"][last]
        > envelopes["crseq"][first] / envelopes["paper"][first]
    )
