"""Regenerates Table 1, asymmetric column.

Paper's Table 1 compares *worst-case guarantees*:

    Shin-Yang-Kim (CRSEQ)   O(n^2)
    Lin-Liu-Chu-Leung (JS)  O(n^3)
    Gu-Hua-Wang-Lau (DRDS)  O(n^2)
    This paper              O(|S_i||S_j| log log n)

Each construction guarantees rendezvous within (a constant multiple of)
one period of its schedule, and the periods *are* the guarantee classes:
``3P^2``, ``3P^2(P-1)``, ``45n^2+8n`` and ``2L(n) p q`` respectively.  We
regenerate the table two ways:

1. **Guarantee envelope** — the exact period of each construction as a
   function of ``n`` at fixed set size ``k = 3``, with fitted scaling
   exponents (expected: ~2, ~3, ~2, ~0).
2. **Measured worst TTR** — exhaustive (or densely strided, for the
   cubic-period Jump-Stay) sweep over relative shifts on adversarial
   single-overlap instances.  Note for docs/BENCHMARKS.md: the projected
   baselines measure far below their guarantees on random small-``k``
   instances; the paper's contribution is the *guarantee*, which the
   envelope table captures.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import format_table
from repro.analysis.tables import scaling_exponent, table1
from repro.core.store import ScheduleStore
from repro.core.verification import max_ttr, strided_shift_range
from repro.sim.workloads import single_overlap

NS = (8, 16, 32)
ALGORITHMS = ("paper", "crseq", "jump-stay", "drds", "zos")
K = L = 3
MAX_SHIFTS = 40_000

# The dense-universe extension (ROADMAP): periods get expensive here,
# so schedules come out of a shared ScheduleStore (each table is
# materialized once per bench run).  Jump-Stay — whose cubic period
# exceeds the batched engine's table limit from n = 128 on — is
# measured through the streaming tiled engine (repro.core.stream),
# which generates its coincidence tiles on demand; everywhere both
# engines can run, their profiles are asserted bit-identical.
NS_LARGE = (64, 128, 256)
LARGE_MEASURED = ("paper", "crseq", "drds", "zos", "jump-stay")
#: Engine override per algorithm: Jump-Stay's measured column is the
#: streaming engine's product at every size (auto would pick the
#: batched path at n = 64).
LARGE_ENGINES = {"jump-stay": "stream"}
MAX_SHIFTS_LARGE = 10_000
PARITY_STRIDE = 20  # both-engine parity asserted on every 20th shift


def _schedules(algorithm: str, n: int, seed: int):
    instance = single_overlap(n, K, L, seed=seed)
    a = repro.build_schedule(instance.sets[0], n, algorithm=algorithm)
    b = repro.build_schedule(instance.sets[1], n, algorithm=algorithm)
    return a, b


def _worst_over_shifts(a, b) -> int:
    period = max(a.period, b.period)
    stride = max(1, period // MAX_SHIFTS)
    return max_ttr(a, b, range(0, period, stride), 4 * period)


@pytest.fixture(scope="module")
def envelopes() -> dict[str, dict[int, int]]:
    result: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        result[algorithm] = {}
        for n in NS:
            a, _ = _schedules(algorithm, n, seed=0)
            result[algorithm][n] = a.period
    return result


@pytest.fixture(scope="module")
def measured() -> dict[str, dict[int, int]]:
    result: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        result[algorithm] = {}
        for n in NS:
            worst = 0
            for seed in (0, 1):
                a, b = _schedules(algorithm, n, seed)
                worst = max(worst, _worst_over_shifts(a, b))
            result[algorithm][n] = worst
    return result


def test_table1_guarantee_envelopes(benchmark, envelopes, record):
    benchmark.pedantic(
        lambda: _schedules("paper", 32, seed=0)[0].period, rounds=1, iterations=1
    )
    exponents = {
        algorithm: scaling_exponent(list(NS), [by_n[n] for n in NS])
        for algorithm, by_n in envelopes.items()
    }
    lines = [
        f"Table 1 (asymmetric, guarantee envelopes): period at k=l={K}",
        table1(envelopes, "asymmetric", NS),
        "",
        "fitted scaling exponents (slope of log period vs log n):",
    ]
    lines += [f"  {a}: {e:+.2f}" for a, e in exponents.items()]
    record("table1_asymmetric_envelope", "\n".join(lines))

    assert exponents["paper"] < 0.5, "paper envelope must be ~flat in n"
    assert 1.5 < exponents["crseq"] < 2.5, "CRSEQ must be ~quadratic"
    assert 2.5 < exponents["jump-stay"] < 3.5, "Jump-Stay must be ~cubic"
    assert 1.5 < exponents["drds"] < 2.5, "DRDS must be ~quadratic"
    # ZOS keys its period to the set size, not n: sub-linear in n (the
    # collision-free modulus can wiggle a prime upward between draws).
    assert exponents["zos"] < 1.0, "ZOS envelope must be ~flat in n"
    biggest = NS[-1]
    assert envelopes["paper"][biggest] < envelopes["crseq"][biggest]
    assert envelopes["crseq"][biggest] < envelopes["jump-stay"][biggest]


def test_table1_measured_worst(benchmark, measured, record):
    benchmark.pedantic(
        lambda: _worst_over_shifts(*_schedules("paper", 16, seed=0)),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Table 1 (asymmetric, measured): worst TTR over exhaustive/strided "
        f"shifts, single-overlap k=l={K}",
        table1(measured, "asymmetric", NS),
        "",
        "note: projected baselines measure below their guarantees on random",
        "instances at small fixed k; the envelope table carries the bound.",
    ]
    record("table1_asymmetric_measured", "\n".join(lines))

    paper = [measured["paper"][n] for n in NS]
    # The paper's measured worst is ~flat in n (loglog growth).
    assert max(paper) <= 2 * min(paper)
    # Everyone rendezvoused (asserted inside _worst_over_shifts).


def test_table1_asymmetric_large_universe(benchmark, record, tmp_path):
    """Table 1 pushed to n = 64/128/256 through the schedule store."""
    store = ScheduleStore(tmp_path / "store")

    def build(algorithm: str, n: int):
        instance = single_overlap(n, K, L, seed=0)
        a = repro.build_schedule(instance.sets[0], n, algorithm=algorithm, store=store)
        b = repro.build_schedule(instance.sets[1], n, algorithm=algorithm, store=store)
        return a, b

    envelopes: dict[str, dict[int, int]] = {}
    for algorithm in ALGORITHMS:
        envelopes[algorithm] = {}
        for n in NS_LARGE:
            instance = single_overlap(n, K, L, seed=0)
            schedule = repro.build_schedule(
                instance.sets[0], n, algorithm=algorithm
            )
            envelopes[algorithm][n] = schedule.period

    def measure() -> dict[str, dict[int, int]]:
        result: dict[str, dict[int, int]] = {}
        for algorithm in LARGE_MEASURED:
            result[algorithm] = {}
            engine = LARGE_ENGINES.get(algorithm, "auto")
            for n in NS_LARGE:
                a, b = build(algorithm, n)
                shifts = strided_shift_range(a, b, MAX_SHIFTS_LARGE)
                result[algorithm][n] = max_ttr(
                    a, b, shifts, 4 * max(a.period, b.period), engine=engine
                )
        return result

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Wherever both engines can run, their profiles must be
    # bit-identical.  Verification-only work, kept outside the timed
    # callable so the recorded wall clock stays a measurement.
    from repro.core.batch import BATCH_TABLE_LIMIT, ttr_sweep

    parity_checked: list[str] = []
    for algorithm in LARGE_MEASURED:
        for n in NS_LARGE:
            a, b = build(algorithm, n)
            if max(a.period, b.period) > BATCH_TABLE_LIMIT:
                continue
            shifts = strided_shift_range(a, b, MAX_SHIFTS_LARGE)
            probe = list(shifts)[::PARITY_STRIDE]
            horizon = 4 * max(a.period, b.period)
            assert ttr_sweep(a, b, probe, horizon, engine="stream") == ttr_sweep(
                a, b, probe, horizon, engine="batched"
            ), (algorithm, n)
            parity_checked.append(f"{algorithm}@{n}")

    exponents = {
        algorithm: scaling_exponent(
            list(NS_LARGE), [by_n[n] for n in NS_LARGE]
        )
        for algorithm, by_n in measured.items()
    }
    envelope_exponents = {
        algorithm: scaling_exponent(list(NS_LARGE), [by_n[n] for n in NS_LARGE])
        for algorithm, by_n in envelopes.items()
    }
    stats = store.stats()
    lines = [
        "Table 1 (asymmetric) at large universes: worst TTR over two-sided "
        f"strided shift classes (~{MAX_SHIFTS_LARGE}), single-overlap k=l={K}",
        table1(measured, "asymmetric", NS_LARGE),
        "",
        "fitted scaling exponents (measured / guarantee envelope):",
    ]
    lines += [
        f"  {a}: {exponents[a]:+.2f} / {envelope_exponents[a]:+.2f}"
        for a in LARGE_MEASURED
    ]
    lines += [
        "",
        "jump-stay's measured column is produced by the streaming tiled "
        "engine (its cubic",
        "period exceeds the batch table limit from n = 128 on); "
        f"stream/batched parity was",
        f"asserted bit-identical on {len(parity_checked)} "
        f"algorithm@n cells: {', '.join(parity_checked)}",
        "",
        f"schedule store: {stats['builds']} tables built once "
        f"(+{stats['global_builds']} shared DRDS global), "
        f"{stats['attaches']} attached, {stats['bypasses']} bypassed "
        f"(periods beyond the store limit stream instead), "
        f"{stats['total_bytes'] / (1 << 20):.1f} MiB resident",
    ]
    record("table1_asymmetric_large_universe", "\n".join(lines))

    import json
    from pathlib import Path

    payload = {
        "ns": list(NS_LARGE),
        "k": K,
        "workload": "single_overlap(k=l=3, seed=0)",
        "shift_classes": f"two-sided strided, ~{MAX_SHIFTS_LARGE}",
        "measured_worst_ttr": measured,
        "measured_engines": {
            a: LARGE_ENGINES.get(a, "auto") for a in LARGE_MEASURED
        },
        "stream_batched_parity_bit_identical": parity_checked,
        "measured_exponents": {a: round(e, 2) for a, e in exponents.items()},
        "envelope_exponents": {
            a: round(e, 2) for a, e in envelope_exponents.items()
        },
        "store": stats,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_table1_large_universe.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The paper's guarantee is ~flat in n even at 256; the global-sequence
    # baselines keep their polynomial envelopes.
    assert envelope_exponents["paper"] < 0.5
    assert 1.5 < envelope_exponents["crseq"] < 2.5
    assert 2.5 < envelope_exponents["jump-stay"] < 3.5
    assert 1.5 < envelope_exponents["drds"] < 2.5
    assert envelope_exponents["zos"] < 1.0
    paper = [measured["paper"][n] for n in NS_LARGE]
    assert max(paper) <= 4 * min(paper), paper
    # Jump-Stay's measured column exists at every large size now that
    # the streaming engine sweeps its cubic period, and its measured
    # growth stays below the cubic envelope on these instances.
    assert set(measured["jump-stay"]) == set(NS_LARGE)
    assert exponents["jump-stay"] < envelope_exponents["jump-stay"]
    # Each distinct (channels, n, algorithm) table was built exactly
    # once; the shared DRDS globals are separate entries.
    assert stats["builds"] + stats["global_builds"] == len(store.entries())


def test_guarantee_ratio_grows(benchmark, envelopes, record):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            n,
            f"{envelopes['crseq'][n] / envelopes['paper'][n]:.1f}x",
            f"{envelopes['jump-stay'][n] / envelopes['paper'][n]:.1f}x",
        ]
        for n in NS
    ]
    record(
        "table1_guarantee_gap",
        "guarantee-envelope gap vs the paper's construction (k=l=3)\n"
        + format_table(["n", "crseq/paper", "jump-stay/paper"], rows),
    )
    first, last = NS[0], NS[-1]
    assert (
        envelopes["crseq"][last] / envelopes["paper"][last]
        > envelopes["crseq"][first] / envelopes["paper"][first]
    )
