"""Ablations of the design choices called out in docs/ARCHITECTURE.md.

1. Lemma 2 color choice: highest vs lowest distinguishing bit.
2. Theorem 3 prime selection: smallest vs largest pair in [k, 3k].
3. Section 3.2 wrapper pattern: the paper's 010011 vs the naive 01.
4. DRDS period constant: ours (45 n^2 + 8n) vs Gu et al.'s 3 p^2.
"""

from __future__ import annotations

import itertools

from repro.analysis import format_table
from repro.baselines.drds import sequence_period
from repro.core.epoch import EpochSchedule, rendezvous_bound
from repro.core.primes import primes_in_range, smallest_prime_at_least
from repro.core.ramsey import edge_color
from repro.core.batch import ttr_sweep


def test_ablation_color_choice(benchmark, record):
    """Both color rules are valid 2-Ramsey colorings; they differ only in
    which palette entries get used (hence constants, not correctness)."""

    def check() -> tuple[int, int]:
        n = 64
        used_high = set()
        used_low = set()
        for a, b in itertools.combinations(range(n), 2):
            high = edge_color(a, b, n)
            low = edge_color(a, b, n, lowest=True)
            used_high.add(high)
            used_low.add(low)
        for a, b, c in itertools.combinations(range(n), 3):
            assert edge_color(a, b, n) != edge_color(b, c, n)
            assert edge_color(a, b, n, lowest=True) != edge_color(
                b, c, n, lowest=True
            )
        return len(used_high), len(used_low)

    high_count, low_count = benchmark.pedantic(check, rounds=1, iterations=1)
    record(
        "ablation_color_choice",
        "Lemma 2 color rule (n=64): both rules 2-Ramsey-valid; palette "
        f"usage: highest-bit {high_count} colors, lowest-bit {low_count} "
        "colors (same asymptotics)",
    )


def test_ablation_prime_selection(benchmark, record):
    """Larger primes in [k, 3k] inflate the CRT bound ~linearly."""

    def measure():
        rows = []
        n = 64
        channels = list(range(0, 50, 10))  # k = 5
        primes = primes_in_range(5, 15)
        small = EpochSchedule(channels, n, prime_pair=(primes[0], primes[1]))
        large = EpochSchedule(channels, n, prime_pair=(primes[-2], primes[-1]))
        for name, sched in (("smallest pair", small), ("largest pair", large)):
            rows.append(
                [
                    name,
                    sched.prime_pair,
                    sched.period,
                    rendezvous_bound(sched, sched),
                ]
            )
        return rows, small, large

    rows, small, large = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_primes",
        "Theorem 3 prime selection (k=5, n=64)\n"
        + format_table(["choice", "primes", "period", "pairwise bound"], rows),
    )
    assert small.period < large.period
    assert rendezvous_bound(small, small) < rendezvous_bound(large, large)


def test_ablation_symmetric_pattern(benchmark, record):
    """The naive 2-slot pattern c0 c1 fails at odd shifts; the paper's
    010011 never does — measured over all shifts of the wrapped layer."""

    def measure():
        paper = "010011"
        naive = "01"
        failures = {}
        for name, pattern in (("paper 010011", paper), ("naive 01", naive)):
            misses = 0
            for shift in range(len(pattern)):
                rotated = pattern[shift:] + pattern[:shift]
                tuples = {(x, y) for x, y in zip(pattern, rotated)}
                if ("0", "0") not in tuples or ("1", "1") not in tuples:
                    misses += 1
            failures[name] = misses
        return failures

    failures = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[name, misses] for name, misses in failures.items()]
    record(
        "ablation_symmetric_pattern",
        "Section 3.2 wrapper pattern: rotations failing the (0,0)/(1,1) "
        "requirement\n" + format_table(["pattern", "failing rotations"], rows),
    )
    assert failures["paper 010011"] == 0
    assert failures["naive 01"] > 0


def test_ablation_drds_constant(benchmark, record):
    """Our DRDS family pays a larger constant than Gu et al.'s 3 p^2 —
    same Theta(n^2) class; the gap is the price of the closed-form,
    prime-free, self-verifying construction."""

    def measure():
        rows = []
        for n in (8, 16, 32):
            ours = sequence_period(n)
            p = smallest_prime_at_least(n)
            theirs = 3 * p * p
            rows.append([n, ours, theirs, f"{ours / theirs:.1f}x"])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_drds_constant",
        "DRDS period: this repo vs Gu et al.'s 3 p^2\n"
        + format_table(["n", "ours (45n^2+8n)", "Gu et al. (3p^2)", "ratio"], rows),
    )
    for row in rows:
        assert 5 <= float(row[3][:-1]) <= 20


def test_ablation_sync_vs_async_epochs(benchmark, record):
    """The asynchronous doubling costs ~2x epoch length but buys shift
    invariance; the sync variant misses at some nonzero shifts."""

    def measure():
        n = 16
        a_sync = EpochSchedule([1, 5, 9], n, asynchronous=False)
        b_sync = EpochSchedule([5, 11], n, asynchronous=False)
        a_async = EpochSchedule([1, 5, 9], n)
        b_async = EpochSchedule([5, 11], n)
        bound = rendezvous_bound(a_async, b_async)
        sync_profile = ttr_sweep(a_sync, b_sync, range(1, 200), bound)
        sync_misses = sum(1 for ttr in sync_profile.values() if ttr is None)
        async_profile = ttr_sweep(a_async, b_async, range(1, 200), bound)
        async_misses = sum(1 for ttr in async_profile.values() if ttr is None)
        return (
            a_sync.epoch_length,
            a_async.epoch_length,
            sync_misses,
            async_misses,
        )

    sync_len, async_len, sync_misses, async_misses = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    record(
        "ablation_doubling",
        "Theorem 3 epoch doubling: sync epoch length "
        f"{sync_len} vs async {async_len}; shifts missing rendezvous "
        f"within the async bound: sync-built={sync_misses}, "
        f"async-built={async_misses} (of 199)",
    )
    assert async_misses == 0