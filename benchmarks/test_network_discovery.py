"""Network-scale discovery: the vectorized core's 100 -> 10k scaling curve.

The acceptance bench for ``repro.sim.netcore``.  A ``random_subsets``
population (universe 12, k = 3, paper schedules, wake slots spread over
8) is simulated at 100, 300, 1000, 3000, and 10,000 agents.  Three
things are recorded to ``results/network_discovery.txt`` /
``results/BENCH_network_discovery.json``:

* **parity** — at the smallest population the vectorized engine's
  events are asserted bit-identical to the pairwise reference, and the
  reference is timed for the speedup column;
* **the scaling curve** — per population size: cohort count, number of
  overlapping agent pairs, time-to-full-discovery slot, slots actually
  simulated (early stop), and wall-clock seconds;
* **the tentpole gate** — the 10k-agent run (~50M overlapping pairs)
  must fully discover and complete within ``MAX_10K_SECONDS``.

Why this scales: agents sharing (schedule, wake, leave) collapse into
one cohort row, so 10k agents over a 12-channel universe step as a few
thousand rows, and pair accounting is combinatorial in cohort sizes
rather than quadratic in agents.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro
from repro.sim.agent import Agent
from repro.sim.metrics import summarize_discovery
from repro.sim.netcore import Population, simulate_population
from repro.sim.network import Network
from repro.sim.workloads import random_subsets

AGENT_COUNTS = (100, 300, 1_000, 3_000, 10_000)
UNIVERSE = 12
K = 3
WAKE_SPREAD = 8
HORIZON = 500_000
PAIRWISE_N = AGENT_COUNTS[0]  # population certified against the reference
MAX_10K_SECONDS = 60.0  # generous CI gate; ~2 s on a laptop


def _build_agents(num_agents: int) -> list[Agent]:
    """Seeded population sharing one Schedule object per distinct set."""
    instance = random_subsets(UNIVERSE, K, num_agents, seed=0)
    schedules = {}
    agents = []
    for i, channels in enumerate(instance.sets):
        if channels not in schedules:
            schedules[channels] = repro.build_schedule(channels, UNIVERSE)
        agents.append(Agent(f"agent{i}", schedules[channels], i % WAKE_SPREAD))
    return agents


def _measure(num_agents: int) -> dict:
    """One scaling-curve row: simulate and summarize ``num_agents``."""
    agents = _build_agents(num_agents)
    population = Population.from_agents(agents)
    start = time.perf_counter()
    net = simulate_population(population, HORIZON)
    seconds = time.perf_counter() - start
    stats = summarize_discovery(net.discovery_profile())
    assert net.all_discovered(), (
        f"{num_agents} agents: {net.unmet_cohort_pairs} cohort pairs unmet"
    )
    return {
        "agents": num_agents,
        "cohorts": population.num_cohorts,
        "distinct_schedules": len(population.schedules),
        "overlapping_pairs": stats.overlapping_pairs,
        "discovery_time": stats.discovery_time,
        "t50": stats.milestones[0.5],
        "t90": stats.milestones[0.9],
        "slots_simulated": net.slots_simulated,
        "seconds": round(seconds, 4),
    }


def test_network_discovery_scaling(benchmark, record):
    """Parity at 100 agents, then the recorded 100 -> 10k scaling curve."""
    small = _build_agents(PAIRWISE_N)
    start = time.perf_counter()
    reference = Network(small).run(HORIZON, engine="pairwise")
    pairwise_seconds = time.perf_counter() - start
    candidate = Network(small).run(HORIZON, engine="vectorized")
    assert candidate.events == reference.events, (
        "vectorized engine must be bit-identical to the pairwise reference"
    )

    curve = benchmark.pedantic(
        lambda: [_measure(n) for n in AGENT_COUNTS], rounds=1, iterations=1
    )

    top = curve[-1]
    assert top["agents"] == 10_000
    assert top["seconds"] < MAX_10K_SECONDS, (
        f"10k-agent discovery took {top['seconds']:.1f}s, "
        f"gate is {MAX_10K_SECONDS}s"
    )
    speedup = pairwise_seconds / max(curve[0]["seconds"], 1e-9)

    payload = {
        "workload": f"random_subsets(n={UNIVERSE}, k={K}, seed=0)",
        "algorithm": "paper",
        "wake_spread": WAKE_SPREAD,
        "horizon": HORIZON,
        "pairwise_reference": {
            "agents": PAIRWISE_N,
            "seconds": round(pairwise_seconds, 4),
            "events": len(reference.events),
            "parity_bit_identical": True,
        },
        "vectorized_vs_pairwise_speedup": round(speedup, 2),
        "curve": curve,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_network_discovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    rows = "".join(
        f"  {row['agents']:>6d} agents  {row['cohorts']:>5d} cohorts  "
        f"{row['overlapping_pairs']:>11,d} pairs  "
        f"discovery @ {row['discovery_time']:>4d}  "
        f"{row['seconds']:8.3f} s\n"
        for row in curve
    )
    record(
        "network_discovery",
        f"Full-population discovery, random_subsets(n={UNIVERSE}, k={K}), "
        f"paper schedules,\nwake slots spread over {WAKE_SPREAD}, horizon "
        f"{HORIZON:,} (early stop at full discovery):\n"
        f"{rows}"
        f"  pairwise reference at {PAIRWISE_N} agents: "
        f"{pairwise_seconds:.3f} s (vectorized {speedup:.0f}x faster, "
        "events bit-identical)",
    )
