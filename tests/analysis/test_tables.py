"""Tests for Table 1 helpers."""

from __future__ import annotations

import pytest

from repro.analysis.tables import PAPER_CLAIMS, scaling_exponent, table1


class TestPaperClaims:
    def test_all_table1_rows_present(self):
        assert {"crseq", "jump-stay", "drds", "paper"} <= set(PAPER_CLAIMS)

    def test_claims_match_paper(self):
        assert PAPER_CLAIMS["crseq"]["asymmetric"] == "O(n^2)"
        assert PAPER_CLAIMS["jump-stay"]["asymmetric"] == "O(n^3)"
        assert PAPER_CLAIMS["paper"]["symmetric"].startswith("O(1)")


class TestTable1:
    def test_renders_measured(self):
        measured = {
            "paper": {8: 100, 16: 120},
            "crseq": {8: 300, 16: 1200},
        }
        out = table1(measured, "asymmetric", [8, 16])
        assert "n=8" in out and "n=16" in out
        assert "O(n^2)" in out
        assert "1200" in out

    def test_missing_cells_dashed(self):
        out = table1({"paper": {8: 5}}, "asymmetric", [8, 16])
        assert "-" in out.split("\n")[-1]


class TestScalingExponent:
    def test_quadratic(self):
        ns = [8, 16, 32, 64]
        values = [n * n for n in ns]
        assert abs(scaling_exponent(ns, values) - 2.0) < 1e-9

    def test_cubic(self):
        ns = [4, 8, 16]
        values = [n**3 for n in ns]
        assert abs(scaling_exponent(ns, values) - 3.0) < 1e-9

    def test_flat(self):
        assert abs(scaling_exponent([4, 8, 16], [7, 7, 7])) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            scaling_exponent([1], [1])
