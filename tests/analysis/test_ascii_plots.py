"""Tests for ASCII figures and tables."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plots import format_table, series_plot, walk_plot


class TestWalkPlot:
    def test_figure_1a_string(self):
        out = walk_plot("11010", title="Figure 1a")
        assert "Figure 1a" in out
        assert "11010" in out
        assert "/" in out and "\\" in out

    def test_character_counts_match_bits(self):
        z = "110100"
        out = walk_plot(z)
        body = out.split("\n", 1)[1]
        assert body.count("/") == z.count("1")
        assert body.count("\\") == z.count("0")

    def test_empty_string(self):
        assert "(empty string)" in walk_plot("")

    def test_single_rise(self):
        out = walk_plot("10")
        assert "/\\" in out


class TestSeriesPlot:
    def test_renders_points(self):
        out = series_plot([1, 2, 3], [1, 4, 9], width=20, height=8, label="sq")
        assert "sq" in out
        assert out.count("*") >= 2  # distinct cells for distinct points

    def test_constant_series(self):
        out = series_plot([1, 2], [5, 5], width=10, height=4)
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            series_plot([], [])
        with pytest.raises(ValueError):
            series_plot([1], [1, 2])


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_cell_stringification(self):
        out = format_table(["x"], [[3.5]])
        assert "3.5" in out
