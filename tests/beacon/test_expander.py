"""Tests for the Gabber-Galil expander."""

from __future__ import annotations

import pytest

from repro.beacon.expander import MGGExpander


class TestStructure:
    def test_vertex_coordinates_roundtrip(self):
        g = MGGExpander(5)
        for v in range(g.num_vertices):
            x, y = g.coordinates(v)
            assert g.vertex(x, y) == v

    def test_degree_eight(self):
        g = MGGExpander(4)
        for v in range(g.num_vertices):
            neighbors = [g.neighbor(v, d) for d in range(8)]
            assert len(neighbors) == 8
            assert all(0 <= u < g.num_vertices for u in neighbors)

    def test_direction_bounds(self):
        g = MGGExpander(3)
        with pytest.raises(ValueError):
            g.neighbor(0, 8)
        with pytest.raises(ValueError):
            g.coordinates(g.num_vertices)

    def test_small_side_rejected(self):
        with pytest.raises(ValueError):
            MGGExpander(1)

    def test_walk_composition(self):
        g = MGGExpander(7)
        path = [0, 3, 5, 2, 7, 1]
        v = g.walk(11, path)
        u = 11
        for d in path:
            u = g.neighbor(u, d)
        assert v == u


class TestExpansion:
    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_connected_and_spectral_gap(self, m):
        """The normalized second eigenvalue must be bounded away from 1.
        Gabber-Galil proves lambda_2/d <= (5 sqrt(2))/8 ~ 0.884 in the
        limit; small toruses are comfortably below 0.99."""
        g = MGGExpander(m)
        assert g.second_eigenvalue() < 0.95

    def test_walk_mixes(self):
        """Empirical mixing: the distribution of walk endpoints from a
        fixed start approaches uniform."""
        import collections
        import random

        g = MGGExpander(5)
        rng = random.Random(0)
        counts = collections.Counter()
        trials = 4000
        for _ in range(trials):
            v = 0
            for _ in range(20):
                v = g.neighbor(v, rng.randrange(8))
            counts[v] += 1
        # Every vertex reached, none dominating.
        assert len(counts) == g.num_vertices
        assert max(counts.values()) < 5 * trials / g.num_vertices
