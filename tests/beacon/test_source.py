"""Tests for the beacon bit source."""

from __future__ import annotations

import pytest

from repro.beacon.source import BeaconSource


class TestBeaconSource:
    def test_deterministic(self):
        a, b = BeaconSource(7), BeaconSource(7)
        assert a.bits(0, 100) == b.bits(0, 100)

    def test_seed_matters(self):
        assert BeaconSource(1).bits(0, 64) != BeaconSource(2).bits(0, 64)

    def test_random_access_matches_stream(self):
        src = BeaconSource(3)
        stream = src.bits(10, 20)
        assert stream == [src.bit(10 + i) for i in range(20)]

    def test_bits_are_binary(self):
        assert set(BeaconSource(5).bits(0, 256)) <= {0, 1}

    def test_roughly_balanced(self):
        bits = BeaconSource(11).bits(0, 4096)
        ones = sum(bits)
        assert 1700 <= ones <= 2400  # ~50% with generous slack

    def test_no_simple_periodicity(self):
        bits = BeaconSource(13).bits(0, 512)
        for period in (1, 2, 3, 4, 8):
            assert bits[period:] != bits[:-period]

    def test_word_packing(self):
        src = BeaconSource(17)
        word = src.word(5, 8)
        expected = 0
        for t in range(5, 13):
            expected = (expected << 1) | src.bit(t)
        assert word == expected

    def test_array_matches_bits(self):
        src = BeaconSource(19)
        assert list(src.array(3, 40)) == src.bits(3, 40)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            BeaconSource(0).bit(-1)
