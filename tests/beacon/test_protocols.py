"""Tests for the Section 5 beacon protocols."""

from __future__ import annotations

import pytest

from repro.beacon.minwise import seed_bits_needed
from repro.beacon.protocols import (
    AmplifiedBeaconProtocol,
    SimpleBeaconProtocol,
    beacon_first_meeting,
)
from repro.beacon.source import BeaconSource


class TestSimpleProtocol:
    def test_hops_within_set(self):
        p = SimpleBeaconProtocol([2, 7, 11], 16, BeaconSource(1))
        hops = {p.channel_at_global(t) for t in range(500)}
        assert hops <= {2, 7, 11}

    def test_same_beacon_same_permutations(self):
        """Anonymity + shared beacon: identical sets behave identically."""
        a = SimpleBeaconProtocol([2, 7], 16, BeaconSource(5))
        b = SimpleBeaconProtocol([2, 7], 16, BeaconSource(5))
        assert [a.channel_at_global(t) for t in range(300)] == [
            b.channel_at_global(t) for t in range(300)
        ]

    def test_warm_up_plays_min(self):
        p = SimpleBeaconProtocol([4, 9], 16, BeaconSource(2))
        for t in range(p.window):
            assert p.channel_at_global(t) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleBeaconProtocol([], 8, BeaconSource(0))
        with pytest.raises(ValueError):
            SimpleBeaconProtocol([8], 8, BeaconSource(0))
        p = SimpleBeaconProtocol([1], 8, BeaconSource(0))
        with pytest.raises(ValueError):
            p.channel_at_global(-1)

    def test_hops_change_across_windows(self):
        p = SimpleBeaconProtocol(list(range(8)), 8, BeaconSource(3))
        window = p.window
        hops = {p.channel_at_global(window * w) for w in range(1, 30)}
        assert len(hops) > 1


class TestAmplifiedProtocol:
    def test_hops_within_set(self):
        p = AmplifiedBeaconProtocol([1, 5, 6], 16, BeaconSource(4))
        hops = {p.channel_at_global(t) for t in range(500)}
        assert hops <= {1, 5, 6}

    def test_burn_in(self):
        p = AmplifiedBeaconProtocol([3, 9], 16, BeaconSource(4))
        assert p.burn_in == seed_bits_needed(16)
        for t in range(p.burn_in):
            assert p.channel_at_global(t) == 3

    def test_permutation_refresh_every_three_slots(self):
        p = AmplifiedBeaconProtocol(list(range(8)), 8, BeaconSource(6))
        start = p.burn_in
        hops = [p.channel_at_global(t) for t in range(start, start + 300)]
        # Within a 3-slot step the hop is constant.
        for i in range(0, 297, 3):
            assert hops[i] == hops[i + 1] == hops[i + 2]
        assert len(set(hops)) > 1


class TestRendezvous:
    def test_simple_protocol_meets(self):
        beacon = BeaconSource(8)
        a = SimpleBeaconProtocol([1, 4, 7], 16, beacon)
        b = SimpleBeaconProtocol([7, 9], 16, beacon)
        ttr = beacon_first_meeting(a, b, 0, 37, horizon=20_000)
        assert ttr is not None

    def test_amplified_protocol_meets(self):
        beacon = BeaconSource(9)
        a = AmplifiedBeaconProtocol([1, 4, 7], 16, beacon)
        b = AmplifiedBeaconProtocol([7, 9], 16, beacon)
        ttr = beacon_first_meeting(a, b, 5, 0, horizon=20_000)
        assert ttr is not None

    def test_meeting_channel_in_intersection(self):
        beacon = BeaconSource(10)
        a = SimpleBeaconProtocol([2, 5], 16, beacon)
        b = SimpleBeaconProtocol([5, 11], 16, beacon)
        start = 0
        for t in range(40_000):
            if a.channel_at_global(t) == b.channel_at_global(t):
                assert a.channel_at_global(t) == 5
                break
        else:
            pytest.fail("no rendezvous found")

    @pytest.mark.parametrize("seed", range(6))
    def test_amplified_ttr_scales_linearly(self, seed):
        """The headline bound: O(|S_i| + |S_j| + log n) slots (bits)."""
        n = 32
        beacon = BeaconSource(100 + seed)
        a = AmplifiedBeaconProtocol(list(range(0, 8)), n, beacon)
        b = AmplifiedBeaconProtocol(list(range(7, 15)), n, beacon)
        ttr = beacon_first_meeting(a, b, 0, 0, horizon=30_000)
        assert ttr is not None
        # Generous whp envelope: c * (s_i + s_j + log n) with c ~ 60.
        assert ttr <= 60 * (8 + 8 + 5) + a.burn_in

    def test_disjoint_sets_never_meet(self):
        beacon = BeaconSource(11)
        a = SimpleBeaconProtocol([1, 2], 16, beacon)
        b = SimpleBeaconProtocol([8, 9], 16, beacon)
        assert beacon_first_meeting(a, b, 0, 0, horizon=3000) is None
