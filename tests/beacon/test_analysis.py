"""Tests for the expander hitting analysis."""

from __future__ import annotations

import pytest

from repro.beacon.analysis import (
    compare_hitting,
    iid_hit_fraction,
    walk_hit_fraction,
)
from repro.beacon.expander import MGGExpander


class TestHitFractions:
    def test_walk_fraction_bounds(self):
        g = MGGExpander(7)
        frac = walk_hit_fraction(g, lambda v: v % 2 == 0, steps=500, seed=1)
        assert 0.0 <= frac <= 1.0

    def test_full_set_hits_always(self):
        g = MGGExpander(5)
        assert walk_hit_fraction(g, lambda v: True, steps=100) == 1.0
        assert iid_hit_fraction(g, lambda v: True, samples=100) == 1.0

    def test_empty_set_never_hits(self):
        g = MGGExpander(5)
        assert walk_hit_fraction(g, lambda v: False, steps=100) == 0.0

    def test_validation(self):
        g = MGGExpander(5)
        with pytest.raises(ValueError):
            walk_hit_fraction(g, lambda v: True, steps=0)
        with pytest.raises(ValueError):
            iid_hit_fraction(g, lambda v: True, samples=0)


class TestCompare:
    def test_density_validated(self):
        with pytest.raises(ValueError):
            compare_hitting(7, 0.0, 100)

    @pytest.mark.parametrize("density", [0.25, 0.5])
    def test_walk_concentrates_like_iid(self, density):
        """The amplification premise: walk hit fractions track the set
        density about as well as independent samples do."""
        stats = compare_hitting(side=11, density=density, steps=4000, seed=3)
        assert abs(stats.set_density - density) < 0.1
        # Both estimates land near the density; the walk's error is of
        # the same order as iid's (within a small additive slack).
        assert stats.walk_error < 0.08
        assert stats.iid_error < 0.08

    def test_deterministic(self):
        a = compare_hitting(7, 0.3, 1000, seed=5)
        b = compare_hitting(7, 0.3, 1000, seed=5)
        assert a == b
