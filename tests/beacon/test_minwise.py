"""Tests for the min-wise permutation family (paper Definition 1)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.beacon.minwise import (
    DEFAULT_DEGREE,
    MinwisePermutation,
    field_prime,
    permutation_from_word,
    seed_bits_needed,
)


class TestFieldPrime:
    def test_at_least_n(self):
        for n in (2, 5, 16, 100):
            assert field_prime(n) >= n

    def test_small_universe_floor(self):
        assert field_prime(1) == 2


class TestMinwisePermutation:
    def test_ranks_are_distinct(self):
        perm = MinwisePermutation((3, 1, 4), 16)
        ranks = {perm.rank(x) for x in range(16)}
        assert len(ranks) == 16

    def test_rank_bounds_checked(self):
        perm = MinwisePermutation((1,), 8)
        with pytest.raises(ValueError):
            perm.rank(8)

    def test_argmin_in_set(self):
        perm = MinwisePermutation((5, 2), 16)
        channels = (3, 7, 11)
        assert perm.argmin(channels) in channels

    def test_argmin_is_min_rank(self):
        perm = MinwisePermutation((5, 2, 9), 16)
        channels = (3, 7, 11, 14)
        best = perm.argmin(channels)
        assert all(perm.rank(best) <= perm.rank(c) for c in channels)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            MinwisePermutation((), 8)


class TestFromWord:
    def test_deterministic(self):
        a = permutation_from_word(0xDEADBEEF, 16)
        b = permutation_from_word(0xDEADBEEF, 16)
        assert a.coefficients == b.coefficients

    def test_seed_bits_accounting(self):
        n = 16
        bits = seed_bits_needed(n)
        assert bits == DEFAULT_DEGREE * field_prime(n).bit_length()

    def test_distinct_words_distinct_permutations_usually(self):
        perms = {
            permutation_from_word(w, 16).coefficients for w in range(0, 4000, 37)
        }
        assert len(perms) > 50


class TestMinwiseProperty:
    """Statistical check of Definition 1 at eps = 1/2.

    For random members of the family, every element of a fixed set should
    be the argmin with probability >= (1 - eps)/|A| = 1/(2|A|).
    """

    @pytest.mark.parametrize("subset", [(0, 5, 9), (1, 2, 3, 11, 13), (4, 15)])
    def test_every_element_wins_often_enough(self, subset):
        n = 16
        rng = random.Random(99)
        trials = 3000
        wins = {a: 0 for a in subset}
        for _ in range(trials):
            word = rng.getrandbits(seed_bits_needed(n))
            perm = permutation_from_word(word, n)
            wins[perm.argmin(subset)] += 1
        threshold = trials / (2 * len(subset))
        for a, count in wins.items():
            assert count >= 0.8 * threshold, (a, count, threshold)

    def test_pairwise_union_argmin_probability(self):
        """Paper equation (8): the common channel is the global argmin of
        the union with probability >= 1/(2(|A| + |B|))."""
        n = 16
        a_set = (1, 4, 7)
        b_set = (7, 9)
        union = tuple(sorted(set(a_set) | set(b_set)))
        rng = random.Random(123)
        trials = 4000
        hits = 0
        for _ in range(trials):
            word = rng.getrandbits(seed_bits_needed(n))
            perm = permutation_from_word(word, n)
            if perm.argmin(union) == 7:
                hits += 1
        assert hits >= 0.8 * trials / (2 * (len(a_set) + len(b_set)))

    def test_exhaustive_family_balance_small(self):
        """Over *all* degree-2 polynomials on a tiny field, each element
        of a set wins a nonvanishing fraction (structural sanity)."""
        n = 5
        p = field_prime(n)
        subset = (0, 2, 4)
        wins = {a: 0 for a in subset}
        for c0, c1 in itertools.product(range(p), repeat=2):
            perm = MinwisePermutation((c0, c1), n)
            wins[perm.argmin(subset)] += 1
        total = p * p
        for count in wins.values():
            assert count >= total / (2 * len(subset))
