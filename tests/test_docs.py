"""The documentation layer stays present and internally consistent."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


def _load_check_links():
    return _load_tool("check_links")


class TestDocsExist:
    def test_readme_present_with_required_sections(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for required in (
            "pip install -e",
            "python -m pytest -x -q",
            "python -m repro sweep",
            "src/repro/core/",
            "baselines",
        ):
            assert required in readme, f"README.md is missing {required!r}"

    def test_benchmarks_doc_present(self):
        text = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text()
        for required in (
            "Phase-offset dedup",
            "lcm early-stop",
            "Memory cap",
            "BENCH_batched_sweep.json",
            "BENCH_store_sweep.json",
            "BENCH_service_cache.json",
            "BENCH_network_discovery.json",
            "network-discovery scaling curve",
            "cohort",
            "result cache",
            "API.md",
        ):
            assert required in text, f"docs/BENCHMARKS.md is missing {required!r}"

    def test_architecture_doc_present(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for required in (
            "Layer map",
            "data flow",
            "ScheduleStore",
            "_BUILDERS",
            "The serving layer",
            "ResultStore",
            "read_roots",
            "The network simulator",
            "cohort reduction",
            "bit-identical",
            "Extension recipe",
            "Deviations from the paper",
            "array-backend seam",
            "pair-major stacking",
            "ttr_sweep_pairs",
            "RecordingBackend",
            "REPRO_BACKEND",
        ):
            assert required in text, f"docs/ARCHITECTURE.md is missing {required!r}"

    def test_api_doc_present(self):
        text = (REPO_ROOT / "docs" / "API.md").read_text()
        for required in (
            "build_schedule",
            "ttr_sweep",
            "verify_guarantee",
            "SweepRunner",
            "ScheduleStore",
            "ResultStore",
            "SweepCheckpoint",
            "pair_query",
            "read_roots",
            "repro serve",
            "repro netsim",
            "netcore",
            "simulate_population",
            "summarize_discovery",
            "Workloads",
            "Theorem 3",
            "Array backends",
            "ttr_sweep_pairs",
            "choose_engine",
            "conformance_checklist",
            "resolve_backend",
            "pair_major",
        ):
            assert required in text, f"docs/API.md is missing {required!r}"

    def test_tuning_doc_present(self):
        text = (REPO_ROOT / "docs" / "TUNING.md").read_text()
        for required in (
            "Engine selection",
            "auto-tuned tile plan",
            "Intra-pair parallelism",
            "Worker budgeting",
            "stream-workers",
            "tile-bytes",
            "sweep shape",
            "STRIDED_DISPATCH_FACTOR",
            "results-dir",
            "checkpoint-dir",
            "crossover",
            "bit-identical",
            "Worked invocations",
            "BENCHMARKS.md",
            "Pair-major stacking",
            "pair-major",
            "BENCH_pair_major.json",
            "--backend",
            "REPRO_BACKEND",
        ):
            assert required in text, f"docs/TUNING.md is missing {required!r}"

    def test_observability_doc_present(self):
        text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for required in (
            "Span taxonomy",
            "stream.tile_assembly",
            "runner.worker_task",
            "store.schedule",
            "store.result",
            "netsim.assemble",
            "Zero overhead when disabled",
            "bit-identical",
            "PYTHONHASHSEED",
            "final stdout line",
            "Thread lanes overlap",
            "Netsim spans are flat",
            "test_telemetry_overhead",
            "TUNING.md",
            "stream.pair_sweep",
            "stream.pair_jobs",
        ):
            assert required in text, f"docs/OBSERVABILITY.md is missing {required!r}"

    def test_tuning_doc_links_observability(self):
        text = (REPO_ROOT / "docs" / "TUNING.md").read_text()
        assert "OBSERVABILITY.md" in text, (
            "docs/TUNING.md does not link OBSERVABILITY.md"
        )

    def test_architecture_doc_links_observability(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        assert "OBSERVABILITY.md" in text, (
            "docs/ARCHITECTURE.md does not link OBSERVABILITY.md"
        )

    def test_benchmarks_doc_links_tuning(self):
        text = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text()
        assert "TUNING.md" in text, "docs/BENCHMARKS.md does not link TUNING.md"

    def test_readme_links_docs_pages(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in (
            "docs/ARCHITECTURE.md",
            "docs/API.md",
            "docs/BENCHMARKS.md",
            "docs/TUNING.md",
            "docs/OBSERVABILITY.md",
        ):
            assert page in readme, f"README.md does not link {page}"


class TestLinkChecker:
    def test_repo_docs_have_no_broken_links(self, capsys):
        module = _load_check_links()
        assert module.main() == 0, capsys.readouterr().err

    def test_detects_broken_link(self, tmp_path):
        module = _load_check_links()
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](page.md) [gone](missing.md) [web](https://example.com) "
            "[anchor](#here)\n"
        )
        broken = module.broken_links(page)
        assert [target for _, target in broken] == ["missing.md"]

    def test_titled_links_still_checked(self, tmp_path):
        module = _load_check_links()
        page = tmp_path / "page.md"
        page.write_text('[methodology](MISSING.md "how tables regenerate")\n')
        broken = module.broken_links(page)
        assert [target for _, target in broken] == ["MISSING.md"]

    def test_whitespace_only_target_ignored(self, tmp_path):
        module = _load_check_links()
        page = tmp_path / "page.md"
        page.write_text("[empty]( ) and [fine](page.md)\n")
        assert module.broken_links(page) == []

    def test_anchor_suffix_stripped(self, tmp_path):
        module = _load_check_links()
        (tmp_path / "other.md").write_text("x\n")
        page = tmp_path / "page.md"
        page.write_text("[sect](other.md#part)\n")
        assert module.broken_links(page) == []


class TestDocstringCoverage:
    def test_core_and_sim_fully_documented(self, capsys):
        module = _load_tool("check_docstrings")
        assert module.main([]) == 0, capsys.readouterr().err

    def test_detects_missing_docstrings(self, tmp_path):
        module = _load_tool("check_docstrings")
        page = tmp_path / "mod.py"
        page.write_text(
            '"""Documented module."""\n'
            "def documented():\n"
            '    """Yes."""\n'
            "def bare():\n"
            "    pass\n"
            "def _private():\n"
            "    pass\n"
            "class Thing:\n"
            '    """Yes."""\n'
            "    def method(self):\n"
            "        pass\n"
        )
        gaps = module.missing_docstrings(page)
        assert [q for _, q in gaps] == ["bare", "Thing.method"]

    def test_missing_module_docstring_reported(self, tmp_path):
        module = _load_tool("check_docstrings")
        page = tmp_path / "mod.py"
        page.write_text("x = 1\n")
        assert [q for _, q in module.missing_docstrings(page)] == ["<module>"]
