"""Cross-module integration tests: the whole pipeline, end to end.

These tests exercise realistic flows that cut across subpackages:
workload generation -> schedule construction -> simulation ->
verification -> metrics, for every algorithm the library ships.
"""

from __future__ import annotations

import pytest

import repro
from repro.baselines import BASELINE_NAMES
from repro.core import bounds
from repro.core.verification import ttr_for_shift, verify_guarantee
from repro.sim import (
    Agent,
    ChirpAndListen,
    Network,
    coalition_bands,
    measure_instance,
    nested,
    random_subsets,
    summarize_ttrs,
    whitespace,
)


class TestFullDiscoveryAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", ("paper", "paper-symmetric") + BASELINE_NAMES)
    def test_random_workload_full_discovery(self, algorithm):
        n = 16
        instance = random_subsets(n, 4, 4, seed=8)
        horizon = {
            "paper": 100_000,
            "paper-symmetric": 400_000,
            "crseq": 100_000,
            "jump-stay": 500_000,
            "drds": 100_000,
            "zos": 100_000,
            "async-etch": 100_000,
            "random": 100_000,
        }[algorithm]
        agents = [
            Agent(
                f"{algorithm}{i}",
                repro.build_schedule(s, n, algorithm=algorithm),
                wake_time=7 * i,
            )
            for i, s in enumerate(instance.sets)
        ]
        result = Network(agents).run(horizon)
        assert result.all_discovered(), (algorithm, result.unmet_pairs())


class TestWorkloadsThroughPipeline:
    def test_whitespace_measured_instance(self):
        instance = whitespace(32, 5, incumbent_load=0.5, seed=4)
        measured = measure_instance(
            instance, "paper", horizon=200_000, max_pairs=4, dense=8, probes=8
        )
        assert measured
        stats = summarize_ttrs(m.worst_ttr for m in measured)
        assert stats.maximum < 200_000

    def test_coalition_cross_band_discovery(self):
        n = 128
        instance = coalition_bands(
            n, band_width=8, agents_per_band=2, num_bands=3, overlap=2, seed=3
        )
        agents = [
            Agent(f"m{i}", repro.build_schedule(s, n), wake_time=29 * i)
            for i, s in enumerate(instance.sets)
        ]
        result = Network(agents).run(500_000)
        assert result.all_discovered(), result.unmet_pairs()

    def test_nested_chain_discovery(self):
        n = 32
        instance = nested(n, [2, 4, 8], seed=6)
        agents = [
            Agent(f"s{i}", repro.build_schedule(s, n), wake_time=11 * i)
            for i, s in enumerate(instance.sets)
        ]
        result = Network(agents).run(200_000)
        assert result.all_discovered()
        # Nested sets: every pair overlaps (the chain shares its smallest set).
        assert len(result.events) == 3


class TestGuaranteesMatchBounds:
    def test_analytic_bounds_respected_end_to_end(self):
        n = 16
        a_set, b_set = {2, 9, 13}, {9, 15}
        a = repro.build_schedule(a_set, n)
        b = repro.build_schedule(b_set, n)
        bound = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        ok, worst, failing = verify_guarantee(
            a, b, bound, shifts=range(0, 5000, 11)
        )
        assert ok, failing
        assert worst <= bound

    def test_symmetric_wrapper_composes_with_simulator(self):
        n = 64
        shared = {4, 30, 59}
        agents = [
            Agent(
                f"w{i}",
                repro.build_schedule(shared, n, algorithm="paper-symmetric"),
                wake_time=i * 5 + 1,
            )
            for i in range(3)
        ]
        result = Network(agents).run(1000)
        assert result.all_discovered()
        assert all(
            e.ttr <= bounds.symmetric_wrapper_bound()
            for e in result.events.values()
        )


class TestHandshakeOverRendezvous:
    def test_identification_follows_copresence(self):
        """Mutual identification can only happen at or after the first
        co-presence the plain simulator reports."""
        n = 16
        a = Agent("a", repro.build_schedule({3, 7}, n))
        b = Agent("b", repro.build_schedule({7, 12}, n), wake_time=9)
        plain = Network([a, b]).run(20_000)
        copresence = plain.events[("a", "b")].time
        handshake = ChirpAndListen([a, b], seed=1).run(40_000)
        mutual = handshake.mutual_identification_time("a", "b")
        assert mutual is not None
        assert mutual >= copresence


class TestCrossAlgorithmIsolation:
    def test_different_algorithms_do_not_rendezvous_reliably(self):
        """Sanity: the guarantees are within-algorithm; deployments must
        not mix algorithms.  (Mixed pairs may still meet by luck; the
        point is the library keeps the schedules distinct.)"""
        n = 16
        paper = repro.build_schedule({3, 7}, n, algorithm="paper")
        crseq = repro.build_schedule({3, 7}, n, algorithm="crseq")
        window_paper = paper.materialize(0, 64)
        window_crseq = crseq.materialize(0, 64)
        assert list(window_paper) != list(window_crseq)

    def test_all_algorithms_only_play_available_channels(self):
        n = 16
        channels = {2, 9, 13}
        for algorithm in ("paper", "paper-sync", "paper-symmetric") + BASELINE_NAMES:
            sched = repro.build_schedule(channels, n, algorithm=algorithm)
            window = sched.materialize(0, 3000)
            assert set(int(c) for c in window) <= channels, algorithm


class TestDeterminismAcrossProcessBoundary:
    def test_schedules_are_pure_functions_of_inputs(self):
        """Anonymity + determinism: rebuilt schedules are identical."""
        n = 32
        for algorithm in ("paper", "crseq", "jump-stay", "drds"):
            s1 = repro.build_schedule({1, 17, 29}, n, algorithm=algorithm)
            s2 = repro.build_schedule({1, 17, 29}, n, algorithm=algorithm)
            assert list(s1.materialize(0, 500)) == list(s2.materialize(0, 500))

    def test_ttr_reproducible(self):
        n = 16
        a = repro.build_schedule({1, 9}, n)
        b = repro.build_schedule({9, 14}, n)
        first = [ttr_for_shift(a, b, s, 10_000) for s in range(0, 40)]
        second = [ttr_for_shift(a, b, s, 10_000) for s in range(0, 40)]
        assert first == second
