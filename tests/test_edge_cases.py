"""Edge cases across the library: degenerate universes, extreme sets.

The paper's math quietly assumes comfortable parameters; a library
cannot.  These tests pin the behaviour at the corners: the two-channel
universe, singleton sets, full-universe sets, and astronomically large
universes.
"""

from __future__ import annotations

import pytest

import repro
from repro.baselines import BASELINE_NAMES
from repro.core import bounds
from repro.core.epoch import EpochSchedule
from repro.core.pairwise import async_period, pair_schedule_async
from repro.core.symmetric import SymmetricWrappedSchedule
from repro.core.verification import ttr_for_shift, verify_guarantee


class TestTinyUniverse:
    def test_n2_pair_schedules_work(self):
        """n=2 has a single possible 2-set; the palette has one color."""
        a = pair_schedule_async(0, 1, 2)
        b = pair_schedule_async(0, 1, 2)
        ok, _, shift = verify_guarantee(a, b, async_period(2))
        assert ok, shift

    def test_n2_epoch_schedules(self):
        a = EpochSchedule([0, 1], 2)
        b = EpochSchedule([0], 2)
        assert ttr_for_shift(a, b, 3, bounds.theorem3_async_bound(2, 1, 2)) is not None

    @pytest.mark.parametrize("algorithm", ("paper",) + BASELINE_NAMES)
    def test_n2_all_algorithms(self, algorithm):
        a = repro.build_schedule([0, 1], 2, algorithm=algorithm)
        b = repro.build_schedule([1], 2, algorithm=algorithm)
        assert ttr_for_shift(a, b, 0, 200_000) is not None

    def test_n3_smallest_odd(self):
        a = EpochSchedule([0, 2], 3)
        b = EpochSchedule([1, 2], 3)
        bound = bounds.theorem3_async_bound(2, 2, 3)
        for shift in range(0, 50):
            assert ttr_for_shift(a, b, shift, bound + 1) is not None


class TestSingletons:
    def test_two_identical_singletons(self):
        a = EpochSchedule([5], 16)
        b = EpochSchedule([5], 16)
        assert ttr_for_shift(a, b, 123, 2) == 0  # both always on 5

    def test_singleton_wrapped(self):
        s = SymmetricWrappedSchedule(EpochSchedule([5], 16))
        assert set(s.materialize(0, 100)) == {5}

    def test_disjoint_singletons_never_meet(self):
        a = EpochSchedule([5], 16)
        b = EpochSchedule([6], 16)
        assert ttr_for_shift(a, b, 0, 10_000) is None


class TestFullUniverseSets:
    def test_full_set_schedules(self):
        n = 8
        a = EpochSchedule(range(n), n)
        b = EpochSchedule(range(n), n)
        bound = bounds.theorem3_async_bound(n, n, n)
        for shift in (0, 1, 7, 1000):
            assert ttr_for_shift(a, b, shift, bound + 1) is not None

    def test_full_vs_singleton(self):
        n = 8
        a = EpochSchedule(range(n), n)
        b = EpochSchedule([3], n)
        bound = bounds.theorem3_async_bound(n, 1, n)
        assert ttr_for_shift(a, b, 5, bound + 1) is not None

    @pytest.mark.parametrize("algorithm", BASELINE_NAMES)
    def test_full_sets_baselines(self, algorithm):
        n = 8
        a = repro.build_schedule(range(n), n, algorithm=algorithm)
        b = repro.build_schedule(range(n), n, algorithm=algorithm)
        assert ttr_for_shift(a, b, 11, 4 * a.period) is not None


class TestHugeUniverse:
    def test_pair_schedule_at_2_to_40(self):
        n = 1 << 40
        a = pair_schedule_async(123_456_789, 987_654_321_000, n)
        b = pair_schedule_async(987_654_321_000, 42, n)
        ok, worst, shift = verify_guarantee(a, b, async_period(n))
        assert ok, shift
        assert worst < async_period(n) <= 44

    def test_epoch_schedule_at_2_to_40(self):
        n = 1 << 40
        common = 5_000_000_000
        a = EpochSchedule([common, 17, 1 << 39], n)
        b = EpochSchedule([common, (1 << 40) - 1], n)
        bound = bounds.theorem3_async_bound(3, 2, n)
        for shift in (0, 1, 12345):
            ttr = ttr_for_shift(a, b, shift, bound + 1)
            assert ttr is not None and ttr <= bound

    def test_bounds_stay_small_at_huge_n(self):
        # k=l=3 at n = 2^40: the bound is a few thousand slots, not n^2.
        assert bounds.theorem3_async_bound(3, 3, 1 << 40) < 4000


class TestWakeTimeExtremes:
    def test_very_late_waker(self):
        from repro.sim import Agent, Network

        n = 16
        a = Agent("early", repro.build_schedule({3, 7}, n), wake_time=0)
        b = Agent("late", repro.build_schedule({7, 12}, n), wake_time=50_000)
        result = Network([a, b]).run(70_000)
        event = result.events[("early", "late")]
        assert event.time >= 50_000
        assert event.ttr <= bounds.theorem3_async_bound(2, 2, n)

    def test_simultaneous_wake(self):
        from repro.sim import Agent, Network

        n = 16
        agents = [
            Agent("x", repro.build_schedule({1, 2}, n)),
            Agent("y", repro.build_schedule({2, 3}, n)),
        ]
        result = Network(agents).run(10_000)
        assert ("x", "y") in result.events


class TestChannelNumbering:
    def test_nonconsecutive_channels(self):
        n = 1000
        a = EpochSchedule([0, 999], n)
        b = EpochSchedule([999], n)
        assert ttr_for_shift(a, b, 77, 10_000) is not None

    def test_channel_zero_everywhere(self):
        """Channel 0 has empty bit set X_0 — the coloring must cope."""
        n = 16
        for other in range(1, n):
            sched = pair_schedule_async(0, other, n)
            assert sched.channels == {0, other}
