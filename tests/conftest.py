"""Shared pytest fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

# One profile for the whole suite: property tests must be deterministic-ish
# in CI duration, and schedule verification can be slow per example.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for sampled (non-hypothesis) randomized tests."""
    return random.Random(0xC0FFEE)


def bits(min_size: int = 0, max_size: int = 24) -> st.SearchStrategy[str]:
    """Strategy producing binary strings."""
    return st.text(alphabet="01", min_size=min_size, max_size=max_size)


def even_bits(min_size: int = 0, max_size: int = 24) -> st.SearchStrategy[str]:
    """Strategy producing even-length binary strings."""
    return bits(min_size, max_size).filter(lambda s: len(s) % 2 == 0)


def balanced_bits(max_half: int = 10) -> st.SearchStrategy[str]:
    """Strategy producing balanced binary strings (equal 0s and 1s)."""

    def build(pair: tuple[int, random.Random]) -> str:
        half, shuffler = pair
        symbols = ["0"] * half + ["1"] * half
        shuffler.shuffle(symbols)
        return "".join(symbols)

    return st.tuples(
        st.integers(min_value=0, max_value=max_half), st.randoms(use_true_random=False)
    ).map(build)
