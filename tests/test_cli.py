"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_channel_list(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "--channels", "1,x", "--universe", "8"]
            )

    def test_empty_channel_list(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "--channels", "", "--universe", "8"]
            )

    def test_algorithm_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "--channels", "1", "--universe", "8",
                 "--algorithm", "quantum"]
            )


class TestScheduleCommand:
    def test_prints_slots(self, capsys):
        code = main(
            ["schedule", "--channels", "3,7", "--universe", "16", "--slots", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "period:" in out
        slots = out.strip().split("slots:")[1].split()
        assert len(slots) == 8
        assert set(slots) <= {"3", "7"}

    def test_baseline_algorithm(self, capsys):
        code = main(
            ["schedule", "--channels", "1,2", "--universe", "8",
             "--algorithm", "crseq", "--slots", "5"]
        )
        assert code == 0
        assert "crseq" in capsys.readouterr().out


class TestRendezvousCommand:
    def test_meeting_pair(self, capsys):
        code = main(
            ["rendezvous", "--a", "3,7", "--b", "7,11", "--universe", "16"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "common channels: [7]" in out
        assert "TTR at shift 0:" in out
        assert "analytic bound:" in out

    def test_disjoint_pair_fails(self, capsys):
        code = main(
            ["rendezvous", "--a", "1,2", "--b", "5,6", "--universe", "16",
             "--horizon", "500"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no rendezvous" in out

    def test_shift_respected(self, capsys):
        code = main(
            ["rendezvous", "--a", "3,7", "--b", "7,11", "--universe", "16",
             "--shift", "29"]
        )
        assert code == 0
        assert "shift 29" in capsys.readouterr().out


class TestBoundCommand:
    def test_prints_all_guarantees(self, capsys):
        code = main(["bound", "--k", "3", "--l", "4", "--universe", "32"])
        out = capsys.readouterr().out
        assert code == 0
        for label in ("Thm 3", "symmetric", "crseq", "jump-stay", "drds"):
            assert label in out


class TestSimulateCommand:
    def test_full_discovery(self, capsys):
        code = main(
            ["simulate", "--agents", "1,5/5,9/1,9", "--universe", "16"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all overlapping pairs met" in out
        assert "agent0-agent1" in out

    def test_insufficient_horizon_reports_unmet(self, capsys):
        code = main(
            ["simulate", "--agents", "1,5/5,9", "--universe", "16",
             "--horizon", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "unmet" in out


class TestNetsimCommand:
    ARGS = [
        "netsim", "--workload", "random_subsets", "--universe", "12",
        "--k", "3", "--agents", "120", "--wake-spread", "8",
        "--horizon", "100000",
    ]

    def test_vectorized_run(self, capsys):
        code = main(self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "engine:    vectorized" in out
        assert "cohorts" in out
        assert "full discovery: slot" in out
        assert "contended slots" in out

    def test_certify_subsample_parity(self, capsys):
        code = main(self.ARGS + ["--certify", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "30-agent subsample bit-identical" in out

    def test_json_round_trips(self, capsys):
        import json

        code = main(self.ARGS + ["--json", "--certify", "20", "--seed", "3"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["engine"] == "vectorized"
        assert payload["agents"] == 120
        assert payload["met_pairs"] == payload["overlapping_pairs"]
        assert payload["discovery_time"] is not None
        assert payload["parity"]["identical"] is True
        assert payload["seed"] == 3

    def test_pairwise_engine(self, capsys):
        code = main(
            ["netsim", "--workload", "symmetric", "--universe", "8",
             "--k", "3", "--agents", "20", "--engine", "pairwise",
             "--horizon", "5000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine:    pairwise" in out
        assert "cohorts" not in out

    def test_churn_can_strand_pairs(self, capsys):
        code = main(
            ["netsim", "--workload", "random_subsets", "--universe", "10",
             "--k", "3", "--agents", "40", "--churn", "0.9",
             "--churn-window", "2", "--horizon", "300", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "not reached" in out

    def test_store_dir_shares_tables(self, capsys, tmp_path):
        code = main(
            self.ARGS + ["--store-dir", str(tmp_path / "sched")]
        )
        assert code == 0
        assert "full discovery" in capsys.readouterr().out

    def test_zero_agents_rejected(self, capsys):
        code = main(
            ["netsim", "--workload", "random_subsets", "--universe", "12",
             "--agents", "0"]
        )
        assert code == 1
        assert "at least one agent" in capsys.readouterr().out

    def test_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.ARGS + ["--engine", "warp"])

    def test_workload_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["netsim", "--workload", "mystery", "--universe", "12",
                 "--agents", "5"]
            )

    def test_churn_fraction_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.ARGS + ["--churn", "1.5"])


class TestSweepCommand:
    def test_batched_sweep_table(self, capsys):
        code = main(
            ["sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
             "--dense", "4", "--probes", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "worst TTR" in out
        assert "0-1" in out and "1-2" in out
        assert "3 overlapping pairs swept" in out
        assert "cache hits" in out

    def test_sweep_zos_smoke(self, capsys):
        code = main(
            ["sweep", "--agents", "1,5,9/5,20/1,20,31", "--universe", "32",
             "--algorithm", "zos", "--dense", "8", "--probes", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm: zos" in out
        assert "3 overlapping pairs swept" in out

    def test_sweep_rejects_empty_plan(self, capsys):
        code = main(
            ["sweep", "--agents", "1,2/2,3", "--universe", "16",
             "--dense", "0", "--probes", "0"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "empty shift plan" in out

    def test_sweep_forced_stream_engine_matches_auto(self, capsys):
        args = [
            "sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
            "--dense", "4", "--probes", "4",
        ]
        assert main(args) == 0
        auto_out = capsys.readouterr().out
        assert main(args + ["--engine", "stream", "--tile-bytes", "4096"]) == 0
        stream_out = capsys.readouterr().out
        assert "engine:    stream" in stream_out
        # Identical measurements, modulo the engine/knob banner lines.
        banners = ("engine:", "tile bytes:", "stream workers:")
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith(banners)
        ]
        assert strip(auto_out) == strip(stream_out)

    def test_sweep_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--agents", "1,2/2,3", "--universe", "8",
                 "--engine", "quantum"]
            )

    def test_sweep_store_cap_requires_store_dir(self, capsys):
        code = main(
            ["sweep", "--agents", "1,2/2,3", "--universe", "8",
             "--store-cap", "1000"]
        )
        assert code == 2
        assert "--store-cap requires --store-dir" in capsys.readouterr().out

    def test_sweep_store_cap_is_honored(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        code = main(
            ["sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
             "--algorithm", "crseq", "--dense", "4", "--probes", "4",
             "--store-dir", store_dir, "--store-cap", "7000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # crseq tables at n=16 are ~7 KiB each: under a 7000-byte cap at
        # most one survives on disk at a time.
        from repro.core.store import ScheduleStore

        assert ScheduleStore(store_dir).total_bytes() <= 7000

    def test_sweep_reports_miss(self, capsys):
        # The dense prefix alternates 0, -1, 1, ...; dense=130 reaches
        # shift -64, which cannot meet within a one-slot horizon, so the
        # sweep must fail and say so.
        code = main(
            ["sweep", "--agents", "1,2/1,2", "--universe", "16",
             "--horizon", "1", "--dense", "130", "--probes", "0"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "sweep failed" in out


class TestStoreCommand:
    def test_prewarm_then_sweep_attaches(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        code = main(
            ["store", "prewarm", "--agents", "1,5/5,9/1,9", "--universe", "16",
             "--algorithm", "drds", "--store-dir", store_dir]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 built" in out
        code = main(
            ["sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
             "--algorithm", "drds", "--dense", "4", "--probes", "4",
             "--store-dir", store_dir]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 built, 3 attached" in out

    def test_inspect_lists_entries(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        main(
            ["store", "prewarm", "--agents", "1,5/5,9", "--universe", "16",
             "--store-dir", store_dir]
        )
        capsys.readouterr()
        code = main(["store", "inspect", "--store-dir", store_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 entries" in out
        assert "digest" in out and "period" in out

    def test_evict_all_and_by_digest(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        main(
            ["store", "prewarm", "--agents", "1,5/5,9", "--universe", "16",
             "--store-dir", store_dir]
        )
        capsys.readouterr()
        code = main(["store", "evict", "--store-dir", store_dir, "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evicted 2 entries" in out
        code = main(
            ["store", "evict", "--store-dir", store_dir, "--digest", "deadbeef"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no such entry" in out

    def test_store_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestWalkCommand:
    def test_plots(self, capsys):
        code = main(["walk", "--bits", "110100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "/" in out and "\\" in out


class TestStreamTuningFlags:
    def test_stream_workers_and_auto_tile_match_default(self, capsys):
        args = [
            "sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
            "--dense", "4", "--probes", "4",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        tuned = args + [
            "--engine", "stream", "--stream-workers", "2", "--tile-bytes", "auto",
        ]
        assert main(tuned) == 0
        tuned_out = capsys.readouterr().out
        assert "stream workers: 2 per pair" in tuned_out
        banners = ("engine:", "tile bytes:", "stream workers:")
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith(banners)
        ]
        assert strip(default_out) == strip(tuned_out)

    def test_tile_bytes_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--agents", "1,2/2,3", "--universe", "8",
                 "--tile-bytes", "huge"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--agents", "1,2/2,3", "--universe", "8",
                 "--tile-bytes", "-4"]
            )

    def test_stream_workers_rejects_negative(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--agents", "1,2/2,3", "--universe", "8",
                 "--stream-workers", "-2"]
            )


class TestServeCommand:
    ARGS = [
        "serve", "--a", "1,5,9", "--b", "5,12", "--universe", "16",
        "--algorithm", "zos", "--horizon", "100000",
    ]

    def test_cold_miss_computes_then_warm_hit_serves(self, capsys, tmp_path):
        results = str(tmp_path / "results")
        assert main(self.ARGS + ["--results-dir", results]) == 0
        cold = capsys.readouterr().out
        assert "source: computed" in cold
        assert "worst TTR:" in cold
        assert "result cache" in cold
        assert main(self.ARGS + ["--results-dir", results]) == 0
        warm = capsys.readouterr().out
        assert "source: cache hit" in warm
        # The served answer is the computed one, verbatim.
        pick = lambda out: [
            line for line in out.splitlines() if line.startswith("worst TTR:")
        ]
        assert pick(warm)[0].replace("cache hit", "computed") == pick(cold)[0]

    def test_json_mode_round_trips(self, capsys, tmp_path):
        import json

        results = str(tmp_path / "results")
        assert main(self.ARGS + ["--results-dir", results, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["source"] == "computed"
        assert cold["query"]["algorithm"] == "zos"
        assert main(self.ARGS + ["--results-dir", results, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["source"] == "cache hit"
        assert warm["digest"] == cold["digest"]
        assert warm["worst_ttr"] == cold["worst_ttr"]
        assert warm["stats"] == cold["stats"]

    def test_serve_with_schedule_store(self, capsys, tmp_path):
        code = main(
            self.ARGS
            + [
                "--results-dir", str(tmp_path / "results"),
                "--store-dir", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert (tmp_path / "store").is_dir()

    def test_read_root_requires_store_dir(self, capsys, tmp_path):
        code = main(
            self.ARGS
            + [
                "--results-dir", str(tmp_path / "results"),
                "--read-root", str(tmp_path / "warm"),
            ]
        )
        assert code == 2
        assert "--read-root requires --store-dir" in capsys.readouterr().out

    def test_disjoint_pair_fails_cleanly(self, capsys, tmp_path):
        code = main(
            [
                "serve", "--a", "1,2", "--b", "3,4", "--universe", "16",
                "--horizon", "10000",
                "--results-dir", str(tmp_path / "results"),
            ]
        )
        assert code == 1
        assert "serve failed" in capsys.readouterr().out


class TestSweepServiceFlags:
    ARGS = [
        "sweep", "--agents", "1,5,9/5,12/1,12", "--universe", "16",
        "--algorithm", "zos", "--horizon", "100000",
    ]

    def test_results_dir_caches_across_runs(self, capsys, tmp_path):
        results = str(tmp_path / "results")
        assert main(self.ARGS + ["--results-dir", results]) == 0
        cold = capsys.readouterr().out
        assert "result cache" in cold and "3 writes" in cold
        assert main(self.ARGS + ["--results-dir", results]) == 0
        warm = capsys.readouterr().out
        assert "3 hits" in warm and "0 misses" in warm

        def table(out):
            return [l for l in out.splitlines() if l[:3].count("-") == 1]

        assert table(warm) == table(cold) and len(table(cold)) == 3

    def test_checkpoint_roundtrip_and_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        assert main(self.ARGS + ["--checkpoint-dir", ckpt]) == 0
        first = capsys.readouterr().out
        assert list((tmp_path / "ckpt").glob("*.ckpt.json")) == []
        assert main(self.ARGS + ["--checkpoint-dir", ckpt, "--resume"]) == 0
        second = capsys.readouterr().out
        assert [l for l in second.splitlines() if l and l[0].isdigit()] == [
            l for l in first.splitlines() if l and l[0].isdigit()
        ]

    def test_fresh_run_discards_stale_checkpoints(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        stale = ckpt / "deadbeef.ckpt.json"
        stale.write_text("{}")
        assert main(self.ARGS + ["--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        assert not stale.exists()

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().out

    def test_checkpoint_rejects_batched_engine(self, capsys, tmp_path):
        code = main(
            self.ARGS
            + ["--checkpoint-dir", str(tmp_path / "c"), "--engine", "batched"]
        )
        assert code == 2
        assert "streaming engine" in capsys.readouterr().out

    def test_read_root_requires_store_dir(self, capsys, tmp_path):
        code = main(self.ARGS + ["--read-root", str(tmp_path / "warm")])
        assert code == 2
        assert "--read-root requires --store-dir" in capsys.readouterr().out

    def test_read_root_attaches_warm_corpus(self, capsys, tmp_path):
        warm = str(tmp_path / "warm")
        assert main(
            [
                "store", "prewarm", "--agents", "1,5,9/5,12/1,12",
                "--universe", "16", "--algorithm", "zos", "--store-dir", warm,
            ]
        ) == 0
        capsys.readouterr()
        local = str(tmp_path / "local")
        assert main(
            self.ARGS + ["--store-dir", local, "--read-root", warm]
        ) == 0
        out = capsys.readouterr().out
        assert "0 built, 3 attached" in out


class TestSweepEnvironmentFlags:
    ARGS = [
        "sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
        "--dense", "4", "--probes", "4",
    ]

    def test_environment_adds_missed_column_and_digest(self, capsys):
        code = main(self.ARGS + ["--environment", "fading:p=0.0,seed=1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "environment: " in out
        assert "missed" in out
        rows = [l for l in out.splitlines() if l[:3].count("-") == 1]
        assert len(rows) == 3
        # Zero intensity: the missed column is identically zero.
        assert all(row.split()[-1] == "0" for row in rows)

    def test_clean_output_unchanged_by_feature(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "missed" not in out
        assert "environment:" not in out

    def test_malformed_environment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                self.ARGS + ["--environment", "solarflare:p=0.1"]
            )

    def test_degradation_requires_environment(self, capsys):
        code = main(self.ARGS + ["--degradation", "5000"])
        assert code == 2
        assert "--degradation requires --environment" in capsys.readouterr().out

    def test_degradation_report_round_trips(self, capsys):
        import json

        code = main(
            self.ARGS
            + ["--environment", "fading:p=0.0,seed=1",
               "--degradation", "100000"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["mode"] == "degradation"
        assert payload["algorithm"] == "paper"
        assert payload["bound"] == 100000
        assert payload["environment"]["kind"] == "fading"
        assert len(payload["environment_digest"]) == 32
        assert len(payload["pairs"]) == 3
        for row in payload["pairs"]:
            # Zero intensity: every shift survives with inflation 1.0.
            assert row["ok"] is True
            assert row["survival_fraction"] == 1.0
            assert row["lost_shifts"] == []
            assert row["faulted_worst"] == row["clean_worst"]
            assert row["inflation_max"] == 1.0

    def test_degradation_unmet_bound_fails(self, capsys):
        import json

        code = main(
            self.ARGS
            + ["--environment", "fading:p=0.0,seed=1", "--degradation", "1"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert any(row["ok"] is False for row in payload["pairs"])


class TestNetsimEnvironmentFlags:
    ARGS = [
        "netsim", "--workload", "random_subsets", "--universe", "12",
        "--k", "3", "--agents", "120", "--wake-spread", "8",
        "--horizon", "100000",
    ]

    def test_environment_banner_line(self, capsys):
        code = main(self.ARGS + ["--environment", "fading:p=0.0,seed=1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "environment: " in out

    def test_certify_probes_masked_paths(self, capsys):
        code = main(self.ARGS + ["--certify", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        assert "clean + masked: fading, pu-churn" in out

    def test_certify_json_includes_per_probe_checks(self, capsys):
        import json

        code = main(
            self.ARGS
            + ["--json", "--certify", "20", "--seed", "3",
               "--environment", "fading:p=0.0,seed=1"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        checks = payload["parity"]["checks"]
        assert set(checks) == {"clean", "fading", "pu-churn", "requested"}
        assert all(checks.values())
        assert payload["parity"]["identical"] is True
        assert isinstance(payload["environment"], str)
        assert len(payload["environment"]) == 32


class TestTelemetryFlag:
    SWEEP = [
        "sweep", "--agents", "1,5,9/5,20/1,20,31", "--universe", "32",
        "--algorithm", "jump-stay", "--dense", "4", "--probes", "4",
        "--engine", "stream", "--stream-workers", "1",
    ]

    def test_sweep_telemetry_json_is_last_line(self, capsys):
        import json

        from repro.core import telemetry

        code = main(self.SWEEP + ["--telemetry", "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overlapping pairs swept" in out  # normal output intact
        payload = json.loads(out.strip().splitlines()[-1])
        snap = payload["telemetry"]
        assert payload["wall_seconds"] > 0
        # Root spans fit inside the measured wall time (shared clock).
        assert 0 < snap["total_seconds"] <= payload["wall_seconds"] * 1.25
        assert "runner.serial" in snap["spans"] or (
            "runner.pool_fanout" in snap["spans"]
        )
        # The flag is scoped to the one invocation: off afterwards.
        assert not telemetry.enabled()
        assert telemetry.snapshot()["spans"] == {}

    def test_sweep_telemetry_text_tree(self, capsys):
        code = main(self.SWEEP + ["--telemetry", "text"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry:" in out
        assert "s wall)" in out
        assert "stream.tile_assembly" in out
        assert "counters:" in out

    def test_sweep_without_flag_emits_no_tree(self, capsys):
        code = main(self.SWEEP)
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry:" not in out

    def test_serve_json_reports_latency_and_store_counters(
        self, capsys, tmp_path
    ):
        import json

        args = [
            "serve", "--a", "1,5,9", "--b", "5,12", "--universe", "16",
            "--algorithm", "zos", "--horizon", "100000",
            "--results-dir", str(tmp_path / "results"),
        ]
        assert main(args + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["source"] == "computed"
        assert cold["latency_seconds"] > 0
        assert main(args + ["--json", "--telemetry", "json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        warm = json.loads(lines[0])
        tree = json.loads(lines[-1])
        assert warm["source"] == "cache hit"
        assert warm["latency_seconds"] > 0
        counters = tree["telemetry"]["counters"]
        assert counters["store.result.hits"] == 1

    def test_serve_text_reports_latency(self, capsys, tmp_path):
        args = [
            "serve", "--a", "1,5,9", "--b", "5,12", "--universe", "16",
            "--algorithm", "zos", "--horizon", "100000",
            "--results-dir", str(tmp_path / "results"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "source: computed" in out
        assert "latency: " in out and " ms" in out

    def test_netsim_accepts_telemetry(self, capsys):
        import json

        code = main(
            ["netsim", "--workload", "random_subsets", "--universe", "16",
             "--k", "3", "--agents", "40", "--algorithm", "jump-stay",
             "--horizon", "20000", "--json", "--telemetry", "json"]
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        tree = json.loads(lines[-1])
        counters = tree["telemetry"]["counters"]
        assert counters["netsim.chunks"] >= 1
        assert "netsim.assemble" in tree["telemetry"]["spans"]


class TestBackendAndPairMajorFlags:
    ARGS = [
        "sweep", "--agents", "1,5/5,9/1,9", "--universe", "16",
        "--dense", "4", "--probes", "4",
    ]

    @staticmethod
    def _strip(text):
        banners = ("engine:", "backend:", "pair-major:", "tile bytes:")
        return [
            line for line in text.splitlines()
            if not line.startswith(banners)
        ]

    def test_pair_major_on_off_and_auto_agree(self, capsys):
        assert main(self.ARGS) == 0
        auto_out = capsys.readouterr().out
        assert main(self.ARGS + ["--pair-major", "on"]) == 0
        on_out = capsys.readouterr().out
        assert main(self.ARGS + ["--pair-major", "off"]) == 0
        off_out = capsys.readouterr().out
        assert "pair-major: on" in on_out
        assert "pair-major: off" in off_out
        assert self._strip(auto_out) == self._strip(on_out)
        assert self._strip(auto_out) == self._strip(off_out)

    def test_explicit_backend_matches_default(self, capsys):
        assert main(self.ARGS) == 0
        auto_out = capsys.readouterr().out
        assert main(self.ARGS + ["--backend", "numpy"]) == 0
        numpy_out = capsys.readouterr().out
        assert main(self.ARGS + ["--backend", "recording",
                                 "--engine", "stream"]) == 0
        recording_out = capsys.readouterr().out
        assert "backend:   numpy" in numpy_out
        assert "backend:   recording" in recording_out
        assert self._strip(auto_out) == self._strip(numpy_out)
        assert self._strip(auto_out) == self._strip(recording_out)

    def test_entry_point_backend_spec(self, capsys):
        assert main(
            self.ARGS + ["--backend", "repro.core.backend:NumpyBackend"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend:   repro.core.backend:NumpyBackend" in out

    def test_unknown_backend_fails_before_sweeping(self, capsys):
        code = main(self.ARGS + ["--backend", "warp-drive"])
        out = capsys.readouterr().out
        assert code == 2
        assert "sweep failed:" in out

    def test_non_numpy_backend_needs_stream_engine(self, capsys):
        code = main(
            self.ARGS + ["--backend", "recording", "--engine", "batched"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "streaming engine" in out

    def test_pair_major_on_rejects_batched_engine(self, capsys):
        code = main(self.ARGS + ["--pair-major", "on", "--engine", "batched"])
        out = capsys.readouterr().out
        assert code == 2
        assert "needs the streaming engine" in out

    def test_pair_major_on_rejects_checkpointing(self, capsys, tmp_path):
        code = main(
            self.ARGS + ["--pair-major", "on",
                         "--checkpoint-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "--checkpoint-dir" in out

    def test_pair_major_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--agents", "1,2/2,3", "--universe", "8",
                 "--pair-major", "sometimes"]
            )
