"""Tests for the exact small-case Rs(n,2) solver."""

from __future__ import annotations

import pytest

from repro.core.pairwise import pair_schedule_sync, sync_period
from repro.lowerbounds.exhaustive import (
    assignment_feasible,
    exact_rs2,
    required_tuples,
    sync_feasible,
)


class TestRequiredTuples:
    def test_disjoint(self):
        assert required_tuples((0, 1), (2, 3)) == []

    def test_identical(self):
        assert required_tuples((0, 1), (0, 1)) == []

    def test_shared_min(self):
        assert required_tuples((0, 1), (0, 2)) == [(0, 0)]

    def test_shared_max(self):
        assert required_tuples((0, 2), (1, 2)) == [(1, 1)]

    def test_path_forward(self):
        assert required_tuples((0, 1), (1, 2)) == [(1, 0)]

    def test_path_backward(self):
        assert required_tuples((1, 2), (0, 1)) == [(0, 1)]

    def test_unordered_rejected(self):
        with pytest.raises(ValueError):
            required_tuples((1, 0), (0, 1))


class TestAssignmentFeasible:
    def test_good_assignment(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        strings = {
            (0, 1): (0, 1, 1),
            (0, 2): (0, 1, 0),
            (1, 2): (0, 0, 1),
        }
        # shared min (0,1)/(0,2): (0,0) at t=0 OK;
        # path (0,1)/(1,2): need (1,0): t=1: (1,0) OK;
        # shared max (0,2)/(1,2): need (1,1): t=2? (0,1) t2=(0,1) -> NO.
        assert not assignment_feasible(edges, strings)

    def test_partial_assignment_checked(self):
        edges = [(0, 1), (0, 2)]
        strings = {(0, 1): (1,), (0, 2): (1,)}
        assert not assignment_feasible(edges, strings)  # no (0,0)


class TestSyncFeasible:
    def test_n2_trivial(self):
        assert sync_feasible(2, 1)

    def test_n3_exact_value(self):
        """Rs(3,2) = 3: T = 2 is infeasible (hand-checkable: the three
        pairwise constraints (0,0)/(1,0)/(1,1) cannot be packed into two
        slots), T = 3 works."""
        assert sync_feasible(3, 1) is False
        assert sync_feasible(3, 2) is False
        assert sync_feasible(3, 3) is True

    def test_n4_exact_value(self):
        assert exact_rs2(4, T_max=4) == 3

    def test_budget_exhaustion_returns_none(self):
        assert sync_feasible(5, 3, node_budget=5) is None

    def test_small_universe_validation(self):
        with pytest.raises(ValueError):
            sync_feasible(1, 2)


class TestAsyncExact:
    def test_minimum_self_compatible_length_is_six(self):
        """A cyclic string realizing (0,0) and (1,1) against every
        rotation of itself needs length >= 6 — and the paper's Section
        3.2 pattern 010011 is exactly length 6: it is length-optimal."""
        import itertools

        from repro.lowerbounds.exhaustive import _self_compatible, cyclic_pair_ok

        for T in range(1, 6):
            assert not any(
                _self_compatible(c) for c in itertools.product((0, 1), repeat=T)
            ), T
        paper_pattern = (0, 1, 0, 0, 1, 1)
        assert _self_compatible(paper_pattern)
        assert cyclic_pair_ok(paper_pattern, paper_pattern, [(0, 0), (1, 1)])

    def test_exact_ra2_values(self):
        from repro.lowerbounds.exhaustive import exact_ra2

        assert exact_ra2(2, T_max=7) == 6
        assert exact_ra2(3, T_max=8) == 7

    def test_async_harder_than_sync(self):
        """Ra(n,2) >= Rs(n,2): shift-0 is one of the async constraints."""
        from repro.lowerbounds.exhaustive import exact_ra2

        assert exact_ra2(2, T_max=7) >= exact_rs2(2, T_max=7)
        assert exact_ra2(3, T_max=8) >= exact_rs2(3, T_max=8)

    def test_construction_within_constant_of_optimal(self):
        from repro.core.pairwise import async_period
        from repro.lowerbounds.exhaustive import exact_ra2

        exact = exact_ra2(3, T_max=8)
        assert exact is not None
        # async_period(3) = 32: within ~5x of the exact optimum 7.
        assert async_period(3) <= 5 * exact

    def test_async_feasible_validation(self):
        from repro.lowerbounds.exhaustive import async_feasible

        with pytest.raises(ValueError):
            async_feasible(1, 4)
        assert async_feasible(2, 0) is False

    def test_budget_exhaustion(self):
        from repro.lowerbounds.exhaustive import async_feasible

        assert async_feasible(4, 8, node_budget=3) is None


class TestAgainstConstruction:
    def test_paper_construction_feasible_at_its_period(self):
        """Our C-based schedule family is a witness that
        Rs(n,2) <= sync_period(n): check the assignment directly."""
        n = 8
        T = sync_period(n)
        edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
        strings = {}
        for a, b in edges:
            sched = pair_schedule_sync(a, b, n)
            bits = tuple(
                0 if sched.channel_at(t) == a else 1 for t in range(T)
            )
            strings[(a, b)] = bits
        assert assignment_feasible(edges, strings)

    def test_exact_values_below_construction(self):
        """Exhaustive optimum is at most the construction's period."""
        for n in (3, 4):
            exact = exact_rs2(n, T_max=4)
            assert exact is not None
            assert exact <= sync_period(n)
