"""Tests for Ramsey witness finding."""

from __future__ import annotations

import pytest

from repro.core.pairwise import async_pair_string
from repro.core.ramsey import color_bits, edge_color
from repro.lowerbounds.ramsey_witness import (
    find_monochromatic_path,
    ramsey_universe_threshold,
    truncation_witness,
)


class TestThreshold:
    def test_known_values(self):
        import math

        assert ramsey_universe_threshold(0) == math.ceil(math.e)  # 1 color
        assert ramsey_universe_threshold(1) == math.ceil(2 * math.e)

    def test_growth_is_doubly_exponential_ish(self):
        assert ramsey_universe_threshold(2) < ramsey_universe_threshold(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ramsey_universe_threshold(-1)


class TestWitnessFinding:
    def test_constant_family_has_witness(self):
        """Everyone playing the same string: any path is monochromatic."""
        witness = find_monochromatic_path(lambda a, b: "0101", 5)
        assert witness is not None
        a, b, c = witness
        assert a < b < c

    def test_paper_family_has_no_witness(self):
        """The Ramsey coloring guarantees distinct strings on paths."""
        n = 32
        def string_of_edge(a: int, b: int) -> str:
            return async_pair_string(color_bits(edge_color(a, b, n), n))
        assert find_monochromatic_path(string_of_edge, n) is None

    def test_truncation_creates_witness(self):
        """Cutting the paper's schedule to 0 slots leaves everyone with
        the empty string -> instant witness.  (With enough channels even
        moderate truncations fail; T=0 demonstrates the mechanism
        deterministically.)"""
        n = 16
        def string_of_edge(a: int, b: int) -> str:
            return async_pair_string(color_bits(edge_color(a, b, n), n))
        assert truncation_witness(string_of_edge, n, 0) is not None

    def test_identity_colors_distinct_enough(self):
        """Distinct strings everywhere -> no witness even on paths."""
        def string_of_edge(a: int, b: int) -> str:
            return f"{a}-{b}"
        assert find_monochromatic_path(string_of_edge, 10) is None
