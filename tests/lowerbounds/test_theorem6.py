"""Tests for the executable Theorem 6 adversary."""

from __future__ import annotations

import pytest

from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.lowerbounds.theorem6 import (
    Theorem6Witness,
    find_violation,
    partition_requirements_infeasible,
    verify_violation,
)


def constant_min_builder(channels, n):
    """A (bad) family: always sit on the smallest channel."""
    return ConstantSchedule(min(channels))


def round_robin_builder(channels, n):
    """A natural-looking family: cycle through the set in order."""
    return CyclicSchedule(sorted(channels))


def staggered_builder(channels, n):
    """Family whose rare-channel *slot position* varies per set.

    Rotations of a round robin keep the rare channel at a fixed slot, so
    to dodge the pigeonhole the occurrence pattern itself must differ:
    even-index sets play their rare channel last, odd-index sets in the
    middle.
    """
    a, b = sorted(channels)[:2]
    if (a // len(channels)) % 2 == 0:
        return CyclicSchedule([a, a, b])
    return CyclicSchedule([a, b, a])


class TestFindViolation:
    def test_constant_family_yields_witness(self):
        # Constant schedules: every non-min channel appears 0 < alpha
        # times; the A-sets collide immediately.
        witness = find_violation(constant_min_builder, n=32, k=2, alpha=2)
        assert witness is not None
        assert len(witness.probe_set) == 2
        assert len(witness.requirement_sets) == 2
        assert witness.horizon == 3

    def test_round_robin_yields_witness_with_enough_sets(self):
        # Round robin over k channels in horizon alpha*k - 1: the last
        # channel appears < alpha times; slot sets coincide by phase.
        witness = find_violation(round_robin_builder, n=64, k=2, alpha=2)
        assert witness is not None

    def test_phase_aligned_family_collides_even_small(self):
        # Round robin has identical phases in every partition set, so the
        # A-sets coincide immediately — the pigeonhole fires at n = 4.
        assert find_violation(round_robin_builder, n=4, k=2, alpha=2) is not None

    def test_staggered_family_escapes_small_universe(self):
        # With staggered rare-slot positions and only 2 partition sets,
        # the A-sets differ: no collision, no witness (the theorem's
        # pigeonhole needs a larger universe to force one).
        assert find_violation(staggered_builder, n=4, k=2, alpha=2) is None

    def test_staggered_family_caught_at_larger_universe(self):
        # ... but with more partition sets than patterns, the pigeonhole
        # fires anyway — the theorem's point.
        assert find_violation(staggered_builder, n=12, k=2, alpha=2) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            find_violation(round_robin_builder, n=8, k=0, alpha=1)


class TestVerifyViolation:
    def test_constant_family_violation_confirmed(self):
        n, k, alpha = 32, 2, 2
        witness = find_violation(constant_min_builder, n, k, alpha)
        assert witness is not None
        assert verify_violation(constant_min_builder, witness, n)

    def test_pigeonhole_core_holds(self):
        witness = find_violation(constant_min_builder, 32, 2, 2)
        assert witness is not None
        assert partition_requirements_infeasible(witness)

    def test_witness_structure(self):
        witness = find_violation(constant_min_builder, 32, 3, 2)
        if witness is None:
            pytest.skip("pigeonhole did not fire at this size")
        # Probe channels come one from each requirement set.
        for channel, req in zip(sorted(witness.probe_set), witness.requirement_sets):
            assert any(channel in r for r in witness.requirement_sets)


class TestAgainstPaperConstruction:
    def test_paper_schedule_survives_at_its_own_horizon(self):
        """The paper's synchronous schedule has Rs bound >> alpha*k - 1
        only when T is genuinely below the lower bound; at tiny alpha the
        adversary may or may not fire — but when it does, the violation
        must be *verifiable* (internal consistency of the harness)."""
        from repro.core.epoch import EpochSchedule

        def builder(channels, n):
            return EpochSchedule(channels, n, asynchronous=False)

        n, k, alpha = 32, 2, 2
        witness = find_violation(builder, n, k, alpha)
        if witness is None:
            pytest.skip("no pigeonhole collision for this family/size")
        # Horizon 3 slots is far below the construction's ~150-slot
        # bound, so a genuine miss within 3 slots is expected.
        assert verify_violation(builder, witness, n)
