"""Tests for the Theorem 7 density harness."""

from __future__ import annotations

import pytest

from repro.core.epoch import EpochSchedule
from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.lowerbounds.density import (
    mean_density,
    occurrence_density,
    search_hard_instance,
)


class TestOccurrenceDensity:
    def test_constant_schedule(self):
        assert occurrence_density(ConstantSchedule(3), 3, 100) == 1.0
        assert occurrence_density(ConstantSchedule(3), 4, 100) == 0.0

    def test_cyclic_split(self):
        s = CyclicSchedule([1, 2, 1, 1])
        assert occurrence_density(s, 1, 400) == 0.75

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            occurrence_density(ConstantSchedule(1), 1, 0)


class TestMeanDensity:
    def test_expectation_is_one_over_k(self):
        """Theorem 7's first expectation: E[Delta] = 1/k for any family
        (every slot plays exactly one channel of the set)."""
        def builder(channels, n):
            return EpochSchedule(channels, n)

        for k in (2, 3, 4):
            mean = mean_density(builder, 12, k, horizon=2000, samples=30, seed=1)
            assert abs(mean - 1 / k) < 0.25 / k


class TestHardInstanceSearch:
    def test_finds_witness_scaling_with_kl(self):
        """For the paper's schedule the worst found TTR must be at least
        k*l-ish (the lower bound says it cannot be below ~k*l; the upper
        bound says O(k l loglog n))."""
        def builder(channels, n):
            return EpochSchedule(channels, n)

        n, k, l = 16, 3, 3
        witness = search_hard_instance(
            builder, n, k, l,
            instances=6, shifts_per_instance=20,
            horizon=60_000, seed=2, extra_shifts=range(0, 40, 5),
        )
        assert witness.kl_product == 9
        assert witness.ttr >= k * l  # the Omega(kl) floor
        assert len(witness.a_set & witness.b_set) == 1

    def test_miss_raises(self):
        def bad_builder(channels, n):
            # Always plays the minimum: disjoint-min instances never meet.
            return ConstantSchedule(min(channels))

        with pytest.raises(AssertionError, match="missed"):
            search_hard_instance(
                bad_builder, 12, 3, 3,
                instances=8, shifts_per_instance=4, horizon=100, seed=0,
            )
