"""Tests for the multi-agent simulator."""

from __future__ import annotations

import pytest

import repro
from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.sim.agent import Agent
from repro.sim.network import Network


class TestNetworkBasics:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Network([Agent("x", ConstantSchedule(1)), Agent("x", ConstantSchedule(1))])

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            Network([Agent("x", ConstantSchedule(1))]).run(0)

    def test_immediate_rendezvous(self):
        net = Network(
            [Agent("a", ConstantSchedule(3)), Agent("b", ConstantSchedule(3))]
        )
        result = net.run(10)
        event = result.events[("a", "b")]
        assert event.time == 0
        assert event.ttr == 0
        assert event.channel == 3

    def test_ttr_measured_from_later_wake(self):
        net = Network(
            [
                Agent("a", ConstantSchedule(3), wake_time=0),
                Agent("b", ConstantSchedule(3), wake_time=7),
            ]
        )
        event = net.run(20).events[("a", "b")]
        assert event.time == 7
        assert event.ttr == 0

    def test_disjoint_sets_never_meet(self):
        net = Network(
            [Agent("a", ConstantSchedule(1)), Agent("b", ConstantSchedule(2))]
        )
        result = net.run(100)
        assert result.events == {}
        assert result.overlapping_pairs() == []
        assert result.all_discovered()

    def test_first_meeting_only(self):
        a = Agent("a", CyclicSchedule([1, 2]))
        b = Agent("b", CyclicSchedule([1, 2]))
        result = Network([a, b]).run(50)
        assert result.events[("a", "b")].time == 0

    def test_chunked_scan_consistency(self):
        a = Agent("a", CyclicSchedule([1, 2, 3, 4, 5]), wake_time=3)
        b = Agent("b", CyclicSchedule([9, 9, 9, 5, 9]), wake_time=0)
        big = Network([a, b]).run(1000)
        small = Network([a, b]).run(1000, chunk=7)
        assert big.events == small.events


class TestSimulationResult:
    def _three_agents(self):
        # Pairwise overlapping; all three coincide on channel 1 at t=1.
        return [
            Agent("a", CyclicSchedule([1, 1, 2])),
            Agent("b", CyclicSchedule([2, 1, 3])),
            Agent("c", CyclicSchedule([3, 1, 1])),
        ]

    def test_overlapping_pairs(self):
        result = Network(self._three_agents()).run(10)
        assert result.overlapping_pairs() == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_discovery_time(self):
        result = Network(self._three_agents()).run(50)
        assert result.all_discovered()
        assert result.discovery_time() == max(e.time for e in result.events.values())

    def test_unmet_pairs_reported(self):
        # Out-of-phase alternation never meets.
        agents = [
            Agent("a", CyclicSchedule([1, 2])),
            Agent("b", CyclicSchedule([2, 1])),
        ]
        result = Network(agents).run(40)
        assert result.unmet_pairs() == [("a", "b")]
        assert result.discovery_time() is None


class TestEngineSelection:
    def _network(self, count):
        schedule = ConstantSchedule(1)
        return Network([Agent(f"a{i}", schedule) for i in range(count)])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            self._network(2).resolve_engine("turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            self._network(2).run(10, engine="turbo")

    def test_explicit_engines_pass_through(self):
        net = self._network(2)
        assert net.resolve_engine("pairwise") == "pairwise"
        assert net.resolve_engine("vectorized") == "vectorized"

    def test_auto_threshold(self):
        from repro.sim.network import AUTO_VECTORIZE_MIN_AGENTS

        small = self._network(AUTO_VECTORIZE_MIN_AGENTS - 1)
        large = self._network(AUTO_VECTORIZE_MIN_AGENTS)
        assert small.resolve_engine("auto") == "pairwise"
        assert large.resolve_engine("auto") == "vectorized"

    def test_engines_agree_on_result_type(self):
        agents = [
            Agent("a", CyclicSchedule([1, 2])),
            Agent("b", CyclicSchedule([2, 1])),
            Agent("c", ConstantSchedule(1)),
        ]
        pairwise = Network(agents).run(100, engine="pairwise")
        vectorized = Network(agents).run(100, engine="vectorized")
        assert vectorized.events == pairwise.events
        assert vectorized.overlapping_pairs() == pairwise.overlapping_pairs()


class TestPairwiseMaterializeSkip:
    def test_only_pending_agents_materialized(self, monkeypatch):
        """The reference loop must not materialize agents with no pending
        pair — met pairs and no-overlap agents stop paying per chunk."""
        calls: dict[str, int] = {}
        original = Agent.materialize_global

        def spy(self, start, stop):
            calls[self.name] = calls.get(self.name, 0) + 1
            return original(self, start, stop)

        monkeypatch.setattr(Agent, "materialize_global", spy)
        agents = [
            Agent("a", ConstantSchedule(1)),
            Agent("b", CyclicSchedule([1, 2])),
            Agent("d", ConstantSchedule(2), wake_time=20),
            Agent("e", ConstantSchedule(7)),
        ]
        result = Network(agents).run(40, chunk=8, engine="pairwise")
        # a-b meet at slot 0; b-d meet at slot 21 (third chunk); e
        # overlaps nobody and must never be materialized.
        assert result.events[("a", "b")].time == 0
        assert result.events[("b", "d")].time == 21
        assert calls == {"a": 1, "b": 3, "d": 3}


class TestEndToEndPaperSchedules:
    def test_paper_schedules_full_discovery(self):
        """Five agents with overlapping sets, paper algorithm: everyone
        discovers everyone within the analytic bound."""
        n = 16
        sets = [
            {1, 5, 9},
            {5, 11},
            {9, 11, 14},
            {1, 14},
            {5, 9, 14},
        ]
        agents = [
            Agent(f"agent{i}", repro.build_schedule(s, n), wake_time=13 * i)
            for i, s in enumerate(sets)
        ]
        result = Network(agents).run(60_000)
        assert result.all_discovered(), result.unmet_pairs()

    def test_meeting_channel_is_common(self):
        n = 16
        a = Agent("a", repro.build_schedule({3, 7}, n))
        b = Agent("b", repro.build_schedule({7, 12}, n), wake_time=5)
        result = Network([a, b]).run(10_000)
        event = result.events[("a", "b")]
        assert event.channel == 7
