"""Tests for TTR metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import summarize_ttrs


class TestSummarize:
    def test_single_sample(self):
        stats = summarize_ttrs([7])
        assert stats.count == 1
        assert stats.mean == 7
        assert stats.median == 7
        assert stats.maximum == 7
        assert stats.minimum == 7

    def test_known_distribution(self):
        stats = summarize_ttrs([1, 2, 3, 4, 5])
        assert stats.mean == 3
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.minimum == 1

    def test_percentile_interpolation(self):
        stats = summarize_ttrs([0, 10])
        assert stats.median == 5
        assert stats.p95 == 9.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ttrs([])

    def test_as_row(self):
        row = summarize_ttrs([1, 2, 3]).as_row()
        assert row["count"] == 3
        assert row["mean"] == 2.0
        assert set(row) == {"count", "mean", "median", "p95", "max", "min"}

    def test_unsorted_input(self):
        stats = summarize_ttrs([5, 1, 3])
        assert stats.minimum == 1
        assert stats.maximum == 5
