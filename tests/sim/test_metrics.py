"""Tests for TTR and population-discovery metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.metrics import (
    DiscoveryProfile,
    channel_contention,
    discovery_throughput,
    summarize_discovery,
    summarize_ttrs,
)


class TestSummarize:
    def test_single_sample(self):
        stats = summarize_ttrs([7])
        assert stats.count == 1
        assert stats.mean == 7
        assert stats.median == 7
        assert stats.maximum == 7
        assert stats.minimum == 7

    def test_known_distribution(self):
        stats = summarize_ttrs([1, 2, 3, 4, 5])
        assert stats.mean == 3
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.minimum == 1

    def test_percentile_interpolation(self):
        stats = summarize_ttrs([0, 10])
        assert stats.median == 5
        assert stats.p95 == 9.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ttrs([])

    def test_as_row(self):
        row = summarize_ttrs([1, 2, 3]).as_row()
        assert row["count"] == 3
        assert row["mean"] == 2.0
        assert set(row) == {"count", "mean", "median", "p95", "max", "min"}

    def test_unsorted_input(self):
        stats = summarize_ttrs([5, 1, 3])
        assert stats.minimum == 1
        assert stats.maximum == 5


def profile(times, weights, total):
    return DiscoveryProfile(
        times=np.array(times, dtype=np.int64),
        weights=np.array(weights, dtype=np.int64),
        overlapping_pairs=total,
    )


class TestDiscoveryProfile:
    def test_met_pairs_sums_weights(self):
        assert profile([1, 4, 4], [2, 1, 3], 10).met_pairs == 6

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            profile([5, 3], [1, 1], 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            profile([1, 2], [1], 2)

    def test_empty_profile(self):
        assert profile([], [], 0).met_pairs == 0


class TestSummarizeDiscovery:
    def test_full_discovery_milestones(self):
        # 10 pairs total: 5 met at slot 2, 4 at slot 7, 1 at slot 30.
        stats = summarize_discovery(profile([2, 7, 30], [5, 4, 1], 10))
        assert stats.met_pairs == 10
        assert stats.discovery_time == 30
        assert stats.milestones[0.5] == 2
        assert stats.milestones[0.9] == 7
        assert stats.milestones[0.99] == 30
        assert stats.milestones[1.0] == 30

    def test_partial_discovery(self):
        stats = summarize_discovery(profile([2], [5], 10))
        assert stats.discovery_time is None
        assert stats.milestones[0.5] == 2
        assert stats.milestones[0.9] is None

    def test_zero_pairs_trivially_discovered(self):
        stats = summarize_discovery(profile([], [], 0))
        assert stats.discovery_time == 0
        assert stats.milestones[1.0] == 0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            summarize_discovery(profile([1], [1], 1), quantiles=(1.5,))

    def test_as_row(self):
        row = summarize_discovery(profile([2, 7], [1, 1], 2)).as_row()
        assert row["discovery_time"] == 7
        assert row["t0.5"] == 2
        assert row["t1"] == 7


class TestDiscoveryThroughput:
    def test_breakpoints_merge_equal_times(self):
        curve = discovery_throughput(profile([1, 1, 5], [2, 3, 4], 9))
        assert curve == [(1, 5), (5, 9)]

    def test_downsample_keeps_final_point(self):
        times = list(range(100))
        curve = discovery_throughput(
            profile(times, [1] * 100, 100), num_points=5
        )
        assert len(curve) == 5
        assert curve[-1] == (99, 100)

    def test_empty(self):
        assert discovery_throughput(profile([], [], 0)) == []


class _FakeResult:
    def __init__(self, contended, colocated):
        self.contended_slots = np.array(contended, dtype=np.int64)
        self.pair_colocations = np.array(colocated, dtype=np.int64)


class TestChannelContention:
    def test_ranked_by_colocated_pairs(self):
        rows = channel_contention(_FakeResult([3, 0, 5], [4, 0, 90]))
        assert [r["channel"] for r in rows] == [2, 0]
        assert rows[0] == {
            "channel": 2,
            "contended_slots": 5,
            "colocated_pairs": 90,
        }

    def test_top_trims(self):
        rows = channel_contention(_FakeResult([1, 1, 1], [1, 2, 3]), top=1)
        assert len(rows) == 1
        assert rows[0]["channel"] == 2

    def test_quiet_network_empty(self):
        assert channel_contention(_FakeResult([0, 0], [0, 0])) == []
