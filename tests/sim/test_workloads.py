"""Tests for the workload generators."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import workloads as wl


class TestInstance:
    def test_rejects_empty_set(self):
        with pytest.raises(ValueError, match="empty"):
            wl.Instance(4, [frozenset()], "test")

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError, match="outside"):
            wl.Instance(4, [frozenset({5})], "test")

    def test_overlapping_pairs(self):
        inst = wl.Instance(
            8, [frozenset({1, 2}), frozenset({2, 3}), frozenset({5})], "test"
        )
        assert inst.overlapping_pairs() == [(0, 1)]

    def test_num_agents(self):
        inst = wl.Instance(8, [frozenset({1})] * 3, "test")
        assert inst.num_agents == 3


class TestRandomSubsets:
    def test_sizes(self):
        inst = wl.random_subsets(16, 4, 10, seed=1)
        assert all(len(s) == 4 for s in inst.sets)

    def test_deterministic(self):
        assert wl.random_subsets(16, 4, 5, seed=2).sets == wl.random_subsets(
            16, 4, 5, seed=2
        ).sets

    def test_seed_changes_outcome(self):
        assert wl.random_subsets(16, 4, 5, seed=1).sets != wl.random_subsets(
            16, 4, 5, seed=2
        ).sets

    def test_validation(self):
        with pytest.raises(ValueError):
            wl.random_subsets(4, 5, 1)

    @given(st.integers(2, 64), st.data())
    def test_subsets_within_universe(self, n, data):
        k = data.draw(st.integers(1, n))
        inst = wl.random_subsets(n, k, 4, seed=7)
        for s in inst.sets:
            assert s <= frozenset(range(n))


class TestSingleOverlap:
    def test_exactly_one_common(self):
        inst = wl.single_overlap(32, 5, 7, seed=3)
        a, b = inst.sets
        assert len(a) == 5 and len(b) == 7
        assert len(a & b) == 1

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            wl.single_overlap(8, 5, 5)


class TestSymmetric:
    def test_all_identical(self):
        inst = wl.symmetric(16, 3, 5, seed=0)
        assert len(set(inst.sets)) == 1
        assert len(inst.sets) == 5


class TestCoalitionBands:
    def test_band_structure(self):
        inst = wl.coalition_bands(
            64, band_width=8, agents_per_band=3, num_bands=4, overlap=2, seed=0
        )
        assert inst.num_agents == 12
        stride = 6
        for idx, s in enumerate(inst.sets):
            band = idx // 3
            lo = band * stride
            assert s <= set(range(lo, lo + 8))

    def test_adjacent_bands_can_overlap(self):
        inst = wl.coalition_bands(
            64, band_width=8, agents_per_band=4, num_bands=4, overlap=2, seed=1
        )
        # With boundary channels forced, some cross-band pair overlaps.
        cross = [
            (i, j)
            for i, j in inst.overlapping_pairs()
            if i // 4 != j // 4
        ]
        assert cross

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            wl.coalition_bands(16, band_width=8, agents_per_band=1, num_bands=4)
        with pytest.raises(ValueError):
            wl.coalition_bands(64, band_width=2, agents_per_band=1, num_bands=2, overlap=2)


class TestWhitespace:
    def test_anchor_guarantees_overlap(self):
        inst = wl.whitespace(32, 6, seed=4)
        anchor_sets = [s for s in inst.sets]
        common = frozenset.intersection(*anchor_sets)
        assert common  # the anchor channel is in every set

    def test_asymmetry_occurs(self):
        inst = wl.whitespace(64, 8, incumbent_load=0.3, sensing_noise=0.25, seed=5)
        assert len(set(inst.sets)) > 1

    def test_load_validation(self):
        with pytest.raises(ValueError):
            wl.whitespace(16, 2, incumbent_load=1.0)


class TestAvailableOverlap:
    def test_core_shared_by_every_pair(self):
        inst = wl.available_overlap(64, 6, 5, rho=0.5, seed=1)
        assert all(len(s) == 6 for s in inst.sets)
        assert inst.metadata["core_size"] == 3
        common = frozenset.intersection(*inst.sets)
        assert len(common) >= 3

    def test_rho_one_is_symmetric(self):
        inst = wl.available_overlap(32, 4, 3, rho=1.0, seed=2)
        assert len(set(inst.sets)) == 1

    def test_rho_zero_keeps_one_common(self):
        inst = wl.available_overlap(32, 4, 3, rho=0.0, seed=3)
        assert inst.metadata["core_size"] == 1
        assert frozenset.intersection(*inst.sets)

    def test_deterministic(self):
        assert (
            wl.available_overlap(32, 4, 3, rho=0.5, seed=4).sets
            == wl.available_overlap(32, 4, 3, rho=0.5, seed=4).sets
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="overlap fraction"):
            wl.available_overlap(32, 4, 3, rho=1.5)
        with pytest.raises(ValueError):
            wl.available_overlap(4, 5, 1, rho=0.5)

    @given(st.integers(2, 40), st.data())
    def test_every_pair_overlaps(self, n, data):
        k = data.draw(st.integers(1, max(1, n // 2)))
        rho = data.draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
        inst = wl.available_overlap(n, k, 4, rho=rho, seed=9)
        assert len(inst.overlapping_pairs()) == 6


class TestAdversarialSingleCommon:
    def test_every_pair_exactly_one_common(self):
        inst = wl.adversarial_single_common(64, 5, 4, seed=0)
        assert all(len(s) == 5 for s in inst.sets)
        for i, j in inst.overlapping_pairs():
            assert len(inst.sets[i] & inst.sets[j]) == 1
        assert len(inst.overlapping_pairs()) == 6

    def test_common_channel_is_global(self):
        inst = wl.adversarial_single_common(64, 4, 5, seed=1)
        assert len(frozenset.intersection(*inst.sets)) == 1

    def test_size_validation(self):
        with pytest.raises(ValueError):
            wl.adversarial_single_common(8, 4, 4)
        with pytest.raises(ValueError):
            wl.adversarial_single_common(8, 0, 2)

    def test_k_one_collapses_to_shared_singleton(self):
        inst = wl.adversarial_single_common(16, 1, 3, seed=2)
        assert len(set(inst.sets)) == 1
        assert all(len(s) == 1 for s in inst.sets)


class TestNested:
    def test_chain_is_nested(self):
        inst = wl.nested(32, [2, 5, 9], seed=6)
        a, b, c = inst.sets
        assert a < b < c

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            wl.nested(32, [5, 2])

    def test_size_limit(self):
        with pytest.raises(ValueError):
            wl.nested(4, [2, 8])
