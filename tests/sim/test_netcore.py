"""Certification and unit tests for the vectorized network core.

The central contract: ``engine="vectorized"`` must produce events
*bit-identical* to the pairwise reference loop — same pairs, same slot,
same channel, same TTR — across every workload family, mixed wake
times, churn, and chunk sizes smaller than one schedule period.  The
same pattern certifies the streaming sweep engine against
``ttr_sweep_stream_serial``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.sim import workloads
from repro.sim.agent import Agent
from repro.sim.netcore import (
    LEAVE,
    LEAVE_NEVER,
    WAKE,
    EventWheel,
    NetResult,
    Population,
    simulate_population,
)
from repro.sim.network import Network


def build_agents(instance, universe, *, wake=None, leave=None, algorithm="paper"):
    """Agents over an Instance, sharing one Schedule per distinct set.

    ``wake``/``leave`` map an agent index to its wake/leave slot (leave
    ``None`` means the agent never departs).  Sharing schedule objects
    is what lets the vectorized core group agents into cohorts.
    """
    schedules = {}
    agents = []
    for i, channels in enumerate(instance.sets):
        if channels not in schedules:
            schedules[channels] = repro.build_schedule(
                channels, universe, algorithm
            )
        agents.append(
            Agent(
                f"agent{i}",
                schedules[channels],
                wake(i) if wake else 0,
                leave(i) if leave else None,
            )
        )
    return agents


def assert_engines_agree(agents, horizon, chunk=1 << 14, environment=None):
    """Run both engines and require bit-identical event dictionaries."""
    reference = Network(agents).run(
        horizon, chunk=chunk, engine="pairwise", environment=environment
    )
    candidate = Network(agents).run(
        horizon, chunk=chunk, engine="vectorized", environment=environment
    )
    assert candidate.events == reference.events
    return reference


WORKLOADS = [
    ("random_subsets", lambda: workloads.random_subsets(12, 3, 24, seed=1)),
    ("symmetric", lambda: workloads.symmetric(10, 4, 18, seed=2)),
    ("single_overlap", lambda: workloads.single_overlap(14, 4, 5, seed=3)),
    (
        "coalition_bands",
        lambda: workloads.coalition_bands(16, 4, 5, 3, seed=4),
    ),
    ("whitespace", lambda: workloads.whitespace(12, 16, seed=5)),
    ("nested", lambda: workloads.nested(12, [2, 3, 5, 7], seed=6)),
    (
        "available_overlap",
        lambda: workloads.available_overlap(12, 4, 16, 0.5, seed=7),
    ),
    (
        "adversarial_single_common",
        lambda: workloads.adversarial_single_common(12, 3, 5, seed=8),
    ),
]


class TestEngineParity:
    @pytest.mark.parametrize(
        "name,make", WORKLOADS, ids=[name for name, _ in WORKLOADS]
    )
    def test_workload_parity_mixed_wakes(self, name, make):
        instance = make()
        agents = build_agents(instance, instance.n, wake=lambda i: (7 * i) % 23)
        assert_engines_agree(agents, 120_000)

    def test_chunk_smaller_than_period(self):
        """Chunks far below one schedule period must not change events."""
        instance = workloads.random_subsets(16, 3, 12, seed=9)
        agents = build_agents(instance, 16, wake=lambda i: 5 * i)
        full = assert_engines_agree(agents, 90_000, chunk=513)
        tiny = Network(agents).run(90_000, chunk=97, engine="vectorized")
        assert tiny.events == full.events

    def test_no_overlap_population(self):
        """Disjoint channel sets: zero pairs, zero events, both engines."""
        agents = [
            Agent("a", ConstantSchedule(0)),
            Agent("b", ConstantSchedule(1), wake_time=3),
            Agent("c", ConstantSchedule(2)),
        ]
        reference = assert_engines_agree(agents, 500)
        assert reference.events == {}
        population = Population.from_agents(agents)
        net = simulate_population(population, 500)
        assert net.overlapping_pairs == 0
        assert net.all_discovered()
        assert net.discovery_time() == 0

    def test_churn_parity(self):
        """Agents leaving mid-run produce identical events on both engines."""
        instance = workloads.random_subsets(12, 3, 20, seed=10)
        leaves = {3: 1, 7: 40, 11: 500, 15: 2}
        agents = build_agents(
            instance,
            12,
            wake=lambda i: (3 * i) % 11,
            leave=lambda i: leaves.get(i),
        )
        assert_engines_agree(agents, 60_000, chunk=97)

    def test_wake_beyond_horizon(self):
        """An agent waking after the horizon behaves as absent."""
        schedule = repro.build_schedule({1, 4}, 8)
        agents = [
            Agent("a", schedule),
            Agent("b", schedule, wake_time=10_000),
        ]
        assert_engines_agree(agents, 100)

    def test_intra_cohort_pairs(self):
        """Agents sharing one schedule object and wake slot meet at wake."""
        schedule = repro.build_schedule({2, 5, 9}, 12)
        agents = [Agent(f"a{i}", schedule, wake_time=4) for i in range(5)]
        agents.append(Agent("late", schedule, wake_time=9))
        reference = assert_engines_agree(agents, 50_000, chunk=7)
        for i in range(5):
            for j in range(i + 1, 5):
                assert reference.events[(f"a{i}", f"a{j}")].time == 4


class TestEnvironmentParity:
    """Masked runs: both engines agree under every fault family."""

    @pytest.mark.parametrize(
        "name,make", WORKLOADS, ids=[name for name, _ in WORKLOADS]
    )
    def test_workload_parity_under_fading(self, name, make):
        from repro.core.environment import FadingMisses

        instance = make()
        agents = build_agents(instance, instance.n, wake=lambda i: (7 * i) % 23)
        assert_engines_agree(
            agents, 60_000, chunk=257, environment=FadingMisses(0.3, seed=2)
        )

    def test_parity_under_churn_and_composition(self):
        from repro.core.environment import (
            AsymmetricSensing,
            FadingMisses,
            PrimaryUserChurn,
            compose,
        )

        instance = workloads.random_subsets(12, 3, 20, seed=12)
        agents = build_agents(instance, 12, wake=lambda i: (5 * i) % 17)
        for env in (
            PrimaryUserChurn(0.4, seed=3, dwell=32),
            AsymmetricSensing(0.3, seed=4),
            compose(FadingMisses(0.15, seed=5), PrimaryUserChurn(0.2, seed=6, dwell=16)),
        ):
            assert_engines_agree(agents, 60_000, chunk=129, environment=env)

    def test_zero_intensity_equals_clean(self):
        from repro.core.environment import FadingMisses, PrimaryUserChurn, compose

        instance = workloads.random_subsets(12, 3, 16, seed=13)
        agents = build_agents(instance, 12, wake=lambda i: 3 * i)
        clean = Network(agents).run(60_000, chunk=97, engine="vectorized")
        zero = compose(FadingMisses(0.0, seed=9), PrimaryUserChurn(0.0, seed=9))
        for engine in ("pairwise", "vectorized"):
            masked = Network(agents).run(
                60_000, chunk=97, engine=engine, environment=zero
            )
            assert masked.events == clean.events

    def test_intra_cohort_first_valid_slot(self):
        """A faded wake slot delays the intra-cohort meeting to the
        first mask-validated slot, identically on both engines."""
        from repro.core.environment import FadingMisses

        schedule = repro.build_schedule({2, 5, 9}, 12)
        agents = [Agent(f"a{i}", schedule, wake_time=4) for i in range(3)]
        env = FadingMisses(0.6, seed=7)
        reference = assert_engines_agree(
            agents, 50_000, chunk=7, environment=env
        )
        clean = assert_engines_agree(agents, 50_000, chunk=7)
        masked_time = reference.events[("a0", "a1")].time
        assert masked_time >= clean.events[("a0", "a1")].time
        for i in range(3):
            for j in range(i + 1, 3):
                assert reference.events[(f"a{i}", f"a{j}")].time == masked_time

    def test_churned_agents_under_mask(self):
        """Departures and fault masks interact identically on both engines."""
        from repro.core.environment import PrimaryUserChurn

        instance = workloads.random_subsets(12, 3, 20, seed=10)
        leaves = {3: 1, 7: 40, 11: 500, 15: 2}
        agents = build_agents(
            instance,
            12,
            wake=lambda i: (3 * i) % 11,
            leave=lambda i: leaves.get(i),
        )
        assert_engines_agree(
            agents,
            60_000,
            chunk=97,
            environment=PrimaryUserChurn(0.5, seed=8, dwell=8),
        )


class TestProperties:
    def test_seeded_determinism(self):
        """Identical seeds give identical populations and identical runs."""

        def run():
            instance = workloads.random_subsets(12, 3, 30, seed=11)
            rng = np.random.default_rng(11)
            agents = build_agents(
                instance,
                12,
                wake=lambda i: int(rng.integers(0, 16)),
                leave=lambda i: int(rng.integers(50, 5000))
                if rng.random() < 0.3
                else None,
            )
            population = Population.from_agents(agents)
            return Network(agents).run(30_000, engine="vectorized"), population

        first, pop_a = run()
        second, pop_b = run()
        assert first.events == second.events
        assert pop_a.num_cohorts == pop_b.num_cohorts
        assert np.array_equal(pop_a.cohort_wake, pop_b.cohort_wake)

    def test_removing_nonparticipant_preserves_events(self):
        """Dropping an agent sharing no channel with anyone changes nothing
        for the surviving pairs, on both engines."""
        instance = workloads.random_subsets(10, 3, 12, seed=12)
        agents = build_agents(instance, 10, wake=lambda i: i % 5)
        # The bystander lives on channels 10..12, outside everyone's sets.
        bystander = Agent(
            "bystander", CyclicSchedule([10, 11, 12]), wake_time=2
        )
        with_extra = Network(agents + [bystander]).run(
            40_000, engine="vectorized"
        )
        without = Network(agents).run(40_000, engine="vectorized")
        surviving = {
            pair: event
            for pair, event in with_extra.events.items()
            if "bystander" not in pair
        }
        assert surviving == without.events

    def test_churn_determinism(self):
        """Churn runs repeat bit-identically under a fixed seed."""
        instance = workloads.symmetric(10, 3, 16, seed=13)

        def run():
            agents = build_agents(
                instance,
                10,
                wake=lambda i: (5 * i) % 13,
                leave=lambda i: 30 + 7 * i if i % 3 == 0 else None,
            )
            return Network(agents).run(20_000, engine="vectorized").events

        assert run() == run()


class TestEventWheel:
    def test_push_pop_sorted(self):
        wheel = EventWheel(chunk=10)
        wheel.push(25, LEAVE, 1)
        wheel.push(21, WAKE, 2)
        wheel.push(21, WAKE, 0)
        wheel.push(5, WAKE, 3)
        assert len(wheel) == 4
        assert wheel.pop(2) == [(21, WAKE, 0), (21, WAKE, 2), (25, LEAVE, 1)]
        assert wheel.pop(2) == []
        assert wheel.pop(0) == [(5, WAKE, 3)]
        assert len(wheel) == 0

    def test_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            EventWheel(chunk=0)


class TestPopulation:
    def test_cohort_grouping(self):
        shared = repro.build_schedule({1, 3}, 8)
        other = repro.build_schedule({3, 6}, 8)
        agents = [
            Agent("a", shared, wake_time=0),
            Agent("b", shared, wake_time=0),
            Agent("c", shared, wake_time=5),
            Agent("d", other, wake_time=0),
            Agent("e", shared, wake_time=0, leave_time=99),
        ]
        population = Population.from_agents(agents)
        assert population.num_agents == 5
        # (shared,0,never) x2; (shared,5,never); (other,0,never);
        # (shared,0,99) — four distinct keys -> 4 cohorts.
        assert population.num_cohorts == 4
        assert sorted(population.cohort_size.tolist()) == [1, 1, 1, 2]
        assert len(population.schedules) == 2

    def test_from_columns_validation(self):
        schedule = ConstantSchedule(1)
        with pytest.raises(ValueError, match="schedule_index"):
            Population.from_columns([schedule], np.array([0, 1]), np.zeros(2))
        with pytest.raises(ValueError, match="wake"):
            Population.from_columns([schedule], np.zeros(1), np.array([-1]))

    def test_schedule_overlap(self):
        a = repro.build_schedule({1, 2}, 8)
        b = repro.build_schedule({2, 3}, 8)
        c = repro.build_schedule({4, 5}, 8)
        agents = [Agent("a", a), Agent("b", b), Agent("c", c)]
        population = Population.from_agents(agents)
        overlap = population.schedule_overlap()
        labels = {
            tuple(sorted(population.schedules[i].channels)): i
            for i in range(len(population.schedules))
        }
        ia, ib, ic = labels[(1, 2)], labels[(2, 3)], labels[(4, 5)]
        assert overlap[ia, ib] and not overlap[ia, ic] and not overlap[ib, ic]
        assert overlap[ia, ia]

    def test_leave_never_sentinel(self):
        agents = [Agent("a", ConstantSchedule(1))]
        population = Population.from_agents(agents)
        assert population.cohort_leave[0] == LEAVE_NEVER


class TestNetResult:
    def _population(self):
        schedule = repro.build_schedule({1, 4}, 8)
        agents = [
            Agent("a", schedule),
            Agent("b", schedule),
            Agent("c", schedule, wake_time=3),
        ]
        return Population.from_agents(agents)

    def test_weighted_accounting(self):
        net = simulate_population(self._population(), 10_000)
        assert net.overlapping_pairs == 3
        assert net.met_pairs() == 3
        assert net.all_discovered()
        events = dict()
        for i, j, t, channel in net.iter_agent_events():
            events[(i, j)] = (t, channel)
        assert len(events) == 3
        assert events[(0, 1)][0] == 0  # intra-cohort pair meets at wake

    def test_early_stop_vs_full_horizon(self):
        population = self._population()
        stopped = simulate_population(population, 10_000)
        full = simulate_population(population, 10_000, early_stop=False)
        assert stopped.slots_simulated < full.slots_simulated
        assert full.slots_simulated == 10_000
        profile_a = stopped.discovery_profile()
        profile_b = full.discovery_profile()
        assert np.array_equal(profile_a.times, profile_b.times)
        assert np.array_equal(profile_a.weights, profile_b.weights)
        # Contention counters keep accumulating after the last meeting.
        assert full.contended_slots.sum() >= stopped.contended_slots.sum()

    def test_contention_counters(self):
        # Two agents pinned to channel 2 forever: every simulated slot is
        # contended on channel 2 with exactly one co-located pair.
        agents = [
            Agent("a", ConstantSchedule(2)),
            Agent("b", ConstantSchedule(2)),
        ]
        net = simulate_population(
            Population.from_agents(agents), 50, early_stop=False
        )
        assert net.slots_simulated == 50
        assert net.contended_slots[2] == 50
        assert net.pair_colocations[2] == 50
        assert net.contended_slots.sum() == 50

    def test_validation(self):
        population = self._population()
        with pytest.raises(ValueError, match="horizon"):
            simulate_population(population, 0)
        with pytest.raises(ValueError, match="chunk"):
            simulate_population(population, 10, chunk=0)
