"""Tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.core.schedule import CyclicSchedule
from repro.core.store import ScheduleStore, store_key
from repro.sim import runner
from repro.sim.workloads import Instance, random_subsets, single_overlap


class TestShiftPlan:
    def test_deterministic(self):
        a, b = CyclicSchedule([1, 2, 3]), CyclicSchedule([3, 2, 1])
        assert runner.shift_plan(a, b, seed=5) == runner.shift_plan(a, b, seed=5)

    def test_dense_prefix_straddles_zero(self):
        a, b = CyclicSchedule(list(range(100))), CyclicSchedule(list(range(100)))
        plan = runner.shift_plan(a, b, dense=10, probes=0)
        assert plan == [0, -1, 1, -2, 2, -3, 3, -4, 4, -5]

    def test_probes_cover_both_wake_orders(self):
        # Distinct shift classes are [-period_B + 1, period_A): negative
        # shifts (B wakes first) act mod period_B and must be sampled too.
        a, b = CyclicSchedule([1] * 50), CyclicSchedule([1] * 20)
        plan = runner.shift_plan(a, b, dense=0, probes=40, seed=1)
        assert len(plan) == 40
        assert all(-20 < s < 50 for s in plan)
        assert any(s < 0 for s in plan), "probes must cover B-wakes-first"
        assert any(s > 20 for s in plan), "probes must reach past period_B"

    def test_probes_clamped_to_joint_cap(self):
        a, b = CyclicSchedule([1] * 50), CyclicSchedule([1] * 20)
        plan = runner.shift_plan(a, b, dense=0, probes=30, seed=1, joint_cap=10)
        assert all(-10 <= s < 10 for s in plan)

    def test_dense_prefix_clamped_to_small_periods(self):
        a, b = CyclicSchedule([1, 2]), CyclicSchedule([2, 1])
        plan = runner.shift_plan(a, b, dense=10, probes=0)
        assert plan == [0, -1, 1]


class TestMeasurePairwise:
    def test_paper_algorithm_single_overlap(self):
        inst = single_overlap(16, 3, 3, seed=2)
        measured = runner.measure_pairwise(
            inst, "paper", (0, 1), horizon=50_000, dense=16, probes=16
        )
        assert measured.algorithm == "paper"
        assert measured.worst_ttr == measured.stats.maximum
        assert measured.stats.count == 32

    def test_miss_raises(self):
        # Two disjoint sets passed explicitly as a pair: runner must
        # detect the miss and raise, not silently continue.
        inst = Instance(8, [frozenset({1}), frozenset({2})], "manual")
        with pytest.raises(AssertionError, match="missed rendezvous"):
            runner.measure_pairwise(inst, "paper", (0, 1), horizon=200)

    @pytest.mark.parametrize("algorithm", ["paper", "crseq", "jump-stay", "random"])
    def test_all_algorithms_measurable(self, algorithm):
        inst = single_overlap(8, 2, 2, seed=1)
        measured = runner.measure_pairwise(
            inst, algorithm, (0, 1), horizon=100_000, dense=8, probes=8
        )
        assert measured.worst_ttr >= 0


class TestMeasureInstance:
    def test_all_pairs_measured(self):
        inst = random_subsets(16, 4, 4, seed=3)
        results = runner.measure_instance(
            inst, "paper", horizon=60_000, dense=4, probes=4
        )
        assert len(results) == len(inst.overlapping_pairs())

    def test_max_pairs_cap(self):
        inst = random_subsets(16, 8, 5, seed=4)
        results = runner.measure_instance(
            inst, "paper", horizon=60_000, max_pairs=2, dense=2, probes=2
        )
        assert len(results) == 2


class TestSweepRunner:
    def test_schedule_cache_deduplicates_builds(self):
        # 5 agents, all pairs overlapping: 10 pairs = 20 schedule
        # lookups, but only 5 distinct channel sets to build.
        inst = random_subsets(16, 8, 5, seed=4)
        engine = runner.SweepRunner(workers=1)
        results = engine.measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert len(results) == len(inst.overlapping_pairs())
        assert engine.cache_misses == len(inst.sets)
        assert engine.cache_hits == 2 * len(results) - engine.cache_misses

    def test_random_baseline_cache_keyed_by_seed(self):
        inst = Instance(8, [frozenset({1, 2}), frozenset({2, 3})], "manual")
        engine = runner.SweepRunner(workers=1)
        engine.measure_pair(inst, "random", (0, 1), horizon=100_000, dense=4, probes=4)
        # Same channel sets, different per-agent seeds: no false sharing.
        assert engine.cache_misses == 2
        engine.measure_pair(inst, "random", (0, 1), horizon=100_000, dense=4, probes=4)
        assert engine.cache_misses == 2
        assert engine.cache_hits == 2

    def test_parallel_matches_serial(self):
        inst = random_subsets(16, 8, 5, seed=4)  # 10 overlapping pairs
        serial = runner.SweepRunner(workers=1).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        parallel = runner.SweepRunner(workers=2).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert serial == parallel

    def test_small_jobs_stay_serial(self, monkeypatch):
        inst = random_subsets(16, 4, 3, seed=3)  # at most 3 pairs

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("process pool must not start for small jobs")

        monkeypatch.setattr(runner, "ProcessPoolExecutor", boom)
        engine = runner.SweepRunner(workers=4)
        results = engine.measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert len(results) == len(inst.overlapping_pairs())


class TestSweepRunnerStore:
    def test_store_accepts_directory_path(self, tmp_path):
        engine = runner.SweepRunner(workers=1, store=tmp_path)
        assert isinstance(engine.store, ScheduleStore)
        assert engine.store.store_dir == tmp_path

    def test_serial_parity_store_on_vs_off(self, tmp_path):
        inst = random_subsets(16, 8, 5, seed=4)
        plain = runner.SweepRunner(workers=1).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        stored = runner.SweepRunner(workers=1, store=tmp_path).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert plain == stored

    def test_parallel_parity_store_on_vs_off(self, tmp_path):
        inst = random_subsets(16, 8, 5, seed=4)  # 10 overlapping pairs
        plain = runner.SweepRunner(workers=2).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        stored = runner.SweepRunner(workers=2, store=tmp_path).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert plain == stored

    def test_parallel_sweep_builds_each_table_exactly_once(self, tmp_path):
        # The store's acceptance contract: one build per distinct
        # (channels, n, algorithm, seed) key per sweep, asserted via the
        # build counter — workers only attach what the parent prewarmed.
        inst = random_subsets(16, 8, 5, seed=4)  # 10 pairs, 5 distinct sets
        engine = runner.SweepRunner(workers=2, store=tmp_path)
        engine.measure_instance(inst, "paper", horizon=60_000, dense=2, probes=2)
        distinct = {
            store_key(s, inst.n, "paper", 0) for s in inst.sets
        }
        assert engine.store.builds == len(distinct)
        assert len(engine.store.entries()) == len(distinct)
        # A second sweep over the same instance builds nothing new.
        engine.measure_instance(inst, "paper", horizon=60_000, dense=2, probes=2)
        assert engine.store.builds == len(distinct)

    def test_prewarm_touches_each_distinct_key_once(self, tmp_path):
        inst = random_subsets(16, 8, 5, seed=4)
        engine = runner.SweepRunner(workers=1, store=tmp_path)
        touched = engine.prewarm(inst, "drds")
        assert touched == len(set(inst.sets))
        assert engine.store.builds == len(set(inst.sets))
        # Prewarming again attaches (store) / hits (local cache) only.
        engine.prewarm(inst, "drds")
        assert engine.store.builds == len(set(inst.sets))

    def test_prewarm_warns_when_working_set_exceeds_cap(self, tmp_path):
        # 5 distinct paper tables at n=16 do not fit under a tiny cap:
        # prewarming must warn that workers will rebuild the evicted rest.
        inst = random_subsets(16, 8, 5, seed=4)
        engine = runner.SweepRunner(
            workers=1, store=ScheduleStore(tmp_path, memory_cap=2048)
        )
        with pytest.warns(RuntimeWarning, match="workers will rebuild"):
            engine.prewarm(inst, "paper")

    def test_random_baseline_store_keys_by_seed(self, tmp_path):
        inst = Instance(8, [frozenset({1, 2}), frozenset({2, 3})], "manual")
        engine = runner.SweepRunner(workers=1, store=tmp_path)
        engine.measure_pair(inst, "random", (0, 1), horizon=100_000, dense=4, probes=4)
        assert engine.store.builds == 2  # distinct per-agent seeds
        plain = runner.SweepRunner(workers=1)
        expected = plain.measure_pair(
            inst, "random", (0, 1), horizon=100_000, dense=4, probes=4
        )
        again = engine.measure_pair(
            inst, "random", (0, 1), horizon=100_000, dense=4, probes=4
        )
        assert again == expected


class TestWorkerBudget:
    """One worker budget, split across pairs vs within a pair."""

    def test_big_jobs_give_processes_to_pairs(self):
        engine = runner.SweepRunner(workers=4)
        assert engine.worker_budget(runner.MIN_PARALLEL_PAIRS) == (4, 1)

    def test_small_jobs_give_lanes_to_the_pair(self):
        engine = runner.SweepRunner(workers=4)
        assert engine.worker_budget(2) == (1, 4)
        assert engine.worker_budget(1) == (1, 4)

    def test_single_worker_budget_stays_serial(self):
        engine = runner.SweepRunner(workers=1)
        assert engine.worker_budget(100) == (1, 1)

    def test_pinned_stream_workers_override_both_paths(self):
        engine = runner.SweepRunner(workers=4, stream_workers=2)
        assert engine.worker_budget(runner.MIN_PARALLEL_PAIRS) == (4, 2)
        assert engine.worker_budget(2) == (1, 2)

    def test_stream_workers_validated(self):
        with pytest.raises(ValueError, match="stream_workers"):
            runner.SweepRunner(workers=1, stream_workers=0)

    def test_stream_lanes_do_not_change_measurements(self):
        inst = random_subsets(16, 4, 3, seed=3)
        pair = inst.overlapping_pairs()[0]
        baseline = runner.SweepRunner(workers=1).measure_pair(
            inst, "jump-stay", pair, horizon=200_000, dense=8, probes=8
        )
        laned = runner.SweepRunner(workers=1, stream_workers=4, engine="stream")
        assert (
            laned.measure_pair(
                inst, "jump-stay", pair, horizon=200_000, dense=8, probes=8
            )
            == baseline
        )

    def test_measure_instance_budgets_lanes_serially(self):
        """A small job on a multi-worker runner hands the budget to the
        intra-pair scan — and the results stay bit-identical."""
        inst = random_subsets(16, 4, 3, seed=3)  # below MIN_PARALLEL_PAIRS
        serial = runner.SweepRunner(workers=1).measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        budgeted = runner.SweepRunner(workers=4, engine="stream").measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        laned_serial = runner.SweepRunner(workers=1, engine="stream").measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        assert budgeted == laned_serial
        assert budgeted == serial


class TestSweepRunnerResults:
    def _instance(self):
        return single_overlap(16, 3, 3, seed=2)

    def test_results_accepts_directory_path(self, tmp_path):
        from repro.core.results import ResultStore

        r = runner.SweepRunner(workers=1, results=tmp_path / "results")
        assert isinstance(r.results, ResultStore)

    def test_warm_query_skips_schedule_builds(self, tmp_path):
        instance = self._instance()
        pair = instance.overlapping_pairs()[0]
        cold = runner.SweepRunner(workers=1, results=tmp_path / "results")
        first = cold.measure_pair(instance, "paper", pair, 100_000)
        assert cold.results.writes == 1
        warm = runner.SweepRunner(workers=1, results=tmp_path / "results")
        second = warm.measure_pair(instance, "paper", pair, 100_000)
        # The cached answer must be the *whole* measurement, bit for
        # bit, and must arrive before any schedule exists.
        assert second == first
        assert warm.results.hits == 1
        assert warm.cache_misses == 0, "no schedule was built for a warm query"

    def test_cache_key_separates_algorithms_and_plans(self, tmp_path):
        instance = self._instance()
        pair = instance.overlapping_pairs()[0]
        r = runner.SweepRunner(workers=1, results=tmp_path / "results")
        r.measure_pair(instance, "paper", pair, 100_000)
        r.measure_pair(instance, "zos", pair, 100_000)
        r.measure_pair(instance, "paper", pair, 100_000, dense=32)
        assert r.results.writes == 3
        assert r.results.hits == 0

    def test_random_baseline_keys_by_agent_indices(self, tmp_path):
        # Two pairs over identical channel sets but different agent
        # indices draw different random tapes: they must not share a
        # cache entry.
        sets = [frozenset({1, 2, 3})] * 3
        instance = Instance(8, sets, "clones")
        r = runner.SweepRunner(workers=1, results=tmp_path / "results")
        r.measure_pair(instance, "random", (0, 1), 100_000)
        r.measure_pair(instance, "random", (0, 2), 100_000)
        assert r.results.writes == 2
        assert r.results.hits == 0
        q01 = r.pair_query_for(instance, "random", (0, 1), 100_000)
        q02 = r.pair_query_for(instance, "random", (0, 2), 100_000)
        assert q01 != q02
        # Deterministic algorithms do not fragment on indices.
        d01 = r.pair_query_for(instance, "paper", (0, 1), 100_000)
        d02 = r.pair_query_for(instance, "paper", (0, 2), 100_000)
        assert d01 == d02

    def test_parallel_workers_fill_and_consult_the_cache(self, tmp_path):
        instance = random_subsets(16, 4, 3, seed=1)
        plain = runner.SweepRunner(workers=1).measure_instance(
            instance, "paper", 100_000
        )
        fan = runner.SweepRunner(workers=2, results=tmp_path / "results")
        cold = fan.measure_instance(instance, "paper", 100_000)
        assert cold == plain
        warm_runner = runner.SweepRunner(workers=1, results=tmp_path / "results")
        warm = warm_runner.measure_instance(instance, "paper", 100_000)
        assert warm == plain
        assert warm_runner.results.hits == len(plain)
        assert warm_runner.cache_misses == 0


class TestSweepRunnerCheckpoint:
    def test_checkpoint_dir_threads_through_and_cleans_up(self, tmp_path):
        instance = single_overlap(16, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        ckpt = tmp_path / "ckpt"
        with_ckpt = runner.SweepRunner(workers=1, checkpoint_dir=ckpt)
        measured = with_ckpt.measure_pair(instance, "paper", pair, 100_000)
        plain = runner.SweepRunner(workers=1).measure_pair(
            instance, "paper", pair, 100_000
        )
        assert measured == plain
        assert list(ckpt.glob("*.ckpt.json")) == [], (
            "a completed sweep must delete its checkpoint"
        )

    def test_interrupted_measurement_resumes_bit_identical(self, tmp_path):
        from repro.core import stream as stream_module

        instance = single_overlap(16, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        plain = runner.SweepRunner(workers=1).measure_pair(
            instance, "paper", pair, 100_000
        )
        ckpt = tmp_path / "ckpt"
        # Inject the interruption at the sink layer: die after two
        # snapshots, exactly like a kill mid-sweep.
        real_sink = stream_module.SweepCheckpoint
        interrupted = runner.SweepRunner(
            workers=1, checkpoint_dir=ckpt, engine="stream", tile_bytes=64
        )

        class Dying(real_sink):
            def save(self, state):
                if self.saves >= 2:
                    raise RuntimeError("injected interruption")
                super().save(state)

        import repro.sim.runner as runner_module

        original = runner_module.SweepCheckpoint
        runner_module.SweepCheckpoint = Dying
        try:
            with pytest.raises(RuntimeError, match="injected"):
                interrupted.measure_pair(instance, "paper", pair, 100_000)
        finally:
            runner_module.SweepCheckpoint = original
        assert list(ckpt.glob("*.ckpt.json")), "interruption left no snapshot"
        resumed = runner.SweepRunner(
            workers=1, checkpoint_dir=ckpt, engine="stream", tile_bytes=64
        ).measure_pair(instance, "paper", pair, 100_000)
        assert resumed == plain
        assert list(ckpt.glob("*.ckpt.json")) == []


class TestSweepRunnerEnvironment:
    """Fault environments threaded through the measurement harness."""

    def test_spec_string_is_parsed(self):
        from repro.core.environment import FadingMisses

        r = runner.SweepRunner(workers=1, environment="fading:p=0.2,seed=3")
        assert r.environment == FadingMisses(0.2, seed=3)
        assert runner.SweepRunner(workers=1).environment is None

    def test_zero_intensity_matches_clean(self):
        from repro.core.environment import FadingMisses

        instance = single_overlap(10, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        clean = runner.SweepRunner(workers=1).measure_pair(
            instance, "paper", pair, 50_000
        )
        zeroed = runner.SweepRunner(
            workers=1, environment=FadingMisses(0.0, seed=5)
        ).measure_pair(instance, "paper", pair, 50_000)
        assert zeroed == clean

    def test_misses_tolerated_and_counted(self):
        from repro.core.environment import PrimaryUserChurn

        instance = single_overlap(10, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        i, j = pair
        common = tuple(sorted(instance.sets[i] & instance.sets[j]))
        # Seize every common channel in every window: nothing can meet.
        env = PrimaryUserChurn(1.0, seed=1, dwell=4, channels=common)
        measured = runner.SweepRunner(
            workers=1, environment=env
        ).measure_pair(instance, "paper", pair, 20_000)
        assert measured.missed == measured.stats.count + measured.missed > 0
        assert measured.worst_ttr == -1
        assert measured.stats.count == 0

    def test_clean_runs_still_raise_on_miss(self):
        instance = single_overlap(10, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        with pytest.raises(AssertionError):
            runner.SweepRunner(workers=1).measure_pair(
                instance, "paper", pair, 2
            )

    def test_result_cache_separates_clean_and_faulted(self, tmp_path):
        from repro.core.environment import FadingMisses

        instance = single_overlap(10, 3, 3, seed=2)
        pair = instance.overlapping_pairs()[0]
        env = FadingMisses(0.4, seed=8)
        clean_runner = runner.SweepRunner(workers=1, results=tmp_path)
        fault_runner = runner.SweepRunner(
            workers=1, results=tmp_path, environment=env
        )
        clean = clean_runner.measure_pair(instance, "paper", pair, 50_000)
        faulted = fault_runner.measure_pair(instance, "paper", pair, 50_000)
        # Warm replays answer from the shared store without crossing.
        assert clean_runner.measure_pair(
            instance, "paper", pair, 50_000
        ) == clean
        assert fault_runner.measure_pair(
            instance, "paper", pair, 50_000
        ) == faulted
        assert clean_runner.results.hits == 1
        assert fault_runner.results.hits == 1
        q_clean = clean_runner.pair_query_for(instance, "paper", pair, 50_000)
        q_fault = fault_runner.pair_query_for(instance, "paper", pair, 50_000)
        from repro.core.results import result_digest

        assert result_digest(q_clean) != result_digest(q_fault)

    def test_parallel_fanout_carries_environment(self):
        from repro.core.environment import FadingMisses

        instance = random_subsets(10, 3, 8, seed=4)
        env = FadingMisses(0.3, seed=6)
        serial = runner.SweepRunner(workers=1, environment=env)
        parallel = runner.SweepRunner(workers=2, environment=env)
        horizon = 60_000
        assert parallel.measure_instance(
            instance, "paper", horizon
        ) == serial.measure_instance(instance, "paper", horizon)

    def test_measured_record_roundtrips_missed(self):
        measured = runner.MeasuredPair(
            "paper", (0, 1), -1, runner.TTRStats(0, 0.0, 0.0, 0.0, -1, -1), 5
        )
        record = runner._measured_record(measured)
        assert record["missed"] == 5
        assert runner._measured_from_record("paper", (0, 1), record) == measured
        # Pre-environment records (no "missed" key) hydrate as clean.
        del record["missed"]
        legacy = runner._measured_from_record("paper", (0, 1), record)
        assert legacy.missed == 0


class TestSweepRunnerPairMajor:
    """Pair-major stacking: one tile pass per serial instance sweep."""

    def test_stacked_matches_per_pair_loop(self):
        inst = random_subsets(16, 8, 5, seed=4)  # 10 overlapping pairs
        stacked = runner.SweepRunner(workers=1, pair_major=True)
        looped = runner.SweepRunner(workers=1, pair_major=False)
        horizon = 60_000
        assert stacked.measure_instance(
            inst, "paper", horizon, dense=4, probes=4
        ) == looped.measure_instance(inst, "paper", horizon, dense=4, probes=4)

    def test_auto_stacks_multi_pair_serial_jobs(self):
        engine = runner.SweepRunner(workers=1)
        assert engine._use_pair_major(2)
        assert engine._use_pair_major(10)
        assert not engine._use_pair_major(1)

    def test_auto_defers_to_unavailable_configs(self, tmp_path):
        assert not runner.SweepRunner(
            workers=1, engine="batched"
        )._use_pair_major(10)
        assert not runner.SweepRunner(
            workers=1, checkpoint_dir=tmp_path
        )._use_pair_major(10)
        assert not runner.SweepRunner(
            workers=1, pair_major=False
        )._use_pair_major(10)

    def test_forced_on_requires_stream_engine(self):
        with pytest.raises(ValueError, match="streaming engine"):
            runner.SweepRunner(engine="batched", pair_major=True)

    def test_forced_on_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            runner.SweepRunner(checkpoint_dir=tmp_path, pair_major=True)

    def test_pair_major_value_validated(self):
        with pytest.raises(ValueError, match="pair_major"):
            runner.SweepRunner(pair_major="always")

    def test_environment_misses_match_per_pair_loop(self):
        inst = random_subsets(12, 4, 4, seed=9)
        env = "pu-churn:rate=0.1,seed=3"
        stacked = runner.SweepRunner(
            workers=1, pair_major=True, environment=env
        )
        looped = runner.SweepRunner(
            workers=1, pair_major=False, environment=env
        )
        horizon = 300  # short: some shifts miss, tallies must agree
        assert stacked.measure_instance(
            inst, "paper", horizon, dense=4, probes=4
        ) == looped.measure_instance(inst, "paper", horizon, dense=4, probes=4)

    def test_stacked_sweep_consults_and_fills_result_cache(self, tmp_path):
        inst = random_subsets(16, 8, 4, seed=4)
        horizon = 60_000
        warm = runner.SweepRunner(workers=1, results=tmp_path, pair_major=True)
        first = warm.measure_instance(inst, "paper", horizon, dense=4, probes=4)
        assert warm.results.misses == len(first)
        # A fresh runner over the same store answers every pair warm:
        # no schedule builds, no tile pass.
        replay = runner.SweepRunner(
            workers=1, results=tmp_path, pair_major=True
        )
        assert replay.measure_instance(
            inst, "paper", horizon, dense=4, probes=4
        ) == first
        assert replay.results.hits == len(first)
        assert replay.cache_misses == 0

    def test_partial_cache_stacks_only_cold_pairs(self, tmp_path):
        inst = random_subsets(16, 8, 4, seed=4)
        pairs = inst.overlapping_pairs()
        horizon = 60_000
        seeder = runner.SweepRunner(workers=1, results=tmp_path)
        seeded = seeder.measure_pair(
            inst, "paper", pairs[0], horizon, dense=4, probes=4
        )
        mixed = runner.SweepRunner(
            workers=1, results=tmp_path, pair_major=True
        )
        results = mixed.measure_instance(
            inst, "paper", horizon, dense=4, probes=4
        )
        assert results[0] == seeded
        assert mixed.results.hits == 1
        assert mixed.results.misses == len(pairs) - 1

    def test_backend_spec_threads_through_stacked_sweep(self):
        from repro.core.backend import RecordingBackend

        inst = random_subsets(16, 8, 4, seed=4)
        horizon = 60_000
        boxed = runner.SweepRunner(
            workers=1, pair_major=True, backend=RecordingBackend()
        )
        plain = runner.SweepRunner(workers=1, pair_major=True)
        assert boxed.measure_instance(
            inst, "paper", horizon, dense=4, probes=4
        ) == plain.measure_instance(inst, "paper", horizon, dense=4, probes=4)

    def test_backend_validated_at_construction(self):
        with pytest.raises(ValueError, match="registered"):
            runner.SweepRunner(backend="warp-drive")
        with pytest.raises(ValueError, match="streaming engine"):
            runner.SweepRunner(engine="batched", backend="recording")

    def test_parallel_fanout_carries_backend_spec(self):
        inst = random_subsets(10, 3, 8, seed=4)
        horizon = 60_000
        serial = runner.SweepRunner(workers=1, backend="numpy")
        parallel = runner.SweepRunner(workers=2, backend="numpy")
        assert parallel.measure_instance(
            inst, "paper", horizon
        ) == serial.measure_instance(inst, "paper", horizon)
