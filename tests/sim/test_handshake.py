"""Tests for the chirp-and-listen identification layer."""

from __future__ import annotations

import pytest

from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.sim.agent import Agent
from repro.sim.handshake import ChirpAndListen


def _pair_on_shared_channel(seed: int = 0) -> ChirpAndListen:
    return ChirpAndListen(
        [Agent("a", ConstantSchedule(5)), Agent("b", ConstantSchedule(5))],
        seed=seed,
    )


class TestBasics:
    def test_unique_names_required(self):
        with pytest.raises(ValueError, match="unique"):
            ChirpAndListen(
                [Agent("x", ConstantSchedule(1)), Agent("x", ConstantSchedule(1))]
            )

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            _pair_on_shared_channel().run(0)

    def test_deterministic(self):
        r1 = _pair_on_shared_channel(seed=3).run(200)
        r2 = _pair_on_shared_channel(seed=3).run(200)
        assert r1.heard == r2.heard
        assert r1.mutual == r2.mutual

    def test_seed_changes_timing(self):
        r1 = _pair_on_shared_channel(seed=1).run(50)
        r2 = _pair_on_shared_channel(seed=2).run(50)
        assert r1.heard != r2.heard or r1.mutual != r2.mutual


class TestPairIdentification:
    def test_copresent_pair_mutually_identifies(self):
        result = _pair_on_shared_channel().run(200)
        t = result.mutual_identification_time("a", "b")
        assert t is not None
        # Expected ~ a few slots: sole-chirp prob per slot is 1/2 either way.
        assert t < 64

    def test_mutual_needs_both_directions(self):
        result = _pair_on_shared_channel().run(200)
        t_ab = result.first_heard("a", "b")
        t_ba = result.first_heard("b", "a")
        mutual = result.mutual_identification_time("a", "b")
        assert mutual == max(t_ab, t_ba)

    def test_disjoint_channels_never_identify(self):
        cl = ChirpAndListen(
            [Agent("a", ConstantSchedule(1)), Agent("b", ConstantSchedule(2))]
        )
        result = cl.run(300)
        assert result.mutual == {}
        assert result.heard == {}

    def test_identification_only_after_rendezvous_slot(self):
        # Schedules only coincide at slots where both play channel 9.
        a = Agent("a", CyclicSchedule([1, 9]))
        b = Agent("b", CyclicSchedule([2, 9]))
        result = ChirpAndListen([a, b], seed=5).run(100)
        t = result.mutual_identification_time("a", "b")
        assert t is not None
        assert t % 2 == 1  # coincidences happen at odd slots only


class TestCollisions:
    def test_dense_group_slower_than_pair(self):
        """With many agents piled on one channel, chirp collisions delay
        identification — the effect the model exists to show."""
        pair = _pair_on_shared_channel(seed=7).run(4000)
        crowd_agents = [Agent(f"agent{i}", ConstantSchedule(5)) for i in range(8)]
        crowd = ChirpAndListen(crowd_agents, seed=7).run(4000)
        pair_time = pair.mutual_identification_time("a", "b")
        crowd_times = [
            crowd.mutual_identification_time(f"agent{i}", f"agent{j}")
            for i in range(8)
            for j in range(i + 1, 8)
        ]
        assert all(t is not None for t in crowd_times)
        assert max(crowd_times) > pair_time

    def test_sole_chirp_probability(self):
        cl = _pair_on_shared_channel()
        assert cl.sole_chirp_probability(1) == 0.5
        assert cl.sole_chirp_probability(3) == 0.125
        with pytest.raises(ValueError):
            cl.sole_chirp_probability(0)

    def test_empirical_sole_chirp_rate(self):
        """Measured sole-chirp frequency for a 4-crowd ~ g * 2^-g = 0.25."""
        agents = [Agent(f"x{i}", ConstantSchedule(3)) for i in range(4)]
        cl = ChirpAndListen(agents, seed=11)
        horizon = 4000
        events = 0
        for t in range(horizon):
            chirpers = [a for a in agents if cl._chirps(a.name, t)]
            if len(chirpers) == 1:
                events += 1
        rate = events / horizon
        assert 0.18 <= rate <= 0.32


class TestEndToEnd:
    def test_paper_schedules_with_handshake(self):
        """Full pipeline: Theorem 3 schedules + chirp-and-listen; every
        overlapping pair mutually identifies."""
        import repro

        n = 16
        sets = [{1, 5}, {5, 9}, {1, 9}]
        agents = [
            Agent(f"radio{i}", repro.build_schedule(s, n), wake_time=3 * i)
            for i, s in enumerate(sets)
        ]
        result = ChirpAndListen(agents, seed=2).run(30_000)
        for i in range(3):
            for j in range(i + 1, 3):
                assert result.mutual_identification_time(
                    f"radio{i}", f"radio{j}"
                ) is not None, (i, j)
