"""Tests for the Agent abstraction."""

from __future__ import annotations

import pytest

from repro.core.schedule import CyclicSchedule
from repro.sim.agent import ASLEEP, Agent


class TestAgent:
    def test_asleep_before_wake(self):
        a = Agent("a", CyclicSchedule([1, 2]), wake_time=3)
        assert a.channel_at_global(0) == ASLEEP
        assert a.channel_at_global(2) == ASLEEP

    def test_schedule_starts_at_wake(self):
        a = Agent("a", CyclicSchedule([1, 2]), wake_time=3)
        assert a.channel_at_global(3) == 1
        assert a.channel_at_global(4) == 2

    def test_negative_wake_rejected(self):
        with pytest.raises(ValueError):
            Agent("a", CyclicSchedule([1]), wake_time=-1)

    def test_channels_from_schedule(self):
        a = Agent("a", CyclicSchedule([5, 7, 5]))
        assert a.channels == {5, 7}

    def test_materialize_global_pads_sleep(self):
        a = Agent("a", CyclicSchedule([1, 2]), wake_time=2)
        window = a.materialize_global(0, 6)
        assert list(window) == [ASLEEP, ASLEEP, 1, 2, 1, 2]

    def test_materialize_global_mid_window(self):
        a = Agent("a", CyclicSchedule([1, 2, 3]), wake_time=1)
        window = a.materialize_global(4, 8)
        assert list(window) == [a.channel_at_global(t) for t in range(4, 8)]

    def test_materialize_rejects_reversed(self):
        a = Agent("a", CyclicSchedule([1]))
        with pytest.raises(ValueError):
            a.materialize_global(5, 4)

    def test_overlap_detection(self):
        a = Agent("a", CyclicSchedule([1, 2]))
        b = Agent("b", CyclicSchedule([2, 3]))
        c = Agent("c", CyclicSchedule([4]))
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestChurn:
    def test_asleep_from_leave_time(self):
        a = Agent("a", CyclicSchedule([1, 2]), wake_time=2, leave_time=5)
        assert a.channel_at_global(4) == 1
        assert a.channel_at_global(5) == ASLEEP
        assert a.channel_at_global(100) == ASLEEP

    def test_materialize_global_pads_after_leave(self):
        a = Agent("a", CyclicSchedule([1, 2]), wake_time=1, leave_time=4)
        window = a.materialize_global(0, 6)
        assert list(window) == [ASLEEP, 1, 2, 1, ASLEEP, ASLEEP]

    def test_materialize_window_entirely_after_leave(self):
        a = Agent("a", CyclicSchedule([1, 2]), leave_time=3)
        assert list(a.materialize_global(10, 14)) == [ASLEEP] * 4

    def test_leave_before_wake_never_transmits(self):
        a = Agent("a", CyclicSchedule([1]), wake_time=5, leave_time=5)
        assert list(a.materialize_global(0, 10)) == [ASLEEP] * 10
        assert a.channel_at_global(5) == ASLEEP

    def test_negative_leave_rejected(self):
        with pytest.raises(ValueError, match="leave_time"):
            Agent("a", CyclicSchedule([1]), leave_time=-1)

    def test_default_stays_forever(self):
        a = Agent("a", CyclicSchedule([3]))
        assert a.leave_time is None
        assert a.channel_at_global(10**9) == 3
