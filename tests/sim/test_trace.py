"""Tests for the channel-time trace renderer."""

from __future__ import annotations

import pytest

from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.sim.agent import Agent
from repro.sim.trace import render_trace


class TestRenderTrace:
    def test_single_agent_row(self):
        agent = Agent("solo", CyclicSchedule([2, 5]))
        out = render_trace([agent], 0, 4)
        lines = out.split("\n")
        assert lines[0].startswith("5 |")
        assert lines[1].startswith("2 |")
        assert lines[1][len("2 |"):] == "a a "
        assert lines[0][len("5 |"):] == " a a"

    def test_rendezvous_marked(self):
        a = Agent("a", ConstantSchedule(3))
        b = Agent("b", ConstantSchedule(3))
        out = render_trace([a, b], 0, 3)
        assert "***" in out

    def test_sleep_left_blank(self):
        a = Agent("late", ConstantSchedule(1), wake_time=2)
        out = render_trace([a], 0, 4)
        row = out.split("\n")[0]
        assert row.endswith("  aa")

    def test_channel_filter(self):
        a = Agent("a", CyclicSchedule([1, 9]))
        out = render_trace([a], 0, 4, channels=[1])
        assert "9 |" not in out
        assert "1 |" in out

    def test_legend_present(self):
        a = Agent("alice", ConstantSchedule(0))
        out = render_trace([a], 0, 2)
        assert "a=alice" in out
        assert "* = rendezvous" in out

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            render_trace([Agent("a", ConstantSchedule(0))], 5, 5)

    def test_too_many_agents_rejected(self):
        agents = [Agent(f"agent{i}", ConstantSchedule(0)) for i in range(27)]
        with pytest.raises(ValueError, match="too many"):
            render_trace(agents, 0, 1)

    def test_paper_schedules_render(self):
        import repro

        n = 16
        a = Agent("a", repro.build_schedule({3, 7}, n))
        b = Agent("b", repro.build_schedule({7, 12}, n), wake_time=2)
        out = render_trace([a, b], 0, 60)
        assert "7 |" in out
        # Somewhere in 60 slots they meet on channel 7 (period is 32ish).
        assert "*" in out
