"""Tests for the Knuth-style balanced encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import knuth
from repro.core.bitstrings import is_balanced
from tests.conftest import even_bits


class TestBalancingPrefix:
    def test_already_balanced_gives_zero(self):
        assert knuth.balancing_prefix_length("01") == 0

    def test_all_ones(self):
        # Flipping the first half of 1111 balances it.
        c = knuth.balancing_prefix_length("1111")
        flipped = "0" * c + "1" * (4 - c)
        assert flipped.count("1") == 2

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="even"):
            knuth.balancing_prefix_length("101")

    @given(even_bits(max_size=30))
    def test_prefix_flip_balances(self, x):
        c = knuth.balancing_prefix_length(x)
        flipped = "".join(
            ("1" if b == "0" else "0") if i < c else b for i, b in enumerate(x)
        )
        assert is_balanced(flipped)


class TestEncode:
    def test_empty_input(self):
        out = knuth.encode("")
        assert is_balanced(out)
        assert len(out) == knuth.encoded_length(0)

    def test_known_length(self):
        # |K(x)| = |x| + 2 * width(|x|); for |x| = 4 the width is 3.
        assert knuth.encoded_length(4) == 4 + 2 * 3

    def test_length_formula_matches(self):
        for size in range(0, 21, 2):
            x = "10" * (size // 2)
            assert len(knuth.encode(x)) == knuth.encoded_length(size)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            knuth.encode("101")

    @given(even_bits(max_size=30))
    def test_output_balanced(self, x):
        assert is_balanced(knuth.encode(x))

    def test_overhead_is_logarithmic(self):
        # Sanity on the advertised overhead shape.
        for size in (2, 8, 32, 128, 512):
            x = "01" * (size // 2)
            overhead = len(knuth.encode(x)) - size
            assert overhead <= 2 * (size.bit_length() + 1)


class TestDecode:
    @given(even_bits(max_size=30))
    def test_round_trip(self, x):
        assert knuth.decode(knuth.encode(x), len(x)) == x

    def test_injective_on_fixed_width(self):
        width = 6
        images = {knuth.encode(format(v, f"0{width}b")) for v in range(1 << width)}
        assert len(images) == 1 << width

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            knuth.decode("0101", 4)

    def test_corrupt_tail_rejected(self):
        y = knuth.encode("0110")
        # Break the complement structure of the tail.
        corrupt = y[:-1] + ("0" if y[-1] == "1" else "1")
        with pytest.raises(ValueError):
            knuth.decode(corrupt, 4)

    def test_odd_input_length_rejected(self):
        with pytest.raises(ValueError):
            knuth.decode("01", 1)


class TestTailWidth:
    def test_tail_width_values(self):
        assert knuth.tail_width(0) == 1
        assert knuth.tail_width(4) == 3
        assert knuth.tail_width(8) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            knuth.tail_width(-2)

    @given(st.integers(0, 200).map(lambda v: 2 * v))
    def test_encoded_length_even(self, size):
        assert knuth.encoded_length(size) % 2 == 0
