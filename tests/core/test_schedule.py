"""Tests for the schedule abstractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import (
    ConstantSchedule,
    CyclicSchedule,
    FunctionSchedule,
)


class TestCyclicSchedule:
    def test_cycles(self):
        s = CyclicSchedule([4, 9, 2])
        assert [s.channel_at(t) for t in range(7)] == [4, 9, 2, 4, 9, 2, 4]

    def test_period_and_channels(self):
        s = CyclicSchedule([1, 1, 3])
        assert s.period == 3
        assert s.channels == {1, 3}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CyclicSchedule([])

    def test_materialize_matches_channel_at(self):
        s = CyclicSchedule([5, 1, 7, 7])
        window = s.materialize(3, 17)
        assert window.dtype == np.int64
        assert list(window) == [s.channel_at(t) for t in range(3, 17)]

    def test_materialize_empty_window(self):
        assert CyclicSchedule([1]).materialize(5, 5).size == 0

    def test_materialize_rejects_reversed_window(self):
        with pytest.raises(ValueError):
            CyclicSchedule([1]).materialize(5, 4)


class TestConstantSchedule:
    def test_always_same(self):
        s = ConstantSchedule(11)
        assert s.period == 1
        assert {s.channel_at(t) for t in range(10)} == {11}

    def test_materialize(self):
        assert list(ConstantSchedule(2).materialize(0, 4)) == [2, 2, 2, 2]


class TestFunctionSchedule:
    def test_wraps_function(self):
        s = FunctionSchedule(lambda t: (t * t) % 5, period=5)
        assert [s.channel_at(t) for t in range(5)] == [0, 1, 4, 4, 1]

    def test_channels_inferred(self):
        s = FunctionSchedule(lambda t: t % 3, period=3)
        assert s.channels == {0, 1, 2}

    def test_explicit_channels(self):
        s = FunctionSchedule(lambda t: 0, period=2, channels=frozenset({0}))
        assert s.channels == {0}

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            FunctionSchedule(lambda t: 0, period=0)

    def test_materialize_uses_period_array(self):
        s = FunctionSchedule(lambda t: t % 4, period=4)
        assert list(s.materialize(2, 10)) == [2, 3, 0, 1, 2, 3, 0, 1]
