"""Randomized cross-engine differential harness.

With four engines (scalar, batched, stream-serial, blocked stream),
pair-major stacking, three fault-environment families, thread lanes,
degenerate tile plans, and pluggable array backends, the space of
execution configurations long outgrew hand-enumerated parity matrices.
This harness draws random points from that space — (algorithm, workload,
environment, engine configuration, backend, shift set, horizon) — and
asserts the resulting TTR profile is **bit-identical** to the scalar
reference loop (:func:`repro.core.verification.ttr_for_shift`), the one
implementation simple enough to trust by inspection.

The case generator is a plain seeded ``random.Random`` program — no
external property-testing dependency — so every case is replayable from
its integer seed alone:

* ``REPRO_DIFFERENTIAL_CASES`` (default ``60``) sets how many random
  cases run; CI turns it up to 200+.
* ``REPRO_DIFFERENTIAL_SEED`` (default ``0``) offsets the seed stream,
  so nightly runs can walk fresh territory while any failure stays
  reproducible: the failing test's parametrized id *is* the case seed.
* ``differential_corpus.json`` is the regression corpus: seeds that
  once found bugs (or pin especially gnarly configurations) replay on
  every run, first, forever.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

import repro
from repro.core import batch
from repro.core.backend import RecordingBackend
from repro.core.environment import parse_environment
from repro.core.stream import (
    TilePlan,
    ttr_sweep_pairs,
    ttr_sweep_stream,
    ttr_sweep_stream_serial,
)
from repro.core.verification import ttr_for_shift
from repro.sim import workloads

CASES = int(os.environ.get("REPRO_DIFFERENTIAL_CASES", "60"))
SEED_BASE = int(os.environ.get("REPRO_DIFFERENTIAL_SEED", "0"))

CORPUS_PATH = Path(__file__).with_name("differential_corpus.json")

ALGORITHMS = ("paper", "crseq", "jump-stay", "drds", "zos")

WORKLOADS = (
    lambda rng: workloads.random_subsets(
        rng.choice((8, 12, 16)), rng.randint(3, 5), 3, seed=rng.randint(0, 999)
    ),
    lambda rng: workloads.single_overlap(
        rng.choice((12, 16)), rng.randint(2, 4), rng.randint(2, 4),
        seed=rng.randint(0, 999),
    ),
    lambda rng: workloads.symmetric(
        rng.choice((8, 16)), rng.randint(2, 4), 2, seed=rng.randint(0, 999)
    ),
    lambda rng: workloads.nested(16, [2, rng.randint(3, 5)], seed=rng.randint(0, 999)),
)

ENVIRONMENTS = (
    lambda rng: None,
    lambda rng: parse_environment(f"fading:p=0.1,seed={rng.randint(0, 99)}"),
    lambda rng: parse_environment(f"pu-churn:rate=0.08,seed={rng.randint(0, 99)}"),
    lambda rng: parse_environment(f"sensing:p=0.15,seed={rng.randint(0, 99)}"),
    lambda rng: parse_environment(
        f"fading:p=0.05,seed={rng.randint(0, 99)}"
        f"+pu-churn:rate=0.05,seed={rng.randint(0, 99)}"
    ),
)

ENGINE_CONFIGS = (
    "scalar",
    "batched",
    "auto",
    "stream-serial",
    "stream-blocked",
    "pair-major",
)


def _draw_case(rng: random.Random) -> dict:
    """One random execution configuration, fully determined by ``rng``."""
    algorithm = rng.choice(ALGORITHMS)
    instance = rng.choice(WORKLOADS)(rng)
    pairs = instance.overlapping_pairs()
    if not pairs:
        # Degenerate draw (no overlapping pair): fall back to the
        # guaranteed-overlap generator so every seed yields a case.
        instance = workloads.single_overlap(16, 3, 3, seed=rng.randint(0, 999))
        pairs = instance.overlapping_pairs()
    engine = rng.choice(ENGINE_CONFIGS)
    environment = rng.choice(ENVIRONMENTS)(rng)
    # Backends only matter on streaming paths; the recording backend
    # doubles every case it lands on as a no-bypass certification.
    backend = "auto"
    if engine in ("stream-serial", "stream-blocked", "pair-major", "auto"):
        backend = rng.choice(("auto", "numpy", "recording"))
    num_pairs = 1
    if engine == "pair-major":
        num_pairs = rng.randint(2, min(3, len(pairs))) if len(pairs) > 1 else 1
    plan = None
    tile_bytes = None
    if engine == "stream-blocked":
        plan = (
            rng.choice((1 << 14, 1 << 16)),  # tile_bytes
            rng.choice((1, 2, 7, 64)),  # block_rows (1: fully degenerate)
            rng.choice((1, 2, 4)),  # workers
        )
    elif engine in ("stream-serial", "pair-major"):
        tile_bytes = rng.choice((1 << 14, 1 << 18, 1 << 22))
    return {
        "algorithm": algorithm,
        "instance": instance,
        "pairs": pairs[:num_pairs],
        "engine": engine,
        "environment": environment,
        "backend": backend,
        "plan": plan,
        "tile_bytes": tile_bytes,
        "num_shifts": rng.randint(6, 20),
        "short_horizon": rng.random() < 0.3,
        "rng": rng,
    }


def _schedules(case: dict) -> list[tuple]:
    instance = case["instance"]
    rng = case["rng"]
    jobs = []
    for i, j in case["pairs"]:
        a = repro.build_schedule(
            instance.sets[i], instance.n, algorithm=case["algorithm"]
        )
        b = repro.build_schedule(
            instance.sets[j], instance.n, algorithm=case["algorithm"]
        )
        lo, hi = -b.period + 1, a.period
        shifts = [rng.randrange(lo, hi) for _ in range(case["num_shifts"])]
        shifts += [0, lo, hi - 1, rng.randrange(lo, hi) * 7]  # dupes welcome
        if case["short_horizon"]:
            horizon = rng.randint(1, 60)
        else:
            horizon = min(4 * max(a.period, b.period), 30_000)
        jobs.append((a, b, shifts, horizon))
    return jobs


def _reference(a, b, shifts, horizon, environment):
    return {
        s: ttr_for_shift(a, b, s, horizon, environment=environment)
        for s in shifts
    }


def _run_case(seed: int) -> None:
    """Draw the case for ``seed``, execute it, and assert bit-parity."""
    rng = random.Random(seed)
    case = _draw_case(rng)
    engine, env = case["engine"], case["environment"]
    jobs = _schedules(case)
    label = (
        f"seed={seed} engine={engine} algo={case['algorithm']} "
        f"backend={case['backend']} env={'yes' if env else 'no'}"
    )
    backend = (
        RecordingBackend() if case["backend"] == "recording" else case["backend"]
    )
    if engine == "pair-major":
        stacked = ttr_sweep_pairs(
            [(a, b, shifts) for a, b, shifts, _ in jobs],
            [horizon for _, _, _, horizon in jobs],
            tile_bytes=case["tile_bytes"],
            environment=env,
            backend=backend,
        )
        for (a, b, shifts, horizon), got in zip(jobs, stacked):
            assert got == _reference(a, b, shifts, horizon, env), label
        return
    a, b, shifts, horizon = jobs[0]
    expected = _reference(a, b, shifts, horizon, env)
    if engine == "stream-serial":
        got = ttr_sweep_stream_serial(
            a, b, shifts, horizon,
            tile_bytes=case["tile_bytes"], environment=env, backend=backend,
        )
    elif engine == "stream-blocked":
        tile_bytes, block_rows, workers = case["plan"]
        got = ttr_sweep_stream(
            a, b, shifts, horizon,
            plan=TilePlan(
                tile_bytes=tile_bytes, block_rows=block_rows, workers=workers
            ),
            environment=env, backend=backend,
        )
    else:  # scalar / batched / auto, through the dispatcher
        got = batch.ttr_sweep(
            a, b, shifts, horizon, engine=engine, environment=env,
            backend=backend,
        )
    assert got == expected, label


def _corpus_entries() -> list[dict]:
    return json.loads(CORPUS_PATH.read_text())


@pytest.mark.parametrize(
    "entry",
    _corpus_entries(),
    ids=lambda entry: f"seed{entry['seed']}",
)
def test_regression_corpus_replays(entry):
    """Seeds that pin past counterexamples and gnarly configurations."""
    _run_case(entry["seed"])


@pytest.mark.parametrize("seed", range(SEED_BASE, SEED_BASE + CASES))
def test_random_differential_case(seed):
    """A fresh random point in the execution-configuration space."""
    _run_case(seed)


def test_corpus_is_well_formed():
    entries = _corpus_entries()
    assert entries, "regression corpus must never be empty"
    for entry in entries:
        assert isinstance(entry["seed"], int)
        assert entry["note"]
    seeds = [entry["seed"] for entry in entries]
    assert len(seeds) == len(set(seeds)), "duplicate corpus seeds"
