"""Tests for the rendezvous verification engine."""

from __future__ import annotations

import pytest

from repro.core.schedule import ConstantSchedule, CyclicSchedule
from repro.core.verification import (
    exhaustive_shift_range,
    first_rendezvous,
    max_ttr,
    strided_shift_range,
    ttr_for_shift,
    ttr_profile,
    verify_guarantee,
)


class TestFirstRendezvous:
    def test_immediate_meeting(self):
        a = ConstantSchedule(3)
        b = ConstantSchedule(3)
        assert first_rendezvous(a, b, 0, 0, 10) == 0

    def test_never_meets(self):
        assert first_rendezvous(ConstantSchedule(1), ConstantSchedule(2), 0, 0, 100) is None

    def test_measured_from_later_wake(self):
        a = CyclicSchedule([1, 2, 3, 4])
        b = CyclicSchedule([4, 9, 9, 9])
        # b wakes at 1: global t: b plays 4 at t=1; a plays 2 at t=1...
        # a plays 4 at t=3 where b plays b(2)=9; coincidences computed
        # against explicit simulation.
        expected = None
        for t in range(1, 50):
            if a.channel_at(t) == b.channel_at(t - 1):
                expected = t - 1
                break
        assert first_rendezvous(a, b, 0, 1, 50) == expected

    def test_chunked_scan_matches_small_chunks(self):
        a = CyclicSchedule([1, 2, 3, 4, 5])
        b = CyclicSchedule([9, 9, 9, 9, 3])
        big = first_rendezvous(a, b, 0, 2, 1000)
        small = first_rendezvous(a, b, 0, 2, 1000, chunk=3)
        assert big == small

    def test_negative_wake_rejected(self):
        with pytest.raises(ValueError):
            first_rendezvous(ConstantSchedule(1), ConstantSchedule(1), -1, 0, 10)


class TestTtrForShift:
    def test_positive_shift_delays_b(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([2, 1])
        # shift 0: a=1 vs b=2 at t0, a=2 vs b=1 at t1 ... never meet?
        # They alternate out of phase: no rendezvous ever.
        assert ttr_for_shift(a, b, 0, 100) is None
        # shift 1: b lags one slot -> aligned: both play 2 then 1.
        assert ttr_for_shift(a, b, 1, 100) == 0

    def test_negative_shift_mirrors(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([2, 1])
        assert ttr_for_shift(a, b, -1, 100) == 0


class TestProfiles:
    def test_profile_keys(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([1, 2])
        profile = ttr_profile(a, b, [0, 1, 2], 10)
        assert set(profile) == {0, 1, 2}
        assert profile[0] == 0

    def test_max_ttr_raises_on_miss(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([2, 1])
        with pytest.raises(AssertionError, match="no rendezvous"):
            max_ttr(a, b, [0], 10)

    def test_max_ttr_value(self):
        a = CyclicSchedule([1, 1, 1, 2])
        b = CyclicSchedule([2, 2, 2, 2])
        # Meets only when a plays 2: worst over shifts 0..3 is 3 slots.
        assert max_ttr(a, b, range(4), 10) == 3


class TestExhaustiveShiftRange:
    def test_covers_both_signs_once(self):
        a = CyclicSchedule([1, 2, 3])
        b = CyclicSchedule([1, 2, 3, 4])
        assert exhaustive_shift_range(a, b) == range(-3, 3)
        assert len(exhaustive_shift_range(a, b)) == a.period + b.period - 1

    def test_exhaustiveness(self):
        """Shifts reduce to their phase class: s >= 0 mod period_A,
        s < 0 mod period_B — classes behave identically."""
        a = CyclicSchedule([1, 2, 3])
        b = CyclicSchedule([3, 2, 1, 3])
        for shift in range(a.period):
            inside = ttr_for_shift(a, b, shift, 50)
            outside = ttr_for_shift(a, b, shift + a.period, 50)
            assert inside == outside
        for shift in range(1, b.period):
            inside = ttr_for_shift(a, b, -shift, 50)
            outside = ttr_for_shift(a, b, -shift - b.period, 50)
            assert inside == outside

    def test_strided_variant_subsamples(self):
        a = CyclicSchedule(list(range(10)))
        b = CyclicSchedule(list(range(14)))
        full = exhaustive_shift_range(a, b)
        strided = strided_shift_range(a, b, max_shifts=8)
        assert set(strided) <= set(full)
        assert strided.step == (a.period + b.period) // 8
        # Generous budget degenerates to the exhaustive range.
        assert strided_shift_range(a, b, 10_000) == full
        with pytest.raises(ValueError):
            strided_shift_range(a, b, 0)


class TestVerifyGuarantee:
    def test_pass(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([1, 1])
        ok, worst, failing = verify_guarantee(a, b, 1)
        assert ok and failing is None
        assert worst <= 1

    def test_fail_reports_shift(self):
        a = CyclicSchedule([1, 2])
        b = CyclicSchedule([2, 1])
        ok, _, failing = verify_guarantee(a, b, 5, shifts=[0])
        assert not ok
        assert failing == 0

    def test_bound_respected(self):
        a = CyclicSchedule([1, 1, 1, 2])
        b = CyclicSchedule([2, 2, 2, 2])
        ok, worst, _ = verify_guarantee(a, b, 3)
        assert ok and worst == 3
        ok, _, _ = verify_guarantee(a, b, 2)
        assert not ok
