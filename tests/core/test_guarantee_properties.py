"""Hypothesis property tests of the headline guarantees.

These drive the constructions with *randomized structured inputs* —
random overlapping channel sets, random universes, random shifts — and
assert the paper's guarantees as universally-quantified properties.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds
from repro.core.environment import (
    AsymmetricSensing,
    FadingMisses,
    PrimaryUserChurn,
    compose,
)
from repro.core.epoch import EpochSchedule
from repro.core.pairwise import async_period, pair_schedule_async
from repro.core.symmetric import SymmetricWrappedSchedule
from repro.core.verification import ttr_for_shift


@st.composite
def overlapping_sets(draw, max_n: int = 24, max_k: int = 5):
    """Two channel sets over a shared universe with >= 1 common channel."""
    n = draw(st.integers(4, max_n))
    k = draw(st.integers(1, min(max_k, n - 1)))
    l = draw(st.integers(1, min(max_k, n - 1)))
    universe = list(range(n))
    common = draw(st.sampled_from(universe))
    rest = [c for c in universe if c != common]
    a_extra = draw(
        st.lists(st.sampled_from(rest), max_size=k - 1, unique=True)
    )
    b_extra = draw(
        st.lists(st.sampled_from(rest), max_size=l - 1, unique=True)
    )
    return n, frozenset({common, *a_extra}), frozenset({common, *b_extra})


class TestTheorem1Property:
    @given(
        st.integers(4, 2**20),
        st.data(),
    )
    @settings(max_examples=40)
    def test_any_overlapping_pairs_meet_within_period(self, n, data):
        # Draw two distinct 2-sets sharing a channel, in a possibly huge
        # universe (this is where the loglog pays off).
        x = data.draw(st.integers(0, n - 2))
        y = data.draw(st.integers(x + 1, n - 1))
        z = data.draw(st.integers(0, n - 1).filter(lambda v: v not in (x,)))
        pair_b = tuple(sorted({x, z})) if z != x else (x, y)
        if len(set(pair_b)) == 1:
            pair_b = (x, y)
        a = pair_schedule_async(x, y, n)
        b = pair_schedule_async(pair_b[0], pair_b[1], n)
        shift = data.draw(st.integers(0, async_period(n) - 1))
        ttr = ttr_for_shift(a, b, shift, async_period(n))
        assert ttr is not None

    @given(st.integers(2, 2**32))
    @settings(max_examples=30)
    def test_period_monotone_and_bounded(self, n):
        period = async_period(n)
        assert period <= async_period(2**48)
        assert period >= 16


class TestTheorem3Property:
    @given(overlapping_sets(), st.data())
    @settings(max_examples=25)
    def test_rendezvous_within_analytic_bound(self, sets, data):
        n, a_set, b_set = sets
        a = EpochSchedule(a_set, n)
        b = EpochSchedule(b_set, n)
        bound = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        shift = data.draw(st.integers(0, 10**6))
        ttr = ttr_for_shift(a, b, shift, bound + 1)
        assert ttr is not None, (sorted(a_set), sorted(b_set), shift)
        assert ttr <= bound

    @given(overlapping_sets())
    @settings(max_examples=25)
    def test_meeting_channel_is_common(self, sets):
        n, a_set, b_set = sets
        a = EpochSchedule(a_set, n)
        b = EpochSchedule(b_set, n)
        horizon = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        for t in range(horizon):
            if a.channel_at(t) == b.channel_at(t):
                assert a.channel_at(t) in (a_set & b_set)
                return
        raise AssertionError("no synchronous-start rendezvous within bound")


class TestSymmetricProperty:
    @given(overlapping_sets(max_k=4), st.integers(0, 10**5))
    @settings(max_examples=25)
    def test_identical_sets_meet_in_constant_time(self, sets, shift):
        n, a_set, _ = sets
        s1 = SymmetricWrappedSchedule(EpochSchedule(a_set, n))
        s2 = SymmetricWrappedSchedule(EpochSchedule(a_set, n))
        ttr = ttr_for_shift(s1, s2, shift, bounds.symmetric_wrapper_bound() + 1)
        assert ttr is not None
        assert ttr <= bounds.symmetric_wrapper_bound()

    @given(overlapping_sets(max_k=3), st.integers(0, 10**4))
    @settings(max_examples=15)
    def test_wrapped_general_pairs_still_meet(self, sets, shift):
        n, a_set, b_set = sets
        a = SymmetricWrappedSchedule(EpochSchedule(a_set, n))
        b = SymmetricWrappedSchedule(EpochSchedule(b_set, n))
        bound = bounds.wrapped_pair_bound(len(a_set), len(b_set), n)
        ttr = ttr_for_shift(a, b, shift, bound + 1)
        assert ttr is not None
        assert ttr <= bound


class TestGuaranteeUnderFault:
    """How the Theorem 3 guarantee behaves once faults are injected."""

    @given(overlapping_sets(max_k=3), st.data())
    @settings(max_examples=20)
    def test_zero_intensity_preserves_guarantee_exactly(self, sets, data):
        n, a_set, b_set = sets
        a = EpochSchedule(a_set, n)
        b = EpochSchedule(b_set, n)
        bound = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        shift = data.draw(st.integers(0, 10**5))
        env = compose(
            FadingMisses(0.0, seed=data.draw(st.integers(0, 2**32))),
            PrimaryUserChurn(0.0, seed=1, dwell=8),
            AsymmetricSensing(0.0, seed=2),
        )
        clean = ttr_for_shift(a, b, shift, bound + 1)
        faulted = ttr_for_shift(a, b, shift, bound + 1, environment=env)
        assert faulted == clean
        assert faulted is not None and faulted <= bound

    @given(overlapping_sets(max_k=3), st.data())
    @settings(max_examples=20)
    def test_faults_only_delay_never_hasten(self, sets, data):
        n, a_set, b_set = sets
        a = EpochSchedule(a_set, n)
        b = EpochSchedule(b_set, n)
        shift = data.draw(st.integers(0, 10**4))
        env = data.draw(
            st.sampled_from(
                [
                    FadingMisses(0.3, seed=4),
                    PrimaryUserChurn(0.4, seed=5, dwell=8),
                    AsymmetricSensing(0.3, seed=6),
                ]
            )
        )
        horizon = 4 * bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        clean = ttr_for_shift(a, b, shift, horizon)
        faulted = ttr_for_shift(a, b, shift, horizon, environment=env)
        assert clean is not None
        if faulted is not None:
            assert faulted >= clean

    @given(overlapping_sets(max_k=3), st.data())
    @settings(max_examples=20)
    def test_churn_off_common_channels_keeps_theorem3(self, sets, data):
        n, a_set, b_set = sets
        a = EpochSchedule(a_set, n)
        b = EpochSchedule(b_set, n)
        outside = tuple(sorted(set(range(n)) - (a_set & b_set)))
        if not outside:
            return  # the pair shares the whole universe; nothing to scope
        env = PrimaryUserChurn(
            1.0,
            seed=data.draw(st.integers(0, 2**32)),
            dwell=data.draw(st.integers(1, 64)),
            channels=outside,
        )
        bound = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        shift = data.draw(st.integers(0, 10**5))
        clean = ttr_for_shift(a, b, shift, bound + 1)
        faulted = ttr_for_shift(a, b, shift, bound + 1, environment=env)
        assert faulted == clean
        assert faulted is not None and faulted <= bound
