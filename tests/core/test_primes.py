"""Tests for prime utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import primes


def _sieve(limit: int) -> set[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return {i for i in range(limit + 1) if flags[i]}


class TestIsPrime:
    def test_against_sieve(self):
        table = _sieve(10_000)
        for n in range(10_000):
            assert primes.is_prime(n) == (n in table)

    @pytest.mark.parametrize("n", [-5, 0, 1])
    def test_non_positive(self, n):
        assert not primes.is_prime(n)

    def test_large_known_prime(self):
        assert primes.is_prime(2**31 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not primes.is_prime((2**31 - 1) * 7)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not primes.is_prime(n)


class TestPrimesInRange:
    def test_inclusive_bounds(self):
        assert primes.primes_in_range(2, 11) == [2, 3, 5, 7, 11]

    def test_empty_window(self):
        assert primes.primes_in_range(24, 28) == []

    def test_clamps_below_two(self):
        assert primes.primes_in_range(-10, 3) == [2, 3]


class TestTwoPrimesForSetSize:
    def test_smallest_pairs(self):
        assert primes.two_primes_for_set_size(1) == (2, 3)
        assert primes.two_primes_for_set_size(2) == (2, 3)
        assert primes.two_primes_for_set_size(3) == (3, 5)
        assert primes.two_primes_for_set_size(4) == (5, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            primes.two_primes_for_set_size(0)

    @given(st.integers(1, 3000))
    def test_paper_window_always_has_two_primes(self, k):
        p, q = primes.two_primes_for_set_size(k)
        assert k <= p < q <= 3 * k
        assert primes.is_prime(p) and primes.is_prime(q)


class TestSmallestPrimeHelpers:
    @given(st.integers(0, 5000))
    def test_at_least(self, n):
        p = primes.smallest_prime_at_least(n)
        assert p >= max(n, 2)
        assert primes.is_prime(p)
        assert all(not primes.is_prime(m) for m in range(max(n, 2), p))

    @given(st.integers(0, 5000))
    def test_greater_than(self, n):
        p = primes.smallest_prime_greater_than(n)
        assert p > n
        assert primes.is_prime(p)
