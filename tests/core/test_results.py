"""Tests for the persistent result cache."""

from __future__ import annotations

import json

import pytest

from repro.core.results import (
    DEFAULT_RESULT_CAP,
    SHARD_PREFIX_LEN,
    ResultStore,
    pair_query,
    result_digest,
)


def _query(tag: int = 0, algorithm: str = "drds") -> dict:
    return pair_query(algorithm, 64, [1, 5, tag + 9], [5, 12], 10_000, 64, 64, 0)


def _value(tag: int = 0) -> dict:
    return {"worst_ttr": 100 + tag, "stats": {"count": 128, "mean": 7.5 + tag}}


class TestQueryDigest:
    def test_query_canonicalizes_channel_order(self):
        scrambled = pair_query("drds", 64, [9, 1, 5], [12, 5], 10_000, 64, 64, 0)
        assert scrambled == _query()
        assert result_digest(scrambled) == result_digest(_query())

    def test_digest_ignores_key_insertion_order(self):
        reversed_keys = dict(reversed(list(_query().items())))
        assert result_digest(reversed_keys) == result_digest(_query())

    def test_every_axis_changes_the_digest(self):
        base = _query()
        variants = [
            dict(base, algorithm="zos"),
            dict(base, n=128),
            dict(base, set_a=[1, 5]),
            dict(base, set_b=[5, 13]),
            dict(base, horizon=20_000),
            dict(base, dense=32),
            dict(base, probes=32),
            dict(base, seed=1),
        ]
        digests = {result_digest(q) for q in [base, *variants]}
        assert len(digests) == len(variants) + 1


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(_query()) is None
        store.put(_query(), _value())
        assert store.get(_query()) == _value()
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_records_persist_across_instances(self, tmp_path):
        ResultStore(tmp_path).put(_query(), _value())
        fresh = ResultStore(tmp_path)
        assert fresh.get(_query()) == _value()
        assert (fresh.hits, fresh.writes) == (1, 0)

    def test_shard_file_named_by_digest_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_query(), _value())
        digest = result_digest(_query())
        shard = tmp_path / f"{digest[:SHARD_PREFIX_LEN]}.jsonl"
        assert shard.exists()
        record = json.loads(shard.read_text().splitlines()[0])
        assert record == {"digest": digest, "query": _query(), "value": _value()}

    def test_put_replaces_same_digest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_query(), _value(0))
        store.put(_query(), _value(1))
        assert store.get(_query()) == _value(1)
        assert len(store.entries()) == 1

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_query(0), _value(0))
        store.put(_query(1), _value(1))
        assert store.invalidate(_query(0))
        assert not store.invalidate(_query(0))
        assert store.invalidations == 1
        assert store.get(_query(0)) is None
        assert store.get(_query(1)) == _value(1)

    def test_corrupt_lines_degrade_to_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_query(), _value())
        digest = result_digest(_query())
        shard = tmp_path / f"{digest[:SHARD_PREFIX_LEN]}.jsonl"
        shard.write_text('{"truncated-by-a-non-atomic\n' + shard.read_text())
        assert store.get(_query()) == _value()

    def test_eviction_under_byte_cap(self, tmp_path):
        store = ResultStore(tmp_path, memory_cap=2_000)
        queries = [_query(tag) for tag in range(20)]
        for tag, query in enumerate(queries):
            store.put(query, _value(tag))
        assert store.evictions > 0
        assert 0 < store.total_bytes() <= 2_000
        # The newest record never evicts its own shard mid-write.
        assert store.get(queries[-1]) == _value(19)

    def test_hit_refreshes_lru_position(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        store.put(_query(0), _value(0))
        store.put(_query(1), _value(1))
        # Backdate both shards past the filesystem's timestamp
        # granularity, then hit shard 0: the hit must leave it newest.
        for shard in store._shards():
            os.utime(shard, (1, 1))
        store.get(_query(0))
        digest = result_digest(_query(0))
        assert store._shards()[-1].name == f"{digest[:SHARD_PREFIX_LEN]}.jsonl"

    def test_clear_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_query(0), _value(0))
        store.put(_query(1), _value(1))
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["writes"] == 2
        assert stats["total_bytes"] == store.total_bytes()
        assert store.clear() == 2
        assert store.entries() == []

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, memory_cap=0)

    def test_default_cap(self, tmp_path):
        assert ResultStore(tmp_path).memory_cap == DEFAULT_RESULT_CAP


class TestEnvironmentKeys:
    """Faulted queries and their clean twins must never collide."""

    @staticmethod
    def _twins():
        """A clean query and a faulted twin whose digests share a shard.

        Shards are named by digest prefix, so most environment seeds
        land the two records in different files; scanning seeds for a
        prefix match pins the adversarial case — both rows in one
        shard file — deterministically.
        """
        from repro.core.environment import FadingMisses

        clean = _query()
        prefix = result_digest(clean)[:SHARD_PREFIX_LEN]
        for seed in range(100_000):
            env = FadingMisses(0.25, seed=seed)
            faulted = pair_query(
                "drds", 64, [1, 5, 9], [5, 12], 10_000, 64, 64, 0,
                environment=env,
            )
            if result_digest(faulted)[:SHARD_PREFIX_LEN] == prefix:
                return clean, faulted
        raise AssertionError("no shard-colliding seed found")

    def test_clean_query_omits_environment_key(self):
        from repro.core.environment import FadingMisses

        clean = pair_query("drds", 64, [1, 5, 9], [5, 12], 10_000, 64, 64, 0)
        assert "environment" not in clean
        faulted = pair_query(
            "drds", 64, [1, 5, 9], [5, 12], 10_000, 64, 64, 0,
            environment=FadingMisses(0.25, seed=1),
        )
        assert faulted["environment"]["kind"] == "fading"
        assert result_digest(clean) != result_digest(faulted)

    def test_same_shard_twins_never_cross_answer(self, tmp_path):
        clean, faulted = self._twins()
        shard = result_digest(clean)[:SHARD_PREFIX_LEN]
        assert result_digest(faulted)[:SHARD_PREFIX_LEN] == shard
        store = ResultStore(tmp_path)
        store.put(clean, {"worst_ttr": 111, "missed": 0})
        store.put(faulted, {"worst_ttr": 999, "missed": 7})
        assert len(store._shards()) == 1  # genuinely co-resident
        assert store.get(clean) == {"worst_ttr": 111, "missed": 0}
        assert store.get(faulted) == {"worst_ttr": 999, "missed": 7}

    def test_eviction_counters_with_both_present(self, tmp_path):
        clean, faulted = self._twins()
        store = ResultStore(tmp_path, memory_cap=1_200)
        store.put(clean, _value(0))
        store.put(faulted, _value(1))
        assert store.evictions == 0
        # Fill with unrelated records until cold shards evict; the
        # twins' shard was written last, so it survives the first
        # eviction wave and both rows stay answerable.
        import os

        for shard in store._shards():
            os.utime(shard, (1, 1))
        evicted_before = store.evictions
        for tag in range(2, 30):
            store.put(_query(tag), _value(tag))
        assert store.evictions > evicted_before
        assert store.total_bytes() <= 1_200
        stats = store.stats()
        assert stats["evictions"] == store.evictions
        assert stats["writes"] == 30
        survivors = {
            record["digest"] for record in store.entries()
        }
        for query, value in ((clean, _value(0)), (faulted, _value(1))):
            if result_digest(query) in survivors:
                assert store.get(query) == value
            else:
                assert store.get(query) is None
