"""The array-backend seam: conformance, resolution, and no-bypass proof.

The load-bearing certification here is the :class:`RecordingBackend`
run: its device arrays are opaque boxes that raise on any raw ``np.*``
use, so a full streaming scan completing through it *proves* the scan
routes every tile op through the seam — and returning bit-identical
profiles proves the seam carries the whole computation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import backend as backend_mod
from repro.core.backend import (
    ArrayBackend,
    NumpyBackend,
    RecordingBackend,
    check_conformance,
    conformance_checklist,
    register_backend,
    resolve_backend,
)
from repro.core.stream import (
    TilePlan,
    ttr_sweep_pairs,
    ttr_sweep_stream,
    ttr_sweep_stream_serial,
)
from repro.sim.workloads import random_subsets


def _pair(algorithm="jump-stay", seed=5):
    instance = random_subsets(16, 4, 3, seed=seed)
    i, j = instance.overlapping_pairs()[0]
    a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
    b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
    return a, b


SHIFTS = list(range(-30, 60)) + [997, -733]


class TestResolution:
    def test_default_and_auto_resolve_to_numpy(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("auto").name == "numpy"

    def test_instances_pass_through(self):
        instance = RecordingBackend()
        assert resolve_backend(instance) is instance

    def test_registered_names_resolve(self):
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend("recording").name == "recording"

    def test_env_var_switches_auto(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "recording")
        assert resolve_backend("auto").name == "recording"
        assert resolve_backend(None).name == "recording"
        # An explicit spec still wins over the environment.
        assert resolve_backend("numpy").name == "numpy"

    def test_entry_point_spec_imports(self):
        resolved = resolve_backend("repro.core.backend:NumpyBackend")
        assert isinstance(resolved, NumpyBackend)

    def test_entry_point_must_be_a_backend(self):
        with pytest.raises(ValueError, match="not an ArrayBackend"):
            resolve_backend("repro.core.backend:BACKEND_ENV_VAR")

    def test_unknown_spec_raises_with_registry(self):
        with pytest.raises(ValueError, match="registered"):
            resolve_backend("warp-drive")

    def test_register_backend_round_trip(self):
        class Custom(NumpyBackend):
            name = "custom-for-test"

        register_backend("custom-for-test", Custom)
        try:
            assert resolve_backend("custom-for-test").name == "custom-for-test"
        finally:
            backend_mod._BACKENDS.pop("custom-for-test", None)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_backend("", NumpyBackend)

    def test_abstract_backend_refuses_every_op(self):
        bare = ArrayBackend()
        with pytest.raises(NotImplementedError, match="from_host"):
            bare.from_host(np.zeros(1))
        with pytest.raises(NotImplementedError, match="argmax"):
            bare.argmax(None, axis=1)


class TestConformance:
    def test_numpy_backend_conforms(self):
        check_conformance(NumpyBackend())

    def test_recording_backend_conforms(self):
        check_conformance(RecordingBackend())

    def test_checklist_rows_are_ordered_and_detailed(self):
        rows = conformance_checklist(NumpyBackend())
        names = [name for name, _, _ in rows]
        assert names[0] == "transfer round-trip"
        assert "argmax first-of-ties" in names
        assert names[-1] == "end-to-end sweep parity"
        assert all(passed for _, passed, _ in rows)
        assert all(detail for _, _, detail in rows)

    def test_last_tie_argmax_fails_the_checklist(self):
        # The one semantic a GPU library most plausibly gets wrong:
        # returning *a* maximum instead of the first corrupts every
        # first-meet TTR, and the checklist must catch it.
        class LastTie(NumpyBackend):
            name = "last-tie"

            def argmax(self, array, axis: int):
                flipped = np.flip(array, axis=axis)
                return (
                    array.shape[axis] - 1 - np.argmax(flipped, axis=axis)
                )

        rows = dict(
            (name, passed)
            for name, passed, _ in conformance_checklist(LastTie())
        )
        assert not rows["argmax first-of-ties"]
        assert not rows["end-to-end sweep parity"]
        with pytest.raises(AssertionError, match="argmax"):
            check_conformance(LastTie())

    def test_dtype_breaking_backend_fails_the_checklist(self):
        class Truncating(NumpyBackend):
            name = "truncating"

            def to_host(self, array):
                return np.asarray(array, dtype=np.int32)

        rows = dict(
            (name, passed)
            for name, passed, _ in conformance_checklist(Truncating())
        )
        assert not rows["transfer round-trip"]


class TestNoBypassProof:
    def test_boxed_arrays_refuse_raw_numpy(self):
        box = RecordingBackend().from_host(np.arange(4))
        for use in (
            lambda: np.asarray(box),
            lambda: box == 3,
            lambda: box & box,
            lambda: ~box,
            lambda: box + 1,
            lambda: box[0],
            lambda: len(box),
            lambda: bool(box),
            lambda: list(box),
        ):
            with pytest.raises(TypeError, match="seam"):
                use()

    def test_ops_reject_unboxed_device_arguments(self):
        recording = RecordingBackend()
        with pytest.raises(TypeError, match="from_host"):
            recording.any(np.zeros((2, 2), dtype=bool), axis=1)
        with pytest.raises(TypeError, match="host array"):
            recording.from_host(recording.from_host(np.zeros(2)))

    def test_full_stream_scan_never_bypasses_the_seam(self):
        a, b = _pair()
        horizon = 4 * max(a.period, b.period)
        expected = ttr_sweep_stream(a, b, SHIFTS, horizon)
        recording = RecordingBackend()
        got = ttr_sweep_stream(a, b, SHIFTS, horizon, backend=recording)
        assert got == expected
        assert set(recording.ops) >= {
            "from_host", "to_host", "equal", "any", "argmax", "take"
        }

    def test_serial_scan_never_bypasses_the_seam(self):
        a, b = _pair()
        horizon = 4 * max(a.period, b.period)
        expected = ttr_sweep_stream_serial(a, b, SHIFTS, horizon)
        got = ttr_sweep_stream_serial(
            a, b, SHIFTS, horizon, backend=RecordingBackend()
        )
        assert got == expected

    def test_masked_scan_routes_the_mask_through_the_seam(self):
        from repro.core.environment import parse_environment

        a, b = _pair()
        env = parse_environment("fading:p=0.1,seed=3")
        expected = ttr_sweep_stream(a, b, SHIFTS, 5000, environment=env)
        recording = RecordingBackend()
        got = ttr_sweep_stream(
            a, b, SHIFTS, 5000, environment=env, backend=recording
        )
        assert got == expected
        assert "logical_and" in recording.ops

    def test_pair_major_scan_never_bypasses_the_seam(self):
        a, b = _pair()
        c, _ = _pair(algorithm="crseq", seed=7)
        horizon = 4 * max(a.period, b.period, c.period)
        expected = [
            ttr_sweep_stream(a, b, SHIFTS, horizon),
            ttr_sweep_stream(a, c, SHIFTS, horizon),
        ]
        got = ttr_sweep_pairs(
            [(a, b, SHIFTS), (a, c, SHIFTS)], horizon,
            backend=RecordingBackend(),
        )
        assert got == expected

    def test_thread_lanes_share_one_backend_instance(self):
        a, b = _pair()
        horizon = 4 * max(a.period, b.period)
        plan = TilePlan(tile_bytes=1 << 14, block_rows=4, workers=4)
        got = ttr_sweep_stream(
            a, b, SHIFTS, horizon, plan=plan, backend=RecordingBackend()
        )
        assert got == ttr_sweep_stream(a, b, SHIFTS, horizon)
