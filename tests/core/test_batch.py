"""Parity tests: the batched sweep engine vs the scalar reference path.

The contract is bit-identical profiles: for every workload the library
ships, ``ttr_sweep`` must return exactly what a per-shift loop over
``ttr_for_shift`` returns — including ``None`` misses, negative shifts,
duplicate shifts, and degenerate horizons.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import batch
from repro.core.schedule import CyclicSchedule, FunctionSchedule
from repro.core.verification import (
    exhaustive_shift_range,
    max_ttr,
    ttr_for_shift,
    ttr_profile,
)
from repro.sim.workloads import (
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

WORKLOADS = {
    "random_subsets": lambda: random_subsets(16, 4, 3, seed=1),
    "single_overlap": lambda: single_overlap(16, 3, 3, seed=2),
    "symmetric": lambda: symmetric(16, 3, 2, seed=3),
    "coalition_bands": lambda: coalition_bands(
        32, band_width=6, agents_per_band=2, num_bands=2, overlap=2, seed=4
    ),
    "whitespace": lambda: whitespace(16, 3, incumbent_load=0.6, seed=5),
    "nested": lambda: nested(16, [2, 4], seed=6),
}

SHIFTS = list(range(-40, 120)) + [997, 12_345, -733]


def _scalar(a, b, shifts, horizon):
    return {s: ttr_for_shift(a, b, s, horizon) for s in shifts}


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", ["paper", "crseq"])
def test_parity_across_workloads(kind, algorithm):
    instance = WORKLOADS[kind]()
    pairs = instance.overlapping_pairs()[:2]
    assert pairs, f"workload {kind} produced no overlapping pairs"
    for i, j in pairs:
        a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
        b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
        horizon = 4 * max(a.period, b.period)
        assert batch.ttr_sweep(a, b, SHIFTS, horizon) == _scalar(a, b, SHIFTS, horizon)


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_parity_on_tight_horizon_misses(kind):
    """Horizons below the TTR must yield the same ``None``s as scalar."""
    instance = WORKLOADS[kind]()
    i, j = instance.overlapping_pairs()[0]
    a = repro.build_schedule(instance.sets[i], instance.n)
    b = repro.build_schedule(instance.sets[j], instance.n)
    for horizon in (1, 2, 5, 17):
        shifts = list(range(-30, 90))
        swept = batch.ttr_sweep(a, b, shifts, horizon)
        assert swept == _scalar(a, b, shifts, horizon)
        assert any(t is None for t in swept.values()) or horizon > 5


def test_parity_exhaustive_range():
    a = CyclicSchedule([1, 2, 3, 4])
    b = CyclicSchedule([9, 9, 2, 9, 9, 1])
    shifts = list(exhaustive_shift_range(a, b))
    assert len(shifts) == a.period + b.period - 1
    assert batch.ttr_sweep(a, b, shifts, 500) == _scalar(a, b, shifts, 500)


def test_parity_disjoint_schedules_all_miss():
    a, b = CyclicSchedule([1, 2]), CyclicSchedule([3, 4, 5])
    shifts = list(range(-12, 25))
    swept = batch.ttr_sweep(a, b, shifts, 100_000)
    assert swept == {s: None for s in shifts}


def test_lcm_early_stop_matches_full_horizon_scan():
    """The engine stops scanning at lcm(periods); a huge horizon must not
    change any answer (the joint pattern is periodic)."""
    a, b = CyclicSchedule([1, 2, 7]), CyclicSchedule([7, 5])
    shifts = list(range(-6, 12))
    assert batch.ttr_sweep(a, b, shifts, 10**9) == _scalar(a, b, shifts, 10_000)


def test_chunking_is_invisible():
    """Tiny block budgets exercise both chunk axes without changing results."""
    instance = single_overlap(32, 3, 4, seed=7)
    a = repro.build_schedule(instance.sets[0], 32)
    b = repro.build_schedule(instance.sets[1], 32)
    shifts = list(range(-50, 400))
    reference = batch.ttr_sweep(a, b, shifts, 20_000)
    for max_cells in (1, 64, 1024):
        assert batch.ttr_sweep(a, b, shifts, 20_000, max_cells=max_cells) == reference


def test_duplicate_and_empty_shift_lists():
    a, b = CyclicSchedule([1, 2, 3]), CyclicSchedule([3, 1])
    assert batch.ttr_sweep(a, b, [], 100) == {}
    dup = batch.ttr_sweep(a, b, [4, 4, -4, 4], 100)
    assert set(dup) == {4, -4}
    assert dup == _scalar(a, b, [4, -4], 100)


def test_zero_horizon_is_all_misses():
    a, b = CyclicSchedule([1]), CyclicSchedule([1])
    assert batch.ttr_sweep(a, b, [0, 3], 0) == {0: None, 3: None}


def test_huge_period_fallback_matches_scalar():
    """Periods past BATCH_TABLE_LIMIT skip table materialization entirely
    (building the table would dwarf the sweep) and dispatch to the
    streaming tiled engine, which only evaluates the slots it scans —
    bit-identical to the scalar reference."""
    period = batch.BATCH_TABLE_LIMIT + 1
    a = FunctionSchedule(lambda t: t % 3, period, channels=frozenset({0, 1, 2}))
    b = CyclicSchedule([2, 0])
    shifts = [0, 1, 5, -3]
    assert batch.ttr_sweep(a, b, shifts, 50) == _scalar(a, b, shifts, 50)


def test_ttr_profile_goes_through_batch_engine():
    instance = symmetric(16, 3, 2, seed=3)
    a = repro.build_schedule(instance.sets[0], 16, algorithm="paper-symmetric")
    b = repro.build_schedule(instance.sets[1], 16, algorithm="paper-symmetric")
    shifts = [5, -2, 0, 31]
    profile = ttr_profile(a, b, shifts, 100)
    assert list(profile) == shifts  # insertion order preserved
    assert profile == _scalar(a, b, shifts, 100)


def test_max_ttr_matches_scalar_max_through_batch():
    instance = single_overlap(16, 2, 3, seed=9)
    a = repro.build_schedule(instance.sets[0], 16)
    b = repro.build_schedule(instance.sets[1], 16)
    shifts = list(range(200))
    horizon = 4 * max(a.period, b.period)
    expected = max(_scalar(a, b, shifts, horizon).values())
    assert max_ttr(a, b, shifts, horizon) == expected


def test_max_ttr_raises_on_miss_through_batch():
    a, b = CyclicSchedule([1, 2]), CyclicSchedule([3])
    with pytest.raises(AssertionError, match="no rendezvous"):
        max_ttr(a, b, [0, 1], 1000)


class TestAutoDispatchShape:
    """engine="auto" picks the engine from sweep *shape*, not just size:
    a one-shot strided sweep against cold tables streams (table
    materialization would dominate); warm or exhaustive sweeps batch."""

    def _cold_pair(self):
        # Fresh builds every call: dispatch probes table warmth, and a
        # prior period_table() call would flip the answer.
        instance = single_overlap(16, 3, 3, seed=2)
        a = repro.build_schedule(instance.sets[0], 16, algorithm="jump-stay")
        b = repro.build_schedule(instance.sets[1], 16, algorithm="jump-stay")
        return a, b

    def _spy_stream(self, monkeypatch):
        calls = []
        real = batch._stream.ttr_sweep_stream

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(batch._stream, "ttr_sweep_stream", spy)
        return calls

    def test_cold_strided_sweep_streams(self, monkeypatch):
        a, b = self._cold_pair()
        num = max(a.period, b.period) // batch.STRIDED_DISPATCH_FACTOR
        assert num > 0, "pair too small to express a strided sweep"
        shifts = list(range(num))
        calls = self._spy_stream(monkeypatch)
        profile = batch.ttr_sweep(a, b, shifts, 4 * max(a.period, b.period))
        assert calls, "cold strided sweep must dispatch to the stream engine"
        assert profile == batch.ttr_sweep(
            *self._cold_pair(), shifts, 4 * max(a.period, b.period),
            engine="batched",
        )

    def test_warm_tables_keep_the_batched_path(self, monkeypatch):
        a, b = self._cold_pair()
        a.period_table(), b.period_table()  # warm both
        assert a.has_warm_table() and b.has_warm_table()
        num = max(a.period, b.period) // batch.STRIDED_DISPATCH_FACTOR
        calls = self._spy_stream(monkeypatch)
        batch.ttr_sweep(a, b, list(range(num)), 4 * max(a.period, b.period))
        assert not calls, "warm tables make the batched setup free"

    def test_exhaustive_sweep_keeps_the_batched_path(self, monkeypatch):
        a, b = self._cold_pair()
        shifts = list(range(max(a.period, b.period)))  # shift count ~ period
        calls = self._spy_stream(monkeypatch)
        batch.ttr_sweep(a, b, shifts, 4 * max(a.period, b.period))
        assert not calls, "exhaustive sweeps read every table row: batch"

    def test_stored_schedules_count_as_warm(self, tmp_path):
        from repro.core.store import ScheduleStore

        store = ScheduleStore(tmp_path)
        store.get([1, 5], 16, "crseq")
        attached = store.get([1, 5], 16, "crseq")
        assert attached.has_warm_table()

    def test_warmth_probe_semantics(self):
        assert CyclicSchedule([1, 2, 3]).has_warm_table()
        cold = repro.build_schedule([1, 5, 9], 16, algorithm="paper")
        assert not cold.has_warm_table()
        cold.period_table()
        assert cold.has_warm_table()


class TestChooseEngine:
    """choose_engine pins every auto-dispatch regime as a pure decision:
    the warmth-aware refinement only weighs the *cold* side, so a warm
    huge table next to a cold small one stays on the batched path."""

    def _cold_pair(self):
        instance = single_overlap(16, 3, 3, seed=2)
        a = repro.build_schedule(instance.sets[0], 16, algorithm="jump-stay")
        b = repro.build_schedule(instance.sets[1], 16, algorithm="jump-stay")
        return a, b

    def test_checkpoint_forces_stream(self):
        a, b = self._cold_pair()
        assert batch.choose_engine(a, b, 10, checkpoint=True) == "stream"

    def test_non_numpy_backend_forces_stream(self):
        a, b = self._cold_pair()
        a.period_table(), b.period_table()
        assert batch.choose_engine(a, b, 10, backend="recording") == "stream"
        assert batch.choose_engine(a, b, 10, backend="numpy") != "stream"

    def test_tiny_joint_period_goes_scalar(self):
        assert (
            batch.choose_engine(CyclicSchedule([1, 2]), CyclicSchedule([2, 1]), 4)
            == "scalar"
        )

    def test_huge_period_goes_stream(self):
        big = FunctionSchedule(
            lambda t: t % 7, period=batch.BATCH_TABLE_LIMIT + 1
        )
        assert batch.choose_engine(big, CyclicSchedule([1, 2, 3]), 10) == "stream"

    def test_cold_strided_goes_stream(self):
        a, b = self._cold_pair()
        num = max(a.period, b.period) // batch.STRIDED_DISPATCH_FACTOR
        assert batch.choose_engine(a, b, num) == "stream"

    def test_exhaustive_goes_batched(self):
        a, b = self._cold_pair()
        assert batch.choose_engine(a, b, max(a.period, b.period)) == "batched"

    def test_both_warm_goes_batched(self):
        a, b = self._cold_pair()
        a.period_table(), b.period_table()
        num = max(a.period, b.period) // batch.STRIDED_DISPATCH_FACTOR
        assert batch.choose_engine(a, b, num) == "batched"

    def test_warm_big_cold_small_weighs_only_the_cold_side(self):
        # The PR-5 carry-over regime: the big table is warm (its reuse
        # is free) and the small side's build is cheap relative to the
        # sweep, so the batched path wins — the old both-or-nothing
        # probe streamed here and re-paid the small build's dispatch.
        a, b = self._cold_pair()
        big, small = (a, b) if a.period >= b.period else (b, a)
        big.period_table()
        num = max(
            1, small.period // batch.STRIDED_DISPATCH_FACTOR + 1
        )  # not strided vs the cold side
        assert num * batch.STRIDED_DISPATCH_FACTOR > small.period
        assert batch.choose_engine(big, small, num) == "batched"

    def test_warm_big_cold_small_still_streams_when_strided_vs_cold(self):
        a, b = self._cold_pair()
        big, small = (a, b) if a.period >= b.period else (b, a)
        big.period_table()
        num = small.period // batch.STRIDED_DISPATCH_FACTOR
        if num < 1:
            pytest.skip("small side too small to express a strided sweep")
        assert batch.choose_engine(big, small, num) == "stream"

    def test_ttr_sweep_auto_follows_choose_engine(self, monkeypatch):
        a, b = self._cold_pair()
        big, small = (a, b) if a.period >= b.period else (b, a)
        big.period_table()
        calls = []
        real = batch._stream.ttr_sweep_stream

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(batch._stream, "ttr_sweep_stream", spy)
        shifts = list(range(small.period // batch.STRIDED_DISPATCH_FACTOR + 1))
        batch.ttr_sweep(big, small, shifts, 4 * big.period)
        assert not calls, "warm-big/cold-small unstride sweep must batch"


class TestTtrSweepPairsDispatcher:
    """batch.ttr_sweep_pairs: one pair-major pass, per-job parity."""

    def _jobs(self):
        instance = random_subsets(16, 4, 3, seed=9)
        scheds = [
            repro.build_schedule(s, instance.n, algorithm="crseq")
            for s in instance.sets
        ]
        shifts = list(range(-20, 40))
        return [
            (scheds[i], scheds[j], shifts)
            for i, j in instance.overlapping_pairs()
        ]

    def test_matches_per_job_ttr_sweep(self):
        jobs = self._jobs()
        horizon = 4 * max(max(a.period, b.period) for a, b, _ in jobs)
        stacked = batch.ttr_sweep_pairs(jobs, horizon)
        for (a, b, shifts), got in zip(jobs, stacked):
            assert got == batch.ttr_sweep(a, b, shifts, horizon)

    def test_per_job_horizons(self):
        jobs = self._jobs()
        horizons = [200 + 100 * i for i in range(len(jobs))]
        stacked = batch.ttr_sweep_pairs(jobs, horizons)
        for (a, b, shifts), h, got in zip(jobs, horizons, stacked):
            assert got == batch.ttr_sweep(a, b, shifts, h)

    def test_reference_engines_loop_per_job(self):
        jobs = self._jobs()[:2]
        horizon = 4 * max(max(a.period, b.period) for a, b, _ in jobs)
        for engine in ("batched", "scalar"):
            looped = batch.ttr_sweep_pairs(jobs, horizon, engine=engine)
            assert looped == batch.ttr_sweep_pairs(jobs, horizon)

    def test_horizon_count_mismatch_raises(self):
        jobs = self._jobs()[:2]
        with pytest.raises(ValueError, match="horizons for"):
            batch.ttr_sweep_pairs(jobs, [100])

    def test_bad_engine_and_backend_combinations_raise(self):
        jobs = self._jobs()[:1]
        with pytest.raises(ValueError, match="unknown engine"):
            batch.ttr_sweep_pairs(jobs, 100, engine="warp")
        with pytest.raises(ValueError, match="streaming engine"):
            batch.ttr_sweep_pairs(jobs, 100, engine="batched", backend="recording")
        with pytest.raises(ValueError, match="streaming engine"):
            batch.ttr_sweep(*jobs[0], 100, engine="scalar", backend="recording")
