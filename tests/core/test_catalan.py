"""Tests for the U / M / R maps of Theorem 1."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import catalan, knuth
from repro.core.bitstrings import (
    complement,
    is_balanced,
    is_catalan,
    is_strictly_catalan,
    maxima_count,
    rotate,
)
from tests.conftest import balanced_bits, even_bits


class TestUTransform:
    def test_requires_balanced(self):
        with pytest.raises(ValueError, match="balanced"):
            catalan.u_transform("10 1".replace(" ", "1"))

    @given(balanced_bits(max_half=8))
    def test_output_catalan_and_balanced(self, z):
        out = catalan.u_transform(z)
        assert is_catalan(out)
        assert is_balanced(out)

    @given(balanced_bits(max_half=8))
    def test_length_formula(self, z):
        assert len(catalan.u_transform(z)) == catalan.u_length(len(z))

    @given(balanced_bits(max_half=8))
    def test_round_trip(self, z):
        assert catalan.u_inverse(catalan.u_transform(z), len(z)) == z

    def test_inverse_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="expected"):
            catalan.u_inverse("10", 8)

    def test_inverse_rejects_corrupt_padding(self):
        out = catalan.u_transform("0110")
        corrupt = "0" + out[1:] if out[0] == "1" else "1" + out[1:]
        # Corrupting the rotated body may not hit the padding; corrupt the
        # ramp region explicitly instead.
        body = 4
        corrupt = out[:body] + ("0" + out[body + 1 :])
        with pytest.raises(ValueError):
            catalan.u_inverse(corrupt, 4)


class TestMTransform:
    def test_inserts_marker_at_first_max(self):
        # 1100: walk 0,1,2,1,0; first max at position 2.
        assert catalan.m_transform("1100") == "11" + "1010" + "00"

    def test_two_maximal_after_transform(self):
        for z in ["10", "1100", "110100", "111000"]:
            assert maxima_count(catalan.m_transform(z)) == 2

    def test_preserves_strict_catalan(self):
        for z in ["10", "1100", "110100"]:
            assert is_strictly_catalan(z)
            assert is_strictly_catalan(catalan.m_transform(z))

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            catalan.m_transform("")

    @given(balanced_bits(max_half=8).filter(is_strictly_catalan).filter(len))
    def test_round_trip_on_strictly_catalan(self, z):
        assert catalan.m_inverse(catalan.m_transform(z)) == z

    def test_inverse_rejects_garbage(self):
        with pytest.raises(ValueError):
            catalan.m_inverse("0000")


class TestRMap:
    @given(even_bits(max_size=12))
    def test_image_has_all_three_properties(self, z):
        out = catalan.r_map(z)
        assert is_balanced(out)
        assert is_strictly_catalan(out)
        assert maxima_count(out) == 2

    @given(even_bits(max_size=12))
    def test_round_trip(self, z):
        assert catalan.r_inverse(catalan.r_map(z), len(z)) == z

    @given(even_bits(max_size=12))
    def test_length_formula(self, z):
        assert len(catalan.r_map(z)) == catalan.r_length(len(z))

    def test_odd_input_rejected(self):
        with pytest.raises(ValueError, match="even"):
            catalan.r_map("101")

    def test_injective_on_fixed_width(self):
        width = 6
        images = {catalan.r_map(format(v, f"0{width}b")) for v in range(1 << width)}
        assert len(images) == 1 << width

    def test_fixed_width_images_share_length(self):
        width = 6
        lengths = {len(catalan.r_map(format(v, f"0{width}b"))) for v in range(1 << width)}
        assert len(lengths) == 1

    def test_r_length_growth_is_log_log_shaped(self):
        # Input width ~ log log n; output adds only lower-order terms.
        assert catalan.r_length(2) <= 40
        assert catalan.r_length(6) <= 56
        assert catalan.r_length(10) - catalan.r_length(2) <= 16


class TestRendezvousStringProperties:
    """The three structural lemmas the rendezvous proof rests on."""

    @staticmethod
    def _images(width: int = 4) -> list[str]:
        return [catalan.r_map(format(v, f"0{width}b")) for v in range(1 << width)]

    def test_no_image_equals_nontrivial_rotation_of_any_image(self):
        images = self._images()
        for z in images:
            for other in images:
                for shift in range(1, len(other)):
                    assert z != rotate(other, shift)

    def test_no_image_equals_complement_of_any_rotation(self):
        images = self._images()
        for z in images:
            for other in images:
                for shift in range(len(other)):
                    assert z != complement(rotate(other, shift))

    def test_all_four_tuples_realized_for_distinct_images(self):
        images = self._images()
        length = len(images[0])
        for i, z in enumerate(images[:6]):
            for other in images[:6]:
                if z == other:
                    continue
                for shift in range(length):
                    w = rotate(other, shift)
                    tuples = {(z[t], w[t]) for t in range(length)}
                    assert tuples == {("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")}

    def test_same_image_rotations_realize_diagonal_tuples(self):
        images = self._images()
        for z in images[:8]:
            for shift in range(len(z)):
                w = rotate(z, shift)
                tuples = {(z[t], w[t]) for t in range(len(z))}
                assert ("0", "0") in tuples
                assert ("1", "1") in tuples
