"""Tests for the closed-form bound formulas — and that reality obeys them."""

from __future__ import annotations

import random

import pytest

from repro.core import bounds
from repro.core.epoch import EpochSchedule, rendezvous_bound
from repro.core.pairwise import async_period, pair_schedule_async
from repro.core.symmetric import SymmetricWrappedSchedule
from repro.core.verification import ttr_for_shift, verify_guarantee


class TestFormulas:
    def test_theorem1_matches_period(self):
        for n in (4, 64, 2**16):
            assert bounds.theorem1_async_bound(n) == async_period(n)

    def test_theorem3_matches_schedule_bound(self):
        n = 32
        a = EpochSchedule([1, 2, 3], n)
        b = EpochSchedule([3, 9, 11, 14], n)
        assert bounds.theorem3_async_bound(3, 4, n) == rendezvous_bound(a, b)

    def test_theorem3_symmetric_in_arguments(self):
        assert bounds.theorem3_async_bound(3, 5, 64) == bounds.theorem3_async_bound(
            5, 3, 64
        )

    def test_sync_cheaper_than_async(self):
        assert bounds.theorem3_sync_bound(4, 4, 64) < bounds.theorem3_async_bound(
            4, 4, 64
        )

    def test_wrapped_pair_is_12x_plus_slack(self):
        base = bounds.theorem3_async_bound(2, 3, 32)
        assert bounds.wrapped_pair_bound(2, 3, 32) == 12 * base + 24

    def test_baseline_envelopes(self):
        assert bounds.crseq_bound(8) == 3 * 11 * 11
        assert bounds.jump_stay_bound(8) == 3 * 11 * 11 * 10
        assert bounds.drds_bound(8) == 45 * 64 + 64

    def test_randomized_expectation(self):
        assert bounds.randomized_expected_ttr(2, 2, overlap=1) == 3
        assert bounds.randomized_expected_ttr(1, 1, overlap=1) == 0

    def test_randomized_whp_positive(self):
        assert bounds.randomized_whp_bound(3, 3, 64) > 0

    def test_zero_overlap_rejected(self):
        with pytest.raises(ValueError):
            bounds.randomized_expected_ttr(2, 2, overlap=0)
        with pytest.raises(ValueError):
            bounds.randomized_whp_bound(2, 2, 8, overlap=0)


class TestBoundsHoldInPractice:
    def test_theorem1_bound_is_exact_guarantee(self):
        n = 16
        a = pair_schedule_async(2, 9, n)
        b = pair_schedule_async(9, 14, n)
        ok, worst, _ = verify_guarantee(a, b, bounds.theorem1_async_bound(n))
        assert ok
        assert worst < bounds.theorem1_async_bound(n)

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem3_bound_holds_on_random_instances(self, seed):
        rng = random.Random(seed)
        n = 16
        k, l = rng.randint(1, 5), rng.randint(1, 5)
        common = rng.randrange(n)
        rest = [c for c in range(n) if c != common]
        a_set = {common} | set(rng.sample(rest, k - 1))
        b_set = {common} | set(rng.sample(rest, l - 1))
        a, b = EpochSchedule(a_set, n), EpochSchedule(b_set, n)
        bound = bounds.theorem3_async_bound(len(a_set), len(b_set), n)
        for shift in [0, 1, 17, 1000, rng.randrange(10**6)]:
            ttr = ttr_for_shift(a, b, shift, bound + 1)
            assert ttr is not None and ttr <= bound

    def test_symmetric_constant_holds(self):
        n = 64
        s1 = SymmetricWrappedSchedule(EpochSchedule([5, 9, 40], n))
        s2 = SymmetricWrappedSchedule(EpochSchedule([5, 9, 40], n))
        for shift in range(0, 100, 7):
            ttr = ttr_for_shift(s1, s2, shift, bounds.symmetric_wrapper_bound() + 1)
            assert ttr is not None
            assert ttr <= bounds.symmetric_wrapper_bound()

    def test_randomized_expectation_roughly_matches(self):
        from repro.baselines.random_schedule import RandomSchedule

        n, k = 16, 3
        samples = []
        for seed in range(60):
            a = RandomSchedule([0, 1, 2], n, seed=seed)
            b = RandomSchedule([0, 4, 5], n, seed=900 + seed)
            ttr = ttr_for_shift(a, b, 0, 10_000)
            assert ttr is not None
            samples.append(ttr)
        mean = sum(samples) / len(samples)
        expected = bounds.randomized_expected_ttr(k, k, overlap=1)
        assert 0.5 * expected <= mean <= 2.0 * expected
