"""Tests for the telemetry registry (:mod:`repro.core.telemetry`).

The module's three contracts each get a direct gate here:

* **zero overhead when disabled** — the disabled path hands out one
  shared no-op singleton and allocates nothing on the stream engine's
  hot-loop call pattern;
* **never observable by results** — telemetry-on and telemetry-off
  sweeps are bit-identical across all three engines;
* **deterministic structure** — a snapshot's names, nesting, ordering,
  call counts, and byte totals are identical across ``PYTHONHASHSEED``
  values (only the measured seconds vary).

Plus the aggregation mechanics: span nesting per thread, pool-worker
snapshot merging through ``SweepRunner``, and counter/gauge semantics.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.core import telemetry
from repro.core.batch import ttr_sweep
from repro.core.verification import strided_shift_range
from repro.sim import runner
from repro.sim.workloads import random_subsets, single_overlap


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with a disabled, empty registry."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


class TestRegistryBasics:
    def test_disabled_span_is_shared_singleton(self):
        first = telemetry.span("stream.tile_assembly")
        second = telemetry.span("stream.compare")
        assert first is second
        with first as handle:
            handle.add_bytes(4096)
        snap = telemetry.snapshot()
        assert snap["spans"] == {}
        assert snap["counters"] == {}

    def test_disabled_count_and_gauge_record_nothing(self):
        telemetry.count("store.result.hits", 5)
        telemetry.gauge("runner.pool_processes", 4)
        assert telemetry.counter_value("store.result.hits") == 0
        assert telemetry.snapshot()["gauges"] == {}

    def test_enabled_spans_nest_and_aggregate(self):
        telemetry.enable()
        for _ in range(3):
            with telemetry.span("outer"):
                with telemetry.span("inner") as inner:
                    inner.add_bytes(100)
        snap = telemetry.snapshot()
        outer = snap["spans"]["outer"]
        assert outer["calls"] == 3
        inner = outer["children"]["inner"]
        assert inner["calls"] == 3
        assert inner["bytes"] == 300
        assert snap["total_seconds"] == pytest.approx(
            outer["seconds"], abs=1e-6
        )

    def test_span_records_even_when_body_raises(self):
        telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("failing.phase"):
                raise RuntimeError("boom")
        snap = telemetry.snapshot()
        assert snap["spans"]["failing.phase"]["calls"] == 1

    def test_counters_and_gauges(self):
        telemetry.enable()
        telemetry.count("events", 2)
        telemetry.count("events")
        telemetry.gauge("lanes", 4)
        telemetry.gauge("lanes", 8)
        assert telemetry.counter_value("events") == 3
        snap = telemetry.snapshot()
        assert snap["counters"] == {"events": 3}
        assert snap["gauges"] == {"lanes": 8}

    def test_reset_clears_everything(self):
        telemetry.enable()
        with telemetry.span("phase"):
            telemetry.count("events")
        telemetry.reset()
        snap = telemetry.snapshot()
        assert snap["spans"] == {}
        assert snap["counters"] == {}
        assert telemetry.total_seconds(snap) == 0.0

    def test_merge_adds_counters_and_span_totals(self):
        telemetry.enable()
        with telemetry.span("phase"):
            telemetry.count("events")
        worker_snap = telemetry.snapshot()
        telemetry.merge(worker_snap)
        telemetry.merge(None)  # tolerated and ignored
        telemetry.merge({})
        snap = telemetry.snapshot()
        assert snap["counters"]["events"] == 2
        assert snap["spans"]["phase"]["calls"] == 2

    def test_snapshot_keys_sorted_at_every_level(self):
        telemetry.enable()
        for name in ("zebra", "alpha", "mid"):
            with telemetry.span(name):
                with telemetry.span("z.child"):
                    pass
                with telemetry.span("a.child"):
                    pass
        telemetry.count("z.counter")
        telemetry.count("a.counter")
        snap = telemetry.snapshot()
        assert list(snap["spans"]) == ["alpha", "mid", "zebra"]
        for node in snap["spans"].values():
            assert list(node["children"]) == ["a.child", "z.child"]
        assert list(snap["counters"]) == ["a.counter", "z.counter"]

    def test_format_tree_renders_phases_and_counters(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner") as inner:
                inner.add_bytes(1 << 20)
        telemetry.count("events", 7)
        telemetry.gauge("lanes", 2)
        text = telemetry.format_tree(telemetry.snapshot(), wall_seconds=1.0)
        assert text.startswith("telemetry:")
        assert "(1.0000 s wall)" in text
        assert "outer" in text and "inner" in text
        assert "1.0 MiB" in text
        assert "%" in text
        assert "events" in text and "7" in text
        assert "lanes" in text


class TestPoolWorkerMerge:
    def test_spans_merge_across_process_pool_workers(self):
        # 10 overlapping pairs >= MIN_PARALLEL_PAIRS, so workers=2
        # genuinely fans out through the ProcessPoolExecutor.
        inst = random_subsets(16, 8, 5, seed=4)
        pairs = inst.overlapping_pairs()
        assert len(pairs) >= runner.MIN_PARALLEL_PAIRS
        telemetry.enable()
        telemetry.reset()
        engine = runner.SweepRunner(workers=2)
        results = engine.measure_instance(
            inst, "paper", horizon=60_000, dense=2, probes=2
        )
        snap = telemetry.snapshot()
        assert len(results) == len(pairs)
        # The parent records the fan-out; every worker's serialized
        # snapshot folds in as its own root lane.
        assert "runner.pool_fanout" in snap["spans"]
        worker = snap["spans"]["runner.worker_task"]
        assert worker["calls"] == len(pairs)
        assert "runner.measure_pair" in worker["children"]
        assert worker["children"]["runner.measure_pair"]["calls"] == len(pairs)
        assert snap["counters"]["runner.pool_pairs"] == len(pairs)
        assert snap["gauges"]["runner.pool_processes"] == 2

    def test_serial_path_records_without_pool(self):
        inst = random_subsets(16, 4, 3, seed=3)  # too few pairs to fan out
        telemetry.enable()
        telemetry.reset()
        engine = runner.SweepRunner(workers=4)
        engine.measure_instance(inst, "paper", horizon=60_000, dense=2, probes=2)
        snap = telemetry.snapshot()
        assert "runner.serial" in snap["spans"]
        assert "runner.pool_fanout" not in snap["spans"]
        assert snap["counters"]["runner.serial_pairs"] == len(
            inst.overlapping_pairs()
        )


class TestDisabledOverhead:
    def test_disabled_hot_loop_allocates_nothing(self):
        # The stream engine's per-tile call pattern: span + add_bytes
        # + a counter bump. Warm up so every code path and cached
        # attribute exists, then measure allocated blocks around a
        # 10k-iteration burst: a single allocation per call would show
        # up 10_000x, so a near-zero delta certifies the no-op path.
        assert not telemetry.enabled()

        def hot_loop(iterations):
            for _ in range(iterations):
                with telemetry.span("stream.tile_assembly") as tile:
                    tile.add_bytes(4096)
                telemetry.count("netsim.chunks")

        hot_loop(1_000)  # warm-up
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            hot_loop(10_000)
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        # The measurement itself pins a handful of blocks (the ints
        # holding the readings, the loop's range iterator); anything
        # per-call would be four orders of magnitude larger.
        assert after - before < 10


class TestResultParity:
    @pytest.mark.parametrize("engine", ["scalar", "batched", "stream"])
    def test_on_off_bit_identical(self, engine):
        inst = single_overlap(16, 3, 3, seed=0)
        a = repro.build_schedule(inst.sets[0], 16, algorithm="jump-stay")
        b = repro.build_schedule(inst.sets[1], 16, algorithm="jump-stay")
        shifts = list(strided_shift_range(a, b, 64))
        horizon = 4 * max(a.period, b.period)

        telemetry.disable()
        telemetry.reset()
        off = ttr_sweep(a, b, shifts, horizon, engine=engine)

        telemetry.enable()
        telemetry.reset()
        on = ttr_sweep(a, b, shifts, horizon, engine=engine)
        snap = telemetry.snapshot()
        telemetry.disable()

        assert on == off
        # The enabled run actually instrumented this engine's phases.
        prefix = {"scalar": "scalar.", "batched": "batch.", "stream": "stream."}
        assert any(
            name.startswith(prefix[engine]) for name in snap["spans"]
        ), snap["spans"].keys()


# One self-contained script replayed under different PYTHONHASHSEED
# values: the snapshot's *structure* (names, nesting, ordering, call
# counts, byte totals) must be identical; only seconds may vary, so
# the script strips them before printing.
_STRUCTURE_SCRIPT = r"""
import json
import repro
from repro.core import telemetry
from repro.core.batch import ttr_sweep
from repro.core.verification import strided_shift_range
from repro.sim.workloads import single_overlap

inst = single_overlap(16, 3, 3, seed=0)
a = repro.build_schedule(inst.sets[0], 16, algorithm="jump-stay")
b = repro.build_schedule(inst.sets[1], 16, algorithm="jump-stay")
shifts = list(strided_shift_range(a, b, 64))

telemetry.enable()
telemetry.reset()
ttr_sweep(a, b, shifts, 4 * max(a.period, b.period), engine="stream",
          stream_workers=1)
telemetry.count("extra.counter", 3)
telemetry.gauge("extra.gauge", 2.0)
snap = telemetry.snapshot()

def strip_seconds(children):
    return {
        name: {
            "calls": node["calls"],
            "bytes": node["bytes"],
            "children": strip_seconds(node["children"]),
        }
        for name, node in children.items()
    }

print(json.dumps({
    "counters": snap["counters"],
    "gauges": snap["gauges"],
    "spans": strip_seconds(snap["spans"]),
}))
"""


class TestStructureDeterminism:
    def test_identical_under_hashseed_variation(self):
        outputs = []
        for hashseed in ("0", "1", "31337"):
            proc = subprocess.run(
                [sys.executable, "-c", _STRUCTURE_SCRIPT],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hashseed,
                },
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        payload = json.loads(outputs[0])
        assert "stream.sweep" in payload["spans"]
        assert payload["counters"]["extra.counter"] == 3
        # json.dumps preserves dict order: sortedness survives transit.
        assert list(payload["spans"]) == sorted(payload["spans"])
