"""Tests for Theorem 3: the general n-schedule."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.epoch import EpochSchedule, rendezvous_bound
from repro.core.pairwise import async_period, sync_period
from repro.core.verification import ttr_for_shift, verify_guarantee


def _overlapping_sets(rng: random.Random, n: int, ka: int, kb: int):
    common = rng.randrange(n)
    rest = [c for c in range(n) if c != common]
    a = {common} | set(rng.sample(rest, ka - 1))
    b = {common} | set(rng.sample(rest, kb - 1))
    return a, b


class TestConstruction:
    def test_channels_sorted_and_deduplicated(self):
        s = EpochSchedule([9, 2, 2, 5], 16)
        assert s.sorted_channels == (2, 5, 9)
        assert s.k == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EpochSchedule([], 16)

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError):
            EpochSchedule([17], 16)
        with pytest.raises(ValueError):
            EpochSchedule([-1], 16)

    def test_primes_in_paper_window(self):
        for k in range(1, 12):
            s = EpochSchedule(list(range(k)), 64)
            p, q = s.prime_pair
            assert k <= p < q <= 3 * k

    def test_async_epoch_is_doubled(self):
        s = EpochSchedule([1, 2, 3], 64)
        assert s.epoch_length == 2 * async_period(64)

    def test_sync_epoch_is_single(self):
        s = EpochSchedule([1, 2, 3], 64, asynchronous=False)
        assert s.epoch_length == sync_period(64)

    def test_period_covers_all_epoch_pairs(self):
        s = EpochSchedule([0, 3, 7, 9], 32)
        p, q = s.prime_pair
        assert s.period == s.epoch_length * p * q

    def test_only_uses_own_channels(self):
        s = EpochSchedule([3, 7, 11], 16)
        window = s.materialize(0, s.period)
        assert set(int(c) for c in window) <= {3, 7, 11}

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            EpochSchedule([1], 8).channel_at(-1)


class TestSingletonSets:
    def test_singleton_is_constant(self):
        s = EpochSchedule([5], 16)
        assert set(int(c) for c in s.materialize(0, 100)) == {5}

    def test_singleton_meets_anything_containing_it(self):
        n = 16
        a = EpochSchedule([5], n)
        b = EpochSchedule([2, 5, 9], n)
        bound = rendezvous_bound(a, b)
        for shift in range(0, 3 * b.epoch_length, 7):
            assert ttr_for_shift(a, b, shift, bound + 1) is not None


class TestEpochStructure:
    def test_epoch_indices_follow_primes(self):
        s = EpochSchedule(list(range(5)), 32)
        p, q = s.prime_pair
        for r in range(p * q):
            i, j = s._epoch_indices(r)
            expected_i = r % p if r % p < 5 else 0
            expected_j = r % q if r % q < 5 else 0
            assert (i, j) == (expected_i, expected_j)

    def test_fallback_to_first_channel(self):
        # k=4 has primes (5, 7): epoch r=4 gives i=4 >= k -> fallback 0.
        s = EpochSchedule([1, 2, 3, 4], 32)
        i, j = s._epoch_indices(4)
        assert i == 0

    def test_within_epoch_cycles_pair_schedule(self):
        s = EpochSchedule([2, 9], 32)
        base = async_period(32)
        first = [s.channel_at(t) for t in range(base)]
        second = [s.channel_at(t + base) for t in range(base)]
        assert first == second  # the doubled epoch repeats its content


class TestAsynchronousGuarantee:
    """Randomized-but-seeded sweep: overlapping sets must rendezvous
    within the analytic bound at structured and random shifts."""

    N = 16

    @pytest.mark.parametrize("seed", range(6))
    def test_random_overlapping_pairs(self, seed):
        rng = random.Random(seed)
        ka, kb = rng.randint(1, 6), rng.randint(1, 6)
        a_set, b_set = _overlapping_sets(rng, self.N, ka, kb)
        a, b = EpochSchedule(a_set, self.N), EpochSchedule(b_set, self.N)
        bound = rendezvous_bound(a, b)
        shifts = list(range(0, 3 * max(a.epoch_length, b.epoch_length)))
        shifts += [rng.randrange(0, a.period * b.period) for _ in range(25)]
        for shift in shifts:
            ttr = ttr_for_shift(a, b, shift, bound + 1)
            assert ttr is not None and ttr <= bound, (a_set, b_set, shift, ttr)

    def test_exhaustive_tiny_instance(self):
        # k=1 vs k=2 has a small enough joint period for full certification.
        a = EpochSchedule([3], 8)
        b = EpochSchedule([3, 6], 8)
        ok, worst, shift = verify_guarantee(a, b, rendezvous_bound(a, b))
        assert ok, shift

    def test_disjoint_sets_never_meet(self):
        a = EpochSchedule([1, 2], 16)
        b = EpochSchedule([8, 9], 16)
        assert ttr_for_shift(a, b, 0, 5000) is None


class TestSynchronousGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_aligned_rendezvous(self, seed):
        rng = random.Random(100 + seed)
        n = 16
        ka, kb = rng.randint(1, 6), rng.randint(1, 6)
        a_set, b_set = _overlapping_sets(rng, n, ka, kb)
        a = EpochSchedule(a_set, n, asynchronous=False)
        b = EpochSchedule(b_set, n, asynchronous=False)
        # Synchronous bound: epoch r <= p*q via CRT, plus one epoch slack.
        bound = rendezvous_bound(a, b)
        ttr = ttr_for_shift(a, b, 0, bound + 1)
        assert ttr is not None and ttr <= bound, (a_set, b_set, ttr)


class TestRendezvousBound:
    def test_scales_with_set_sizes(self):
        n = 64
        small = rendezvous_bound(EpochSchedule([1, 2], n), EpochSchedule([2, 3], n))
        large = rendezvous_bound(
            EpochSchedule(list(range(10)), n), EpochSchedule(list(range(9, 19)), n)
        )
        assert large > small

    def test_uses_cheapest_helpful_pair(self):
        n = 64
        a = EpochSchedule([1, 2, 3], n)  # primes (3, 5)
        b = EpochSchedule([4, 5, 6], n)  # primes (3, 5)
        # Helpful pairs: (3,5) both ways -> 15.
        assert rendezvous_bound(a, b) == a.epoch_length * (15 + 2)

    def test_identical_prime_pairs_still_helpful(self):
        n = 32
        a = EpochSchedule([0, 1], n)
        b = EpochSchedule([1, 2], n)
        assert rendezvous_bound(a, b) > 0
