"""Tests for the CRT solver."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import crt


class TestExtendedGcd:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_bezout_identity(self, a, b):
        g, s, t = crt.extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert s * a + t * b == g


class TestCrtPair:
    def test_textbook_example(self):
        x, lcm = crt.crt_pair(2, 3, 3, 5)
        assert x == 8
        assert lcm == 15

    def test_non_coprime_compatible(self):
        x, lcm = crt.crt_pair(2, 4, 0, 6)
        assert lcm == 12
        assert x % 4 == 2 and x % 6 == 0

    def test_non_coprime_incompatible(self):
        with pytest.raises(ValueError, match="incompatible"):
            crt.crt_pair(1, 4, 0, 6)

    def test_rejects_bad_moduli(self):
        with pytest.raises(ValueError):
            crt.crt_pair(0, 0, 1, 3)

    @given(
        st.integers(1, 500),
        st.integers(1, 500),
        st.integers(0, 10_000),
    )
    def test_solution_properties(self, m1, m2, seed):
        # Build a guaranteed-compatible instance from a hidden witness.
        x0 = seed % math.lcm(m1, m2)
        x, lcm = crt.crt_pair(x0 % m1, m1, x0 % m2, m2)
        assert lcm == math.lcm(m1, m2)
        assert 0 <= x < lcm
        assert x == x0


class TestSolveCongruences:
    def test_single(self):
        assert crt.solve_congruences([(5, 7)]) == (5, 7)

    def test_triple(self):
        x, lcm = crt.solve_congruences([(2, 3), (3, 5), (2, 7)])
        assert x == 23
        assert lcm == 105

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crt.solve_congruences([])

    def test_theorem3_shape(self):
        # The epoch argument: helpful primes p != q give an epoch r < p*q.
        p, q = 5, 7
        for x in range(p):
            for y in range(q):
                r, lcm = crt.crt_pair(x, p, y, q)
                assert r < p * q == lcm
