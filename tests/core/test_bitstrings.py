"""Unit and property tests for the bit-string walk toolkit."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitstrings as bs
from tests.conftest import balanced_bits, bits


class TestValidateBits:
    def test_accepts_binary(self):
        assert bs.validate_bits("0101") == "0101"

    def test_accepts_empty(self):
        assert bs.validate_bits("") == ""

    def test_rejects_other_characters(self):
        with pytest.raises(ValueError, match="not a binary string"):
            bs.validate_bits("01x0")


class TestWalkHeights:
    def test_paper_figure_1a_sequence(self):
        # Figure 1a: the graph of 11010 climbs to 2, dips, ends at +1.
        assert bs.walk_heights("11010") == [0, 1, 2, 1, 2, 1]

    def test_paper_figure_1b_balanced_sequence(self):
        # Figure 1b: 110001 is balanced; the walk returns to zero.
        heights = bs.walk_heights("110001")
        assert heights[0] == 0
        assert heights[-1] == 0

    def test_empty_string(self):
        assert bs.walk_heights("") == [0]

    def test_length_is_input_plus_one(self):
        assert len(bs.walk_heights("0011")) == 5


class TestBalanced:
    @pytest.mark.parametrize("z", ["", "01", "10", "110001", "0101"])
    def test_balanced_examples(self, z):
        assert bs.is_balanced(z)

    @pytest.mark.parametrize("z", ["0", "1", "110", "1110001"])
    def test_unbalanced_examples(self, z):
        assert not bs.is_balanced(z)

    @given(bits())
    def test_balanced_iff_walk_closes(self, z):
        assert bs.is_balanced(z) == (bs.walk_heights(z)[-1] == 0 and len(z) % 2 == 0)


class TestCatalan:
    @pytest.mark.parametrize("z", ["", "10", "1100", "110100"])
    def test_catalan_examples(self, z):
        assert bs.is_catalan(z)

    @pytest.mark.parametrize("z", ["01", "0110", "100101"[::-1]])
    def test_non_catalan_examples(self, z):
        assert not bs.is_catalan(z)

    def test_strictly_catalan_requires_interior_positive(self):
        assert bs.is_strictly_catalan("1100")
        assert not bs.is_strictly_catalan("1010")  # touches zero at i=2

    def test_wrapping_catalan_makes_strict(self):
        # Paper remark: if z is Catalan then 1 z 0 is strictly Catalan.
        for z in ["", "10", "1010", "110010"]:
            assert bs.is_catalan(z)
            assert bs.is_strictly_catalan("1" + z + "0")

    @given(balanced_bits())
    def test_strictly_catalan_implies_catalan(self, z):
        if bs.is_strictly_catalan(z):
            assert bs.is_catalan(z)


class TestRotation:
    def test_rotate_forward(self):
        assert bs.rotate("0110", 1) == "1100"

    def test_rotate_by_zero_and_full(self):
        assert bs.rotate("0110", 0) == "0110"
        assert bs.rotate("0110", 4) == "0110"

    def test_rotate_negative_is_inverse(self):
        assert bs.rotate(bs.rotate("011010", 2), -2) == "011010"

    def test_rotate_empty(self):
        assert bs.rotate("", 3) == ""

    @given(bits(min_size=1), st.integers(-50, 50))
    def test_rotation_preserves_weight(self, z, shift):
        assert bs.weight(bs.rotate(z, shift)) == bs.weight(z)


class TestComplement:
    def test_complement(self):
        assert bs.complement("0110") == "1001"

    @given(bits())
    def test_involution(self, z):
        assert bs.complement(bs.complement(z)) == z

    @given(bits())
    def test_weight_flips(self, z):
        assert bs.weight(bs.complement(z)) == len(z) - bs.weight(z)


class TestCatalanRotationIndex:
    def test_requires_balanced(self):
        with pytest.raises(ValueError, match="balanced"):
            bs.catalan_rotation_index("1")

    def test_already_catalan_gives_zero(self):
        assert bs.catalan_rotation_index("1100") == 0

    @given(balanced_bits(max_half=8))
    def test_rotation_is_catalan(self, z):
        c = bs.catalan_rotation_index(z)
        assert 0 <= c < max(len(z), 1)
        assert bs.is_catalan(bs.rotate(z, c))


class TestMaximaMinima:
    def test_strictly_catalan_is_one_minimal_at_zero(self):
        # Paper remark: strictly Catalan => 1-minimal, minimum at i = 0.
        for z in ["10", "1100", "110100", "11011000"]:
            assert bs.is_strictly_catalan(z)
            assert bs.minima_positions(z) == [0]

    def test_two_maximal_example(self):
        # 110100: heights 0,1,2,1,2,1 at cyclic positions 0..5 -> max 2 twice.
        assert bs.maxima_count("110100") == 2

    def test_empty_string_counts(self):
        assert bs.maxima_count("") == 0
        assert bs.minima_count("") == 0

    @given(balanced_bits(max_half=8), st.integers(0, 40))
    def test_counts_rotation_invariant_for_balanced(self, z, shift):
        # The paper's remark: t-maximality is preserved by all shifts
        # (this needs balance, which closes the walk).
        rotated = bs.rotate(z, shift)
        assert bs.maxima_count(rotated) == bs.maxima_count(z)
        assert bs.minima_count(rotated) == bs.minima_count(z)

    @given(balanced_bits(max_half=8))
    def test_complement_swaps_maxima_and_minima(self, z):
        assert bs.maxima_count(bs.complement(z)) == bs.minima_count(z)
        assert bs.minima_count(bs.complement(z)) == bs.maxima_count(z)


class TestIntCoding:
    def test_encode_fixed_width(self):
        assert bs.encode_int(5, 4) == "0101"

    def test_encode_zero_width_zero(self):
        assert bs.encode_int(0, 0) == ""

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            bs.encode_int(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            bs.encode_int(-1, 4)

    @given(st.integers(0, 10_000))
    def test_round_trip(self, value):
        width = bs.int_bit_width(value)
        assert bs.decode_int(bs.encode_int(value, width)) == value

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_monotone_dominance_property(self, a, b):
        # Theorem 1 uses: a < b => some coordinate has 0 in a_2, 1 in b_2.
        if a == b:
            return
        lo, hi = min(a, b), max(a, b)
        width = bs.int_bit_width(hi)
        lo_bits = bs.encode_int(lo, width)
        hi_bits = bs.encode_int(hi, width)
        assert any(x == "0" and y == "1" for x, y in zip(lo_bits, hi_bits))


class TestWidthHelpers:
    def test_log_sharp_matches_definition(self):
        import math

        for n in range(1, 600):
            assert bs.log_sharp(n) == math.ceil(math.log2(n))

    def test_log_sharp_rejects_zero(self):
        with pytest.raises(ValueError):
            bs.log_sharp(0)

    def test_int_bit_width_floor_one(self):
        assert bs.int_bit_width(0) == 1

    def test_even_width(self):
        assert bs.even_width(3) == 4
        assert bs.even_width(4) == 4
        assert bs.even_width(0) == 0

    def test_even_width_rejects_negative(self):
        with pytest.raises(ValueError):
            bs.even_width(-1)
