"""Tests for the shared-memory schedule store."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

import repro
from repro.core.batch import ttr_sweep
from repro.core.store import (
    SHARD_PREFIX_LEN,
    STORE_PERIOD_LIMIT,
    ScheduleStore,
    StoredSchedule,
    key_digest,
    store_key,
)


def _attach_probe(payload: tuple) -> tuple:
    """Worker-side probe: attach from the store and describe the view."""
    store_dir, channels, n, algorithm = payload
    store = ScheduleStore(store_dir)
    schedule = store.get(channels, n, algorithm)
    table = schedule.period_table()
    return (
        isinstance(table, np.memmap),
        getattr(table, "filename", None),
        bool(table.flags.writeable),
        store.builds,
        store.attaches,
        int(table[:16].sum()),
    )


class TestStoreKey:
    def test_deterministic_algorithms_collapse_seed(self):
        assert store_key([1, 2], 8, "drds", 5) == store_key([2, 1], 8, "drds", 9)

    def test_random_keeps_seed(self):
        assert store_key([1, 2], 8, "random", 5) != store_key([1, 2], 8, "random", 9)

    def test_digest_separates_algorithms_seeds_universes_sets(self):
        # Cache-key collisions would silently serve one algorithm's
        # table to another: every axis must change the digest.
        digests = {
            key_digest(store_key(*spec))
            for spec in (
                ([1, 2], 8, "drds", 0),
                ([1, 2], 8, "crseq", 0),
                ([1, 2], 16, "drds", 0),
                ([1, 3], 8, "drds", 0),
                ([1, 2], 8, "random", 0),
                ([1, 2], 8, "random", 1),
            )
        }
        assert len(digests) == 6


class TestStoredSchedule:
    def test_wraps_without_copy(self):
        table = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        schedule = StoredSchedule(table)
        assert schedule.period_table() is table
        assert schedule.period == 5
        assert schedule.channels == {1, 3, 4, 5}
        assert schedule.channel_at(7) == 4

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            StoredSchedule(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            StoredSchedule(np.zeros((2, 2), dtype=np.int64))


class TestScheduleStore:
    def test_build_then_attach(self, tmp_path):
        store = ScheduleStore(tmp_path)
        first = store.get([1, 5, 9], 16, "drds")
        second = store.get([1, 5, 9], 16, "drds")
        assert (store.builds, store.attaches) == (1, 1)
        assert np.array_equal(first.period_table(), second.period_table())

    def test_attach_is_readonly_memmap_of_store_file(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.get([1, 5], 16, "crseq")
        attached = store.get([1, 5], 16, "crseq")
        table = attached.period_table()
        assert isinstance(table, np.memmap)
        assert not table.flags.writeable
        digest = key_digest(store_key([1, 5], 16, "crseq"))
        shard = tmp_path / digest[:SHARD_PREFIX_LEN]
        assert str(table.filename) == str(shard / f"{digest}.npy")
        with pytest.raises(ValueError):
            table[0] = 99

    def test_tables_match_plain_builds(self, tmp_path):
        store = ScheduleStore(tmp_path)
        for algorithm in ("paper", "crseq", "drds", "zos"):
            stored = store.get([2, 7, 11], 16, algorithm)
            plain = repro.build_schedule([2, 7, 11], 16, algorithm=algorithm)
            assert stored.period == plain.period, algorithm
            assert np.array_equal(
                stored.period_table(), plain.period_table()
            ), algorithm

    def test_random_entries_keyed_by_seed(self, tmp_path):
        store = ScheduleStore(tmp_path)
        a = store.get([1, 2], 8, "random", seed=0)
        b = store.get([1, 2], 8, "random", seed=1)
        assert store.builds == 2
        assert not np.array_equal(a.period_table(), b.period_table())

    def test_ttr_sweep_parity_with_plain_schedules(self, tmp_path):
        store = ScheduleStore(tmp_path)
        a = store.get([1, 5, 9], 16, "drds")
        b = store.get([5, 12], 16, "drds")
        plain_a = repro.build_schedule([1, 5, 9], 16, algorithm="drds")
        plain_b = repro.build_schedule([5, 12], 16, algorithm="drds")
        shifts = range(-40, 40)
        expected = ttr_sweep(plain_a, plain_b, shifts, 50_000)
        assert ttr_sweep(a, b, shifts, 50_000) == expected
        # Raw arrays (the externally-owned-table path) behave the same.
        assert ttr_sweep(a.period_table(), b.period_table(), shifts, 50_000) == expected

    def test_build_schedule_store_passthrough(self, tmp_path):
        store = ScheduleStore(tmp_path)
        schedule = repro.build_schedule([1, 5], 16, algorithm="crseq", store=store)
        assert isinstance(schedule, StoredSchedule)
        assert store.builds == 1
        from repro.baselines import build_baseline

        again = build_baseline([1, 5], 16, "crseq", store=store)
        assert store.attaches == 1
        assert np.array_equal(schedule.period_table(), again.period_table())

    def test_eviction_under_memory_cap(self, tmp_path):
        # crseq at n=16: period 3*17^2 = 867 slots = 6936 bytes/table.
        store = ScheduleStore(tmp_path, memory_cap=15_000)
        store.get([1, 2], 16, "crseq")
        store.get([3, 4], 16, "crseq")
        assert len(store.entries()) == 2
        store.get([5, 6], 16, "crseq")  # exceeds the cap: evict the LRU
        assert store.evictions == 1
        assert len(store.entries()) == 2
        assert store.total_bytes() <= 15_000
        assert not store.contains([1, 2], 16, "crseq")
        assert store.contains([5, 6], 16, "crseq")

    def test_attach_refreshes_lru_position(self, tmp_path):
        store = ScheduleStore(tmp_path, memory_cap=15_000)
        store.get([1, 2], 16, "crseq")
        store.get([3, 4], 16, "crseq")
        store.get([1, 2], 16, "crseq")  # attach: now most recently used
        store.get([5, 6], 16, "crseq")
        assert store.contains([1, 2], 16, "crseq")
        assert not store.contains([3, 4], 16, "crseq")

    def test_oversized_table_bypasses_store(self, tmp_path):
        store = ScheduleStore(tmp_path, memory_cap=1_000)
        schedule = store.get([1, 2], 16, "crseq")  # 6936 bytes > cap
        assert store.bypasses == 1
        assert store.builds == 0
        assert len(store.entries()) == 0
        assert not isinstance(schedule, StoredSchedule)
        assert schedule.period == 867

    def test_period_limit_is_batch_table_limit(self):
        from repro.core.batch import BATCH_TABLE_LIMIT

        assert STORE_PERIOD_LIMIT == BATCH_TABLE_LIMIT

    def test_evict_and_clear(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.get([1, 2], 16, "crseq")
        store.get([3, 4], 16, "crseq")
        digest = key_digest(store_key([1, 2], 16, "crseq"))
        assert store.evict(digest)
        assert not store.evict(digest)
        assert store.clear() == 1
        assert store.entries() == []

    def test_stats_snapshot(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store.get([1, 2], 16, "crseq")
        store.get([1, 2], 16, "crseq")
        stats = store.stats()
        assert stats["builds"] == 1
        assert stats["attaches"] == 1
        assert stats["entries"] == 1
        assert stats["total_bytes"] == 867 * 8

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ScheduleStore(tmp_path, memory_cap=0)

    def test_concurrent_eviction_falls_through_to_build(self, tmp_path, monkeypatch):
        # TOCTOU: another process may evict between the existence check
        # and the open — the attach must fall through to a rebuild, not
        # kill the sweep.
        store = ScheduleStore(tmp_path)
        store.get([1, 2], 16, "crseq")
        real_load = np.load

        def vanished(*args, **kwargs):
            monkeypatch.setattr(np, "load", real_load)  # only the first open
            raise FileNotFoundError("evicted concurrently")

        monkeypatch.setattr(np, "load", vanished)
        schedule = store.get([1, 2], 16, "crseq")
        assert schedule.period == 867
        assert store.builds == 2  # rebuilt instead of raising


class TestShardedLayout:
    def test_tables_land_in_digest_prefix_subdirs(self, tmp_path):
        from repro.core.store import SHARD_PREFIX_LEN

        store = ScheduleStore(tmp_path)
        store.get([1, 5], 16, "crseq")
        digest = key_digest(store_key([1, 5], 16, "crseq"))
        shard = tmp_path / digest[:SHARD_PREFIX_LEN]
        assert (shard / f"{digest}.npy").exists()
        assert (shard / f"{digest}.json").exists()
        assert not (tmp_path / f"{digest}.npy").exists()
        assert [m["digest"] for m in store.entries()] == [digest]

    def test_legacy_flat_layout_still_attaches(self, tmp_path):
        # Pre-shard stores kept <digest>.npy flat in the root; the read
        # path must keep serving them without a rebuild.
        store = ScheduleStore(tmp_path)
        built = store.get([1, 5], 16, "crseq")
        digest = key_digest(store_key([1, 5], 16, "crseq"))
        shard = tmp_path / digest[:2]
        for suffix in (".npy", ".json"):
            (shard / f"{digest}{suffix}").rename(tmp_path / f"{digest}{suffix}")
        shard.rmdir()
        fresh = ScheduleStore(tmp_path)
        assert fresh.contains([1, 5], 16, "crseq")
        attached = fresh.get([1, 5], 16, "crseq")
        assert (fresh.builds, fresh.attaches) == (0, 1)
        assert np.array_equal(attached.period_table(), built.period_table())
        assert [m["digest"] for m in fresh.entries()] == [digest]
        assert fresh.evict(digest)
        assert not fresh.contains([1, 5], 16, "crseq")

    def test_read_roots_attach_without_building(self, tmp_path):
        warm = ScheduleStore(tmp_path / "warm")
        corpus = warm.get([1, 5], 16, "crseq")
        local = ScheduleStore(tmp_path / "local", read_roots=[tmp_path / "warm"])
        attached = local.get([1, 5], 16, "crseq")
        assert (local.builds, local.attaches) == (0, 1)
        assert np.array_equal(attached.period_table(), corpus.period_table())
        # Read roots are lookup-only: nothing was copied or promoted
        # into the primary root, and entries() does not list them.
        assert local.entries() == []
        # A miss everywhere builds into the *primary* root only.
        local.get([3, 4], 16, "crseq")
        assert local.builds == 1
        assert not warm.contains([3, 4], 16, "crseq")
        assert local.contains([3, 4], 16, "crseq")

    def test_attach_survives_failed_lru_touch(self, tmp_path, monkeypatch):
        # Read-only roots (NFS corpus) reject the utime that refreshes
        # the LRU position; the successful mmap must stand regardless.
        import os as _os

        store = ScheduleStore(tmp_path)
        store.get([1, 5], 16, "crseq")

        def denied(*args, **kwargs):
            raise PermissionError("read-only root")

        monkeypatch.setattr(_os, "utime", denied)
        attached = store.get([1, 5], 16, "crseq")
        assert isinstance(attached.period_table(), np.memmap)
        assert (store.builds, store.attaches) == (1, 1)

    def test_shared_directory_attach_updates_lru_for_all_stores(self, tmp_path):
        # Two processes (modeled as two stores) share one directory.
        # B's attach of the oldest entry must register as recency for
        # A's later eviction pass — the LRU lives in the files, not in
        # either store's memory.
        a = ScheduleStore(tmp_path, memory_cap=15_000)  # fits two tables
        a.get([1, 2], 16, "crseq")
        a.get([3, 4], 16, "crseq")
        b = ScheduleStore(tmp_path, memory_cap=15_000)
        b.get([1, 2], 16, "crseq")  # attach: [1,2] is now globally warm
        a.get([5, 6], 16, "crseq")  # A must evict [3,4], not B's [1,2]
        assert a.contains([1, 2], 16, "crseq")
        assert not a.contains([3, 4], 16, "crseq")


class TestCrossProcess:
    def test_workers_attach_same_file_without_building(self, tmp_path):
        # The whole point of the store: a table built once in this
        # process is *attached* by other processes as a read-only memmap
        # of the same file — never copied, never rebuilt.
        store = ScheduleStore(tmp_path)
        parent = store.get([1, 5, 9], 32, "drds")
        assert store.builds == 1
        payload = (str(tmp_path), (1, 5, 9), 32, "drds")
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
            results = list(pool.map(_attach_probe, [payload] * 2))
        parent_table = parent.period_table()
        for is_memmap, filename, writeable, builds, attaches, checksum in results:
            assert is_memmap, "worker view must be a memmap, not a copy"
            assert str(filename) == str(parent_table.filename), "same backing file"
            assert not writeable
            assert builds == 0, "workers must never rebuild a stored table"
            assert attaches == 1
            assert checksum == int(parent_table[:16].sum())
