"""Tests for the Section 3.2 symmetric O(1) wrapper."""

from __future__ import annotations

import random

import pytest

from repro.core.epoch import EpochSchedule, rendezvous_bound
from repro.core.schedule import CyclicSchedule
from repro.core.symmetric import SYMMETRIC_PATTERN, SymmetricWrappedSchedule
from repro.core.verification import ttr_for_shift


class TestPattern:
    def test_is_paper_pattern_doubled(self):
        assert SYMMETRIC_PATTERN == (0, 1, 0, 0, 1, 1) * 2

    def test_diamond_zero_at_every_rotation(self):
        """The paper's claim: 010011 realizes (0,0) and (1,1) against
        every rotation of itself."""
        s = "010011"
        for shift in range(len(s)):
            w = s[shift:] + s[:shift]
            tuples = {(s[t], w[t]) for t in range(len(s))}
            assert ("0", "0") in tuples and ("1", "1") in tuples

    def test_naive_two_slot_pattern_fails(self):
        """Ablation: the obvious pattern c0 c1 does NOT guarantee (0,0)
        at odd shifts — this is why the paper needs 010011."""
        s = "01"
        w = s[1:] + s[:1]
        tuples = {(s[t], w[t]) for t in range(len(s))}
        assert ("0", "0") not in tuples


class TestWrapping:
    def test_expansion_factor(self):
        base = CyclicSchedule([4, 7, 9])
        wrapped = SymmetricWrappedSchedule(base)
        assert wrapped.period == 12 * base.period

    def test_pattern_layout(self):
        base = CyclicSchedule([7])
        wrapped = SymmetricWrappedSchedule(base)
        expansion = [wrapped.channel_at(t) for t in range(12)]
        assert expansion == [7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7]

    def test_min_channel_is_c0(self):
        base = CyclicSchedule([9, 4])
        wrapped = SymmetricWrappedSchedule(base)
        slots = [wrapped.channel_at(t) for t in range(24)]
        # Pattern zeros (positions 0,2,3 / 6,8,9 of each 12) hop on min=4.
        for block in range(2):
            for pos in (0, 2, 3, 6, 8, 9):
                assert slots[12 * block + pos] == 4

    def test_one_slots_follow_base(self):
        base = CyclicSchedule([9, 4])
        wrapped = SymmetricWrappedSchedule(base)
        for base_slot in range(4):
            for pos in (1, 4, 5, 7, 10, 11):
                assert wrapped.channel_at(12 * base_slot + pos) == base.channel_at(
                    base_slot
                )

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            SymmetricWrappedSchedule(CyclicSchedule([1])).channel_at(-3)


class TestSymmetricConstantTime:
    """Identical channel sets rendezvous within 12 slots at any shift."""

    @pytest.mark.parametrize("seed", range(8))
    def test_identical_sets_meet_fast(self, seed):
        rng = random.Random(seed)
        n = 16
        k = rng.randint(1, 6)
        channels = rng.sample(range(n), k)
        s1 = SymmetricWrappedSchedule(EpochSchedule(channels, n))
        s2 = SymmetricWrappedSchedule(EpochSchedule(channels, n))
        shifts = list(range(36)) + [rng.randrange(s1.period) for _ in range(30)]
        for shift in shifts:
            ttr = ttr_for_shift(s1, s2, shift, 13)
            assert ttr is not None and ttr <= 12, (channels, shift, ttr)

    def test_meet_on_minimum_channel(self):
        n = 16
        channels = [3, 9, 14]
        s1 = SymmetricWrappedSchedule(EpochSchedule(channels, n))
        s2 = SymmetricWrappedSchedule(EpochSchedule(channels, n))
        # At shift 5, find the first coincidence and check the channel.
        shift = 5
        for t in range(shift, shift + 13):
            if s1.channel_at(t) == s2.channel_at(t - shift):
                assert s1.channel_at(t) == 3
                break
        else:
            pytest.fail("no rendezvous within 12 slots")


class TestGeneralPairsPreserved:
    @pytest.mark.parametrize("seed", range(5))
    def test_overlapping_pairs_within_12x_bound(self, seed):
        rng = random.Random(300 + seed)
        n = 16
        common = rng.randrange(n)
        rest = [c for c in range(n) if c != common]
        a_set = {common} | set(rng.sample(rest, rng.randint(0, 4)))
        b_set = {common} | set(rng.sample(rest, rng.randint(0, 4)))
        a = SymmetricWrappedSchedule(EpochSchedule(a_set, n))
        b = SymmetricWrappedSchedule(EpochSchedule(b_set, n))
        bound = 12 * rendezvous_bound(a.base, b.base) + 24
        shifts = list(range(0, 26)) + [rng.randrange(10**6) for _ in range(20)]
        for shift in shifts:
            ttr = ttr_for_shift(a, b, shift, bound + 1)
            assert ttr is not None and ttr <= bound, (a_set, b_set, shift, ttr)
