"""Tests for Theorem 1: size-two schedules, sync and async.

The asynchronous guarantee is *certified exhaustively* for a full small
universe: every ordered pair of overlapping two-element subsets of
``[16]`` rendezvouses at every relative shift within one period.  Larger
universes are covered at the color-string level (the construction factors
through colors, so this is equally exhaustive per universe size).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import ramsey
from repro.core.bitstrings import rotate
from repro.core.pairwise import (
    async_pair_string,
    async_period,
    pair_schedule_async,
    pair_schedule_sync,
    string_to_schedule,
    sync_pair_string,
    sync_period,
)
from repro.core.verification import verify_guarantee


def _all_color_strings(n: int, asynchronous: bool) -> list[str]:
    maker = async_pair_string if asynchronous else sync_pair_string
    return [maker(ramsey.color_bits(c, n)) for c in range(ramsey.palette_width(n))]


class TestStringShapes:
    def test_sync_prefix(self):
        assert sync_pair_string("0110").startswith("01")

    def test_sync_period_formula(self):
        for n in (2, 16, 64, 2**20):
            assert len(_all_color_strings(n, False)[0]) == sync_period(n)

    def test_async_period_formula(self):
        for n in (2, 16, 64, 2**20):
            assert len(_all_color_strings(n, True)[0]) == async_period(n)

    def test_async_period_is_loglog(self):
        # Doubly exponential universe growth adds only a few slots.
        assert async_period(2**32) - async_period(4) <= 8

    def test_all_colors_same_length(self):
        for n in (16, 64, 2**10):
            for asynchronous in (False, True):
                lengths = {len(s) for s in _all_color_strings(n, asynchronous)}
                assert len(lengths) == 1


class TestStringToSchedule:
    def test_zero_is_low_one_is_high(self):
        s = string_to_schedule("0110", 3, 9)
        assert [s.channel_at(t) for t in range(4)] == [3, 9, 9, 3]

    def test_requires_order(self):
        with pytest.raises(ValueError):
            string_to_schedule("01", 9, 3)


class TestSyncGuarantee:
    """C(x) realizes the needed tuples at aligned time (synchronous model)."""

    @pytest.mark.parametrize("n", [2, 16, 64, 1 << 16])
    def test_diagonal_tuples_any_colors(self, n):
        # (0,0) at t=0 and (1,1) at t=1 from the shared 01 prefix.
        strings = _all_color_strings(n, False)
        for r, s in itertools.product(strings, repeat=2):
            assert (r[0], s[0]) == ("0", "0")
            assert (r[1], s[1]) == ("1", "1")

    @pytest.mark.parametrize("n", [4, 16, 64, 1 << 16])
    def test_cross_tuples_distinct_colors(self, n):
        strings = _all_color_strings(n, False)
        for r, s in itertools.combinations(strings, 2):
            tuples = {(r[t], s[t]) for t in range(len(r))}
            assert ("0", "1") in tuples and ("1", "0") in tuples

    def test_schedule_level_sync_rendezvous_exhaustive(self):
        n = 12
        bound = sync_period(n) - 1
        pairs = list(itertools.combinations(range(n), 2))
        schedules = {p: pair_schedule_sync(*p, n) for p in pairs}
        for pa, pb in itertools.combinations_with_replacement(pairs, 2):
            if not (set(pa) & set(pb)):
                continue
            ok, _, _ = verify_guarantee(schedules[pa], schedules[pb], bound, shifts=[0])
            assert ok, (pa, pb)


class TestAsyncGuarantee:
    """R(x) rendezvous at every rotation (asynchronous model)."""

    @pytest.mark.parametrize("n", [4, 64, 1 << 10, 1 << 16])
    def test_color_level_all_rotations(self, n):
        strings = _all_color_strings(n, True)
        length = len(strings[0])
        for r, s in itertools.product(strings, repeat=2):
            for shift in range(length):
                w = rotate(s, shift)
                tuples = {(r[t], w[t]) for t in range(length)}
                assert ("0", "0") in tuples and ("1", "1") in tuples
                if r != s:
                    assert ("0", "1") in tuples and ("1", "0") in tuples

    def test_schedule_level_exhaustive_small_universe(self):
        n = 16
        bound = async_period(n)
        pairs = list(itertools.combinations(range(n), 2))
        schedules = {p: pair_schedule_async(*p, n) for p in pairs}
        for pa, pb in itertools.combinations_with_replacement(pairs, 2):
            if not (set(pa) & set(pb)):
                continue
            ok, _, shift = verify_guarantee(schedules[pa], schedules[pb], bound)
            assert ok, (pa, pb, shift)

    def test_identical_sets_rendezvous_asynchronously(self):
        n = 64
        s1 = pair_schedule_async(5, 40, n)
        s2 = pair_schedule_async(5, 40, n)
        ok, worst, shift = verify_guarantee(s1, s2, async_period(n))
        assert ok, shift
        assert worst <= async_period(n)

    def test_distinct_channels_required(self):
        with pytest.raises(ValueError):
            pair_schedule_async(3, 3, 8)
        with pytest.raises(ValueError):
            pair_schedule_sync(3, 3, 8)


class TestTheorem1Bound:
    def test_period_within_paper_style_bound(self):
        """|R| = log# log# n + O(log log log n) + constants; check a
        concrete generous envelope for a huge range of n."""
        for exponent in (1, 2, 4, 8, 16, 32, 48):
            n = 2**exponent
            loglog = max(1, exponent.bit_length())
            assert async_period(n) <= 6 * loglog + 40
