"""Parity tests: the streaming tiled engine vs batched vs scalar.

The streaming engine's contract is bit-identical profiles at any
period size and any tile budget: for every workload the library ships,
``ttr_sweep_stream`` must return exactly what the batched engine and a
per-shift loop over ``ttr_for_shift`` return — including ``None``
misses, negative shifts, duplicate shifts, degenerate horizons, and
tiles smaller than one period.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import batch
from repro.core import stream as stream_module
from repro.core.schedule import CyclicSchedule, FunctionSchedule
from repro.core.stream import (
    TilePlan,
    plan_tiles,
    ttr_sweep_stream,
    ttr_sweep_stream_serial,
)
from repro.core.verification import (
    exhaustive_shift_range,
    ttr_for_shift,
    verify_guarantee,
)
from repro.sim.workloads import (
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

WORKLOADS = {
    "random_subsets": lambda: random_subsets(16, 4, 3, seed=1),
    "single_overlap": lambda: single_overlap(16, 3, 3, seed=2),
    "symmetric": lambda: symmetric(16, 3, 2, seed=3),
    "coalition_bands": lambda: coalition_bands(
        32, band_width=6, agents_per_band=2, num_bands=2, overlap=2, seed=4
    ),
    "whitespace": lambda: whitespace(16, 3, incumbent_load=0.6, seed=5),
    "nested": lambda: nested(16, [2, 4], seed=6),
}

SHIFTS = list(range(-40, 120)) + [997, 12_345, -733]


def _scalar(a, b, shifts, horizon):
    return {s: ttr_for_shift(a, b, s, horizon) for s in shifts}


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", ["paper", "crseq", "jump-stay", "zos"])
def test_three_way_parity_across_workloads(kind, algorithm):
    """Stream == batched == scalar on every workload generator, at
    period sizes where all three engines can run."""
    instance = WORKLOADS[kind]()
    pairs = instance.overlapping_pairs()[:2]
    assert pairs, f"workload {kind} produced no overlapping pairs"
    for i, j in pairs:
        a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
        b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
        horizon = 4 * max(a.period, b.period)
        streamed = ttr_sweep_stream(a, b, SHIFTS, horizon)
        assert streamed == batch.ttr_sweep(a, b, SHIFTS, horizon, engine="batched")
        assert streamed == _scalar(a, b, SHIFTS, horizon)


@pytest.mark.parametrize("tile_bytes", [64, 512, 4096, 1 << 20])
def test_tile_boundaries_are_invisible(tile_bytes):
    """Property: results are invariant under the tile budget — including
    tiles far smaller than one period (a paper schedule at n=32 has a
    period of thousands of slots; 64 bytes is an 8-slot tile)."""
    instance = single_overlap(32, 3, 4, seed=7)
    a = repro.build_schedule(instance.sets[0], 32)
    b = repro.build_schedule(instance.sets[1], 32)
    shifts = list(range(-50, 400))
    reference = batch.ttr_sweep(a, b, shifts, 20_000, engine="batched")
    assert ttr_sweep_stream(a, b, shifts, 20_000, tile_bytes=tile_bytes) == reference


def test_tile_budget_validation():
    a, b = CyclicSchedule([1, 2]), CyclicSchedule([2, 3])
    with pytest.raises(ValueError, match="tile_bytes"):
        ttr_sweep_stream(a, b, [0], 10, tile_bytes=0)


def test_parity_exhaustive_range():
    a = CyclicSchedule([1, 2, 3, 4])
    b = CyclicSchedule([9, 9, 2, 9, 9, 1])
    shifts = list(exhaustive_shift_range(a, b))
    assert ttr_sweep_stream(a, b, shifts, 500) == _scalar(a, b, shifts, 500)


def test_disjoint_schedules_all_miss_with_lcm_early_stop():
    """A huge horizon must cost only lcm slots of scanning and yield the
    same ``None``s as the scalar engine."""
    a, b = CyclicSchedule([1, 2] * 40), CyclicSchedule([3, 4, 5] * 30)
    shifts = list(range(-12, 25))
    assert ttr_sweep_stream(a, b, shifts, 10**9) == {s: None for s in shifts}


def test_duplicate_empty_and_zero_horizon():
    a, b = CyclicSchedule([1, 2, 3] * 30), CyclicSchedule([3, 1] * 30)
    assert ttr_sweep_stream(a, b, [], 100) == {}
    assert ttr_sweep_stream(a, b, [0, 3], 0) == {0: None, 3: None}
    dup = ttr_sweep_stream(a, b, [4, 4, -4, 4], 100)
    assert dup == _scalar(a, b, [4, -4], 100)


def test_huge_period_streams_without_table():
    """Past BATCH_TABLE_LIMIT the auto dispatcher hands off to the
    streaming engine, which generates tiles through channel_block and
    never materializes a period table."""
    period = batch.BATCH_TABLE_LIMIT + 3
    a = FunctionSchedule(lambda t: t % 5, period, channels=frozenset(range(5)))
    b = CyclicSchedule([4, 2])
    shifts = [0, 1, 5, -3, 9999]
    expected = _scalar(a, b, shifts, 60)
    assert ttr_sweep_stream(a, b, shifts, 60) == expected
    assert batch.ttr_sweep(a, b, shifts, 60) == expected  # auto → stream


def test_forced_batched_engine_rejects_huge_periods():
    period = batch.BATCH_TABLE_LIMIT + 3
    a = FunctionSchedule(lambda t: t % 5, period, channels=frozenset(range(5)))
    b = CyclicSchedule([4, 2])
    with pytest.raises(ValueError, match="engine='batched'"):
        batch.ttr_sweep(a, b, [0], 60, engine="batched")


def test_unknown_engine_rejected():
    a, b = CyclicSchedule([1]), CyclicSchedule([1])
    with pytest.raises(ValueError, match="unknown engine"):
        batch.ttr_sweep(a, b, [0], 10, engine="quantum")


def test_raw_arrays_and_memmaps_stream_off_the_table(tmp_path):
    """Raw period arrays — including read-only store memmaps — feed the
    streaming tiles directly, bit-identical to schedule objects."""
    from repro.core.store import ScheduleStore

    store = ScheduleStore(tmp_path)
    a = store.get([1, 5, 9], 16, "drds")
    b = store.get([5, 12], 16, "drds")
    shifts = list(range(-40, 40))
    expected = batch.ttr_sweep(a, b, shifts, 50_000, engine="batched")
    assert ttr_sweep_stream(a, b, shifts, 50_000) == expected
    table_a, table_b = a.period_table(), b.period_table()
    assert isinstance(table_a, np.memmap)
    assert ttr_sweep_stream(table_a, table_b, shifts, 50_000) == expected


def test_sparse_offsets_use_per_row_generation():
    """Widely strided shifts (offsets scattered over the period) take
    the per-row path; results must not depend on it."""
    instance = single_overlap(32, 3, 4, seed=9)
    a = repro.build_schedule(instance.sets[0], 32, algorithm="crseq")
    b = repro.build_schedule(instance.sets[1], 32, algorithm="crseq")
    stride = max(1, a.period // 7)
    shifts = list(range(0, a.period, stride)) + [-1, -stride]
    horizon = 4 * a.period
    assert ttr_sweep_stream(a, b, shifts, horizon, tile_bytes=256) == _scalar(
        a, b, shifts, horizon
    )


def test_verify_guarantee_through_stream_engine():
    """Exhaustive certification runs unchanged when forced through the
    streaming engine."""
    a = repro.build_schedule([1, 5], 16, algorithm="zos")
    b = repro.build_schedule([5, 9], 16, algorithm="zos")
    import math

    bound = math.lcm(a.period, b.period)
    batched = verify_guarantee(a, b, bound)
    streamed = verify_guarantee(a, b, bound, engine="stream", tile_bytes=4096)
    assert batched == streamed
    assert streamed[0]


class TestParallelScan:
    """The blocked worker-parallel scan vs the serial reference scan."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("algorithm", ["paper", "jump-stay", "zos"])
    def test_parallel_matches_serial_reference(self, workers, algorithm):
        """Bit-identical per cell at every worker count, on every
        workload generator the serial reference itself is certified on."""
        for kind in sorted(WORKLOADS):
            instance = WORKLOADS[kind]()
            i, j = instance.overlapping_pairs()[0]
            a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
            b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
            horizon = 4 * max(a.period, b.period)
            serial = ttr_sweep_stream_serial(a, b, SHIFTS, horizon)
            assert ttr_sweep_stream(a, b, SHIFTS, horizon, workers=workers) == serial

    def test_parallel_matches_scalar_loop(self):
        """The parallel scan also agrees with the independent scalar path."""
        instance = single_overlap(32, 3, 4, seed=7)
        a = repro.build_schedule(instance.sets[0], 32, algorithm="crseq")
        b = repro.build_schedule(instance.sets[1], 32, algorithm="crseq")
        shifts = list(range(-60, 200)) + [5 * a.period + 3, -2 * b.period - 7]
        horizon = 4 * max(a.period, b.period)
        assert ttr_sweep_stream(a, b, shifts, horizon, workers=4) == _scalar(
            a, b, shifts, horizon
        )

    @pytest.mark.parametrize("block_rows", [1, 2, 3])
    def test_blocks_smaller_than_one_tile(self, block_rows):
        """Degenerate pinned plans — shift blocks far narrower than a
        tile could hold, more blocks than workers — change nothing."""
        instance = single_overlap(32, 3, 4, seed=9)
        a = repro.build_schedule(instance.sets[0], 32, algorithm="jump-stay")
        b = repro.build_schedule(instance.sets[1], 32, algorithm="jump-stay")
        shifts = list(range(-40, 90))
        horizon = 4 * max(a.period, b.period)
        reference = ttr_sweep_stream_serial(a, b, shifts, horizon)
        plan = TilePlan(tile_bytes=4096, block_rows=block_rows, workers=2)
        assert ttr_sweep_stream(a, b, shifts, horizon, plan=plan) == reference

    def test_worker_counts_beyond_blocks_are_harmless(self):
        a, b = CyclicSchedule([1, 2, 3] * 30), CyclicSchedule([3, 1] * 20)
        shifts = [0, 1, -1, 5]
        expected = _scalar(a, b, shifts, 300)
        assert ttr_sweep_stream(a, b, shifts, 300, workers=16) == expected

    def test_serial_reference_rejects_bad_tile_budget(self):
        a, b = CyclicSchedule([1, 2]), CyclicSchedule([2, 3])
        with pytest.raises(ValueError, match="tile_bytes"):
            ttr_sweep_stream_serial(a, b, [0], 10, tile_bytes=0)

    def test_dispatcher_forwards_stream_workers(self):
        """`batch.ttr_sweep(engine='stream', stream_workers=...)` is the
        same computation at any lane count."""
        instance = single_overlap(16, 3, 3, seed=2)
        a = repro.build_schedule(instance.sets[0], 16, algorithm="zos")
        b = repro.build_schedule(instance.sets[1], 16, algorithm="zos")
        horizon = 4 * max(a.period, b.period)
        one = batch.ttr_sweep(a, b, SHIFTS, horizon, engine="stream", stream_workers=1)
        four = batch.ttr_sweep(a, b, SHIFTS, horizon, engine="stream", stream_workers=4)
        assert one == four == ttr_sweep_stream_serial(a, b, SHIFTS, horizon)


class TestChannelGather:
    """The scattered-access hook every tile row assembly builds on."""

    @pytest.mark.parametrize(
        "algorithm", ["paper", "crseq", "jump-stay", "drds", "zos", "async-etch"]
    )
    def test_gather_matches_channel_at(self, algorithm):
        schedule = repro.build_schedule([1, 5, 9], 16, algorithm=algorithm)
        indices = np.array([[0, 7, 1], [13, 2, schedule.period + 5]], dtype=np.int64)
        gathered = schedule.channel_gather(indices)
        assert gathered.shape == indices.shape
        expected = [
            [schedule.channel_at(int(t) % schedule.period) for t in row]
            for row in indices
        ]
        assert gathered.tolist() == expected

    def test_generic_fallback_on_huge_periods(self):
        period = batch.BATCH_TABLE_LIMIT + 3
        sched = FunctionSchedule(lambda t: t % 5, period, channels=frozenset(range(5)))
        indices = np.array([0, 3, 11, period - 1, period + 4], dtype=np.int64)
        assert sched.channel_gather(indices).tolist() == [
            sched.channel_at(int(t)) for t in indices
        ]


class TestTilePlanner:
    """plan_tiles: deterministic, cache-aware, shape-aware."""

    def test_same_inputs_same_plan(self):
        first = plan_tiles(2000, 1 << 20, workers=4)
        second = plan_tiles(2000, 1 << 20, workers=4)
        assert first == second

    def test_no_wall_clock_dependence(self, monkeypatch):
        """The plan is pure arithmetic: poisoning every clock source
        must not change (or crash) the planner."""
        import time as time_module

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("plan_tiles must not consult the clock")

        for name in ("time", "perf_counter", "monotonic", "process_time"):
            monkeypatch.setattr(time_module, name, boom)
        assert plan_tiles(500, 10_000, workers=2) == plan_tiles(500, 10_000, workers=2)

    def test_tile_from_l2_and_l3_budget(self):
        # One lane: half of L2. Four lanes: additionally capped so all
        # tiles together leave half the L3 free.
        caches = (1 << 21, 1 << 22)  # 2 MiB L2, 4 MiB L3
        solo = plan_tiles(10_000, 1 << 20, workers=1, caches=caches)
        assert solo.tile_bytes == 1 << 20  # half the L2
        four = plan_tiles(10_000, 1 << 20, workers=4, caches=caches)
        assert four.tile_bytes == (1 << 21) // 4  # half the L3, split 4 ways
        assert four.workers == 4

    def test_explicit_tile_bytes_pins_budget(self):
        plan = plan_tiles(100, 1000, workers=2, tile_bytes=4096)
        assert plan.tile_bytes == 4096

    def test_serial_blocks_fill_the_tile(self):
        plan = plan_tiles(10_000, 1 << 20, workers=1, tile_bytes=1 << 20)
        assert plan.block_rows == (1 << 20) // 8 // 256
        assert plan.workers == 1

    def test_parallel_blocks_split_for_load_balance(self):
        plan = plan_tiles(1000, 1 << 20, workers=4, tile_bytes=1 << 20)
        # 4 lanes x 4 blocks per lane -> ceil(1000 / 16) rows per block.
        assert plan.block_rows == 63
        assert plan.workers == 4

    def test_workers_clamped_to_blocks(self):
        plan = plan_tiles(3, 1000, workers=8, tile_bytes=1 << 20)
        assert plan.workers <= 3

    def test_validation(self):
        with pytest.raises(ValueError, match="tile_bytes"):
            plan_tiles(10, 100, tile_bytes=0)
        with pytest.raises(ValueError, match="num_offsets"):
            plan_tiles(-1, 100)
        with pytest.raises(ValueError, match="tile_bytes"):
            TilePlan(tile_bytes=0, block_rows=1, workers=1)
        with pytest.raises(ValueError, match="block_rows"):
            TilePlan(tile_bytes=64, block_rows=0, workers=1)
        with pytest.raises(ValueError, match="workers"):
            TilePlan(tile_bytes=64, block_rows=1, workers=0)

    def test_cache_probe_is_memoized_and_sane(self):
        l2, l3 = stream_module.cache_sizes()
        assert stream_module.cache_sizes() == (l2, l3)
        assert 0 < l2 <= l3


class _FailingSink(stream_module.SweepCheckpoint):
    """Checkpoint sink that dies after N successful saves — the test's
    stand-in for a mid-sweep kill (the exception unwinds the scan
    exactly the way SIGTERM-during-save would leave the file system:
    last complete snapshot on disk, scan unfinished)."""

    def __init__(self, path, fail_after, interval_blocks=1):
        super().__init__(path, interval_blocks=interval_blocks)
        self.fail_after = fail_after

    def save(self, state):
        if self.saves >= self.fail_after:
            raise RuntimeError("injected interruption")
        super().save(state)


class TestCheckpointResume:
    """Interrupt/resume certification: merged profiles are bit-identical."""

    def _pair(self, algorithm):
        instance = single_overlap(16, 3, 3, seed=2)
        i, j = instance.overlapping_pairs()[0]
        a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
        b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
        return a, b, 4 * max(a.period, b.period)

    @pytest.mark.parametrize("algorithm", ["paper", "jump-stay", "zos"])
    def test_interrupted_then_resumed_is_bit_identical(self, tmp_path, algorithm):
        a, b, horizon = self._pair(algorithm)
        baseline = ttr_sweep_stream(a, b, SHIFTS, horizon)
        path = tmp_path / "sweep.ckpt.json"
        # Tiny tiles force many block boundaries, so the injected death
        # lands mid-scan with real partial progress on disk.
        dying = _FailingSink(path, fail_after=3)
        with pytest.raises(RuntimeError, match="injected"):
            ttr_sweep_stream(
                a, b, SHIFTS, horizon, tile_bytes=64, workers=1, checkpoint=dying
            )
        assert path.exists(), "interruption must leave the last snapshot"
        resumed = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        assert resumed == baseline

    def test_interrupted_parallel_scan_resumes(self, tmp_path):
        a, b, horizon = self._pair("paper")
        baseline = ttr_sweep_stream(a, b, SHIFTS, horizon)
        path = tmp_path / "sweep.ckpt.json"
        with pytest.raises(RuntimeError, match="injected"):
            ttr_sweep_stream(
                a, b, SHIFTS, horizon, tile_bytes=64, workers=4,
                checkpoint=_FailingSink(path, fail_after=5),
            )
        resumed = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=4,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        assert resumed == baseline

    def test_complete_snapshot_answers_without_rescanning(
        self, tmp_path, monkeypatch
    ):
        # After an uninterrupted checkpointed run, every row is resolved
        # in the snapshot; a rerun must answer entirely from it — proven
        # by making any tile gather blow up.
        a, b, horizon = self._pair("zos")
        path = tmp_path / "sweep.ckpt.json"
        first = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )

        def no_gather(*args, **kwargs):
            raise AssertionError("resumed run gathered a tile")

        monkeypatch.setattr(stream_module, "_gather_tile", no_gather)
        replayed = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        assert replayed == first

    def test_certified_misses_resume_as_misses(self, tmp_path):
        # Disjoint channel sets: every shift is a miss.  The snapshot
        # must certify them (resolved -1), not leave them pending.
        a = repro.build_schedule([1, 2], 16, algorithm="paper")
        b = repro.build_schedule([3, 4], 16, algorithm="paper")
        horizon = 2 * max(a.period, b.period)
        path = tmp_path / "sweep.ckpt.json"
        first = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        assert set(first.values()) == {None}
        resumed = ttr_sweep_stream(
            a, b, SHIFTS, horizon, checkpoint=stream_module.SweepCheckpoint(path)
        )
        assert resumed == first

    def test_snapshot_of_a_different_sweep_is_ignored(self, tmp_path):
        a, b, horizon = self._pair("paper")
        path = tmp_path / "sweep.ckpt.json"
        ttr_sweep_stream(
            a, b, SHIFTS, horizon // 2, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        # Same sink path, different horizon: the spec digest differs, so
        # the stale snapshot must not contaminate the fresh sweep.
        fresh = ttr_sweep_stream(
            a, b, SHIFTS, horizon, tile_bytes=64, workers=1,
            checkpoint=stream_module.SweepCheckpoint(path),
        )
        assert fresh == ttr_sweep_stream(a, b, SHIFTS, horizon)

    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        a, b, horizon = self._pair("jump-stay")
        profile = ttr_sweep_stream(
            a, b, SHIFTS, horizon,
            checkpoint=stream_module.SweepCheckpoint(tmp_path / "c.json"),
        )
        assert profile == ttr_sweep_stream(a, b, SHIFTS, horizon)

    def test_dispatcher_routes_checkpoint_to_stream(self, tmp_path):
        a, b, horizon = self._pair("paper")
        sink = stream_module.SweepCheckpoint(tmp_path / "c.json", interval_blocks=2)
        via_dispatch = batch.ttr_sweep(a, b, SHIFTS, horizon, checkpoint=sink)
        assert via_dispatch == ttr_sweep_stream(a, b, SHIFTS, horizon)
        assert sink.saves > 0
        with pytest.raises(ValueError, match="streaming"):
            batch.ttr_sweep(a, b, SHIFTS, horizon, engine="batched", checkpoint=sink)

    def test_sink_validation_and_clear(self, tmp_path):
        with pytest.raises(ValueError, match="interval_blocks"):
            stream_module.SweepCheckpoint(tmp_path / "c.json", interval_blocks=0)
        sink = stream_module.SweepCheckpoint(tmp_path / "c.json")
        assert sink.load() is None
        sink.save({"spec": "x"})
        assert sink.load() == {"spec": "x"}
        sink.clear()
        assert sink.load() is None
        sink.clear()  # idempotent


class TestPairMajor:
    """ttr_sweep_pairs: one stacked tile pass, per-pair bit-parity."""

    def _grid(self, algorithm="crseq", seed=9):
        instance = random_subsets(16, 4, 3, seed=seed)
        scheds = [
            repro.build_schedule(s, instance.n, algorithm=algorithm)
            for s in instance.sets
        ]
        jobs = [
            (scheds[i], scheds[j], SHIFTS)
            for i, j in instance.overlapping_pairs()
        ]
        horizon = 4 * max(max(a.period, b.period) for a, b, _ in jobs)
        return jobs, horizon

    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_parity_across_workloads(self, kind):
        instance = WORKLOADS[kind]()
        scheds = [
            repro.build_schedule(s, instance.n, algorithm="paper")
            for s in instance.sets
        ]
        jobs = [
            (scheds[i], scheds[j], SHIFTS)
            for i, j in instance.overlapping_pairs()[:3]
        ]
        assert jobs, f"workload {kind} produced no overlapping pairs"
        horizon = 4 * max(max(a.period, b.period) for a, b, _ in jobs)
        stacked = stream_module.ttr_sweep_pairs(jobs, horizon)
        for (a, b, shifts), got in zip(jobs, stacked):
            assert got == ttr_sweep_stream(a, b, shifts, horizon)

    def test_mixed_algorithms_in_one_pass(self):
        jobs_a, _ = self._grid("crseq")
        jobs_b, _ = self._grid("jump-stay", seed=11)
        jobs = jobs_a + jobs_b
        horizon = 4 * max(max(a.period, b.period) for a, b, _ in jobs)
        stacked = stream_module.ttr_sweep_pairs(jobs, horizon)
        for (a, b, shifts), got in zip(jobs, stacked):
            assert got == ttr_sweep_stream(a, b, shifts, horizon)

    def test_per_job_horizons_and_misses(self):
        # Short-horizon jobs must retire as misses at *their* horizon
        # even while longer jobs keep scanning in the same tiles.
        jobs, horizon = self._grid("jump-stay", seed=3)
        horizons = [40 + 30 * i for i in range(len(jobs))]
        stacked = stream_module.ttr_sweep_pairs(jobs, horizons)
        for (a, b, shifts), h, got in zip(jobs, horizons, stacked):
            assert got == ttr_sweep_stream(a, b, shifts, h)
        assert any(
            v is None for profile in stacked for v in profile.values()
        ), "horizon ladder too generous to exercise per-row misses"

    def test_environment_masked_pass(self):
        from repro.core.environment import parse_environment

        jobs, _ = self._grid("paper")
        env = parse_environment("pu-churn:rate=0.05,seed=7")
        stacked = stream_module.ttr_sweep_pairs(jobs, 3000, environment=env)
        for (a, b, shifts), got in zip(jobs, stacked):
            assert got == ttr_sweep_stream(a, b, shifts, 3000, environment=env)

    def test_degenerate_plans_and_lanes_are_invariant(self):
        jobs, horizon = self._grid()
        expected = stream_module.ttr_sweep_pairs(jobs, horizon)
        for plan in (
            TilePlan(tile_bytes=1 << 14, block_rows=1, workers=1),
            TilePlan(tile_bytes=1 << 14, block_rows=3, workers=4),
            TilePlan(tile_bytes=1 << 22, block_rows=1024, workers=2),
        ):
            assert (
                stream_module.ttr_sweep_pairs(jobs, horizon, plan=plan)
                == expected
            )

    def test_shared_schedules_dedupe_fixed_rows(self):
        # The same schedule object on the fixed side of many jobs
        # shares one row cache; parity is the observable contract.
        instance = single_overlap(16, 3, 3, seed=2)
        hub = repro.build_schedule(instance.sets[0], 16, algorithm="crseq")
        others = [
            repro.build_schedule(s, 16, algorithm="crseq")
            for s in instance.sets[1:]
        ]
        jobs = [(other, hub, SHIFTS) for other in others]
        horizon = 4 * max(hub.period, *(o.period for o in others))
        stacked = stream_module.ttr_sweep_pairs(jobs, horizon)
        for (a, b, shifts), got in zip(jobs, stacked):
            assert got == ttr_sweep_stream(a, b, shifts, horizon)

    def test_raw_arrays_accepted(self):
        jobs, horizon = self._grid()
        a, b, shifts = jobs[0]
        raw = stream_module.ttr_sweep_pairs(
            [(np.asarray(a.period_table()), np.asarray(b.period_table()), shifts)],
            horizon,
        )
        assert raw[0] == ttr_sweep_stream(a, b, shifts, horizon)

    def test_empty_and_degenerate_jobs(self):
        jobs, horizon = self._grid()
        a, b, shifts = jobs[0]
        assert stream_module.ttr_sweep_pairs([], horizon) == []
        mixed = stream_module.ttr_sweep_pairs(
            [(a, b, []), (a, b, shifts)], horizon
        )
        assert mixed[0] == {}
        assert mixed[1] == ttr_sweep_stream(a, b, shifts, horizon)
        zero = stream_module.ttr_sweep_pairs([(a, b, shifts)], 0)
        assert zero[0] == {s: None for s in shifts}

    def test_tile_bytes_validation(self):
        jobs, horizon = self._grid()
        with pytest.raises(ValueError, match="tile_bytes"):
            stream_module.ttr_sweep_pairs(jobs, horizon, tile_bytes=0)

    def test_pair_sweep_telemetry_spans(self):
        from repro.core import telemetry

        jobs, horizon = self._grid()
        telemetry.enable()
        telemetry.reset()
        try:
            stream_module.ttr_sweep_pairs(jobs, horizon)
            snap = telemetry.snapshot()
        finally:
            telemetry.disable()
        assert "stream.pair_sweep" in snap["spans"]
        assert snap["counters"]["stream.pair_jobs"] == len(jobs)
        flat = str(snap)
        assert "stream.tile_assembly" in flat and "stream.retire" in flat
