"""Parity tests: the streaming tiled engine vs batched vs scalar.

The streaming engine's contract is bit-identical profiles at any
period size and any tile budget: for every workload the library ships,
``ttr_sweep_stream`` must return exactly what the batched engine and a
per-shift loop over ``ttr_for_shift`` return — including ``None``
misses, negative shifts, duplicate shifts, degenerate horizons, and
tiles smaller than one period.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import batch
from repro.core.schedule import CyclicSchedule, FunctionSchedule
from repro.core.stream import ttr_sweep_stream
from repro.core.verification import (
    exhaustive_shift_range,
    ttr_for_shift,
    verify_guarantee,
)
from repro.sim.workloads import (
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

WORKLOADS = {
    "random_subsets": lambda: random_subsets(16, 4, 3, seed=1),
    "single_overlap": lambda: single_overlap(16, 3, 3, seed=2),
    "symmetric": lambda: symmetric(16, 3, 2, seed=3),
    "coalition_bands": lambda: coalition_bands(
        32, band_width=6, agents_per_band=2, num_bands=2, overlap=2, seed=4
    ),
    "whitespace": lambda: whitespace(16, 3, incumbent_load=0.6, seed=5),
    "nested": lambda: nested(16, [2, 4], seed=6),
}

SHIFTS = list(range(-40, 120)) + [997, 12_345, -733]


def _scalar(a, b, shifts, horizon):
    return {s: ttr_for_shift(a, b, s, horizon) for s in shifts}


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", ["paper", "crseq", "jump-stay", "zos"])
def test_three_way_parity_across_workloads(kind, algorithm):
    """Stream == batched == scalar on every workload generator, at
    period sizes where all three engines can run."""
    instance = WORKLOADS[kind]()
    pairs = instance.overlapping_pairs()[:2]
    assert pairs, f"workload {kind} produced no overlapping pairs"
    for i, j in pairs:
        a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
        b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
        horizon = 4 * max(a.period, b.period)
        streamed = ttr_sweep_stream(a, b, SHIFTS, horizon)
        assert streamed == batch.ttr_sweep(a, b, SHIFTS, horizon, engine="batched")
        assert streamed == _scalar(a, b, SHIFTS, horizon)


@pytest.mark.parametrize("tile_bytes", [64, 512, 4096, 1 << 20])
def test_tile_boundaries_are_invisible(tile_bytes):
    """Property: results are invariant under the tile budget — including
    tiles far smaller than one period (a paper schedule at n=32 has a
    period of thousands of slots; 64 bytes is an 8-slot tile)."""
    instance = single_overlap(32, 3, 4, seed=7)
    a = repro.build_schedule(instance.sets[0], 32)
    b = repro.build_schedule(instance.sets[1], 32)
    shifts = list(range(-50, 400))
    reference = batch.ttr_sweep(a, b, shifts, 20_000, engine="batched")
    assert ttr_sweep_stream(a, b, shifts, 20_000, tile_bytes=tile_bytes) == reference


def test_tile_budget_validation():
    a, b = CyclicSchedule([1, 2]), CyclicSchedule([2, 3])
    with pytest.raises(ValueError, match="tile_bytes"):
        ttr_sweep_stream(a, b, [0], 10, tile_bytes=0)


def test_parity_exhaustive_range():
    a = CyclicSchedule([1, 2, 3, 4])
    b = CyclicSchedule([9, 9, 2, 9, 9, 1])
    shifts = list(exhaustive_shift_range(a, b))
    assert ttr_sweep_stream(a, b, shifts, 500) == _scalar(a, b, shifts, 500)


def test_disjoint_schedules_all_miss_with_lcm_early_stop():
    """A huge horizon must cost only lcm slots of scanning and yield the
    same ``None``s as the scalar engine."""
    a, b = CyclicSchedule([1, 2] * 40), CyclicSchedule([3, 4, 5] * 30)
    shifts = list(range(-12, 25))
    assert ttr_sweep_stream(a, b, shifts, 10**9) == {s: None for s in shifts}


def test_duplicate_empty_and_zero_horizon():
    a, b = CyclicSchedule([1, 2, 3] * 30), CyclicSchedule([3, 1] * 30)
    assert ttr_sweep_stream(a, b, [], 100) == {}
    assert ttr_sweep_stream(a, b, [0, 3], 0) == {0: None, 3: None}
    dup = ttr_sweep_stream(a, b, [4, 4, -4, 4], 100)
    assert dup == _scalar(a, b, [4, -4], 100)


def test_huge_period_streams_without_table():
    """Past BATCH_TABLE_LIMIT the auto dispatcher hands off to the
    streaming engine, which generates tiles through channel_block and
    never materializes a period table."""
    period = batch.BATCH_TABLE_LIMIT + 3
    a = FunctionSchedule(lambda t: t % 5, period, channels=frozenset(range(5)))
    b = CyclicSchedule([4, 2])
    shifts = [0, 1, 5, -3, 9999]
    expected = _scalar(a, b, shifts, 60)
    assert ttr_sweep_stream(a, b, shifts, 60) == expected
    assert batch.ttr_sweep(a, b, shifts, 60) == expected  # auto → stream


def test_forced_batched_engine_rejects_huge_periods():
    period = batch.BATCH_TABLE_LIMIT + 3
    a = FunctionSchedule(lambda t: t % 5, period, channels=frozenset(range(5)))
    b = CyclicSchedule([4, 2])
    with pytest.raises(ValueError, match="engine='batched'"):
        batch.ttr_sweep(a, b, [0], 60, engine="batched")


def test_unknown_engine_rejected():
    a, b = CyclicSchedule([1]), CyclicSchedule([1])
    with pytest.raises(ValueError, match="unknown engine"):
        batch.ttr_sweep(a, b, [0], 10, engine="quantum")


def test_raw_arrays_and_memmaps_stream_off_the_table(tmp_path):
    """Raw period arrays — including read-only store memmaps — feed the
    streaming tiles directly, bit-identical to schedule objects."""
    from repro.core.store import ScheduleStore

    store = ScheduleStore(tmp_path)
    a = store.get([1, 5, 9], 16, "drds")
    b = store.get([5, 12], 16, "drds")
    shifts = list(range(-40, 40))
    expected = batch.ttr_sweep(a, b, shifts, 50_000, engine="batched")
    assert ttr_sweep_stream(a, b, shifts, 50_000) == expected
    table_a, table_b = a.period_table(), b.period_table()
    assert isinstance(table_a, np.memmap)
    assert ttr_sweep_stream(table_a, table_b, shifts, 50_000) == expected


def test_sparse_offsets_use_per_row_generation():
    """Widely strided shifts (offsets scattered over the period) take
    the per-row path; results must not depend on it."""
    instance = single_overlap(32, 3, 4, seed=9)
    a = repro.build_schedule(instance.sets[0], 32, algorithm="crseq")
    b = repro.build_schedule(instance.sets[1], 32, algorithm="crseq")
    stride = max(1, a.period // 7)
    shifts = list(range(0, a.period, stride)) + [-1, -stride]
    horizon = 4 * a.period
    assert ttr_sweep_stream(a, b, shifts, horizon, tile_bytes=256) == _scalar(
        a, b, shifts, horizon
    )


def test_verify_guarantee_through_stream_engine():
    """Exhaustive certification runs unchanged when forced through the
    streaming engine."""
    a = repro.build_schedule([1, 5], 16, algorithm="zos")
    b = repro.build_schedule([5, 9], 16, algorithm="zos")
    import math

    bound = math.lcm(a.period, b.period)
    batched = verify_guarantee(a, b, bound)
    streamed = verify_guarantee(a, b, bound, engine="stream", tile_bytes=4096)
    assert batched == streamed
    assert streamed[0]
