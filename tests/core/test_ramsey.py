"""Tests for the 2-Ramsey edge coloring of the linear poset (Lemma 2)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ramsey


class TestPaletteWidth:
    def test_small_universes(self):
        assert ramsey.palette_width(2) == 1
        assert ramsey.palette_width(3) == 2
        assert ramsey.palette_width(4) == 2
        assert ramsey.palette_width(5) == 3

    def test_log_sharp_shape(self):
        assert ramsey.palette_width(256) == 8
        assert ramsey.palette_width(257) == 9

    def test_rejects_tiny_universe(self):
        with pytest.raises(ValueError):
            ramsey.palette_width(1)


class TestEdgeColor:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            ramsey.edge_color(2, 2, 8)
        with pytest.raises(ValueError):
            ramsey.edge_color(3, 1, 8)
        with pytest.raises(ValueError):
            ramsey.edge_color(0, 8, 8)

    def test_color_in_palette(self):
        n = 37
        width = ramsey.palette_width(n)
        for a, b in itertools.combinations(range(n), 2):
            assert 0 <= ramsey.edge_color(a, b, n) < width

    @pytest.mark.parametrize("lowest", [False, True])
    def test_no_monochromatic_directed_path(self, lowest):
        """The defining 2-Ramsey property, exhaustively for n = 64."""
        n = 64
        for a, b, c in itertools.combinations(range(n), 3):
            left = ramsey.edge_color(a, b, n, lowest=lowest)
            right = ramsey.edge_color(b, c, n, lowest=lowest)
            assert left != right, (a, b, c)

    @given(st.integers(3, 4096), st.data())
    def test_no_monochromatic_path_sampled(self, n, data):
        a = data.draw(st.integers(0, n - 3))
        b = data.draw(st.integers(a + 1, n - 2))
        c = data.draw(st.integers(b + 1, n - 1))
        assert ramsey.edge_color(a, b, n) != ramsey.edge_color(b, c, n)

    def test_color_is_bit_of_b_not_a(self):
        n = 128
        for a, b in itertools.combinations(range(0, n, 7), 2):
            color = ramsey.edge_color(a, b, n)
            assert (b >> color) & 1 == 1
            assert (a >> color) & 1 == 0


class TestColorBits:
    def test_width_even_and_fixed(self):
        for n in (2, 3, 7, 64, 100, 2**20):
            width = ramsey.color_width(n)
            assert width % 2 == 0
            for color in range(ramsey.palette_width(n)):
                assert len(ramsey.color_bits(color, n)) == width

    def test_out_of_palette_rejected(self):
        with pytest.raises(ValueError):
            ramsey.color_bits(ramsey.palette_width(16), 16)

    def test_distinct_colors_distinct_bits(self):
        n = 1 << 10
        encodings = {ramsey.color_bits(c, n) for c in range(ramsey.palette_width(n))}
        assert len(encodings) == ramsey.palette_width(n)
